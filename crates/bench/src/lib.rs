//! Shared infrastructure for the experiment harness.
//!
//! Each table and figure of the paper's evaluation (§6) has a binary in
//! `src/bin/` that regenerates it on the simulated machine and prints the
//! measured rows next to the paper's published numbers. The workloads,
//! environment construction, and table formatting live here so every
//! experiment is driven identically.
//!
//! Run e.g. `cargo run --release -p scanvec-bench --bin table4`.
//! Every binary accepts `--max-n <N>` to cap the sweep (the full 10⁶ rows
//! simulate a few hundred million instructions and take a few seconds
//! each).

#![forbid(unsafe_code)]

pub mod experiments;
pub mod sweep;

use rand::prelude::*;
use rvv_asm::SpillProfile;
use rvv_isa::Lmul;
use scanvec::{EnvConfig, ScanEnv};

/// The paper's size sweep: 10² … 10⁶.
pub const PAPER_SIZES: [usize; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// Deterministic random `u32` workload (full range, like the paper's
/// radix-sort inputs).
pub fn random_u32s(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random()).collect()
}

/// Deterministic random values bounded below `limit`.
pub fn random_bounded(n: usize, limit: u32, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(0..limit)).collect()
}

/// Head-flag workload for the segmented experiments: heads drawn with
/// density 1/50 (the paper does not publish its segment distribution; its
/// baseline counts imply segments long enough that the per-head reset cost
/// is negligible, which holds here).
pub fn random_head_flags(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e65);
    let mut flags = vec![0u32; n];
    if n == 0 {
        return flags;
    }
    flags[0] = 1;
    for f in flags.iter_mut().skip(1) {
        if rng.random_range(0..50u32) == 0 {
            *f = 1;
        }
    }
    flags
}

/// Environment at the paper's headline config (VLEN=1024, LMUL=1) with
/// enough device memory for the 10⁶-element experiments.
pub fn paper_env() -> ScanEnv {
    ScanEnv::new(EnvConfig::paper_default())
}

/// Environment with an explicit VLEN/LMUL (spill profile = calibrated
/// LLVM-14).
pub fn env_with(vlen: u32, lmul: Lmul) -> ScanEnv {
    ScanEnv::new(EnvConfig {
        vlen,
        lmul,
        spill_profile: SpillProfile::llvm14(),
        mem_bytes: 192 << 20,
    })
}

/// Environment with an explicit spill profile (for the ablations).
pub fn env_with_profile(vlen: u32, lmul: Lmul, profile: SpillProfile) -> ScanEnv {
    ScanEnv::new(EnvConfig {
        vlen,
        lmul,
        spill_profile: profile,
        mem_bytes: 192 << 20,
    })
}

/// Parse `--max-n <N>` from the command line; defaults to 10⁶ (the full
/// paper sweep).
pub fn max_n_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--max-n" {
            return w[1].parse().expect("--max-n takes an integer");
        }
    }
    1_000_000
}

/// Parse `--threads <N>` from the command line; defaults to 1 (serial).
/// Every ported binary runs its jobs through `rvv-batch` at this worker
/// count; the engine guarantees the output is identical at any value.
pub fn threads_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--threads" {
            let t: usize = w[1].parse().expect("--threads takes an integer");
            assert!(t >= 1, "--threads must be at least 1");
            return t;
        }
    }
    1
}

/// Parse `--inject-seed <S>` from the command line (decimal or `0x…` hex):
/// the fault-injection seed for a chaos-hardened sweep. `None` when absent
/// (no injection).
pub fn inject_seed_arg() -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--inject-seed" {
            let t = &w[1];
            let parsed = if let Some(hex) = t.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                t.parse()
            };
            return Some(parsed.expect("--inject-seed takes an integer"));
        }
    }
    None
}

/// Parse `--cost-preset <name>` from the command line: the cycle-model
/// preset (`unit`, `ara-like`, `vitruvius-like`) to attach to the sweep's
/// jobs. `None` when absent — cost modeling is strictly opt-in, so the
/// default run stays count-only and byte-identical to earlier releases.
pub fn cost_preset_arg() -> Option<rvv_cost::CostModel> {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--cost-preset" {
            // Usage errors exit 2 (the usage-error convention) instead of
            // panicking: a typo'd preset is the operator's mistake, not a
            // harness bug, and scripts key on the exit code.
            return Some(rvv_cost::CostModel::preset(&w[1]).unwrap_or_else(|| {
                eprintln!(
                    "unknown --cost-preset `{}` (expected one of: {})",
                    w[1],
                    rvv_cost::CostModel::PRESETS.join(", ")
                );
                std::process::exit(2)
            }));
        }
    }
    None
}

/// Is the bare flag `name` (e.g. `--keep-going`) present on the command
/// line?
pub fn flag_arg(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Parse `--exec-engine <plan|legacy|fused>`; `None` when the option is
/// absent (the engine default, `plan`, applies).
pub fn exec_engine_arg() -> Option<scanvec::ExecEngine> {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--exec-engine" {
            // Case-insensitive (`ExecEngine::parse` lowercases); unknown
            // names exit 2 listing the valid set, like `--cost-preset`.
            return Some(scanvec::ExecEngine::parse(&w[1]).unwrap_or_else(|| {
                let valid: Vec<String> = scanvec::ExecEngine::ALL
                    .iter()
                    .map(|e| format!("{e:?}").to_ascii_lowercase())
                    .collect();
                eprintln!(
                    "unknown --exec-engine `{}` (expected one of: {})",
                    w[1],
                    valid.join(", ")
                );
                std::process::exit(2)
            }));
        }
    }
    None
}

/// Parse `name <N>` (decimal or `0x…` hex) from the command line; `None`
/// when the option is absent.
pub fn num_arg(name: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == name {
            let t = &w[1];
            let parsed = if let Some(hex) = t.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                t.parse()
            };
            return Some(parsed.unwrap_or_else(|_| panic!("{name} takes an integer")));
        }
    }
    None
}

/// The paper's sizes, capped by `--max-n`.
pub fn sweep_sizes() -> Vec<usize> {
    let cap = max_n_arg();
    PAPER_SIZES.iter().copied().filter(|&n| n <= cap).collect()
}

/// Render a table: header row plus aligned columns.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:>width$} |", c, width = widths[i]));
        }
        s
    };
    let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&headers));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    println!("{sep}");
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format a speedup to the paper's style.
pub fn fmt_speedup(baseline: u64, ours: u64) -> String {
    format!("{:.3}", baseline as f64 / ours as f64)
}

/// Format a ratio.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(random_u32s(100, 1), random_u32s(100, 1));
        assert_ne!(random_u32s(100, 1), random_u32s(100, 2));
        let f = random_head_flags(1000, 3);
        assert_eq!(f[0], 1);
        assert!(f.iter().all(|&x| x <= 1));
        assert!(f.iter().filter(|&&x| x == 1).count() > 5);
        assert!(random_head_flags(0, 1).is_empty());
    }

    #[test]
    fn bounded_workload_respects_limit() {
        assert!(random_bounded(500, 64, 9).iter().all(|&x| x < 64));
    }

    #[test]
    fn sweep_caps() {
        // No --max-n in the test harness: full sweep.
        assert_eq!(sweep_sizes(), PAPER_SIZES.to_vec());
    }
}
