//! Ablation: the paper's §3.1 argument for vector-length-agnostic
//! strip-mining. A VLS-style ISA needs a scalar remainder loop for
//! `n mod VLMAX` elements (and more code); RVV's `vsetvli` folds the tail
//! into the final strip.

use scanvec_bench::{experiments, print_table};

fn main() {
    // Sizes chosen to exercise the remainder: VLMAX=32 at VLEN=1024/e32.
    // 13 is the paper's own example ("when it processes 13 elements...").
    let sizes = [13usize, 31, 32, 100, 1_000, 10_000, 100_001];
    let cap = scanvec_bench::max_n_arg();
    let sizes: Vec<usize> = sizes.into_iter().filter(|&n| n <= cap.max(100)).collect();
    let rows: Vec<Vec<String>> = experiments::ablation_vla_vls(&sizes)
        .iter()
        .map(|&(n, vla, vls, vls_static, vla_static)| {
            vec![
                n.to_string(),
                vla.to_string(),
                vls.to_string(),
                format!("{:+.1}%", (vls as f64 / vla as f64 - 1.0) * 100.0),
                vla_static.to_string(),
                vls_static.to_string(),
            ]
        })
        .collect();
    print_table(
        "Ablation — VLA (vsetvli) vs VLS (fixed width + remainder loop), p_add",
        &[
            "N",
            "VLA dyn",
            "VLS dyn",
            "VLS overhead",
            "VLA code (instrs)",
            "VLS code (instrs)",
        ],
        &rows,
    );
    println!("\nThe remainder loop costs ~6 scalar instructions per leftover element —");
    println!("ruinous for short or ragged vectors (n < VLMAX runs fully scalar: the");
    println!("paper's 13-element example). On huge exact-multiple inputs VLS edges");
    println!("ahead by skipping the per-strip vsetvli, but the VLS kernel is 1.8x");
    println!("larger (the remainder loop is dead weight on exact multiples) — the");
    println!("paper's code-size point — and cannot retarget other vector lengths.");
}
