//! Ablation: the paper's §4.4 claim that `enumerate` should exploit
//! `viota`/`vcpop` rather than reusing the generic exclusive scan.

use scanvec_bench::{experiments, print_table, sweep_sizes};

fn main() {
    let sizes = sweep_sizes();
    let rows: Vec<Vec<String>> = experiments::ablation_enumerate(&sizes)
        .iter()
        .map(|&(n, viota, generic)| {
            vec![
                n.to_string(),
                viota.to_string(),
                generic.to_string(),
                format!("{:.3}", generic as f64 / viota as f64),
            ]
        })
        .collect();
    print_table(
        "Ablation — enumerate via viota (paper §4.4) vs generic exclusive scan",
        &["N", "viota", "generic scan", "viota advantage"],
        &rows,
    );
}
