//! Fault-injection ablation: the eight scan-vector algorithms under
//! seeded fault plans, driven through the `rvv-batch` engine with
//! panic isolation, retries, and the instruction watchdog armed.
//!
//! The same scenario grid runs at 1, 2, and `--threads` workers and the
//! three stable digests are compared byte for byte: fault firing, trap
//! classification, and retry behaviour must be scheduling-independent.
//! The run writes:
//!
//! * `results/fault_manifest.txt` — one stable line per scenario
//!   (deterministic: byte-identical across thread counts and reruns), plus
//!   the failure summary.
//! * `results/fault_ablation.json` — scenario counts by outcome and the
//!   determinism verdict.
//!
//! `--inject-seed <S>` picks the fault seed (default below); any seed must
//! satisfy the same contract — zero panics, identical digests.

use rvv_batch::{BatchJob, BatchRunner, Engine, JobOutcome};
use rvv_fault::chaos::{chaos_config, run_algo, ChaosAlgo, CHAOS_FUEL};
use rvv_fault::{ArmedFaults, FaultPlan};
use scanvec::{ScanEnv, HEAP_BASE};
use scanvec_bench::{inject_seed_arg, threads_arg};
use std::sync::Arc;

/// Default fault seed: the chaos suite's, so CI exercises a fixed grid.
const DEFAULT_SEED: u64 = 0x5eed_fa17_2026_0807;

/// Scenarios per algorithm (× 8 algorithms = the grid).
const PER_ALGO: u64 = 28;

fn scenario_jobs(seed: u64) -> Vec<BatchJob<String>> {
    let mut jobs = Vec::new();
    for (a, &algo) in ChaosAlgo::ALL.iter().enumerate() {
        for i in 0..PER_ALGO {
            let index = a as u64 * PER_ALGO + i;
            // Size varies with the scenario so faults meet different
            // workload shapes; data depends on (seed, algo) only.
            let n = 64 + (index as usize % 4) * 32;
            let data_seed = seed ^ (0x5ca1_ab1e_0000_0000 | algo as u64);
            let plan = FaultPlan::derive(seed, index);
            jobs.push(
                BatchJob::new(
                    format!("fault/{}/{index:03}", algo.name()),
                    chaos_config(),
                    move |env: &mut ScanEnv| run_algo(env, algo, data_seed, n),
                )
                // One retry: the plan re-arms each attempt (setup runs per
                // attempt), so a faulted job fails identically twice —
                // exercising the retry path without changing the outcome.
                .retries(1)
                .with_setup(move |env| {
                    for r in plan.guard_ranges(HEAP_BASE) {
                        env.machine_mut().mem.add_guard(r);
                    }
                    env.attach_fault_hook(Box::new(ArmedFaults::new(&plan)));
                }),
            );
        }
    }
    jobs
}

fn main() {
    let seed = inject_seed_arg().unwrap_or(DEFAULT_SEED);
    let max_threads = threads_arg();
    let total = ChaosAlgo::ALL.len() as u64 * PER_ALGO;
    println!("fault ablation: seed={seed:#x}, {total} scenarios, 8 algorithms");

    // The same grid at every worker count; digests must agree byte for
    // byte — that's the determinism-under-injection claim. Every run
    // shares one engine, whose default fuel budget is the chaos
    // watchdog: each scenario inherits it instead of carrying its own.
    let engine = Arc::new(Engine::builder().default_fuel_budget(CHAOS_FUEL).build());
    let mut counts: Vec<usize> = vec![1, 2];
    if max_threads > 2 {
        counts.push(max_threads);
    }
    let runs: Vec<_> = counts
        .iter()
        .map(|&t| {
            let r = BatchRunner::with_engine(t, Arc::clone(&engine)).run(scenario_jobs(seed));
            println!(
                "  threads={t}: {} scenarios, {} retired, {:.2}s",
                r.reports.len(),
                r.retired(),
                r.wall.as_secs_f64()
            );
            r
        })
        .collect();
    let reference = runs[0].stable_digest();
    let identical = runs.iter().all(|r| r.stable_digest() == reference);

    // Zero-panic contract: every failure must be a classified trap or a
    // timeout, never an escaped panic.
    let result = &runs[0];
    let (mut ok, mut trapped, mut timed_out, mut other) = (0u64, 0u64, 0u64, 0u64);
    for r in &result.reports {
        match &r.outcome {
            JobOutcome::Ok(_) => ok += 1,
            JobOutcome::Trapped(_) => trapped += 1,
            JobOutcome::TimedOut { .. } => timed_out += 1,
            JobOutcome::Panicked(msg) => {
                panic!("PANIC escaped fault injection in {}: {msg}", r.name)
            }
            JobOutcome::Failed(_) => other += 1,
            // This driver never journals, so nothing can replay here.
            JobOutcome::Replayed(s) => {
                panic!("replayed outcome in a live run at {}: {s}", r.name)
            }
            // And it attaches no cancel tokens, so nothing can cancel.
            JobOutcome::Cancelled { at } => {
                panic!("cancelled outcome without a token at {}: at={at}", r.name)
            }
        }
    }
    let faulted = trapped + timed_out + other;
    assert!(
        faulted >= total / 4,
        "only {faulted}/{total} scenarios faulted — injection is miswired"
    );
    // Retries are bounded and deterministic: a faulted job burns exactly
    // its retry budget, a clean job exactly one attempt.
    for r in &result.reports {
        let expect = if r.outcome.is_ok() { 1 } else { 2 };
        assert_eq!(r.attempts, expect, "{}: attempts", r.name);
    }

    std::fs::create_dir_all("results").expect("results dir");
    let mut manifest = format!("# fault ablation manifest\n# seed={seed:#x}\n");
    manifest.push_str(&reference);
    if let Some(summary) = result.degraded() {
        manifest.push_str(&format!("{summary}"));
    }
    rvv_ckpt::write_atomic("results/fault_manifest.txt", &manifest)
        .expect("write fault_manifest.txt");

    let json = format!(
        concat!(
            "{{\n",
            "  \"seed\": \"{:#x}\",\n",
            "  \"scenarios\": {},\n",
            "  \"ok\": {},\n",
            "  \"trapped\": {},\n",
            "  \"timed_out\": {},\n",
            "  \"host_failed\": {},\n",
            "  \"panicked\": 0,\n",
            "  \"thread_counts\": {:?},\n",
            "  \"identical\": {}\n",
            "}}\n"
        ),
        seed, total, ok, trapped, timed_out, other, counts, identical
    );
    rvv_ckpt::write_atomic("results/fault_ablation.json", json).expect("write fault_ablation.json");

    println!("\n{ok} ok, {trapped} trapped, {timed_out} timed out, {other} host-failed, 0 panics");
    println!(
        "digests at threads {counts:?}: {}",
        if identical { "identical" } else { "DIVERGED" }
    );
    println!("-> results/fault_manifest.txt, results/fault_ablation.json");
    if !identical {
        eprintln!("ERROR: fault injection outcomes diverged across thread counts");
        std::process::exit(1);
    }
}
