//! Supplementary sensitivity study: segmented scan vs segment-head density.
//! The paper does not publish its segment distribution; this sweep shows
//! why it barely matters — the vectorized kernel's cost is density-flat,
//! while the scalar baseline pays per head.

use scanvec_bench::{experiments, fmt_speedup, print_table};

fn main() {
    let n = scanvec_bench::max_n_arg().min(100_000);
    let rows: Vec<Vec<String>> = experiments::density_sweep(n)
        .iter()
        .map(|&(pm, ours, base)| {
            vec![
                format!("{:.1}%", pm as f64 / 10.0),
                ours.to_string(),
                base.to_string(),
                fmt_speedup(base, ours),
            ]
        })
        .collect();
    print_table(
        &format!("Supplementary — seg_plus_scan vs head density (N = {n}, VLEN=1024)"),
        &["head density", "vectorized", "baseline", "speedup"],
        &rows,
    );
    println!("\nThe vector kernel runs the same ladder regardless of where heads fall;");
    println!("only the baseline's reset branch sees the density. The paper's choice of");
    println!("segment distribution therefore cannot change its Table 4 conclusions.");
}
