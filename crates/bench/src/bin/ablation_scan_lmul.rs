//! The abstract's LMUL claim for the *unsegmented* scan: with only three
//! live vector values the kernel never spills, so LMUL grouping scales
//! near-ideally (2.85x -> 21.93x in the paper; our codegen is tighter so
//! both endpoints are higher).

use scanvec_bench::{experiments, print_table};

fn main() {
    let n = scanvec_bench::max_n_arg().min(1_000_000);
    let rows: Vec<Vec<String>> = experiments::scan_lmul_sweep(n)
        .iter()
        .map(|&(lmul, ours, base)| {
            vec![
                format!("m{lmul}"),
                ours.to_string(),
                base.to_string(),
                format!("{:.2}", base as f64 / ours as f64),
            ]
        })
        .collect();
    print_table(
        &format!("Unsegmented plus-scan across LMUL (N = {n}, VLEN=1024)"),
        &["LMUL", "plus_scan", "baseline", "speedup"],
        &rows,
    );
    println!("\nNo spilling at any LMUL (3 live values ≤ 3 groups at m8): the speedup");
    println!("scales with the group size, unlike the segmented scan of Table 5.");
}
