//! The abstract's LMUL claim for the *unsegmented* scan: with only three
//! live vector values the kernel never spills, so LMUL grouping scales
//! near-ideally (2.85x -> 21.93x in the paper; our codegen is tighter so
//! both endpoints are higher).

use rvv_isa::Lmul;
use rvv_trace::TraceProfiler;
use scanvec::env::{EnvConfig, ScanEnv};
use scanvec::primitives::plus_scan;
use scanvec_bench::{experiments, print_table};

/// Profile one plus_scan launch and write the Chrome trace + text report
/// under `results/` — the no-spill counterpart to `ablation_spill`'s
/// profiles (the detector should find zero stack traffic at every LMUL).
fn emit_profile(lmul: Lmul, n: usize) {
    let mut env = ScanEnv::new(EnvConfig::with_lmul(lmul));
    env.attach_tracer(Box::new(TraceProfiler::new(env.stack_region())));
    let data: Vec<u32> = (0..n as u32).map(|i| i % 1000).collect();
    let v = env.from_u32(&data).expect("alloc");
    plus_scan(&mut env, &v).expect("scan");
    let p = TraceProfiler::from_sink(env.detach_tracer().expect("attached")).expect("profiler");
    std::fs::create_dir_all("results").expect("results dir");
    let stem = format!("results/ablation_scan_lmul_m{}", lmul.regs());
    std::fs::write(format!("{stem}.json"), p.chrome_trace_json()).expect("write json");
    std::fs::write(format!("{stem}.txt"), p.text_report()).expect("write txt");
    println!(
        "profile m{}: {} retired, {} spill ops -> {stem}.json/.txt",
        lmul.regs(),
        p.total_retired(),
        p.spill().total_ops(),
    );
}

fn main() {
    let n = scanvec_bench::max_n_arg().min(1_000_000);
    let rows: Vec<Vec<String>> = experiments::scan_lmul_sweep(n)
        .iter()
        .map(|&(lmul, ours, base)| {
            vec![
                format!("m{lmul}"),
                ours.to_string(),
                base.to_string(),
                format!("{:.2}", base as f64 / ours as f64),
            ]
        })
        .collect();
    print_table(
        &format!("Unsegmented plus-scan across LMUL (N = {n}, VLEN=1024)"),
        &["LMUL", "plus_scan", "baseline", "speedup"],
        &rows,
    );
    println!("\nNo spilling at any LMUL (3 live values ≤ 3 groups at m8): the speedup");
    println!("scales with the group size, unlike the segmented scan of Table 5.");

    println!();
    for lmul in [Lmul::M1, Lmul::M8] {
        emit_profile(lmul, 4096);
    }
}
