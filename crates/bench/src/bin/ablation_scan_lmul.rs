//! The abstract's LMUL claim for the *unsegmented* scan: with only three
//! live vector values the kernel never spills, so LMUL grouping scales
//! near-ideally (2.85x -> 21.93x in the paper; our codegen is tighter so
//! both endpoints are higher).
//!
//! Each LMUL point and both profiling runs are independent `rvv-batch`
//! jobs; `--threads <N>` fans them out with identical output.

use rvv_isa::Lmul;
use scanvec::primitives::plus_scan;
use scanvec::EnvConfig;
use scanvec::ScanEnv;
use scanvec_bench::{cost_preset_arg, experiments, print_table, threads_arg};
use std::sync::Arc;

fn main() {
    let n = scanvec_bench::max_n_arg().min(1_000_000);
    let cost = cost_preset_arg().unwrap_or_else(rvv_batch::CostModel::ara_like);
    // Every job inherits the cost model from the shared engine; the
    // measurement jobs stay count-driven in the printed table either way.
    let engine = Arc::new(
        rvv_batch::Engine::builder()
            .cost_model(cost.clone())
            .build(),
    );
    const PROFILE_N: usize = 4096;

    let mut jobs = Vec::new();
    for lmul in Lmul::ALL {
        jobs.push(
            rvv_batch::BatchJob::new(
                format!("scan/m{}", lmul.regs()),
                EnvConfig::with_lmul(lmul),
                move |env: &mut ScanEnv| experiments::scan_lmul_point(env, n),
            )
            .weight(n as u64),
        );
    }
    // The no-spill counterpart to `ablation_spill`'s profiles (the
    // detector should find zero stack traffic at every LMUL). Traced, and
    // costed via the engine: the written profile carries per-phase cycle
    // attribution.
    for lmul in [Lmul::M1, Lmul::M8] {
        jobs.push(
            rvv_batch::BatchJob::new(
                format!("profile/m{}", lmul.regs()),
                EnvConfig::with_lmul(lmul),
                move |env: &mut ScanEnv| {
                    let data: Vec<u32> = (0..PROFILE_N as u32).map(|i| i % 1000).collect();
                    let v = env.from_u32(&data)?;
                    plus_scan(env, &v)?;
                    Ok((0, 0))
                },
            )
            .traced(true)
            .weight(PROFILE_N as u64),
        );
    }

    let result = rvv_batch::BatchRunner::with_engine(threads_arg(), engine).run(jobs);
    assert!(result.all_ok(), "ablation job failed");

    let rows: Vec<Vec<String>> = result.reports[..4]
        .iter()
        .zip(Lmul::ALL)
        .map(|(r, lmul)| {
            let &(ours, base) = r.output().expect("measured");
            vec![
                format!("m{}", lmul.regs()),
                ours.to_string(),
                base.to_string(),
                format!("{:.2}", base as f64 / ours as f64),
            ]
        })
        .collect();
    print_table(
        &format!("Unsegmented plus-scan across LMUL (N = {n}, VLEN=1024)"),
        &["LMUL", "plus_scan", "baseline", "speedup"],
        &rows,
    );
    println!("\nNo spilling at any LMUL (3 live values ≤ 3 groups at m8): the speedup");
    println!("scales with the group size, unlike the segmented scan of Table 5.");

    println!();
    std::fs::create_dir_all("results").expect("results dir");
    for (r, lmul) in result.reports[4..].iter().zip([Lmul::M1, Lmul::M8]) {
        let p = r.profile.as_ref().expect("traced job carries a profile");
        let stem = format!("results/ablation_scan_lmul_m{}", lmul.regs());
        rvv_ckpt::write_atomic(format!("{stem}.json"), p.chrome_trace_json()).expect("write json");
        rvv_ckpt::write_atomic(format!("{stem}.txt"), p.text_report()).expect("write txt");
        println!(
            "profile m{}: {} retired, {} est. cycles ({}), {} spill ops -> {stem}.json/.txt",
            lmul.regs(),
            p.total_retired(),
            p.cycles().expect("costed profile").total(),
            cost.name(),
            p.spill().total_ops(),
        );
    }
}
