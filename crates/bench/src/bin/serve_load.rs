//! Load client for a running `rvv-serve` instance: submit a mixed sweep,
//! poll it to completion, verify the served digest against an in-process
//! serial reference, and report throughput. The CI `serve-smoke` job
//! drives this against a server it kills and restarts mid-drain — the
//! digest check is what proves the crash changed nothing.
//!
//! ```text
//! serve_load --addr 127.0.0.1:7190 --jobs 40 [--submit-only] [--verify-only]
//! ```
//!
//! `--submit-only` submits and exits (the smoke job kills the server
//! while the sweep is draining); `--verify-only` skips submission and
//! polls sweep 1 (after the restart). The default does both.

use rvv_batch::BatchRunner;
use rvv_ckpt::fnv1a;
use rvv_serve::http::request;
use rvv_serve::JobSpec;
use scanvec::Engine;
use scanvec_bench::{flag_arg, num_arg};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn addr_arg() -> String {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--addr" {
            return w[1].clone();
        }
    }
    "127.0.0.1:7190".to_string()
}

/// The smoke sweep: `jobs` small mixed-workload specs, pure function of
/// the count so client and reference always agree.
fn specs(jobs: u64) -> Vec<JobSpec> {
    let workloads = ["p_add", "plus_scan", "seg_scan", "radix_sort"];
    let vlens = [128u32, 256, 512];
    let lmuls = ["m1", "m2", "m4"];
    (0..jobs)
        .map(|i| {
            format!(
                "{} n={} vlen={} lmul={} seed={i}",
                workloads[(i % 4) as usize],
                50 + i * 13,
                vlens[(i % 3) as usize],
                lmuls[(i % 3) as usize],
            )
            .parse()
            .expect("generated spec")
        })
        .collect()
}

/// What the server must serve for sweep 1: the same jobs through the
/// serial batch runner, formatted like `GET /sweeps/<id>`.
fn serial_reference(specs: &[JobSpec]) -> String {
    let engine = Arc::new(Engine::builder().default_fuel_budget(1_000_000_000).build());
    let jobs = specs
        .iter()
        .enumerate()
        .map(|(i, s)| s.to_job(format!("job-{}", i + 1)))
        .collect();
    let result = BatchRunner::with_engine(1, engine).run(jobs);
    let mut body = String::new();
    for r in &result.reports {
        body.push_str(&r.stable_line());
        body.push('\n');
    }
    format!(
        "complete jobs={}\ndigest={:#018x}\n{body}",
        result.reports.len(),
        fnv1a(body.as_bytes())
    )
}

fn main() {
    let addr = addr_arg();
    let jobs = num_arg("--jobs").unwrap_or(40);
    let specs = specs(jobs);
    let started = Instant::now();

    let sweep = if flag_arg("--verify-only") {
        1
    } else {
        let body: String = specs.iter().map(|s| format!("{s}\n")).collect();
        let (status, reply) = match request(&addr, "POST", "/sweeps", &body) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("serve_load: cannot reach {addr}: {e}");
                std::process::exit(1)
            }
        };
        if status != 202 {
            eprintln!("serve_load: submission refused ({status}): {reply}");
            std::process::exit(1)
        }
        let sweep: u64 = reply
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("sweep "))
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("serve_load: unparseable acknowledgment: {reply}");
                std::process::exit(1)
            });
        println!("submitted sweep {sweep} ({jobs} jobs) to {addr}");
        if flag_arg("--submit-only") {
            return;
        }
        sweep
    };

    let deadline = Instant::now() + Duration::from_secs(300);
    let body = loop {
        match request(&addr, "GET", &format!("/sweeps/{sweep}"), "") {
            Ok((200, body)) if body.starts_with("complete") => break body,
            Ok((200, _)) => {}
            Ok((status, body)) => {
                eprintln!("serve_load: poll failed ({status}): {body}");
                std::process::exit(1)
            }
            Err(e) => {
                eprintln!("serve_load: poll failed: {e}");
                std::process::exit(1)
            }
        }
        if Instant::now() > deadline {
            eprintln!("serve_load: sweep {sweep} never completed");
            std::process::exit(1)
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let elapsed = started.elapsed();

    let expected = serial_reference(&specs);
    if body != expected {
        eprintln!(
            "serve_load: DIGEST MISMATCH\n--- served ---\n{body}\n--- expected ---\n{expected}"
        );
        std::process::exit(1)
    }
    let digest = body.lines().nth(1).unwrap_or("");
    println!(
        "verified {jobs} jobs, {digest}, {:.0} jobs/min",
        jobs as f64 * 60.0 / elapsed.as_secs_f64().max(1e-9)
    );
    if let Ok((200, stats)) = request(&addr, "GET", "/stats", "") {
        print!("{stats}");
    }
}
