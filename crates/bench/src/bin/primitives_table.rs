//! Supplementary table: the primitives the paper implements but does not
//! tabulate (§6.2 lists p-add, p-select, permute, enumerate, split as
//! implemented), each against its sequential baseline.

use scanvec_bench::{experiments, fmt_speedup, print_table};

fn main() {
    let n = scanvec_bench::max_n_arg().min(100_000);
    let rows: Vec<Vec<String>> = experiments::primitives_table(n)
        .iter()
        .map(|&(name, ours, base)| {
            vec![
                name.to_string(),
                ours.to_string(),
                base.to_string(),
                fmt_speedup(base, ours),
            ]
        })
        .collect();
    print_table(
        &format!("Supplementary — primitive costs (N = {n}, VLEN=1024, LMUL=1)"),
        &["primitive", "vectorized", "baseline", "speedup"],
        &rows,
    );
}
