//! Ablation: split radix sort (the paper's algorithm) vs a bitonic sorting
//! network, both composed purely from scan-vector-model primitives.

use scanvec_bench::{experiments, print_table};

fn main() {
    // Bitonic is O(n·lg²n) primitive launches; cap the sweep.
    let cap = scanvec_bench::max_n_arg().min(100_000);
    let sizes: Vec<usize> = [100usize, 1_000, 10_000, 100_000]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    let rows: Vec<Vec<String>> = experiments::ablation_sorts(&sizes)
        .iter()
        .map(|&(n, radix, bitonic)| {
            vec![
                n.to_string(),
                radix.to_string(),
                bitonic.to_string(),
                format!("{:.3}", bitonic as f64 / radix as f64),
            ]
        })
        .collect();
    print_table(
        "Ablation — split radix sort vs bitonic network (dynamic instructions)",
        &["N", "radix (32 passes)", "bitonic", "bitonic/radix"],
        &rows,
    );
    println!("\nRadix does 32 passes regardless of N; bitonic pays lg²(N) stages.");
    println!("For 32-bit keys the radix sort wins at every size the paper sweeps —");
    println!("the reason §4.4 builds split radix sort rather than a merging network.");
}
