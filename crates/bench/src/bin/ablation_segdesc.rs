//! Ablation: segment descriptor representations (paper §5). Head-flags
//! drive the kernel directly; lengths and head-pointers pay an on-device
//! conversion (scan + scatter / scatter) first.

use scanvec_bench::{experiments, print_table, sweep_sizes};

fn main() {
    let sizes = sweep_sizes();
    let rows: Vec<Vec<String>> = experiments::ablation_segdesc(&sizes)
        .iter()
        .map(|&(n, direct, lens, ptrs)| {
            vec![
                n.to_string(),
                direct.to_string(),
                lens.to_string(),
                ptrs.to_string(),
                format!("{:.3}", lens as f64 / direct as f64),
                format!("{:.3}", ptrs as f64 / direct as f64),
            ]
        })
        .collect();
    print_table(
        "Ablation — segment descriptor: head-flags vs lengths vs head-pointers",
        &[
            "N",
            "head-flags",
            "lengths",
            "head-pointers",
            "lengths/flags",
            "ptrs/flags",
        ],
        &rows,
    );
    println!("\nHead-flags need no interpretation (the paper's choice). The sparse");
    println!("descriptors cost one extra conversion pass; with segments averaging ~50");
    println!("elements the overhead is small but never negative.");
}
