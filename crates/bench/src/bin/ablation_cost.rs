//! Count-vs-cycle LMUL ablation: does the *second metric* change the
//! answer to "which LMUL should I pick"?
//!
//! Dynamic instruction count — the paper's metric — charges every retired
//! instruction the same. The `rvv-cost` timing model charges what a real
//! vector machine would: LMUL-proportional vector occupancy, memory-port
//! contention, and a large per-op spill penalty. For the unsegmented scan
//! (no spilling) the two metrics agree; for the segmented scan the m8
//! register-pressure anomaly is priced very differently — counts see one
//! extra instruction per spill, cycles see a round trip through the memory
//! port — so the best-LMUL choice can *reorder* between the metrics.
//!
//! Every `(algorithm, n, LMUL)` point is a costed `rvv-batch` job;
//! `--threads <N>` fans the grid out with byte-identical output (the
//! printed cycle digest is the CI gate). `--cost-preset` selects the
//! machine model (default `ara-like`).
//!
//! Writes `results/cost_lmul_ablation.json` / `.txt`.

use rvv_batch::{BatchJob, BatchRunner, CostModel, Engine};
use rvv_isa::Lmul;
use scanvec::primitives::{plus_scan, seg_plus_scan};
use scanvec::EnvConfig;
use scanvec::ScanEnv;
use scanvec_bench::{experiments, print_table, random_head_flags, random_u32s, threads_arg};
use std::sync::Arc;

/// One `(algorithm, n)` grid line: per-LMUL counts and cycles.
struct Line {
    algo: &'static str,
    n: usize,
    count: [u64; 4],
    cycles: [u64; 4],
}

impl Line {
    /// Index into `Lmul::ALL` of the cheapest LMUL under a metric; ties go
    /// to the *smaller* LMUL (fewer architectural registers consumed).
    fn best(vals: &[u64; 4]) -> usize {
        let mut best = 0;
        for (i, &v) in vals.iter().enumerate() {
            if v < vals[best] {
                best = i;
            }
        }
        best
    }
    fn best_by_count(&self) -> usize {
        Line::best(&self.count)
    }
    fn best_by_cycles(&self) -> usize {
        Line::best(&self.cycles)
    }
    fn diverges(&self) -> bool {
        self.best_by_count() != self.best_by_cycles()
    }
}

/// FNV-1a over the artifact bytes: a short deterministic digest CI can
/// compare across thread counts without storing the whole file.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn main() {
    let sizes = scanvec_bench::sweep_sizes();
    let cost = scanvec_bench::cost_preset_arg().unwrap_or_else(CostModel::ara_like);

    // The grid: (algorithm, n, LMUL), every point costed — the cost model
    // rides on the shared engine, so no job carries its own. The closures
    // return (retired, checksum) so cross-LMUL result equality is asserted
    // below — the metrics may disagree, the answers may not.
    let engine = Arc::new(Engine::builder().cost_model(cost.clone()).build());
    let mut jobs: Vec<BatchJob<(u64, u64)>> = Vec::new();
    for &n in &sizes {
        for lmul in Lmul::ALL {
            jobs.push(
                BatchJob::new(
                    format!("scan/n={n}/m{}", lmul.regs()),
                    EnvConfig::with_lmul(lmul),
                    move |env: &mut ScanEnv| {
                        let data = random_u32s(n, 8);
                        let v = env.from_u32(&data)?;
                        let retired = plus_scan(env, &v)?;
                        Ok((retired, experiments::checksum(&env.to_u32(&v))))
                    },
                )
                .weight(n as u64),
            );
        }
        for lmul in Lmul::ALL {
            jobs.push(
                BatchJob::new(
                    format!("seg_scan/n={n}/m{}", lmul.regs()),
                    EnvConfig::with_lmul(lmul),
                    move |env: &mut ScanEnv| {
                        let data = random_u32s(n, 5);
                        let flags = random_head_flags(n, 5);
                        let v = env.from_u32(&data)?;
                        let f = env.from_u32(&flags)?;
                        let retired = seg_plus_scan(env, &v, &f)?;
                        Ok((retired, experiments::checksum(&env.to_u32(&v))))
                    },
                )
                .weight(n as u64),
            );
        }
    }

    let result = BatchRunner::with_engine(threads_arg(), engine).run(jobs);
    assert!(result.all_ok(), "cost ablation job failed");

    // Fold the job-ordered reports back into grid lines.
    let mut lines: Vec<Line> = Vec::new();
    let mut it = result.reports.iter();
    for &n in &sizes {
        for algo in ["scan", "seg_scan"] {
            let mut line = Line {
                algo,
                n,
                count: [0; 4],
                cycles: [0; 4],
            };
            let mut reference: Option<u64> = None;
            for i in 0..4 {
                let r = it.next().expect("grid point");
                let &(retired, sum) = r.output().expect("measured");
                line.count[i] = retired;
                line.cycles[i] = r.cycles.as_ref().expect("costed job").total();
                match reference {
                    None => reference = Some(sum),
                    Some(x) => assert_eq!(x, sum, "{algo}: LMUL changed the result at n={n}"),
                }
            }
            lines.push(line);
        }
    }

    // Summary table: one row per (algorithm, n), both rankings side by
    // side, divergences flagged.
    let lm = |i: usize| format!("m{}", Lmul::ALL[i].regs());
    let rows: Vec<Vec<String>> = lines
        .iter()
        .map(|l| {
            let (bc, by) = (l.best_by_count(), l.best_by_cycles());
            vec![
                l.algo.to_string(),
                l.n.to_string(),
                lm(bc),
                l.count[bc].to_string(),
                lm(by),
                l.cycles[by].to_string(),
                if l.diverges() { "REORDERED" } else { "-" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Best LMUL, count vs cycles ({})", cost.name()),
        &[
            "algo",
            "N",
            "best (count)",
            "count",
            "best (cycles)",
            "cycles",
            "metrics",
        ],
        &rows,
    );

    let diverging: Vec<&Line> = lines.iter().filter(|l| l.diverges()).collect();
    println!(
        "\n{} of {} grid lines reorder their best-LMUL choice under the cycle metric.",
        diverging.len(),
        lines.len()
    );

    // Full artifact: per-line per-LMUL numbers, deterministic (no wall
    // clocks), plus a text rendering of the same.
    let mut json_items = Vec::new();
    let mut txt = format!("count-vs-cycle LMUL ablation ({})\n", cost.name());
    for l in &lines {
        let nums = |vals: &[u64; 4]| {
            vals.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        json_items.push(format!(
            concat!(
                "    {{\"algo\": \"{}\", \"n\": {}, \"count\": [{}], \"cycles\": [{}],\n",
                "     \"best_by_count\": {}, \"best_by_cycles\": {}, \"diverges\": {}}}"
            ),
            l.algo,
            l.n,
            nums(&l.count),
            nums(&l.cycles),
            Lmul::ALL[l.best_by_count()].regs(),
            Lmul::ALL[l.best_by_cycles()].regs(),
            l.diverges(),
        ));
        txt.push_str(&format!(
            "{}/n={}: count m1..m8 = [{}] best m{}; cycles m1..m8 = [{}] best m{}{}\n",
            l.algo,
            l.n,
            nums(&l.count),
            Lmul::ALL[l.best_by_count()].regs(),
            nums(&l.cycles),
            Lmul::ALL[l.best_by_cycles()].regs(),
            if l.diverges() { "  <- REORDERED" } else { "" },
        ));
    }
    let json = format!(
        "{{\n  \"cost_model\": \"{}\",\n  \"lmuls\": [1, 2, 4, 8],\n  \"points\": [\n{}\n  ]\n}}\n",
        cost.name(),
        json_items.join(",\n")
    );
    let digest = fnv1a(json.as_bytes());
    std::fs::create_dir_all("results").expect("results dir");
    rvv_ckpt::write_atomic("results/cost_lmul_ablation.json", &json).expect("write json");
    rvv_ckpt::write_atomic("results/cost_lmul_ablation.txt", &txt).expect("write txt");
    println!("cycle digest: {digest:016x}");
    println!("-> results/cost_lmul_ablation.json/.txt");
}
