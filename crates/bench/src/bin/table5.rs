//! Table 5: segmented plus-scan dynamic instruction count across LMUL.
//!
//! This is the register-pressure experiment: at LMUL=8 only three aligned
//! data register groups exist, the kernel spills, and small inputs pay a
//! fixed spill-frame cost that large inputs amortize.

use scanvec_bench::{experiments, print_table, sweep_sizes, PAPER_SIZES};

/// Paper's Table 5 (LMUL = 1, 2, 4, 8). The published LMUL=2 column is a
/// known erratum — it reprints Table 4's *baseline* column (1124, 11024,
/// …); Table 6's ratios imply the real LMUL=2 counts ≈ LMUL=1 / 1.74.
const PAPER: [[u64; 4]; 5] = [
    [331, 1124, 145, 2090],
    [2639, 11024, 887, 2668],
    [25693, 110024, 8377, 9284],
    [256289, 1100024, 82907, 74650],
    [2562539, 11000024, 828205, 728586],
];

fn main() {
    let sizes = sweep_sizes();
    let rows: Vec<Vec<String>> = experiments::table5(&sizes)
        .iter()
        .map(|&(n, c)| {
            let idx = PAPER_SIZES.iter().position(|&s| s == n).unwrap();
            vec![
                n.to_string(),
                c[0].to_string(),
                c[1].to_string(),
                c[2].to_string(),
                c[3].to_string(),
                PAPER[idx][0].to_string(),
                format!("{}*", PAPER[idx][1]),
                PAPER[idx][2].to_string(),
                PAPER[idx][3].to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 5 — seg_plus_scan across LMUL (dynamic instructions, VLEN=1024)",
        &[
            "N",
            "m1",
            "m2",
            "m4",
            "m8",
            "paper m1",
            "paper m2*",
            "paper m4",
            "paper m8",
        ],
        &rows,
    );
    println!("\n(*) The paper's LMUL=2 column is an erratum: it reprints Table 4's");
    println!("baseline column. Table 6's published ratios (~0.87) confirm the real");
    println!("LMUL=2 counts are ≈ LMUL=1 / 1.74 — which is what we measure.");
    println!("Reproduced shape: LMUL=8 is slower than LMUL=1 at N ≤ 10^3 (spill-frame");
    println!("overhead), crosses over by 10^4, and is the fastest setting at N ≥ 10^5.");
}
