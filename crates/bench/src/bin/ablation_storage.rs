//! Storage-chaos ablation: the sweep service's journal under a seeded
//! fault-type matrix, resumed at 1/2/4 workers — the rvv-scrub
//! acceptance contract run as an experiment.
//!
//! Phase 1 runs one sweep to completion on a clean disk and records the
//! reference `GET /sweeps/1` body (stable lines + FNV-1a digest) and the
//! fully-drained journal bytes. Phase 2 derives a [`StorageFault`] per
//! matrix cell ([`StorageFaultKind`] × repetitions, skews seeded like
//! the machine-fault plans), applies it to a copy of the journal —
//! record bitflips, length-prefix bitflips, mid-record tail truncation
//! (the `kill -9` artifact) — and resumes a server over the damage at
//! every worker count. The contract, every cell:
//!
//! * zero panics, zero refusals: salvage quarantines, never gives up;
//! * the re-served sweep body is **byte-identical** to the reference —
//!   lost done records re-run deterministically, lost submit records are
//!   reconstructed from their surviving dones.
//!
//! The lying-fsync leg runs on the in-memory [`ChaosBackend`] instead of
//! file surgery: a durable journal plus a second sweep written through
//! lying fsyncs, a seeded crash, then a resume — durable data must still
//! serve byte-identically, whatever the liar lost must replay cleanly.
//!
//! Writes `results/storage_chaos.json` (deterministic) and exits
//! nonzero on any contract violation.

use rvv_ckpt::{ChaosBackend, ChaosPlan, StorageBackend};
use rvv_fault::{StorageFault, StorageFaultKind};
use rvv_serve::http::request;
use rvv_serve::{ServeOptions, Server};
use scanvec_bench::inject_seed_arg;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default matrix seed (any seed must satisfy the same contract).
const DEFAULT_SEED: u64 = 0x5c7b_fa11_2026_0808;
/// Cells per fault kind.
const REPS: u64 = 3;
/// Worker counts every damaged journal is resumed at.
const WORKERS: [usize; 3] = [1, 2, 4];

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("rvv-ablation-storage-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).expect("tmpdir");
    d
}

/// The reference sweep: ten small mixed-workload specs.
fn sweep_body() -> String {
    let workloads = ["p_add", "plus_scan", "seg_scan", "radix_sort"];
    (0..10u64)
        .map(|i| {
            format!(
                "{} n={} vlen={} lmul=m{} seed={i}\n",
                workloads[(i % 4) as usize],
                40 + i * 17,
                if i % 2 == 0 { 128 } else { 256 },
                1 << (i % 3),
            )
        })
        .collect()
}

fn submit(addr: &str, body: &str) -> (u16, String) {
    request(addr, "POST", "/sweeps", body).expect("submit")
}

fn wait_sweep(addr: &str, sweep: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) =
            request(addr, "GET", &format!("/sweeps/{sweep}"), "").expect("poll sweep");
        assert_eq!(status, 200, "{body}");
        if body.starts_with("complete") {
            return body;
        }
        assert!(Instant::now() < deadline, "sweep {sweep} never completed");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// `(offset, size)` of each record frame, header first.
fn record_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pos = 0;
    while pos + 12 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        spans.push((pos, 12 + len));
        pos += 12 + len;
    }
    assert_eq!(pos, bytes.len(), "clean journal parses into whole records");
    spans
}

/// Apply one derived fault to a copy of the clean journal. The skews
/// pick a *data* record (never the header) and a byte inside it.
fn damage(clean: &[u8], fault: &StorageFault) -> Vec<u8> {
    let spans = record_spans(clean);
    let data = &spans[1..]; // never the header: that damage is Fatal by design
    let (start, size) = data[(fault.record_skew % data.len() as u64) as usize];
    let mut bytes = clean.to_vec();
    match fault.kind {
        StorageFaultKind::BitflipRecord => {
            // One bit somewhere in the record's payload.
            let at = start + 12 + (fault.byte_skew % (size as u64 - 12)) as usize;
            bytes[at] ^= 1 << (fault.byte_skew % 8);
        }
        StorageFaultKind::BitflipLength => {
            // One bit in the length prefix: the frame now claims a
            // different extent and the reader must resync by scanning.
            let at = start + (fault.byte_skew % 4) as usize;
            bytes[at] ^= 1 << (fault.byte_skew % 8);
        }
        StorageFaultKind::TornTail => {
            // Truncate mid-way through the last record — the on-disk
            // artifact of a kill between append and fsync.
            let (last, lsize) = *spans.last().unwrap();
            bytes.truncate(last + 1 + (fault.byte_skew % (lsize as u64 - 1)) as usize);
        }
        StorageFaultKind::LyingFsync => unreachable!("runs on the chaos backend"),
    }
    bytes
}

/// Resume a server over `journal` at `threads` workers and return the
/// sweep-1 body plus the salvaged-record count from `/stats`.
fn resume_and_serve(dir: &Path, journal: &[u8], threads: usize) -> (String, u64) {
    fs::write(dir.join("q.journal"), journal).expect("write damaged journal");
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeOptions {
            journal: Some(dir.join("q.journal")),
            resume: true,
            threads,
            ..ServeOptions::default()
        },
    )
    .expect("resume over damaged journal");
    let addr = server.addr.to_string();
    let body = wait_sweep(&addr, 1);
    let (_, stats) = request(&addr, "GET", "/stats", "").expect("stats");
    let salvaged = stats
        .lines()
        .find_map(|l| l.strip_prefix("salvaged_records="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    server.shutdown().expect("graceful shutdown");
    (body, salvaged)
}

/// The lying-fsync leg: a durable reference journal on the chaos
/// backend, a second sweep journaled through lying fsyncs, a seeded
/// crash, then a resume. Returns whether the durable sweep survived
/// byte-identically.
fn lying_fsync_cell(clean: &[u8], reference: &str, fault: &StorageFault, seed: u64) -> bool {
    let chaos = Arc::new(ChaosBackend::new(ChaosPlan {
        seed: seed ^ fault.byte_skew,
        drop_fsync_period: Some(2 + fault.record_skew % 3),
        torn_crash: true,
        ..ChaosPlan::quiet()
    }));
    let path = Path::new("/j/q.journal");
    chaos.install(path, clean);
    let storage: Arc<dyn StorageBackend> = Arc::clone(&chaos) as _;
    let opts = |threads| ServeOptions {
        journal: Some(path.to_path_buf()),
        storage: Some(Arc::clone(&storage)),
        resume: true,
        threads,
        ..ServeOptions::default()
    };
    {
        let server = Server::spawn("127.0.0.1:0", opts(2)).expect("resume on chaos backend");
        let addr = server.addr.to_string();
        assert_eq!(wait_sweep(&addr, 1), reference, "durable sweep replay");
        let (status, _) = submit(&addr, "p_add n=32 seed=7\nplus_scan n=48 seed=8\n");
        assert_eq!(status, 202);
        wait_sweep(&addr, 2);
        let _ = server.shutdown(); // the final sync may honestly fail
    }
    chaos.crash();
    // Whatever the lying fsyncs lost, the resume must not panic and the
    // durable sweep must still serve byte-identically.
    let server = Server::spawn("127.0.0.1:0", opts(2)).expect("post-crash resume");
    let addr = server.addr.to_string();
    let survived = wait_sweep(&addr, 1) == reference;
    // Sweep 2 either replays/re-runs to completion or was never durable.
    let (status, body) = request(&addr, "GET", "/sweeps/2", "").expect("sweep 2");
    if status == 200 {
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut body = body;
        while !body.starts_with("complete") {
            assert!(Instant::now() < deadline, "sweep 2 never completed");
            std::thread::sleep(Duration::from_millis(5));
            body = request(&addr, "GET", "/sweeps/2", "").expect("sweep 2").1;
        }
    }
    server.shutdown().expect("graceful shutdown");
    survived
}

fn main() {
    let seed = inject_seed_arg().unwrap_or(DEFAULT_SEED);
    println!("storage-chaos ablation: seed={seed:#x}, {REPS} cells/kind, workers {WORKERS:?}");

    // Phase 1: the clean reference run.
    let dir = tmpdir("reference");
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeOptions {
            journal: Some(dir.join("q.journal")),
            threads: 2,
            ..ServeOptions::default()
        },
    )
    .expect("reference server");
    let addr = server.addr.to_string();
    let (status, reply) = submit(&addr, &sweep_body());
    assert_eq!(status, 202, "{reply}");
    let reference = wait_sweep(&addr, 1);
    server.shutdown().expect("reference shutdown");
    let clean = fs::read(dir.join("q.journal")).expect("clean journal");
    println!(
        "  reference: {} records, {}",
        record_spans(&clean).len(),
        reference.lines().nth(1).unwrap_or("")
    );

    // Phase 2: the fault matrix.
    let mut cells = 0u64;
    let mut salvaged_total = 0u64;
    let mut diverged: Vec<String> = Vec::new();
    for (k, &kind) in StorageFaultKind::ALL.iter().enumerate() {
        for rep in 0..REPS {
            let derived = StorageFault::derive(seed, k as u64 * REPS + rep);
            let fault = StorageFault { kind, ..derived };
            cells += 1;
            if kind == StorageFaultKind::LyingFsync {
                let ok = lying_fsync_cell(&clean, &reference, &fault, seed);
                println!(
                    "  {fault}: durable sweep {}",
                    if ok { "identical" } else { "DIVERGED" }
                );
                if !ok {
                    diverged.push(fault.to_string());
                }
                continue;
            }
            let damaged = damage(&clean, &fault);
            for threads in WORKERS {
                let cell_dir = tmpdir(&format!("{kind}-{rep}-t{threads}"));
                let (body, salvaged) = resume_and_serve(&cell_dir, &damaged, threads);
                salvaged_total += salvaged;
                if body != reference {
                    diverged.push(format!("{fault} threads={threads}"));
                }
                let _ = fs::remove_dir_all(&cell_dir);
            }
            println!("  {fault}: resumed at {WORKERS:?} workers");
        }
    }
    let _ = fs::remove_dir_all(&dir);

    fs::create_dir_all("results").expect("results dir");
    let json = format!(
        concat!(
            "{{\n",
            "  \"seed\": \"{:#x}\",\n",
            "  \"cells\": {},\n",
            "  \"reps_per_kind\": {},\n",
            "  \"workers\": {:?},\n",
            "  \"kinds\": [\"bitflip-record\", \"bitflip-length\", \"torn-tail\", \"lying-fsync\"],\n",
            "  \"salvaged_records\": {},\n",
            "  \"panics\": 0,\n",
            "  \"diverged\": {},\n",
            "  \"identical\": {}\n",
            "}}\n"
        ),
        seed,
        cells,
        REPS,
        WORKERS,
        salvaged_total,
        diverged.len(),
        diverged.is_empty()
    );
    rvv_ckpt::write_atomic("results/storage_chaos.json", json).expect("write storage_chaos.json");

    println!(
        "\n{cells} cells, {salvaged_total} records salvaged, 0 panics -> results/storage_chaos.json"
    );
    if diverged.is_empty() {
        println!("post-salvage digests identical at {WORKERS:?} workers in every cell");
    } else {
        eprintln!("ERROR: post-salvage digests diverged in: {diverged:?}");
        std::process::exit(1);
    }
}
