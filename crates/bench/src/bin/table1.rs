//! Table 1: split radix sort (scan vector model on RVV) vs scalar
//! quicksort, dynamic instruction counts on the simulated machine.

use scanvec_bench::{experiments, fmt_speedup, print_table, sweep_sizes, PAPER_SIZES};

/// Paper's Table 1 counts (split_radix_sort, qsort).
const PAPER: [(u64, u64); 5] = [
    (23_988, 17_158),
    (94_842, 277_480),
    (803_690, 3_470_344),
    (19_603_490, 43_004_753),
    (195_102_988, 511_107_188),
];

fn main() {
    let sizes = sweep_sizes();
    let rows: Vec<Vec<String>> = experiments::table1(&sizes)
        .iter()
        .map(|p| {
            let idx = PAPER_SIZES.iter().position(|&s| s == p.n).unwrap();
            vec![
                p.n.to_string(),
                p.ours.to_string(),
                p.baseline.to_string(),
                fmt_speedup(p.baseline, p.ours),
                PAPER[idx].0.to_string(),
                PAPER[idx].1.to_string(),
                fmt_speedup(PAPER[idx].1, PAPER[idx].0),
            ]
        })
        .collect();
    print_table(
        "Table 1 — split radix sort vs qsort (dynamic instructions, VLEN=1024, LMUL=1)",
        &[
            "N",
            "split_radix_sort",
            "qsort",
            "speedup",
            "paper radix",
            "paper qsort",
            "paper speedup",
        ],
        &rows,
    );
    println!("\nNote: the paper's qsort is glibc's (mergesort + comparator calls, ~511");
    println!("instr/elem at 10^6); ours is a lean EDSL quicksort (~100 instr/elem), so");
    println!("our baseline is stronger and speedups conservative. Shape reproduced:");
    println!("qsort wins at N=100; the radix sort pulls ahead as N grows.");
}
