//! Table 2: elementwise `p_add` vs sequential baseline.

use scanvec_bench::{experiments, fmt_speedup, print_table, sweep_sizes, PAPER_SIZES};

/// Paper's Table 2 counts (p_add, baseline).
const PAPER: [(u64, u64); 5] = [
    (66, 632),
    (297, 6002),
    (2826, 60001),
    (28134, 600001),
    (281259, 6000001),
];

fn main() {
    let sizes = sweep_sizes();
    let rows: Vec<Vec<String>> = experiments::table2(&sizes)
        .iter()
        .map(|p| {
            let idx = PAPER_SIZES.iter().position(|&s| s == p.n).unwrap();
            vec![
                p.n.to_string(),
                p.ours.to_string(),
                p.baseline.to_string(),
                fmt_speedup(p.baseline, p.ours),
                PAPER[idx].0.to_string(),
                PAPER[idx].1.to_string(),
                fmt_speedup(PAPER[idx].1, PAPER[idx].0),
            ]
        })
        .collect();
    print_table(
        "Table 2 — p_add vs sequential baseline (dynamic instructions, VLEN=1024, LMUL=1)",
        &[
            "N",
            "p_add",
            "baseline",
            "speedup",
            "paper p_add",
            "paper base",
            "paper speedup",
        ],
        &rows,
    );
}
