//! Host throughput of the two run loops: wall-clock ns per simulated
//! instruction for the legacy single-step interpreter vs the pre-decoded
//! execution-plan engine, measured in the same process on the same
//! workloads. Writes `results/host_throughput.json` and prints a table.
//!
//! Run: `cargo run --release --bin host_throughput [--max-n N] [--reps R]`
//! (`--max-n 10_000`-ish keeps it fast enough for a CI smoke job).

use scanvec::env::{ExecEngine, ScanEnv};
use scanvec::primitives::{plus_scan, seg_plus_scan};
use scanvec_algos::split_radix_sort;
use scanvec_bench::{paper_env, print_table, random_head_flags};
use std::time::Instant;

/// One engine's numbers on one workload.
#[derive(Clone, Copy)]
struct Sample {
    retired: u64,
    secs: f64,
}

impl Sample {
    fn ns_per_instr(&self) -> f64 {
        self.secs * 1e9 / self.retired as f64
    }
    fn instrs_per_sec(&self) -> f64 {
        self.retired as f64 / self.secs
    }
}

/// A named workload: stages its data into a fresh environment and runs.
type Workload<'a> = (&'a str, Box<dyn Fn(&mut ScanEnv)>);

fn arg(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == flag {
            return w[1]
                .parse()
                .unwrap_or_else(|_| panic!("{flag} takes an integer"));
        }
    }
    default
}

/// Run `work` under `engine` `reps` times on fresh environments; keep the
/// fastest repetition (least scheduler noise). The kernel cache inside each
/// environment is cold on the first launch and warm within the workload —
/// the same shape either engine sees in the experiment harness.
fn measure(engine: ExecEngine, reps: usize, work: &dyn Fn(&mut ScanEnv)) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..reps {
        let mut env = paper_env();
        env.set_engine(engine);
        let before = env.retired();
        let t = Instant::now();
        work(&mut env);
        let secs = t.elapsed().as_secs_f64();
        let retired = env.retired() - before;
        if best.is_none_or(|b| secs < b.secs) {
            best = Some(Sample { retired, secs });
        }
    }
    best.expect("at least one rep")
}

fn main() {
    let n = arg("--max-n", 100_000);
    let reps = arg("--reps", 3);
    let data: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    let flags: Vec<u32> = random_head_flags(n, 42);

    let workloads: Vec<Workload> = vec![
        (
            "scan",
            Box::new({
                let data = data.clone();
                move |env: &mut ScanEnv| {
                    let v = env.from_u32(&data).unwrap();
                    plus_scan(env, &v).unwrap();
                }
            }),
        ),
        (
            "seg_scan",
            Box::new({
                let data = data.clone();
                let flags = flags.clone();
                move |env: &mut ScanEnv| {
                    let v = env.from_u32(&data).unwrap();
                    let f = env.from_u32(&flags).unwrap();
                    seg_plus_scan(env, &v, &f).unwrap();
                }
            }),
        ),
        (
            "radix",
            Box::new({
                let data = data.clone();
                move |env: &mut ScanEnv| {
                    // 8 bits of key: enough passes to be dominated by kernel
                    // execution, small enough to keep CI smoke runs quick.
                    let v = env.from_u32(&data).unwrap();
                    split_radix_sort(env, &v, 8).unwrap();
                }
            }),
        ),
    ];

    let mut rows = Vec::new();
    let mut json_items = Vec::new();
    for (name, work) in &workloads {
        let legacy = measure(ExecEngine::Legacy, reps, work.as_ref());
        let plan = measure(ExecEngine::Plan, reps, work.as_ref());
        assert_eq!(
            legacy.retired, plan.retired,
            "{name}: engines retired different instruction counts"
        );
        let speedup = plan.instrs_per_sec() / legacy.instrs_per_sec();
        rows.push(vec![
            name.to_string(),
            legacy.retired.to_string(),
            format!("{:.1}", legacy.ns_per_instr()),
            format!("{:.1}", plan.ns_per_instr()),
            format!("{:.1}M", legacy.instrs_per_sec() / 1e6),
            format!("{:.1}M", plan.instrs_per_sec() / 1e6),
            format!("{speedup:.2}x"),
        ]);
        json_items.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"retired\": {},\n",
                "     \"legacy\": {{\"secs\": {:.6}, \"ns_per_instr\": {:.3}, \"instrs_per_sec\": {:.0}}},\n",
                "     \"plan\": {{\"secs\": {:.6}, \"ns_per_instr\": {:.3}, \"instrs_per_sec\": {:.0}}},\n",
                "     \"speedup\": {:.3}}}"
            ),
            name,
            legacy.retired,
            legacy.secs,
            legacy.ns_per_instr(),
            legacy.instrs_per_sec(),
            plan.secs,
            plan.ns_per_instr(),
            plan.instrs_per_sec(),
            speedup,
        ));
    }

    print_table(
        &format!("Host throughput, N = {n} (best of {reps})"),
        &[
            "workload",
            "retired",
            "legacy ns/instr",
            "plan ns/instr",
            "legacy instrs/s",
            "plan instrs/s",
            "speedup",
        ],
        &rows,
    );

    let json = format!(
        "{{\n  \"n\": {n},\n  \"reps\": {reps},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        json_items.join(",\n")
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/host_throughput.json", json).expect("write json");
    println!("\n-> results/host_throughput.json");
}
