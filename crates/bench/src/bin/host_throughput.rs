//! Host throughput of the three run loops: wall-clock ns per simulated
//! instruction for the legacy single-step interpreter, the pre-decoded
//! execution-plan engine, and the fused superinstruction tier, measured in
//! the same process on the same workloads. Writes
//! `results/host_throughput.json` and prints a table.
//!
//! Run: `cargo run --release --bin host_throughput [--max-n N] [--reps R]
//! [--threads T]`. Every `(workload, engine, rep)` is an `rvv-batch` job;
//! all jobs share one plan registry, so every repetition measures the
//! steady state (cached plans) for both engines — kernel compilation is
//! paid once, by whichever job runs first.

use rvv_batch::{BatchJob, BatchRunner};
use scanvec::primitives::{plus_scan, seg_plus_scan};
use scanvec::ScanResult;
use scanvec::{Engine, EnvConfig, ExecEngine, ScanEnv};
use scanvec_algos::split_radix_sort;
use scanvec_bench::{print_table, random_head_flags, threads_arg};
use std::sync::Arc;

/// One engine's numbers on one workload.
#[derive(Clone, Copy)]
struct Sample {
    retired: u64,
    secs: f64,
}

impl Sample {
    fn ns_per_instr(&self) -> f64 {
        self.secs * 1e9 / self.retired as f64
    }
    fn instrs_per_sec(&self) -> f64 {
        self.retired as f64 / self.secs
    }
}

fn arg(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == flag {
            return w[1]
                .parse()
                .unwrap_or_else(|_| panic!("{flag} takes an integer"));
        }
    }
    default
}

fn main() {
    let n = arg("--max-n", 100_000);
    let reps = arg("--reps", 3);
    let data: Arc<Vec<u32>> = Arc::new(
        (0..n as u32)
            .map(|i| i.wrapping_mul(2_654_435_761))
            .collect(),
    );
    let flags: Arc<Vec<u32>> = Arc::new(random_head_flags(n, 42));

    type Work = Arc<dyn Fn(&mut ScanEnv) -> ScanResult<()> + Send + Sync>;
    let workloads: Vec<(&str, Work)> = vec![
        ("scan", {
            let data = Arc::clone(&data);
            Arc::new(move |env: &mut ScanEnv| {
                let v = env.from_u32(&data)?;
                plus_scan(env, &v)?;
                Ok(())
            })
        }),
        ("seg_scan", {
            let data = Arc::clone(&data);
            let flags = Arc::clone(&flags);
            Arc::new(move |env: &mut ScanEnv| {
                let v = env.from_u32(&data)?;
                let f = env.from_u32(&flags)?;
                seg_plus_scan(env, &v, &f)?;
                Ok(())
            })
        }),
        ("radix", {
            let data = Arc::clone(&data);
            Arc::new(move |env: &mut ScanEnv| {
                // 8 bits of key: enough passes to be dominated by kernel
                // execution, small enough to keep CI smoke runs quick.
                let v = env.from_u32(&data)?;
                split_radix_sort(env, &v, 8)?;
                Ok(())
            })
        }),
    ];

    // One job per (workload, engine, rep); job wall clock is the sample.
    // Each (workload, engine) gets one extra *costed* rep after its timing
    // reps: the cost model rides the trace-sink path, so it must never be
    // attached to the jobs whose wall clocks we report.
    let cost = scanvec_bench::cost_preset_arg().unwrap_or_else(rvv_batch::CostModel::ara_like);
    let engines = [
        ("legacy", ExecEngine::Legacy),
        ("plan", ExecEngine::Plan),
        ("fused", ExecEngine::Fused),
    ];
    let mut jobs: Vec<BatchJob<()>> = Vec::new();
    for (wname, work) in &workloads {
        for (ename, exec) in engines {
            for rep in 0..reps {
                let work = Arc::clone(work);
                jobs.push(
                    BatchJob::new(
                        format!("{wname}/{ename}/rep{rep}"),
                        EnvConfig::paper_default(),
                        move |env: &mut ScanEnv| {
                            env.set_exec_engine(exec);
                            work(env)
                        },
                    )
                    .weight(n as u64),
                );
            }
            let work = Arc::clone(work);
            jobs.push(
                BatchJob::new(
                    format!("{wname}/{ename}/cycles"),
                    EnvConfig::paper_default(),
                    move |env: &mut ScanEnv| {
                        env.set_exec_engine(exec);
                        work(env)
                    },
                )
                .costed(cost.clone())
                .weight(n as u64),
            );
        }
    }
    // A deliberately plain engine: the cost model stays per-job (`costed`
    // reps only) so timing reps never carry a trace sink.
    let engine = Arc::new(Engine::new());
    let result = BatchRunner::with_engine(threads_arg(), engine).run(jobs);
    assert!(result.all_ok(), "throughput job failed");

    // Best-of-reps per (workload, engine), in job order; each engine's
    // reps are followed by its single costed rep carrying the cycles.
    let mut it = result.reports.iter();
    let mut best = |what: &str| -> (Sample, u64) {
        let sample = (0..reps)
            .map(|_| {
                let r = it.next().unwrap_or_else(|| panic!("missing {what} rep"));
                Sample {
                    retired: r.retired,
                    secs: r.wall.as_secs_f64(),
                }
            })
            .min_by(|a, b| a.secs.total_cmp(&b.secs))
            .expect("at least one rep");
        let costed = it.next().unwrap_or_else(|| panic!("missing {what} cycles"));
        let cycles = costed.cycles.as_ref().expect("costed rep").total();
        (sample, cycles)
    };

    let mut rows = Vec::new();
    let mut json_items = Vec::new();
    for (name, _) in &workloads {
        let (legacy, legacy_cycles) = best(name);
        let (plan, plan_cycles) = best(name);
        let (fused, fused_cycles) = best(name);
        assert_eq!(
            legacy.retired, plan.retired,
            "{name}: engines retired different instruction counts"
        );
        assert_eq!(
            legacy.retired, fused.retired,
            "{name}: fused tier retired a different instruction count"
        );
        // The estimate is a pure function of the retire stream, so every
        // engine must model the exact same cycle total.
        assert_eq!(
            legacy_cycles, plan_cycles,
            "{name}: engines disagree on modeled cycles"
        );
        assert_eq!(
            legacy_cycles, fused_cycles,
            "{name}: fused tier disagrees on modeled cycles"
        );
        let speedup = plan.instrs_per_sec() / legacy.instrs_per_sec();
        let fused_speedup = fused.instrs_per_sec() / plan.instrs_per_sec();
        rows.push(vec![
            name.to_string(),
            legacy.retired.to_string(),
            legacy_cycles.to_string(),
            format!("{:.1}", legacy.ns_per_instr()),
            format!("{:.1}", plan.ns_per_instr()),
            format!("{:.1}", fused.ns_per_instr()),
            format!("{:.1}M", legacy.instrs_per_sec() / 1e6),
            format!("{:.1}M", plan.instrs_per_sec() / 1e6),
            format!("{:.1}M", fused.instrs_per_sec() / 1e6),
            format!("{speedup:.2}x"),
            format!("{fused_speedup:.2}x"),
        ]);
        let engine_json = |s: &Sample| {
            format!(
                "{{\"secs\": {:.6}, \"ns_per_instr\": {:.3}, \"instrs_per_sec\": {:.0}, \"cycles_per_sec\": {:.0}}}",
                s.secs,
                s.ns_per_instr(),
                s.instrs_per_sec(),
                legacy_cycles as f64 / s.secs,
            )
        };
        json_items.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"retired\": {}, \"cycles\": {},\n",
                "     \"legacy\": {},\n",
                "     \"plan\": {},\n",
                "     \"fused\": {},\n",
                "     \"speedup\": {:.3}, \"fused_speedup\": {:.3}}}"
            ),
            name,
            legacy.retired,
            legacy_cycles,
            engine_json(&legacy),
            engine_json(&plan),
            engine_json(&fused),
            speedup,
            fused_speedup,
        ));
    }

    print_table(
        &format!(
            "Host throughput, N = {n} (best of {reps}; cycles: {})",
            cost.name()
        ),
        &[
            "workload",
            "retired",
            "cycles",
            "legacy ns/instr",
            "plan ns/instr",
            "fused ns/instr",
            "legacy instrs/s",
            "plan instrs/s",
            "fused instrs/s",
            "plan/legacy",
            "fused/plan",
        ],
        &rows,
    );

    let json = format!(
        "{{\n  \"n\": {n},\n  \"reps\": {reps},\n  \"cost_model\": \"{}\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        cost.name(),
        json_items.join(",\n")
    );
    std::fs::create_dir_all("results").expect("results dir");
    rvv_ckpt::write_atomic("results/host_throughput.json", json).expect("write json");
    println!("\n-> results/host_throughput.json");
}
