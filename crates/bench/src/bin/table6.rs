//! Table 6: (speedup over LMUL=1) / LMUL — how much of each register
//! grouping factor the segmented scan actually realizes.

use scanvec_bench::{experiments, fmt_ratio, print_table, sweep_sizes, PAPER_SIZES};

/// Paper's Table 6 ratios for LMUL = 2, 4, 8.
const PAPER: [[f64; 3]; 5] = [
    [0.7290748899, 0.5706896552, 0.01979665072],
    [0.8551523007, 0.7437993236, 0.1236413043],
    [0.8695931767, 0.7667721141, 0.3459311719],
    [0.8720338349, 0.772820751, 0.4291510382],
    [0.872330539, 0.7735219541, 0.4396425062],
];

fn main() {
    let sizes = sweep_sizes();
    let t5 = experiments::table5(&sizes);
    let rows: Vec<Vec<String>> = experiments::table6(&t5)
        .iter()
        .map(|&(n, r)| {
            let idx = PAPER_SIZES.iter().position(|&s| s == n).unwrap();
            vec![
                n.to_string(),
                fmt_ratio(r[0]),
                fmt_ratio(r[1]),
                fmt_ratio(r[2]),
                fmt_ratio(PAPER[idx][0]),
                fmt_ratio(PAPER[idx][1]),
                fmt_ratio(PAPER[idx][2]),
            ]
        })
        .collect();
    print_table(
        "Table 6 — (speedup over LMUL=1)/LMUL for seg_plus_scan (VLEN=1024)",
        &["N", "m2", "m4", "m8", "paper m2", "paper m4", "paper m8"],
        &rows,
    );
    println!("\nReproduced shape: the realized fraction of the LMUL factor decreases");
    println!("as LMUL grows (more register pressure), and collapses at LMUL=8 for");
    println!("small N where the spill frame dominates.");
}
