//! Figure 5: speedup relative to VLEN=128 for seg_plus_scan and p_add,
//! against the ideal vlen/128 line — elementwise work scales almost
//! ideally with vector length; scans do not.

use scanvec_bench::{experiments, fmt_ratio, print_table};

/// Paper's Figure 5 series, derived from its Table 7 counts.
const PAPER: [(f64, f64); 4] = [(1.0, 1.0), (1.586, 1.997), (2.627, 3.982), (4.477, 7.904)];

fn main() {
    let n = scanvec_bench::max_n_arg().min(10_000);
    let rows: Vec<Vec<String>> = experiments::figure5(n)
        .iter()
        .enumerate()
        .map(|(i, &(vlen, seg, padd, ideal))| {
            vec![
                vlen.to_string(),
                fmt_ratio(seg),
                fmt_ratio(padd),
                fmt_ratio(ideal),
                fmt_ratio(PAPER[i].0),
                fmt_ratio(PAPER[i].1),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 5 — speedup vs vlen=128 (N = {n}, LMUL=1)"),
        &[
            "vlen",
            "seg scan",
            "p_add",
            "ideal",
            "paper seg",
            "paper p_add",
        ],
        &rows,
    );
    println!("\nReproduced claim: p_add tracks the ideal vlen/128 line; the segmented");
    println!("scan falls short (the in-register ladder costs lg(vl) rounds per strip,");
    println!("so bigger strips do proportionally more work).");
}
