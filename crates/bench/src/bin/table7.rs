//! Table 7: instruction count over VLEN for seg_plus_scan and p_add at
//! N = 10^4 — the vector-length-agnostic scalability experiment.

use scanvec_bench::{experiments, print_table};

/// Paper's Table 7 counts at vlen = 128..1024: (seg_plus_scan, p_add).
const PAPER: [(u64, u64); 4] = [
    (115_039, 22_534),
    (72_539, 11_284),
    (43_789, 5_659),
    (25_693, 2_851),
];

fn main() {
    let n = scanvec_bench::max_n_arg().min(10_000);
    let rows: Vec<Vec<String>> = experiments::table7(n)
        .iter()
        .enumerate()
        .map(|(i, &(vlen, seg, padd))| {
            vec![
                vlen.to_string(),
                seg.to_string(),
                padd.to_string(),
                PAPER[i].0.to_string(),
                PAPER[i].1.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Table 7 — instruction count over VLEN (N = {n}, LMUL=1)"),
        &["vlen", "seg_plus_scan", "p_add", "paper seg", "paper p_add"],
        &rows,
    );
}
