//! Ablation: how sensitive is the Table 5 LMUL=8 anomaly to the compiler's
//! spill strategy? Compares the calibrated LLVM-14 profile (conservative
//! frame, zero-initialized) against an idealized compiler (minimal frame,
//! spill traffic only).
//!
//! Every `(profile, n, LMUL)` point and both instruction-level profiling
//! runs are independent `rvv-batch` jobs; `--threads <N>` fans them out,
//! with output identical at any worker count.

use rvv_asm::SpillProfile;
use rvv_isa::Lmul;
use scanvec::primitives::seg_plus_scan;
use scanvec::EnvConfig;
use scanvec::ScanEnv;
use scanvec_bench::{cost_preset_arg, experiments, print_table, sweep_sizes, threads_arg};

/// What one job of this ablation produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Out {
    /// A Table 5 point under some profile: count + result checksum.
    Seg { count: u64, checksum: u64 },
    /// A profiling run (the payload is the job report's trace profile).
    Traced,
}

fn profile_cfg(profile: SpillProfile, lmul: Lmul) -> EnvConfig {
    EnvConfig {
        lmul,
        spill_profile: profile,
        ..EnvConfig::paper_default()
    }
}

use std::sync::Arc;

fn main() {
    let sizes = sweep_sizes();
    let profiles = [
        ("llvm14", SpillProfile::llvm14()),
        ("ideal", SpillProfile::ideal()),
    ];
    let mut jobs = Vec::new();
    for (label, profile) in profiles {
        for &n in &sizes {
            for lmul in Lmul::ALL {
                jobs.push(
                    rvv_batch::BatchJob::new(
                        format!("{label}/m{}/n={n}", lmul.regs()),
                        profile_cfg(profile, lmul),
                        move |env: &mut ScanEnv| {
                            experiments::table5_point(env, n)
                                .map(|(count, checksum)| Out::Seg { count, checksum })
                        },
                    )
                    .weight(n as u64),
                );
            }
        }
    }
    // The instruction-level profiles: one small-N launch at each LMUL
    // endpoint under the spill detector, traced by the engine and costed
    // so the written reports price the spill traffic in cycles too.
    let cost = cost_preset_arg().unwrap_or_else(rvv_batch::CostModel::ara_like);
    const PROFILE_N: usize = 4096;
    for lmul in [Lmul::M1, Lmul::M8] {
        jobs.push(
            rvv_batch::BatchJob::new(
                format!("profile/m{}", lmul.regs()),
                EnvConfig::with_lmul(lmul),
                move |env: &mut ScanEnv| {
                    let data: Vec<u32> = (0..PROFILE_N as u32).map(|i| i % 1000).collect();
                    let flags: Vec<u32> = (0..PROFILE_N).map(|i| u32::from(i % 64 == 0)).collect();
                    let v = env.from_u32(&data)?;
                    let f = env.from_u32(&flags)?;
                    seg_plus_scan(env, &v, &f)?;
                    Ok(Out::Traced)
                },
            )
            .traced(true)
            .costed(cost.clone())
            .weight(PROFILE_N as u64),
        );
    }

    let result =
        rvv_batch::BatchRunner::with_engine(threads_arg(), Arc::new(rvv_batch::Engine::new()))
            .run(jobs);
    assert!(result.all_ok(), "ablation job failed");

    // Decode: profiles × sizes × LMULs, in job order, checking the
    // cross-LMUL result invariant per (profile, n).
    let mut it = result.reports.iter();
    let mut tables = Vec::new();
    for _ in profiles {
        let t: Vec<(usize, [u64; 4])> = sizes
            .iter()
            .map(|&n| {
                let mut counts = [0u64; 4];
                let mut reference: Option<u64> = None;
                for c in &mut counts {
                    match it.next().and_then(|r| r.output()) {
                        Some(&Out::Seg { count, checksum }) => {
                            *c = count;
                            match reference {
                                None => reference = Some(checksum),
                                Some(r) => {
                                    assert_eq!(checksum, r, "LMUL changed the result at n={n}")
                                }
                            }
                        }
                        other => panic!("expected a seg point, got {other:?}"),
                    }
                }
                (n, counts)
            })
            .collect();
        tables.push(t);
    }
    let (cal, ideal) = (&tables[0], &tables[1]);

    let rows: Vec<Vec<String>> = cal
        .iter()
        .zip(ideal)
        .map(|(&(n, c), &(_, i))| {
            vec![
                n.to_string(),
                c[0].to_string(),
                c[3].to_string(),
                i[3].to_string(),
                format!("{:.3}", c[0] as f64 / c[3] as f64),
                format!("{:.3}", i[0] as f64 / i[3] as f64),
            ]
        })
        .collect();
    print_table(
        "Ablation — spill cost profile for seg_plus_scan at LMUL=8 (VLEN=1024)",
        &[
            "N",
            "m1",
            "m8 (llvm14)",
            "m8 (ideal)",
            "m8 speedup (llvm14)",
            "m8 speedup (ideal)",
        ],
        &rows,
    );
    println!("\nThe small-N anomaly (m8 slower than m1) needs the conservative frame:");
    println!("with an ideal compiler the spill traffic alone is amortizable and LMUL=8");
    println!("wins much earlier. The large-N marginal cost is profile-independent.");

    // Where the anomaly lives, instruction by instruction: the traced
    // jobs' profiles, written as Chrome trace + text report.
    println!();
    std::fs::create_dir_all("results").expect("results dir");
    for (r, lmul) in it.zip([Lmul::M1, Lmul::M8]) {
        let p = r.profile.as_ref().expect("traced job carries a profile");
        let stem = format!("results/ablation_spill_m{}", lmul.regs());
        rvv_ckpt::write_atomic(format!("{stem}.json"), p.chrome_trace_json()).expect("write json");
        rvv_ckpt::write_atomic(format!("{stem}.txt"), p.text_report()).expect("write txt");
        println!(
            "profile m{}: {} retired, {} est. cycles ({}), {} vector spill ops ({} bytes) -> {stem}.json/.txt",
            lmul.regs(),
            p.total_retired(),
            p.cycles().expect("costed profile").total(),
            cost.name(),
            p.spill().vector_ops(),
            p.spill().vector_bytes,
        );
    }
}
