//! Ablation: how sensitive is the Table 5 LMUL=8 anomaly to the compiler's
//! spill strategy? Compares the calibrated LLVM-14 profile (conservative
//! frame, zero-initialized) against an idealized compiler (minimal frame,
//! spill traffic only).

use rvv_asm::SpillProfile;
use scanvec_bench::{experiments, print_table, sweep_sizes};

fn main() {
    let sizes = sweep_sizes();
    let cal = experiments::table5_with_profile(&sizes, SpillProfile::llvm14());
    let ideal = experiments::table5_with_profile(&sizes, SpillProfile::ideal());
    let rows: Vec<Vec<String>> = cal
        .iter()
        .zip(&ideal)
        .map(|(&(n, c), &(_, i))| {
            vec![
                n.to_string(),
                c[0].to_string(),
                c[3].to_string(),
                i[3].to_string(),
                format!("{:.3}", c[0] as f64 / c[3] as f64),
                format!("{:.3}", i[0] as f64 / i[3] as f64),
            ]
        })
        .collect();
    print_table(
        "Ablation — spill cost profile for seg_plus_scan at LMUL=8 (VLEN=1024)",
        &[
            "N",
            "m1",
            "m8 (llvm14)",
            "m8 (ideal)",
            "m8 speedup (llvm14)",
            "m8 speedup (ideal)",
        ],
        &rows,
    );
    println!("\nThe small-N anomaly (m8 slower than m1) needs the conservative frame:");
    println!("with an ideal compiler the spill traffic alone is amortizable and LMUL=8");
    println!("wins much earlier. The large-N marginal cost is profile-independent.");
}
