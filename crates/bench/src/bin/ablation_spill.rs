//! Ablation: how sensitive is the Table 5 LMUL=8 anomaly to the compiler's
//! spill strategy? Compares the calibrated LLVM-14 profile (conservative
//! frame, zero-initialized) against an idealized compiler (minimal frame,
//! spill traffic only).

use rvv_asm::SpillProfile;
use rvv_isa::Lmul;
use rvv_trace::TraceProfiler;
use scanvec::env::{EnvConfig, ScanEnv};
use scanvec::primitives::seg_plus_scan;
use scanvec_bench::{experiments, print_table, sweep_sizes};

/// Profile one seg_plus_scan launch and write the Chrome trace + text
/// report under `results/`.
fn emit_profile(lmul: Lmul, n: usize) {
    let mut env = ScanEnv::new(EnvConfig::with_lmul(lmul));
    env.attach_tracer(Box::new(TraceProfiler::new(env.stack_region())));
    let data: Vec<u32> = (0..n as u32).map(|i| i % 1000).collect();
    let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 64 == 0)).collect();
    let v = env.from_u32(&data).expect("alloc");
    let f = env.from_u32(&flags).expect("alloc");
    seg_plus_scan(&mut env, &v, &f).expect("seg_scan");
    let p = TraceProfiler::from_sink(env.detach_tracer().expect("attached")).expect("profiler");
    std::fs::create_dir_all("results").expect("results dir");
    let stem = format!("results/ablation_spill_m{}", lmul.regs());
    std::fs::write(format!("{stem}.json"), p.chrome_trace_json()).expect("write json");
    std::fs::write(format!("{stem}.txt"), p.text_report()).expect("write txt");
    println!(
        "profile m{}: {} retired, {} vector spill ops ({} bytes) -> {stem}.json/.txt",
        lmul.regs(),
        p.total_retired(),
        p.spill().vector_ops(),
        p.spill().vector_bytes,
    );
}

fn main() {
    let sizes = sweep_sizes();
    let cal = experiments::table5_with_profile(&sizes, SpillProfile::llvm14());
    let ideal = experiments::table5_with_profile(&sizes, SpillProfile::ideal());
    let rows: Vec<Vec<String>> = cal
        .iter()
        .zip(&ideal)
        .map(|(&(n, c), &(_, i))| {
            vec![
                n.to_string(),
                c[0].to_string(),
                c[3].to_string(),
                i[3].to_string(),
                format!("{:.3}", c[0] as f64 / c[3] as f64),
                format!("{:.3}", i[0] as f64 / i[3] as f64),
            ]
        })
        .collect();
    print_table(
        "Ablation — spill cost profile for seg_plus_scan at LMUL=8 (VLEN=1024)",
        &[
            "N",
            "m1",
            "m8 (llvm14)",
            "m8 (ideal)",
            "m8 speedup (llvm14)",
            "m8 speedup (ideal)",
        ],
        &rows,
    );
    println!("\nThe small-N anomaly (m8 slower than m1) needs the conservative frame:");
    println!("with an ideal compiler the spill traffic alone is amortizable and LMUL=8");
    println!("wins much earlier. The large-N marginal cost is profile-independent.");

    // Where the anomaly lives, instruction by instruction: profile one
    // small-N launch at each endpoint under the spill detector.
    println!();
    emit_profile(Lmul::M1, 4096);
    emit_profile(Lmul::M8, 4096);
}
