//! Table 4: segmented plus-scan vs sequential baseline.

use scanvec_bench::{experiments, fmt_speedup, print_table, sweep_sizes, PAPER_SIZES};

/// Paper's Table 4 counts (seg_plus_scan, baseline).
const PAPER: [(u64, u64); 5] = [
    (331, 1124),
    (2639, 11024),
    (25693, 110024),
    (256289, 1100024),
    (2562539, 11000024),
];

fn main() {
    let sizes = sweep_sizes();
    let rows: Vec<Vec<String>> = experiments::table4(&sizes)
        .iter()
        .map(|p| {
            let idx = PAPER_SIZES.iter().position(|&s| s == p.n).unwrap();
            vec![
                p.n.to_string(),
                p.ours.to_string(),
                p.baseline.to_string(),
                fmt_speedup(p.baseline, p.ours),
                PAPER[idx].0.to_string(),
                PAPER[idx].1.to_string(),
                fmt_speedup(PAPER[idx].1, PAPER[idx].0),
            ]
        })
        .collect();
    print_table(
        "Table 4 — seg_plus_scan vs sequential baseline (dynamic instructions, VLEN=1024, LMUL=1)",
        &[
            "N",
            "seg_plus_scan",
            "baseline",
            "speedup",
            "paper seg",
            "paper base",
            "paper speedup",
        ],
        &rows,
    );
}
