//! Run every table, figure, and ablation in sequence — regenerates the
//! full evaluation (`results/full_run.txt` in the repository was produced
//! by this). Accepts `--max-n` like the individual binaries.

use scanvec_bench::{experiments, fmt_ratio, fmt_speedup, print_table, sweep_sizes};

fn pairs_table(title: &str, rows: &[experiments::Pair]) {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                p.ours.to_string(),
                p.baseline.to_string(),
                fmt_speedup(p.baseline, p.ours),
            ]
        })
        .collect();
    print_table(
        title,
        &["N", "scan-vector-model", "baseline", "speedup"],
        &body,
    );
}

fn main() {
    let wall = std::time::Instant::now();
    let sizes = sweep_sizes();
    pairs_table(
        "Table 1 — split radix sort vs qsort",
        &experiments::table1(&sizes),
    );
    pairs_table("Table 2 — p_add", &experiments::table2(&sizes));
    pairs_table("Table 3 — plus_scan", &experiments::table3(&sizes));
    pairs_table("Table 4 — seg_plus_scan", &experiments::table4(&sizes));

    let t5 = experiments::table5(&sizes);
    let body: Vec<Vec<String>> = t5
        .iter()
        .map(|&(n, c)| {
            vec![
                n.to_string(),
                c[0].to_string(),
                c[1].to_string(),
                c[2].to_string(),
                c[3].to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 5 — seg_plus_scan across LMUL",
        &["N", "m1", "m2", "m4", "m8"],
        &body,
    );

    let body: Vec<Vec<String>> = experiments::table6(&t5)
        .iter()
        .map(|&(n, r)| {
            vec![
                n.to_string(),
                fmt_ratio(r[0]),
                fmt_ratio(r[1]),
                fmt_ratio(r[2]),
            ]
        })
        .collect();
    print_table(
        "Table 6 — (speedup/LMUL) ratios",
        &["N", "m2", "m4", "m8"],
        &body,
    );

    let n7 = 10_000.min(scanvec_bench::max_n_arg());
    let body: Vec<Vec<String>> = experiments::table7(n7)
        .iter()
        .map(|&(vlen, seg, padd)| vec![vlen.to_string(), seg.to_string(), padd.to_string()])
        .collect();
    print_table(
        "Table 7 — VLEN sweep",
        &["vlen", "seg_plus_scan", "p_add"],
        &body,
    );

    let body: Vec<Vec<String>> = experiments::figure5(n7)
        .iter()
        .map(|&(vlen, seg, padd, ideal)| {
            vec![
                vlen.to_string(),
                fmt_ratio(seg),
                fmt_ratio(padd),
                fmt_ratio(ideal),
            ]
        })
        .collect();
    print_table(
        "Figure 5 — speedup vs vlen=128",
        &["vlen", "seg", "p_add", "ideal"],
        &body,
    );

    let body: Vec<Vec<String>> = experiments::scan_lmul_sweep(n7)
        .iter()
        .map(|&(l, ours, base)| vec![format!("m{l}"), ours.to_string(), fmt_speedup(base, ours)])
        .collect();
    print_table(
        "Unsegmented scan across LMUL (abstract claim)",
        &["LMUL", "count", "speedup"],
        &body,
    );

    println!(
        "\ntotal host wall-clock: {:.1}s",
        wall.elapsed().as_secs_f64()
    );
}
