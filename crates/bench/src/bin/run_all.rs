//! Run every table, figure, and ablation in sequence — regenerates the
//! full evaluation (`results/full_run.txt` in the repository was produced
//! by this). Accepts `--max-n` like the individual binaries,
//! `--threads <N>` to run the sweep through the `rvv-batch` parallel
//! engine, and `--exec-engine <plan|legacy|fused>` to select the run-loop
//! tier for every job (the tiers are architecturally indistinguishable, so
//! every table and digest must be identical whichever is selected).
//!
//! With `--threads N > 1` the sweep runs **twice** — once serially as the
//! reference, once across N workers — and the two runs' stable digests
//! (per-point outputs, retired counts, merged counters; no timing) are
//! compared byte for byte. Any divergence is a determinism bug: the binary
//! reports it and exits nonzero. `results/parallel_sweep.json` records the
//! wall clocks and the speedup either way.
//!
//! Robustness flags:
//!
//! * `--inject-seed <S>` arms a deterministic [`FaultPlan`] on every sweep
//!   job (plan derived from `(S, job_index)`), plus a generous instruction
//!   watchdog — a chaos-hardened run of the full evaluation.
//! * `--keep-going` turns job failures from a fatal error into a degraded
//!   run: the sweep still completes every point, the failures are written
//!   to `results/failure_manifest.txt` (deterministic — byte-identical
//!   across thread counts and reruns), the tables are skipped, and the
//!   binary exits nonzero.
//!
//! Crash-safety flags (the checkpoint/recovery subsystem):
//!
//! * `--journal` runs the sweep under a write-ahead journal
//!   (`results/run_all.journal`): every completed point is persisted before
//!   the sweep moves on, and `results/parallel_sweep.json` switches to a
//!   deterministic variant (point counts and the batch stable digest, no
//!   wall clocks) so interrupted-and-resumed runs can be compared byte for
//!   byte against uninterrupted ones.
//! * `--resume` (with `--journal`) replays the journal's completed points
//!   and runs only the remainder.
//! * `--fsync-every <N>` sets the journal fsync granularity (default 1).
//! * `--crash-at <N>` aborts the process — `kill -9` semantics — after N
//!   points have been journaled by this process; `--crash-seed <S>`
//!   derives that ordinal deterministically via
//!   [`rvv_fault::CrashPoint::derive`]. Both exist for the recovery tests.

use rvv_batch::journal::{run_journaled, JournalOptions};
use rvv_batch::{BatchJob, BatchResult, BatchRunner, Engine};
use rvv_fault::{ArmedFaults, CrashPoint, FaultPlan};
use scanvec::HEAP_BASE;
use scanvec_bench::sweep::{decode_sweep, sweep_jobs, Measurement, SweepShape};
use scanvec_bench::{
    cost_preset_arg, exec_engine_arg, experiments, flag_arg, fmt_ratio, fmt_speedup,
    inject_seed_arg, num_arg, print_table, threads_arg,
};
use std::path::Path;
use std::sync::Arc;

/// Instruction watchdog for injected runs: far above the largest legit
/// sweep point (~2×10⁸ retired at n=10⁶), far below `DEFAULT_FUEL` — a
/// fault that turns a loop infinite burns 10⁹ instructions, not 4×10⁹.
/// Installed as the engine's default fuel budget, not per job.
const INJECT_WATCHDOG: u64 = 1_000_000_000;

/// Arm `FaultPlan::derive(seed, index)` on every job: guard regions on the
/// device heap plus the [`ArmedFaults`] hook, installed by a per-attempt
/// setup closure (the environment reset between jobs clears both). The
/// matching instruction watchdog is the engine's default fuel budget.
fn arm_injection(jobs: Vec<BatchJob<Measurement>>, seed: u64) -> Vec<BatchJob<Measurement>> {
    jobs.into_iter()
        .enumerate()
        .map(|(i, job)| {
            let plan = FaultPlan::derive(seed, i as u64);
            job.with_setup(move |env| {
                for r in plan.guard_ranges(HEAP_BASE) {
                    env.machine_mut().mem.add_guard(r);
                }
                env.attach_fault_hook(Box::new(ArmedFaults::new(&plan)));
            })
        })
        .collect()
}

fn pairs_table(title: &str, rows: &[experiments::Pair]) {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                p.ours.to_string(),
                p.baseline.to_string(),
                fmt_speedup(p.baseline, p.ours),
            ]
        })
        .collect();
    print_table(
        title,
        &["N", "scan-vector-model", "baseline", "speedup"],
        &body,
    );
}

fn write_sweep_json(
    threads: usize,
    jobs: usize,
    retired: u64,
    serial_secs: f64,
    parallel_secs: Option<f64>,
    identical: bool,
) {
    let (parallel, speedup) = match parallel_secs {
        Some(p) => (format!("{p:.6}"), format!("{:.3}", serial_secs / p)),
        None => ("null".to_string(), "null".to_string()),
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"threads\": {},\n",
            "  \"jobs\": {},\n",
            "  \"retired\": {},\n",
            "  \"serial_secs\": {:.6},\n",
            "  \"parallel_secs\": {},\n",
            "  \"speedup\": {},\n",
            "  \"identical\": {}\n",
            "}}\n"
        ),
        threads, jobs, retired, serial_secs, parallel, speedup, identical
    );
    std::fs::create_dir_all("results").expect("results dir");
    rvv_ckpt::write_atomic("results/parallel_sweep.json", json).expect("write parallel_sweep.json");
    println!("-> results/parallel_sweep.json");
}

/// The `--journal` variant of `results/parallel_sweep.json`: everything
/// wall-clock is dropped and the batch stable digest is recorded instead,
/// so the file is byte-identical between an uninterrupted run and a
/// crashed-then-resumed one — the crash-recovery tests and the CI smoke
/// job `cmp` exactly this file.
fn write_journal_sweep_json(threads: usize, result: &BatchResult<Measurement>) {
    let json = format!(
        concat!(
            "{{\n",
            "  \"threads\": {},\n",
            "  \"jobs\": {},\n",
            "  \"retired\": {},\n",
            "  \"stable_digest\": \"{:#018x}\"\n",
            "}}\n"
        ),
        threads,
        result.reports.len(),
        result.retired(),
        rvv_ckpt::fnv1a(result.stable_digest().as_bytes())
    );
    std::fs::create_dir_all("results").expect("results dir");
    rvv_ckpt::write_atomic("results/parallel_sweep.json", json).expect("write parallel_sweep.json");
    println!("-> results/parallel_sweep.json");
}

/// Format the degraded-run failure manifest (deterministic: job order,
/// stable outcome forms, attempt/poison bookkeeping — no timing).
fn failure_manifest(summary: &rvv_batch::DegradedSummary, inject_seed: Option<u64>) -> String {
    format!(
        "# run_all failure manifest\n# fault injection seed={}\n{summary}",
        match inject_seed {
            Some(s) => format!("{s:#x}"),
            None => "none".to_string(),
        }
    )
}

/// The `--journal` code path: one journaled run at the requested thread
/// count. There is no serial-reference double-run here — the determinism
/// gate in journal mode is crash/resume digest identity (an interrupted
/// and resumed sweep must reproduce the uninterrupted file byte for
/// byte), exercised by the crash-recovery tests and the CI smoke job.
fn journal_main(
    engine: Arc<Engine>,
    threads: usize,
    keep_going: bool,
    inject_seed: Option<u64>,
    shape: &SweepShape,
    jobs: Vec<BatchJob<Measurement>>,
) {
    let resume = flag_arg("--resume");
    let fsync_every = num_arg("--fsync-every").unwrap_or(1) as u32;
    // An explicit `--crash-at` ordinal wins; otherwise `--crash-seed`
    // derives one from the job count, the host-level analogue of
    // `FaultPlan::derive` for the chaos suite.
    let crash_after = num_arg("--crash-at").or_else(|| {
        num_arg("--crash-seed").map(|s| {
            let cp = CrashPoint::derive(s, jobs.len() as u64);
            println!("crash point derived: {cp}");
            cp.ordinal
        })
    });
    if let Some(n) = crash_after {
        println!("crash point armed: abort after {n} journaled point(s)");
    }
    let path = Path::new("results/run_all.journal");
    println!(
        "journal: {} ({})",
        path.display(),
        if resume { "resume" } else { "fresh" }
    );
    let result = run_journaled(
        &BatchRunner::with_engine(threads, engine),
        jobs,
        path,
        &JournalOptions {
            fsync_every,
            resume,
            crash_after,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("ERROR: journaled sweep failed: {e}");
        std::process::exit(1);
    });

    if let Some(summary) = result.degraded() {
        if !keep_going {
            eprintln!("ERROR: {summary}");
            eprintln!("(re-run with --keep-going for a failure manifest)");
            std::process::exit(1);
        }
        let manifest = failure_manifest(&summary, inject_seed);
        std::fs::create_dir_all("results").expect("results dir");
        rvv_ckpt::write_atomic("results/failure_manifest.txt", &manifest)
            .expect("write failure_manifest.txt");
        print!("{manifest}");
        println!("-> results/failure_manifest.txt (tables skipped)");
        write_journal_sweep_json(threads, &result);
        std::process::exit(2);
    }

    print_tables(shape, &result);
    println!(
        "\n{} jobs, {} instructions simulated, {} plan compiles, {} thread(s)",
        result.reports.len(),
        result.retired(),
        result.plan_compiles,
        result.threads,
    );
    if let Some(c) = &result.cycles {
        print!("modeled {c}");
    }
    write_journal_sweep_json(threads, &result);
}

fn main() {
    let threads = threads_arg();
    let keep_going = flag_arg("--keep-going");
    let inject_seed = inject_seed_arg();
    let cost = cost_preset_arg();
    let shape = SweepShape::from_args();
    let wall = std::time::Instant::now();

    // One engine for the whole evaluation — serial reference, parallel
    // sweep, and journal mode all share its plan registry and inherit its
    // policy defaults. With a cost preset the whole sweep is costed:
    // cycles fold into every stable line and the merged digest, so the
    // serial-vs-parallel comparison below (and the crash/resume comparison
    // in journal mode) gates the cycle metric's determinism too. With
    // fault injection armed, every job inherits the watchdog budget.
    let exec = exec_engine_arg();
    let engine = {
        let mut b = Engine::builder();
        if let Some(model) = &cost {
            b = b.cost_model(model.clone());
        }
        if inject_seed.is_some() {
            b = b.default_fuel_budget(INJECT_WATCHDOG);
        }
        // `--exec-engine` selects the run-loop tier for every sweep job
        // (sessions inherit the engine default, and `reset()` reverts to
        // it). All tiers are architecturally indistinguishable, so the
        // stable digest must not change — the CI parity job compares a
        // fused sweep's digest against a plan sweep's byte for byte.
        if let Some(exec) = exec {
            b = b.default_exec_engine(exec);
        }
        Arc::new(b.build())
    };

    let build_jobs = || {
        let jobs = sweep_jobs(&shape);
        match inject_seed {
            Some(seed) => arm_injection(jobs, seed),
            None => jobs,
        }
    };
    if let Some(seed) = inject_seed {
        println!("fault injection armed: seed={seed:#x}");
    }
    if let Some(model) = &cost {
        println!("cost model armed: {}", model.name());
    }
    if let Some(exec) = exec {
        println!("exec engine: {}", exec.name());
    }
    if flag_arg("--journal") {
        journal_main(
            engine,
            threads,
            keep_going,
            inject_seed,
            &shape,
            build_jobs(),
        );
        return;
    }

    // Serial reference run: job order on one thread.
    let serial = BatchRunner::with_engine(1, Arc::clone(&engine)).run(build_jobs());
    let serial_secs = serial.wall.as_secs_f64();

    // Parallel run of the *same* jobs — same shared engine, so every plan
    // compiled by the reference run is reused — then the byte-for-byte
    // comparison.
    let (result, parallel_secs, identical) = if threads > 1 {
        let parallel = BatchRunner::with_engine(threads, Arc::clone(&engine)).run(build_jobs());
        let identical = parallel.stable_digest() == serial.stable_digest();
        let secs = parallel.wall.as_secs_f64();
        (parallel, Some(secs), identical)
    } else {
        (serial, None, true)
    };

    // A degraded batch can't be folded into tables (`decode_sweep` demands
    // every point). With `--keep-going` the run still counts: write the
    // deterministic failure manifest and exit nonzero after the bookkeeping.
    if let Some(summary) = result.degraded() {
        if !keep_going {
            eprintln!("ERROR: {summary}");
            eprintln!("(re-run with --keep-going for a failure manifest)");
            std::process::exit(1);
        }
        let manifest = failure_manifest(&summary, inject_seed);
        std::fs::create_dir_all("results").expect("results dir");
        rvv_ckpt::write_atomic("results/failure_manifest.txt", &manifest)
            .expect("write failure_manifest.txt");
        print!("{manifest}");
        println!("-> results/failure_manifest.txt (tables skipped)");
        println!(
            "\n{} jobs, {} instructions simulated, {} plan compiles, {} thread(s)",
            result.reports.len(),
            result.retired(),
            result.plan_compiles,
            result.threads,
        );
        write_sweep_json(
            threads,
            result.reports.len(),
            result.retired(),
            serial_secs,
            parallel_secs,
            identical,
        );
        if !identical {
            eprintln!("ERROR: parallel sweep diverged from the serial reference");
        }
        std::process::exit(if identical { 2 } else { 1 });
    }

    print_tables(&shape, &result);

    println!(
        "\n{} jobs, {} instructions simulated, {} plan compiles, {} thread(s)",
        result.reports.len(),
        result.retired(),
        result.plan_compiles,
        result.threads,
    );
    if let Some(c) = &result.cycles {
        print!("modeled {c}");
    }
    if let Some(p) = parallel_secs {
        println!(
            "serial {serial_secs:.1}s, parallel {p:.1}s -> {:.2}x",
            serial_secs / p
        );
    }
    println!(
        "total host wall-clock: {:.1}s",
        wall.elapsed().as_secs_f64()
    );
    write_sweep_json(
        threads,
        result.reports.len(),
        result.retired(),
        serial_secs,
        parallel_secs,
        identical,
    );

    if !identical {
        eprintln!("ERROR: parallel sweep diverged from the serial reference");
        std::process::exit(1);
    }
}

/// Print every table and figure from a fully-successful sweep.
fn print_tables(shape: &SweepShape, result: &BatchResult<Measurement>) {
    let tables = decode_sweep(shape, &result.reports);
    pairs_table("Table 1 — split radix sort vs qsort", &tables.t1);
    pairs_table("Table 2 — p_add", &tables.t2);
    pairs_table("Table 3 — plus_scan", &tables.t3);
    pairs_table("Table 4 — seg_plus_scan", &tables.t4);

    let body: Vec<Vec<String>> = tables
        .t5
        .iter()
        .map(|&(n, c)| {
            vec![
                n.to_string(),
                c[0].to_string(),
                c[1].to_string(),
                c[2].to_string(),
                c[3].to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 5 — seg_plus_scan across LMUL",
        &["N", "m1", "m2", "m4", "m8"],
        &body,
    );

    let body: Vec<Vec<String>> = experiments::table6(&tables.t5)
        .iter()
        .map(|&(n, r)| {
            vec![
                n.to_string(),
                fmt_ratio(r[0]),
                fmt_ratio(r[1]),
                fmt_ratio(r[2]),
            ]
        })
        .collect();
    print_table(
        "Table 6 — (speedup/LMUL) ratios",
        &["N", "m2", "m4", "m8"],
        &body,
    );

    let body: Vec<Vec<String>> = tables
        .t7
        .iter()
        .map(|&(vlen, seg, padd)| vec![vlen.to_string(), seg.to_string(), padd.to_string()])
        .collect();
    print_table(
        "Table 7 — VLEN sweep",
        &["vlen", "seg_plus_scan", "p_add"],
        &body,
    );

    let body: Vec<Vec<String>> = experiments::figure5_from(tables.t7.clone())
        .iter()
        .map(|&(vlen, seg, padd, ideal)| {
            vec![
                vlen.to_string(),
                fmt_ratio(seg),
                fmt_ratio(padd),
                fmt_ratio(ideal),
            ]
        })
        .collect();
    print_table(
        "Figure 5 — speedup vs vlen=128",
        &["vlen", "seg", "p_add", "ideal"],
        &body,
    );

    let body: Vec<Vec<String>> = tables
        .scan_lmul
        .iter()
        .map(|&(l, ours, base)| vec![format!("m{l}"), ours.to_string(), fmt_speedup(base, ours)])
        .collect();
    print_table(
        "Unsegmented scan across LMUL (abstract claim)",
        &["LMUL", "count", "speedup"],
        &body,
    );
}
