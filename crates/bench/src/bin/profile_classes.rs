//! Per-class dynamic instruction breakdown for the segmented scan — shows
//! *where* the LMUL=8 instructions go (spill traffic lands in vector-mem;
//! the conservative frame initialization in scalar-mem/scalar-alu).

use rvv_isa::{InstrClass, Lmul};
use scanvec::primitives::seg_plus_scan;
use scanvec_bench::{env_with, print_table, random_head_flags, random_u32s};

fn main() {
    let n = scanvec_bench::max_n_arg().min(100_000);
    let data = random_u32s(n, 77);
    let flags = random_head_flags(n, 77);
    let mut rows = Vec::new();
    for lmul in Lmul::ALL {
        let mut e = env_with(1024, lmul);
        let v = e.from_u32(&data).expect("alloc");
        let f = e.from_u32(&flags).expect("alloc");
        let before = e.machine().counters.clone();
        seg_plus_scan(&mut e, &v, &f).expect("seg scan");
        let d = e.machine().counters.since(&before);
        let pct = |c: InstrClass| format!("{:.1}%", 100.0 * d.class(c) as f64 / d.total() as f64);
        rows.push(vec![
            format!("m{}", lmul.regs()),
            d.total().to_string(),
            pct(InstrClass::VectorAlu),
            pct(InstrClass::VectorPerm),
            pct(InstrClass::VectorMask),
            pct(InstrClass::VectorMem),
            pct(InstrClass::VectorCfg),
            pct(InstrClass::ScalarAlu),
            pct(InstrClass::ScalarMem),
            pct(InstrClass::ScalarCtrl),
        ]);
    }
    print_table(
        &format!("seg_plus_scan instruction-class mix (N = {n}, VLEN=1024)"),
        &[
            "LMUL", "total", "v-alu", "v-perm", "v-mask", "v-mem", "v-cfg", "s-alu", "s-mem",
            "s-ctrl",
        ],
        &rows,
    );
    println!("\nAt m1–m4 the mix is arithmetic/permutation-dominated; at m8 vector-mem");
    println!("(whole-register spill reloads/stores) and the scalar frame traffic");
    println!("appear — the paper's \"more register spilling\" observation, made");
    println!("visible by the class histogram.");
}
