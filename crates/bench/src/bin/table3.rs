//! Table 3: unsegmented plus-scan vs sequential baseline.

use scanvec_bench::{experiments, fmt_speedup, print_table, sweep_sizes, PAPER_SIZES};

/// Paper's Table 3 counts (plus_scan, baseline).
const PAPER: [(u64, u64); 5] = [
    (311, 626),
    (2670, 6026),
    (26281, 60026),
    (262531, 600026),
    (2625031, 6000026),
];

fn main() {
    let sizes = sweep_sizes();
    let rows: Vec<Vec<String>> = experiments::table3(&sizes)
        .iter()
        .map(|p| {
            let idx = PAPER_SIZES.iter().position(|&s| s == p.n).unwrap();
            vec![
                p.n.to_string(),
                p.ours.to_string(),
                p.baseline.to_string(),
                fmt_speedup(p.baseline, p.ours),
                PAPER[idx].0.to_string(),
                PAPER[idx].1.to_string(),
                fmt_speedup(PAPER[idx].1, PAPER[idx].0),
            ]
        })
        .collect();
    print_table(
        "Table 3 — plus_scan vs sequential baseline (dynamic instructions, VLEN=1024, LMUL=1)",
        &[
            "N",
            "plus_scan",
            "baseline",
            "speedup",
            "paper scan",
            "paper base",
            "paper speedup",
        ],
        &rows,
    );
    println!("\nNote: our generated scan ladder is tighter than the paper's LLVM-14");
    println!("codegen (~6 vs ~14 instructions per ladder step), so our speedups run");
    println!("higher than the paper's ~2.3x; the shape (scan ≫ baseline, flat in N)");
    println!("is the reproduced claim.");
}
