//! Disassemble every generated kernel at a given configuration — the
//! artifact reviewers can diff against the paper's listings.
//!
//! Usage: `cargo run -p scanvec-bench --bin dump_kernels [--lmul 8] [--vlen 1024]`

use rvv_asm::SpillProfile;
use rvv_isa::{Lmul, Sew, VAluOp};
use scanvec::kernels;
use scanvec::{EnvConfig, ScanKind, ScanOp};

fn arg(name: &str, default: u32) -> u32 {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == format!("--{name}") {
            return w[1].parse().unwrap_or(default);
        }
    }
    default
}

fn main() {
    let vlen = arg("vlen", 1024);
    let lmul = match arg("lmul", 1) {
        1 => Lmul::M1,
        2 => Lmul::M2,
        4 => Lmul::M4,
        8 => Lmul::M8,
        other => panic!("--lmul must be 1/2/4/8, got {other}"),
    };
    let cfg = EnvConfig {
        vlen,
        lmul,
        spill_profile: SpillProfile::llvm14(),
        mem_bytes: 1 << 20,
    };
    println!(
        "# kernels at VLEN={vlen}, LMUL=m{}, e32, llvm14 spill profile\n",
        lmul.regs()
    );
    let sew = Sew::E32;
    let programs = vec![
        kernels::build_elem_vx(&cfg, sew, VAluOp::Add).unwrap(),
        kernels::build_get_flags(&cfg, sew).unwrap(),
        kernels::build_select(&cfg, sew).unwrap(),
        kernels::build_permute(&cfg, sew).unwrap(),
        kernels::build_enumerate(&cfg, sew).unwrap(),
        kernels::build_scan(&cfg, sew, ScanOp::Plus, ScanKind::Inclusive).unwrap(),
        kernels::build_seg_scan(&cfg, sew, ScanOp::Plus).unwrap(),
        kernels::build_elem_baseline(&cfg, sew, ScanOp::Plus).unwrap(),
        kernels::build_scan_baseline(&cfg, sew, ScanOp::Plus).unwrap(),
        kernels::build_seg_scan_baseline(&cfg, sew, ScanOp::Plus).unwrap(),
    ];
    for p in programs {
        println!("{p}");
        let bytes = p.assemble().expect("kernels assemble");
        println!(
            "  ({} instructions, {} bytes of machine code)\n",
            p.len(),
            bytes.len()
        );
    }
}
