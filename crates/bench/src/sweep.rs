//! The full-evaluation sweep as a batch: every `run_all` table point as an
//! independent [`BatchJob`], plus the decoder that folds the in-order
//! reports back into the table structures the printers consume.
//!
//! The job list is a pure function of [`SweepShape`], so `run_all` can
//! build it twice — once for the serial reference, once for the parallel
//! run — and compare the two [`rvv_batch::BatchResult::stable_digest`]s
//! byte for byte.

use crate::experiments::{self, Pair};
use rvv_batch::{BatchJob, JournalPayload};
use rvv_ckpt::{ByteReader, ByteWriter, CodecError};
use rvv_isa::Lmul;
use scanvec::{EnvConfig, ScanEnv, ScanResult};

/// The sweep grid: the `--max-n`-capped paper sizes, and the size used by
/// the fixed-N experiments (Table 7 / the scan-LMUL sweep).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepShape {
    /// Sizes for Tables 1–5.
    pub sizes: Vec<usize>,
    /// N for Table 7 and the scan-LMUL sweep.
    pub n7: usize,
}

impl SweepShape {
    /// The shape the command line asks for (`--max-n`).
    pub fn from_args() -> SweepShape {
        SweepShape {
            sizes: crate::sweep_sizes(),
            n7: 10_000.min(crate::max_n_arg()),
        }
    }
}

/// What one sweep job measured. One variant per experiment family so a
/// single batch carries the whole evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measurement {
    /// A vectorized-vs-baseline pair (Tables 1–4).
    Pair(Pair),
    /// A Table 5 point: segmented-scan count plus result checksum.
    Seg {
        /// Dynamic instruction count.
        count: u64,
        /// [`experiments::checksum`] of the scanned vector.
        checksum: u64,
    },
    /// A Table 7 point at one VLEN.
    Vlen {
        /// Segmented-scan count.
        seg: u64,
        /// `p_add` count.
        padd: u64,
    },
    /// A scan-LMUL-sweep point at one LMUL.
    Scan {
        /// Vectorized scan count.
        ours: u64,
        /// Scalar baseline count.
        base: u64,
    },
}

/// Journal encoding for sweep measurements (`run_all --journal`): one tag
/// byte per variant, then the fields in declaration order. A decoded
/// measurement is `==` and `Debug`-identical to the encoded one, so a
/// crash/resume run's stable digest matches an uninterrupted run's.
impl JournalPayload for Measurement {
    fn encode(&self, w: &mut ByteWriter) {
        match *self {
            Measurement::Pair(Pair { n, ours, baseline }) => {
                w.put_u8(0);
                w.put_u64(n as u64);
                w.put_u64(ours);
                w.put_u64(baseline);
            }
            Measurement::Seg { count, checksum } => {
                w.put_u8(1);
                w.put_u64(count);
                w.put_u64(checksum);
            }
            Measurement::Vlen { seg, padd } => {
                w.put_u8(2);
                w.put_u64(seg);
                w.put_u64(padd);
            }
            Measurement::Scan { ours, base } => {
                w.put_u8(3);
                w.put_u64(ours);
                w.put_u64(base);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Measurement, CodecError> {
        Ok(match r.get_u8()? {
            0 => Measurement::Pair(Pair {
                n: r.get_u64()? as usize,
                ours: r.get_u64()?,
                baseline: r.get_u64()?,
            }),
            1 => Measurement::Seg {
                count: r.get_u64()?,
                checksum: r.get_u64()?,
            },
            2 => Measurement::Vlen {
                seg: r.get_u64()?,
                padd: r.get_u64()?,
            },
            3 => Measurement::Scan {
                ours: r.get_u64()?,
                base: r.get_u64()?,
            },
            tag => {
                return Err(CodecError::BadValue {
                    what: "measurement tag",
                    value: u64::from(tag),
                })
            }
        })
    }
}

/// The decoded sweep, one field per printed table (Table 6 and Figure 5
/// are derived from these by the printers).
#[derive(Debug)]
pub struct SweepTables {
    /// Table 1 rows.
    pub t1: Vec<Pair>,
    /// Table 2 rows.
    pub t2: Vec<Pair>,
    /// Table 3 rows.
    pub t3: Vec<Pair>,
    /// Table 4 rows.
    pub t4: Vec<Pair>,
    /// Table 5 rows: `(n, counts at m1/m2/m4/m8)`.
    pub t5: Vec<(usize, [u64; 4])>,
    /// Table 7 rows: `(vlen, seg_count, p_add_count)`.
    pub t7: Vec<(u32, u64, u64)>,
    /// Scan-LMUL rows: `(lmul_regs, scan_count, baseline_count)`.
    pub scan_lmul: Vec<(u32, u64, u64)>,
}

type PairPoint = fn(&mut ScanEnv, usize) -> ScanResult<Pair>;

/// Every point of the full evaluation as an independent job, in table
/// order. Deterministic in `shape`; [`decode_sweep`] expects exactly this
/// layout.
pub fn sweep_jobs(shape: &SweepShape) -> Vec<BatchJob<Measurement>> {
    let mut jobs = Vec::new();
    let paper = EnvConfig::paper_default();
    let points: [(&str, PairPoint); 4] = [
        ("table1", experiments::table1_point),
        ("table2", experiments::table2_point),
        ("table3", experiments::table3_point),
        ("table4", experiments::table4_point),
    ];
    for (table, point) in points {
        for &n in &shape.sizes {
            jobs.push(
                BatchJob::new(format!("{table}/n={n}"), paper, move |env: &mut ScanEnv| {
                    point(env, n).map(Measurement::Pair)
                })
                // Table 1 sorts cost ~bits× more than the linear points;
                // weights only steer load balancing, so coarse is fine.
                .weight(n as u64 * if table == "table1" { 16 } else { 1 }),
            );
        }
    }
    for &n in &shape.sizes {
        for lmul in Lmul::ALL {
            jobs.push(
                BatchJob::new(
                    format!("table5/m{}/n={n}", lmul.regs()),
                    EnvConfig::with_lmul(lmul),
                    move |env: &mut ScanEnv| {
                        experiments::table5_point(env, n)
                            .map(|(count, checksum)| Measurement::Seg { count, checksum })
                    },
                )
                .weight(n as u64),
            );
        }
    }
    for vlen in [128u32, 256, 512, 1024] {
        let n = shape.n7;
        jobs.push(
            BatchJob::new(
                format!("table7/vlen{vlen}"),
                EnvConfig::with_vlen(vlen),
                move |env: &mut ScanEnv| {
                    experiments::table7_point(env, n)
                        .map(|(seg, padd)| Measurement::Vlen { seg, padd })
                },
            )
            .weight(n as u64),
        );
    }
    for lmul in Lmul::ALL {
        let n = shape.n7;
        jobs.push(
            BatchJob::new(
                format!("scan_lmul/m{}", lmul.regs()),
                EnvConfig::with_lmul(lmul),
                move |env: &mut ScanEnv| {
                    experiments::scan_lmul_point(env, n)
                        .map(|(ours, base)| Measurement::Scan { ours, base })
                },
            )
            .weight(n as u64),
        );
    }
    jobs
}

/// Fold the in-order reports of a [`sweep_jobs`] batch back into tables.
///
/// Panics on any failed job and re-asserts Table 5's cross-LMUL result
/// equality from the point checksums — the same invariant the serial
/// [`experiments::table5_with_profile`] enforces in-process.
pub fn decode_sweep(
    shape: &SweepShape,
    reports: &[rvv_batch::JobReport<Measurement>],
) -> SweepTables {
    let mut it = reports.iter();
    let mut next = |what: &str| -> Measurement {
        let r = it
            .next()
            .unwrap_or_else(|| panic!("sweep too short at {what}"));
        *r.output()
            .unwrap_or_else(|| panic!("{} failed: {:?}", r.name, r.outcome))
    };
    let mut pairs = |table: &str| -> Vec<Pair> {
        shape
            .sizes
            .iter()
            .map(|_| match next(table) {
                Measurement::Pair(p) => p,
                m => panic!("{table}: expected a pair, got {m:?}"),
            })
            .collect()
    };
    let t1 = pairs("table1");
    let t2 = pairs("table2");
    let t3 = pairs("table3");
    let t4 = pairs("table4");
    let t5 = shape
        .sizes
        .iter()
        .map(|&n| {
            let mut counts = [0u64; 4];
            let mut reference: Option<u64> = None;
            for c in &mut counts {
                match next("table5") {
                    Measurement::Seg { count, checksum } => {
                        *c = count;
                        match reference {
                            None => reference = Some(checksum),
                            Some(r) => {
                                assert_eq!(checksum, r, "LMUL changed the result at n={n}")
                            }
                        }
                    }
                    m => panic!("table5: expected a seg point, got {m:?}"),
                }
            }
            (n, counts)
        })
        .collect();
    let t7 = [128u32, 256, 512, 1024]
        .into_iter()
        .map(|vlen| match next("table7") {
            Measurement::Vlen { seg, padd } => (vlen, seg, padd),
            m => panic!("table7: expected a vlen point, got {m:?}"),
        })
        .collect();
    let scan_lmul = Lmul::ALL
        .into_iter()
        .map(|lmul| match next("scan_lmul") {
            Measurement::Scan { ours, base } => (lmul.regs(), ours, base),
            m => panic!("scan_lmul: expected a scan point, got {m:?}"),
        })
        .collect();
    assert!(it.next().is_none(), "sweep longer than its shape");
    SweepTables {
        t1,
        t2,
        t3,
        t4,
        t5,
        t7,
        scan_lmul,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvv_batch::BatchRunner;

    fn small() -> SweepShape {
        SweepShape {
            sizes: vec![100, 1000],
            n7: 1000,
        }
    }

    #[test]
    fn batched_sweep_matches_serial_experiments() {
        let shape = small();
        let result = BatchRunner::new(1).run(sweep_jobs(&shape));
        assert!(result.all_ok());
        let tables = decode_sweep(&shape, &result.reports);
        assert_eq!(tables.t1, experiments::table1(&shape.sizes));
        assert_eq!(tables.t2, experiments::table2(&shape.sizes));
        assert_eq!(tables.t3, experiments::table3(&shape.sizes));
        assert_eq!(tables.t4, experiments::table4(&shape.sizes));
        assert_eq!(tables.t5, experiments::table5(&shape.sizes));
        assert_eq!(tables.t7, experiments::table7(shape.n7));
        assert_eq!(tables.scan_lmul, experiments::scan_lmul_sweep(shape.n7));
    }

    #[test]
    fn measurements_round_trip_through_the_journal_codec() {
        let samples = [
            Measurement::Pair(Pair {
                n: 1_000_000,
                ours: 7,
                baseline: 42,
            }),
            Measurement::Seg {
                count: 1,
                checksum: u64::MAX,
            },
            Measurement::Vlen { seg: 3, padd: 4 },
            Measurement::Scan { ours: 5, base: 6 },
        ];
        for m in samples {
            let mut w = ByteWriter::new();
            m.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(Measurement::decode(&mut r).unwrap(), m);
            r.finish().unwrap();
        }
        let mut r = ByteReader::new(&[9]);
        assert!(Measurement::decode(&mut r).is_err(), "bad tag must error");
    }

    #[test]
    fn job_list_is_deterministic_and_sized_by_shape() {
        let shape = small();
        let a = sweep_jobs(&shape);
        let b = sweep_jobs(&shape);
        assert_eq!(a.len(), 4 * 2 + 2 * 4 + 4 + 4);
        let names = |jobs: &[BatchJob<Measurement>]| {
            jobs.iter().map(|j| j.name.clone()).collect::<Vec<_>>()
        };
        assert_eq!(names(&a), names(&b));
        assert!(a.iter().all(|j| j.weight > 0));
    }
}
