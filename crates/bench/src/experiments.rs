//! The experiment implementations behind every table and figure.
//!
//! Each function measures dynamic instruction counts on fresh environments
//! and returns plain data; the `src/bin/table*.rs` binaries format it next
//! to the paper's published numbers, and the crate's tests assert the
//! qualitative claims on reduced sizes.

use crate::{env_with, env_with_profile, paper_env, random_head_flags, random_u32s};
use rvv_asm::SpillProfile;
use rvv_isa::Lmul;
use scanvec::primitives::{self, baseline};
use scanvec::{ScanEnv, ScanKind, ScanOp, ScanResult};
use scanvec_algos::{qsort_baseline, split_radix_sort};

/// FNV-1a over the little-endian bytes of a result vector: the checksum
/// sweep points return so cross-configuration equality checks (Table 5's
/// "LMUL must not change the answer") survive decomposition into
/// independent batch jobs.
pub fn checksum(words: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// One (vectorized, baseline) measurement pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pair {
    /// Input size.
    pub n: usize,
    /// Dynamic instructions, scan-vector-model implementation.
    pub ours: u64,
    /// Dynamic instructions, sequential baseline.
    pub baseline: u64,
}

impl Pair {
    /// Speedup over the baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline as f64 / self.ours as f64
    }
}

/// Table 1 at one size, in a caller-provided (fresh or reset) paper-config
/// environment: split radix sort vs scalar quicksort. The batch-engine unit
/// behind [`table1`].
pub fn table1_point(e: &mut ScanEnv, n: usize) -> ScanResult<Pair> {
    let data = random_u32s(n, 1);
    let v = e.from_u32(&data)?;
    let ours = split_radix_sort(e, &v, 32)?;
    let w = e.from_u32(&data)?;
    let base = qsort_baseline(e, &w)?;
    // Cross-check both sorted the same.
    assert_eq!(e.to_u32(&v), e.to_u32(&w), "sorters disagree at n={n}");
    Ok(Pair {
        n,
        ours,
        baseline: base,
    })
}

/// Table 1: split radix sort (scan vector model) vs scalar quicksort.
pub fn table1(sizes: &[usize]) -> Vec<Pair> {
    sizes
        .iter()
        .map(|&n| table1_point(&mut paper_env(), n).expect("radix sort"))
        .collect()
}

/// Table 2 at one size (see [`table1_point`] for the contract).
pub fn table2_point(e: &mut ScanEnv, n: usize) -> ScanResult<Pair> {
    let data = random_u32s(n, 2);
    let v = e.from_u32(&data)?;
    let ours = primitives::p_add(e, &v, 5)?;
    let w = e.from_u32(&data)?;
    let base = baseline::p_add(e, &w, 5)?;
    assert_eq!(e.to_u32(&v), e.to_u32(&w));
    Ok(Pair {
        n,
        ours,
        baseline: base,
    })
}

/// Table 2: `p_add` vs scalar baseline.
pub fn table2(sizes: &[usize]) -> Vec<Pair> {
    sizes
        .iter()
        .map(|&n| table2_point(&mut paper_env(), n).expect("p_add"))
        .collect()
}

/// Table 3 at one size (see [`table1_point`] for the contract).
pub fn table3_point(e: &mut ScanEnv, n: usize) -> ScanResult<Pair> {
    let data = random_u32s(n, 3);
    let v = e.from_u32(&data)?;
    let ours = primitives::plus_scan(e, &v)?;
    let w = e.from_u32(&data)?;
    let base = baseline::plus_scan(e, &w)?;
    assert_eq!(e.to_u32(&v), e.to_u32(&w));
    Ok(Pair {
        n,
        ours,
        baseline: base,
    })
}

/// Table 3: unsegmented plus-scan vs scalar baseline.
pub fn table3(sizes: &[usize]) -> Vec<Pair> {
    sizes
        .iter()
        .map(|&n| table3_point(&mut paper_env(), n).expect("plus_scan"))
        .collect()
}

/// Table 4 at one size (see [`table1_point`] for the contract).
pub fn table4_point(e: &mut ScanEnv, n: usize) -> ScanResult<Pair> {
    let data = random_u32s(n, 4);
    let flags = random_head_flags(n, 4);
    let v = e.from_u32(&data)?;
    let f = e.from_u32(&flags)?;
    let ours = primitives::seg_plus_scan(e, &v, &f)?;
    let w = e.from_u32(&data)?;
    let base = baseline::seg_plus_scan(e, &w, &f)?;
    assert_eq!(e.to_u32(&v), e.to_u32(&w));
    Ok(Pair {
        n,
        ours,
        baseline: base,
    })
}

/// Table 4: segmented plus-scan vs scalar baseline.
pub fn table4(sizes: &[usize]) -> Vec<Pair> {
    sizes
        .iter()
        .map(|&n| table4_point(&mut paper_env(), n).expect("seg scan"))
        .collect()
}

/// Table 5: segmented plus-scan across LMUL ∈ {1,2,4,8} (VLEN=1024).
/// Returns `(n, [count at m1, m2, m4, m8])`.
pub fn table5(sizes: &[usize]) -> Vec<(usize, [u64; 4])> {
    table5_with_profile(sizes, SpillProfile::llvm14())
}

/// Table 5 at one `(n, LMUL, profile)` point — the LMUL and profile come
/// from the environment's configuration. Returns the dynamic instruction
/// count and a [`checksum`] of the scanned vector, so the caller can assert
/// cross-LMUL result equality without the points sharing an environment.
pub fn table5_point(e: &mut ScanEnv, n: usize) -> ScanResult<(u64, u64)> {
    let data = random_u32s(n, 5);
    let flags = random_head_flags(n, 5);
    let v = e.from_u32(&data)?;
    let f = e.from_u32(&flags)?;
    let count = primitives::seg_plus_scan(e, &v, &f)?;
    Ok((count, checksum(&e.to_u32(&v))))
}

/// Table 5 under an explicit spill cost profile (for the ablation).
pub fn table5_with_profile(sizes: &[usize], profile: SpillProfile) -> Vec<(usize, [u64; 4])> {
    sizes
        .iter()
        .map(|&n| {
            let mut counts = [0u64; 4];
            let mut reference: Option<u64> = None;
            for (i, lmul) in Lmul::ALL.into_iter().enumerate() {
                let mut e = env_with_profile(1024, lmul, profile);
                let (count, sum) = table5_point(&mut e, n).expect("seg scan");
                counts[i] = count;
                match reference {
                    None => reference = Some(sum),
                    Some(r) => assert_eq!(sum, r, "LMUL changed the result at n={n}"),
                }
            }
            (n, counts)
        })
        .collect()
}

/// Table 6: `(speedup over LMUL=1) / LMUL` ratios, derived from Table 5
/// counts. Columns for LMUL ∈ {2,4,8}.
pub fn table6(t5: &[(usize, [u64; 4])]) -> Vec<(usize, [f64; 3])> {
    t5.iter()
        .map(|&(n, c)| {
            let r = |i: usize, l: f64| (c[0] as f64 / c[i] as f64) / l;
            (n, [r(1, 2.0), r(2, 4.0), r(3, 8.0)])
        })
        .collect()
}

/// Table 7: instruction count over VLEN ∈ {128,256,512,1024} for the
/// segmented plus-scan and `p_add`, N = 10⁴ (LMUL=1).
/// Returns `(vlen, seg_scan_count, p_add_count)`.
pub fn table7(n: usize) -> Vec<(u32, u64, u64)> {
    [128u32, 256, 512, 1024]
        .into_iter()
        .map(|vlen| {
            let mut e = env_with(vlen, Lmul::M1);
            let (seg, padd) = table7_point(&mut e, n).expect("table7");
            (vlen, seg, padd)
        })
        .collect()
}

/// Table 7 at one VLEN (taken from the environment's configuration).
/// Returns `(seg_scan_count, p_add_count)`.
pub fn table7_point(e: &mut ScanEnv, n: usize) -> ScanResult<(u64, u64)> {
    let data = random_u32s(n, 7);
    let flags = random_head_flags(n, 7);
    let v = e.from_u32(&data)?;
    let f = e.from_u32(&flags)?;
    let seg = primitives::seg_plus_scan(e, &v, &f)?;
    let w = e.from_u32(&data)?;
    let padd = primitives::p_add(e, &w, 5)?;
    Ok((seg, padd))
}

/// Figure 5: speedup relative to VLEN=128 for the segmented plus-scan and
/// `p_add`, plus the ideal `vlen/128` line. Derived from [`table7`] data.
/// Returns `(vlen, seg_speedup, p_add_speedup, ideal)`.
pub fn figure5(n: usize) -> Vec<(u32, f64, f64, f64)> {
    figure5_from(table7(n))
}

/// [`figure5`] from already-measured [`table7`] rows (the batch-ported
/// `run_all` derives the figure without re-measuring).
pub fn figure5_from(t7: Vec<(u32, u64, u64)>) -> Vec<(u32, f64, f64, f64)> {
    let (base_seg, base_padd) = (t7[0].1, t7[0].2);
    t7.into_iter()
        .map(|(vlen, seg, padd)| {
            (
                vlen,
                base_seg as f64 / seg as f64,
                base_padd as f64 / padd as f64,
                vlen as f64 / 128.0,
            )
        })
        .collect()
}

/// Abstract-claim experiment: unsegmented scan across LMUL (no spilling —
/// near-ideal group scaling; the 2.85× → 21.93× improvement).
/// Returns `(lmul_regs, scan_count, baseline_count)`.
pub fn scan_lmul_sweep(n: usize) -> Vec<(u32, u64, u64)> {
    Lmul::ALL
        .into_iter()
        .map(|lmul| {
            let mut e = env_with(1024, lmul);
            let (ours, base) = scan_lmul_point(&mut e, n).expect("scan");
            (lmul.regs(), ours, base)
        })
        .collect()
}

/// One LMUL point of [`scan_lmul_sweep`] (the LMUL comes from the
/// environment). Returns `(scan_count, baseline_count)`.
pub fn scan_lmul_point(e: &mut ScanEnv, n: usize) -> ScanResult<(u64, u64)> {
    let data = random_u32s(n, 8);
    let v = e.from_u32(&data)?;
    let ours = primitives::plus_scan(e, &v)?;
    let w = e.from_u32(&data)?;
    let base = baseline::plus_scan(e, &w)?;
    Ok((ours, base))
}

/// Ablation: `enumerate` via `viota` (paper §4.4) vs via a generic
/// exclusive scan. Returns `(n, viota_count, generic_count)`.
pub fn ablation_enumerate(sizes: &[usize]) -> Vec<(usize, u64, u64)> {
    sizes
        .iter()
        .map(|&n| {
            let flags: Vec<u32> = random_u32s(n, 9).iter().map(|x| x & 1).collect();
            let mut e = paper_env();
            let f = e.from_u32(&flags).expect("alloc");
            let d = e.alloc(rvv_isa::Sew::E32, n).expect("alloc");
            let (c1, viota) = primitives::enumerate(&mut e, &f, true, &d).expect("enumerate");
            let got1 = e.to_u32(&d);
            let (c2, generic) =
                primitives::enumerate_via_scan(&mut e, &f, true, &d).expect("enumerate");
            assert_eq!(c1, c2);
            assert_eq!(got1, e.to_u32(&d));
            (n, viota, generic)
        })
        .collect()
}

/// Exclusive vs inclusive scan cost (they should be nearly identical —
/// the exclusive variant adds one slide per strip).
pub fn scan_kinds(n: usize) -> (u64, u64) {
    let data = random_u32s(n, 10);
    let mut e = paper_env();
    let v = e.from_u32(&data).expect("alloc");
    let inc = primitives::scan(&mut e, ScanOp::Plus, &v, ScanKind::Inclusive).expect("scan");
    let w = e.from_u32(&data).expect("alloc");
    let exc = primitives::scan(&mut e, ScanOp::Plus, &w, ScanKind::Exclusive).expect("scan");
    (inc, exc)
}

/// Ablation: segment descriptor choice (paper §5 picks head-flags because
/// it maps directly onto RVV). Measures segmented-scan cost including any
/// on-device descriptor conversion:
/// head-flags (direct), lengths (exclusive-scan + scatter), head-pointers
/// (scatter). Returns `(n, direct, via_lengths, via_pointers)`.
pub fn ablation_segdesc(sizes: &[usize]) -> Vec<(usize, u64, u64, u64)> {
    use rvv_isa::Sew;
    use scanvec::Segments;
    sizes
        .iter()
        .map(|&n| {
            let data = random_u32s(n, 11);
            let flags = {
                let mut f = random_head_flags(n, 11);
                if !f.is_empty() {
                    f[0] = 1;
                }
                f
            };
            let segs = Segments::from_head_flags(flags.clone()).expect("valid flags");
            let lengths = segs.to_lengths();
            let pointers = segs.to_head_pointers();
            let nseg = segs.segment_count();

            // Direct head-flags.
            let direct = {
                let mut e = paper_env();
                let v = e.from_u32(&data).expect("alloc");
                let f = e.from_u32(&flags).expect("alloc");
                primitives::seg_plus_scan(&mut e, &v, &f).expect("seg scan")
            };
            // Lengths: device-side exclusive scan to positions, scatter 1s.
            let via_lengths = {
                let mut e = paper_env();
                let v = e.from_u32(&data).expect("alloc");
                let l = e.from_u32(&lengths).expect("alloc");
                let ones = e.alloc(Sew::E32, nseg).expect("alloc");
                let f = e.alloc(Sew::E32, n).expect("alloc");
                let mut c = primitives::p_add(&mut e, &ones, 1).expect("ones");
                c += primitives::scan(&mut e, ScanOp::Plus, &l, ScanKind::Exclusive)
                    .expect("positions");
                c += primitives::permute(&mut e, &ones, &l, &f).expect("scatter");
                assert_eq!(e.to_u32(&f), flags, "lengths conversion mismatch");
                c += primitives::seg_plus_scan(&mut e, &v, &f).expect("seg scan");
                c
            };
            // Head-pointers: scatter 1s at the pointers.
            let via_pointers = {
                let mut e = paper_env();
                let v = e.from_u32(&data).expect("alloc");
                let p = e.from_u32(&pointers).expect("alloc");
                let ones = e.alloc(Sew::E32, nseg).expect("alloc");
                let f = e.alloc(Sew::E32, n).expect("alloc");
                let mut c = primitives::p_add(&mut e, &ones, 1).expect("ones");
                c += primitives::permute(&mut e, &ones, &p, &f).expect("scatter");
                assert_eq!(e.to_u32(&f), flags, "pointer conversion mismatch");
                c += primitives::seg_plus_scan(&mut e, &v, &f).expect("seg scan");
                c
            };
            (n, direct, via_lengths, via_pointers)
        })
        .collect()
}

/// Ablation: VLA strip-mining (paper §3.1's `vsetvli` pattern) vs
/// VLS-style fixed-width strips plus a scalar remainder loop, for `p_add`.
/// Returns `(n, vla_count, vls_count, vls_static_instrs, vla_static_instrs)`.
pub fn ablation_vla_vls(sizes: &[usize]) -> Vec<(usize, u64, u64, usize, usize)> {
    use rvv_isa::VAluOp;
    sizes
        .iter()
        .map(|&n| {
            let data = random_u32s(n, 12);
            let mut e = paper_env();
            let v = e.from_u32(&data).expect("alloc");
            let vla = primitives::p_add(&mut e, &v, 3).expect("vla");
            let w = e.from_u32(&data).expect("alloc");
            let vls = primitives::elem_vx_vls(&mut e, VAluOp::Add, &w, 3).expect("vls");
            assert_eq!(e.to_u32(&v), e.to_u32(&w), "VLS result diverged at n={n}");
            let cfg = e.config();
            let vla_static = scanvec::kernels::build_elem_vx(&cfg, rvv_isa::Sew::E32, VAluOp::Add)
                .expect("build")
                .len();
            let vls_static =
                scanvec::kernels::build_elem_vx_vls(&cfg, rvv_isa::Sew::E32, VAluOp::Add)
                    .expect("build")
                    .len();
            (n, vla, vls, vls_static, vla_static)
        })
        .collect()
}

/// Ablation: split radix sort vs the bitonic network — O(bits·n) passes
/// against O(n·lg²n) oblivious compare-exchanges, both built purely from
/// primitives. Returns `(n, radix_count, bitonic_count)`.
pub fn ablation_sorts(sizes: &[usize]) -> Vec<(usize, u64, u64)> {
    use scanvec_algos::{bitonic_sort, split_radix_sort};
    sizes
        .iter()
        .map(|&n| {
            let data = random_u32s(n, 13);
            let mut e = paper_env();
            let v = e.from_u32(&data).expect("alloc");
            let radix = split_radix_sort(&mut e, &v, 32).expect("radix");
            let w = e.from_u32(&data).expect("alloc");
            let bitonic = bitonic_sort(&mut e, &w).expect("bitonic");
            assert_eq!(e.to_u32(&v), e.to_u32(&w), "sorts disagree at n={n}");
            (n, radix, bitonic)
        })
        .collect()
}

/// Supplementary table (not in the paper): every remaining primitive vs its
/// scalar baseline at the headline configuration.
/// Returns rows of `(name, vector_count, baseline_count)`.
pub fn primitives_table(n: usize) -> Vec<(&'static str, u64, u64)> {
    use rvv_isa::Sew;
    let data = random_u32s(n, 14);
    let bits: Vec<u32> = data.iter().map(|x| x & 1).collect();
    let mut rows = Vec::new();
    let mut e = paper_env();

    let v = e.from_u32(&data).expect("alloc");
    let ours = primitives::p_add(&mut e, &v, 7).expect("p_add");
    let w = e.from_u32(&data).expect("alloc");
    let base = baseline::p_add(&mut e, &w, 7).expect("baseline");
    rows.push(("p_add", ours, base));

    let f = e.from_u32(&bits).expect("alloc");
    let a = e.from_u32(&data).expect("alloc");
    let b = e.from_u32(&data).expect("alloc");
    let d = e.alloc(Sew::E32, n).expect("alloc");
    let ours = primitives::select(&mut e, &f, &a, &b, &d).expect("select");
    let base = baseline::select(&mut e, &f, &a, &b, &d).expect("baseline");
    rows.push(("p_select", ours, base));

    let (_, ours) = primitives::enumerate(&mut e, &f, true, &d).expect("enumerate");
    let (_, base) = baseline::enumerate(&mut e, &f, true, &d).expect("baseline");
    rows.push(("enumerate", ours, base));

    // A valid permutation: reverse.
    let idx: Vec<u32> = (0..n as u32).rev().collect();
    let iv = e.from_u32(&idx).expect("alloc");
    let ours = primitives::permute(&mut e, &a, &iv, &d).expect("permute");
    let base = baseline::permute(&mut e, &a, &iv, &d).expect("baseline");
    rows.push(("permute", ours, base));

    rows
}

/// Supplementary sensitivity study: segmented-scan cost vs segment-head
/// density. The vectorized kernel's work is density-independent (the
/// ladder always runs ⌈lg vl⌉ rounds); the scalar baseline pays one reset
/// per head. Returns `(heads_per_1000, vector_count, baseline_count)`.
pub fn density_sweep(n: usize) -> Vec<(u32, u64, u64)> {
    use rand::prelude::*;
    [1u32, 10, 50, 200, 500, 1000]
        .into_iter()
        .map(|per_mille| {
            let mut rng = StdRng::seed_from_u64(15 + per_mille as u64);
            let data = random_u32s(n, 15);
            let mut flags: Vec<u32> = (0..n)
                .map(|_| u32::from(rng.random_range(0..1000u32) < per_mille))
                .collect();
            if let Some(f) = flags.first_mut() {
                *f = 1;
            }
            let mut e = paper_env();
            let v = e.from_u32(&data).expect("alloc");
            let f = e.from_u32(&flags).expect("alloc");
            let ours = primitives::seg_plus_scan(&mut e, &v, &f).expect("seg scan");
            let w = e.from_u32(&data).expect("alloc");
            let base = baseline::seg_plus_scan(&mut e, &w, &f).expect("baseline");
            (per_mille, ours, base)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: [usize; 2] = [100, 1000];

    #[test]
    fn table2_shape_padd_speedup_grows_past_10x() {
        let rows = table2(&SMALL);
        assert!(rows[0].speedup() > 5.0, "{rows:?}");
        assert!(rows[1].speedup() > 15.0, "{rows:?}");
        assert!(rows[1].speedup() > rows[0].speedup());
    }

    #[test]
    fn table3_shape_scan_beats_baseline() {
        let rows = table3(&SMALL);
        for r in &rows {
            assert!(r.speedup() > 2.0, "{rows:?}");
        }
    }

    #[test]
    fn table4_shape_seg_scan_beats_baseline() {
        let rows = table4(&SMALL);
        for r in &rows {
            assert!(r.speedup() > 3.0, "{rows:?}");
        }
    }

    #[test]
    fn table5_6_shape_lmul8_anomaly() {
        let t5 = table5(&[100, 10_000]);
        let small = t5[0].1;
        let large = t5[1].1;
        // Paper's anomaly: at N=100, LMUL=8 is *slower* than LMUL=1; by
        // N=10⁴ it is faster.
        assert!(small[3] > small[0], "small-N anomaly missing: {small:?}");
        assert!(large[3] < large[0], "large-N LMUL win missing: {large:?}");
        // Ratios decrease with LMUL (Table 6).
        let t6 = table6(&t5);
        let (_, ratios) = t6[1];
        assert!(ratios[0] > ratios[1] && ratios[1] > ratios[2], "{ratios:?}");
        // And m2/m4 land near the paper's 0.87 / 0.77.
        assert!((ratios[0] - 0.87).abs() < 0.06, "{ratios:?}");
        assert!((ratios[1] - 0.77).abs() < 0.06, "{ratios:?}");
    }

    #[test]
    fn table7_figure5_shape_elementwise_scales_scan_does_not() {
        let rows = figure5(10_000);
        let (_, seg8, padd8, ideal8) = rows[3];
        assert!((ideal8 - 8.0).abs() < 1e-9);
        // p_add scales nearly ideally with VLEN; the scan falls well short
        // (paper: 4.65x at vlen=1024).
        assert!(padd8 > 6.0, "{rows:?}");
        assert!(seg8 < padd8, "{rows:?}");
        assert!(seg8 > 2.0, "{rows:?}");
    }

    #[test]
    fn scan_lmul_sweep_shape() {
        let rows = scan_lmul_sweep(100_000);
        // No spilling: larger LMUL strictly reduces the count.
        assert!(rows[3].1 < rows[2].1 && rows[2].1 < rows[1].1 && rows[1].1 < rows[0].1);
        // Abstract claim: LMUL tuning lifts the scan speedup past 15x.
        let m8_speedup = rows[3].2 as f64 / rows[3].1 as f64;
        assert!(m8_speedup > 15.0, "{m8_speedup}");
    }

    #[test]
    fn enumerate_ablation_viota_wins() {
        for (_, viota, generic) in ablation_enumerate(&SMALL) {
            assert!(viota < generic);
        }
    }

    #[test]
    fn exclusive_scan_costs_about_the_same() {
        let (inc, exc) = scan_kinds(10_000);
        let ratio = exc as f64 / inc as f64;
        assert!(
            ratio < 1.25,
            "exclusive scan should cost ~1 slide more per strip: {ratio}"
        );
    }

    #[test]
    fn segdesc_conversions_never_cheaper_than_flags() {
        for (_, direct, lens, ptrs) in ablation_segdesc(&SMALL) {
            assert!(lens >= direct && ptrs >= direct);
            assert!(ptrs <= lens, "pointer form skips the exclusive scan");
        }
    }

    #[test]
    fn vla_beats_vls_on_ragged_sizes() {
        let rows = ablation_vla_vls(&[13, 100]);
        for &(n, vla, vls, _, _) in &rows {
            assert!(
                vls > vla,
                "VLS must pay for the remainder at n={n}: {vls} vs {vla}"
            );
        }
    }

    #[test]
    fn primitives_table_all_vectorized_win() {
        for (name, ours, base) in primitives_table(2000) {
            assert!(ours < base, "{name}: {ours} !< {base}");
        }
    }

    #[test]
    fn density_does_not_move_the_vector_cost() {
        let rows = density_sweep(5000);
        let v_min = rows.iter().map(|r| r.1).min().unwrap();
        let v_max = rows.iter().map(|r| r.1).max().unwrap();
        assert!(
            v_max - v_min <= v_min / 20,
            "vector cost should be density-flat: {rows:?}"
        );
        // The scalar baseline grows with density (one reset per head).
        assert!(rows.last().unwrap().2 > rows.first().unwrap().2);
    }
}
