//! Wall-clock cost of each primitive launch on the simulator at the
//! paper's headline configuration — a per-primitive profile of the stack
//! (kernel cache hit + simulated execution).

use criterion::{criterion_group, criterion_main, Criterion};
use rvv_isa::Sew;
use scanvec::primitives as p;
use scanvec::ScanEnv;
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives_n10k");
    g.sample_size(30);
    let n = 10_000usize;
    let data: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(7919)).collect();
    let bits: Vec<u32> = (0..n as u32).map(|i| i & 1).collect();

    g.bench_function("p_add", |b| {
        let mut e = ScanEnv::paper_default();
        let v = e.from_u32(&data).unwrap();
        b.iter(|| black_box(p::p_add(&mut e, &v, 3).unwrap()))
    });
    g.bench_function("enumerate", |b| {
        let mut e = ScanEnv::paper_default();
        let f = e.from_u32(&bits).unwrap();
        let d = e.alloc(Sew::E32, n).unwrap();
        b.iter(|| black_box(p::enumerate(&mut e, &f, true, &d).unwrap()))
    });
    g.bench_function("permute_reverse", |b| {
        let mut e = ScanEnv::paper_default();
        let v = e.from_u32(&data).unwrap();
        let idx: Vec<u32> = (0..n as u32).rev().collect();
        let i = e.from_u32(&idx).unwrap();
        let d = e.alloc(Sew::E32, n).unwrap();
        b.iter(|| black_box(p::permute(&mut e, &v, &i, &d).unwrap()))
    });
    g.bench_function("split", |b| {
        let mut e = ScanEnv::paper_default();
        let v = e.from_u32(&data).unwrap();
        let f = e.from_u32(&bits).unwrap();
        let d = e.alloc(Sew::E32, n).unwrap();
        b.iter(|| black_box(p::split(&mut e, &v, &f, &d).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
