//! Wall-clock benchmarks of the pure-Rust (`native`) scan implementations —
//! the host-side complement to the dynamic-instruction experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rvv_isa::Sew;
use scanvec::native;
use scanvec::ScanOp;
use std::hint::black_box;

fn bench_scans(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_scan");
    for n in [1_000usize, 100_000] {
        let xs: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("inclusive_plus", n), &xs, |b, xs| {
            b.iter(|| native::scan_inclusive(ScanOp::Plus, Sew::E32, black_box(xs)))
        });
        g.bench_with_input(BenchmarkId::new("exclusive_plus", n), &xs, |b, xs| {
            b.iter(|| native::scan_exclusive(ScanOp::Plus, Sew::E32, black_box(xs)))
        });
        g.bench_with_input(BenchmarkId::new("inclusive_max", n), &xs, |b, xs| {
            b.iter(|| native::scan_inclusive(ScanOp::Max, Sew::E32, black_box(xs)))
        });
        let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 50 == 0)).collect();
        g.bench_with_input(
            BenchmarkId::new("segmented_plus", n),
            &(xs, flags),
            |b, (xs, f)| {
                b.iter(|| {
                    native::seg_scan_inclusive(ScanOp::Plus, Sew::E32, black_box(xs), black_box(f))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
