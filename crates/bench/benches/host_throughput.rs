//! Engine-vs-engine wall clock: the same kernels launched through the
//! legacy single-step interpreter and through the pre-decoded execution
//! plan. The JSON artifact with exact ns/instr numbers comes from the
//! `host_throughput` *binary*; this Criterion bench tracks the same
//! comparison over time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scanvec::primitives::{plus_scan, seg_plus_scan};
use scanvec::{ExecEngine, ScanEnv};
use scanvec_bench::random_head_flags;
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("host_throughput");
    g.sample_size(10);
    let n = 100_000usize;
    let data: Vec<u32> = (0..n as u32).collect();
    let flags = random_head_flags(n, 42);
    g.throughput(Throughput::Elements(n as u64));
    for engine in [ExecEngine::Legacy, ExecEngine::Plan, ExecEngine::Fused] {
        let label = engine.name();
        g.bench_function(BenchmarkId::new("plus_scan", label), |b| {
            b.iter(|| {
                let mut e = ScanEnv::paper_default();
                e.set_exec_engine(engine);
                let v = e.from_u32(black_box(&data)).unwrap();
                black_box(plus_scan(&mut e, &v).unwrap())
            })
        });
        g.bench_function(BenchmarkId::new("seg_plus_scan", label), |b| {
            b.iter(|| {
                let mut e = ScanEnv::paper_default();
                e.set_exec_engine(engine);
                let v = e.from_u32(black_box(&data)).unwrap();
                let f = e.from_u32(black_box(&flags)).unwrap();
                black_box(seg_plus_scan(&mut e, &v, &f).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
