//! Wall-clock cost of the full applications on the simulator — how long a
//! table-1-style experiment takes on the host per input element.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scanvec::ScanEnv;
use scanvec_algos::{qsort_baseline, seg_quicksort, split_radix_sort};
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithms_n4096");
    g.sample_size(10);
    let n = 4096usize;
    let data: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("split_radix_sort", |b| {
        b.iter(|| {
            let mut e = ScanEnv::paper_default();
            let v = e.from_u32(black_box(&data)).unwrap();
            black_box(split_radix_sort(&mut e, &v, 32).unwrap())
        })
    });
    g.bench_function("qsort_baseline", |b| {
        b.iter(|| {
            let mut e = ScanEnv::paper_default();
            let v = e.from_u32(black_box(&data)).unwrap();
            black_box(qsort_baseline(&mut e, &v).unwrap())
        })
    });
    g.bench_function("seg_quicksort", |b| {
        b.iter(|| {
            let mut e = ScanEnv::paper_default();
            let v = e.from_u32(black_box(&data)).unwrap();
            black_box(seg_quicksort(&mut e, &v).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
