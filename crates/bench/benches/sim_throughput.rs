//! Simulator throughput: wall-clock time to retire the scan kernels —
//! tracks how fast the functional model itself is (instructions/second),
//! which bounds how large an N the experiment harness can sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scanvec::primitives::{baseline, plus_scan, seg_plus_scan};
use scanvec::{EnvConfig, ScanEnv};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(20);
    let n = 100_000usize;
    let data: Vec<u32> = (0..n as u32).collect();
    let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 50 == 0)).collect();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function(BenchmarkId::new("plus_scan", n), |b| {
        b.iter(|| {
            let mut e = ScanEnv::paper_default();
            let v = e.from_u32(black_box(&data)).unwrap();
            black_box(plus_scan(&mut e, &v).unwrap())
        })
    });
    g.bench_function(BenchmarkId::new("seg_plus_scan", n), |b| {
        b.iter(|| {
            let mut e = ScanEnv::paper_default();
            let v = e.from_u32(black_box(&data)).unwrap();
            let f = e.from_u32(black_box(&flags)).unwrap();
            black_box(seg_plus_scan(&mut e, &v, &f).unwrap())
        })
    });
    g.bench_function(BenchmarkId::new("scalar_baseline_scan", n), |b| {
        b.iter(|| {
            let mut e = ScanEnv::paper_default();
            let v = e.from_u32(black_box(&data)).unwrap();
            black_box(baseline::plus_scan(&mut e, &v).unwrap())
        })
    });
    // Small-VLEN machines retire more instructions for the same work.
    g.bench_function(BenchmarkId::new("plus_scan_vlen128", n), |b| {
        b.iter(|| {
            let mut e = ScanEnv::new(EnvConfig::with_vlen(128));
            let v = e.from_u32(black_box(&data)).unwrap();
            black_box(plus_scan(&mut e, &v).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
