//! Golden regression test: the exact dynamic instruction counts of the
//! headline experiments, pinned against a checked-in fixture.
//!
//! The simulator is deterministic and the metric is architectural, so the
//! counts must match **exactly** — any drift means generated code or
//! counting semantics changed, which silently rewrites every table in the
//! paper reproduction. The shape tests in `experiments.rs` catch
//! qualitative regressions; this one catches the quantitative ones.
//!
//! To regenerate after an *intentional* codegen change:
//! `GOLDEN_REGEN=1 cargo test -p scanvec-bench --test golden` — then
//! review the fixture diff like any other code change.

use rvv_cost::{CostModel, CycleEstimator};
use rvv_isa::Lmul;
use scanvec::{ScanEnv, ScanResult};
use scanvec_bench::experiments::{table2_point, table3_point, table4_point, table5_point, Pair};
use scanvec_bench::{env_with, paper_env};
use std::fmt::Write;

const SIZES: [usize; 3] = [100, 1_000, 10_000];
const N: usize = 10_000;

fn measured() -> String {
    let mut s = String::new();
    writeln!(
        s,
        "# Dynamic instruction counts at VLEN=1024, LMUL=1 (llvm14 spill profile)."
    )
    .unwrap();
    writeln!(
        s,
        "# Regenerate with: GOLDEN_REGEN=1 cargo test -p scanvec-bench --test golden"
    )
    .unwrap();
    type Point = fn(&mut ScanEnv, usize) -> ScanResult<Pair>;
    let tables: [(&str, Point); 3] = [
        ("table2_p_add", table2_point),
        ("table3_plus_scan", table3_point),
        ("table4_seg_plus_scan", table4_point),
    ];
    for (name, point) in tables {
        for n in SIZES {
            let p = point(&mut paper_env(), n).expect(name);
            writeln!(s, "{name}/n={n}/ours = {}", p.ours).unwrap();
            writeln!(s, "{name}/n={n}/baseline = {}", p.baseline).unwrap();
        }
    }
    for lmul in Lmul::ALL {
        let (count, _) = table5_point(&mut env_with(1024, lmul), N).expect("table5");
        writeln!(s, "table5_seg_scan/n={N}/m{} = {count}", lmul.regs()).unwrap();
    }
    // The second metric, pinned just as exactly: modeled cycles under the
    // `ara-like` preset for the same LMUL sweep. The estimate is a pure
    // function of the retire stream and the preset, so drift here means
    // either the generated code or the timing model changed.
    for lmul in Lmul::ALL {
        let mut e = env_with(1024, lmul);
        e.attach_tracer(Box::new(CycleEstimator::new(
            CostModel::ara_like(),
            e.stack_region(),
        )));
        table5_point(&mut e, N).expect("table5");
        let cycles = CycleEstimator::from_sink(e.detach_tracer().expect("sink attached"))
            .expect("sink is a CycleEstimator")
            .counters();
        writeln!(
            s,
            "table5_seg_scan_cycles[ara-like]/n={N}/m{} = {}",
            lmul.regs(),
            cycles.total()
        )
        .unwrap();
    }
    // The paper's headline ratios at this configuration (its Table 3/4
    // analogues report 2.85x for the scan and 4.29x for the segmented scan
    // at LMUL=1; our tighter codegen lands higher, and the exact values
    // are pinned here).
    let scan = table3_point(&mut paper_env(), N).expect("scan");
    writeln!(s, "scan/n={N}/speedup = {:.3}", scan.speedup()).unwrap();
    let seg = table4_point(&mut paper_env(), N).expect("seg scan");
    writeln!(s, "seg_scan/n={N}/speedup = {:.3}", seg.speedup()).unwrap();
    s
}

#[test]
fn golden_dynamic_instruction_counts() {
    let got = measured();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_counts.txt");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(path, &got).expect("write fixture");
        eprintln!("fixture regenerated at {path}");
        return;
    }
    let want =
        std::fs::read_to_string(path).expect("fixture missing — regenerate with GOLDEN_REGEN=1");
    // Exact equality, not tolerance: dynamic instruction counts are the
    // paper's metric and the simulator is deterministic.
    assert_eq!(
        got, want,
        "dynamic instruction counts drifted from the checked-in fixture; \
         if the codegen change is intentional, regenerate with GOLDEN_REGEN=1 \
         and review the diff"
    );
}

#[test]
fn golden_speedups_match_paper_qualitatively() {
    // Independent of the fixture: the paper's qualitative claims at the
    // headline configuration. Scan ≈2.85x and seg-scan ≈4.29x in the
    // paper; our codegen is tighter, so both must land at or above the
    // published ratios.
    let scan = table3_point(&mut paper_env(), N).expect("scan");
    let seg = table4_point(&mut paper_env(), N).expect("seg scan");
    assert!(scan.speedup() > 2.85, "scan speedup {}", scan.speedup());
    assert!(seg.speedup() > 4.29, "seg-scan speedup {}", seg.speedup());
}
