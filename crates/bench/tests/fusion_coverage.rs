//! Fusion-coverage golden: for each primitive and algorithm, the exact
//! number of superinstruction windows the fused tier commits and the exact
//! number of instructions retired through fused kernels, pinned against a
//! checked-in fixture.
//!
//! Coverage is a *static-plus-dynamic* property of the generated code: a
//! codegen change that breaks a window shape (say, reordering the scan
//! ladder) silently drops the fused tier back to per-op speed while every
//! architectural test keeps passing. This fixture turns that regression
//! into a diff. Totals retired are pinned alongside so the fused fraction
//! is reviewable in place.
//!
//! To regenerate after an intentional codegen or matcher change:
//! `GOLDEN_REGEN=1 cargo test -p scanvec-bench --test fusion_coverage` —
//! then review the fixture diff like any other code change.

use rand::prelude::*;
use rvv_isa::Sew;
use scanvec::primitives::{plus_scan, seg_plus_scan};
use scanvec::{ExecEngine, ScanEnv, ScanResult};
use scanvec_algos as algos;
use scanvec_bench::{paper_env, random_head_flags};
use std::fmt::Write;

const N: usize = 1_000;

fn fused_env() -> ScanEnv {
    let mut env = paper_env();
    env.set_exec_engine(ExecEngine::Fused);
    env
}

/// Run one workload on a fresh fused-tier environment and format its
/// coverage line: windows committed, ops retired through fused kernels,
/// and total retired.
fn coverage(name: &str, run: impl FnOnce(&mut ScanEnv) -> ScanResult<()>) -> String {
    let mut env = fused_env();
    run(&mut env).unwrap_or_else(|e| panic!("{name}: {e:?}"));
    let stats = env.fused_stats();
    format!(
        "{name}: windows = {}, fused_ops = {}, retired = {}\n",
        stats.windows,
        stats.ops,
        env.retired()
    )
}

fn measured() -> String {
    let mut s = String::new();
    writeln!(
        s,
        "# Fused-tier coverage at VLEN=1024, LMUL=1 (llvm14 spill profile), N = {N}."
    )
    .unwrap();
    writeln!(
        s,
        "# Regenerate with: GOLDEN_REGEN=1 cargo test -p scanvec-bench --test fusion_coverage"
    )
    .unwrap();
    let data: Vec<u32> = (0..N as u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    let flags = random_head_flags(N, 42);

    s += &coverage("plus_scan", |env| {
        let v = env.from_u32(&data)?;
        plus_scan(env, &v).map(|_| ())
    });
    s += &coverage("seg_plus_scan", |env| {
        let v = env.from_u32(&data)?;
        let f = env.from_u32(&flags)?;
        seg_plus_scan(env, &v, &f).map(|_| ())
    });
    s += &coverage("bitonic_sort", |env| {
        let v = env.from_u32(&data[..300])?;
        algos::bitonic_sort(env, &v).map(|_| ())
    });
    s += &coverage("quickhull", |env| {
        let mut rng = StdRng::seed_from_u64(2);
        let points: Vec<(u32, u32)> = (0..200)
            .map(|_| (rng.random_range(0..10_000), rng.random_range(0..10_000)))
            .collect();
        algos::quickhull(env, &points).map(|_| ())
    });
    s += &coverage("spmv", |env| {
        let mut rng = StdRng::seed_from_u64(3);
        let a = algos::random_csr(&mut rng, 40, 64, 6);
        let x: Vec<u32> = (0..64).map(|_| rng.random_range(0..1000)).collect();
        algos::spmv(env, &a, &x).map(|_| ())
    });
    s += &coverage("rle", |env| {
        let v = env.from_u32(&data)?;
        let (rle, _) = algos::rle_encode(env, &v)?;
        let d = env.alloc(Sew::E32, rle.decoded_len())?;
        algos::rle_decode(env, &rle, &d).map(|_| ())
    });
    s += &coverage("histogram", |env| {
        let small: Vec<u32> = data.iter().map(|d| d % 64).collect();
        algos::histogram(env, &small, 64).map(|_| ())
    });
    s += &coverage("line_of_sight", |env| {
        let alt: Vec<u32> = data.iter().map(|d| 900 + d % 200).collect();
        algos::line_of_sight(env, &alt, 1000).map(|_| ())
    });
    s += &coverage("seg_quicksort", |env| {
        let v = env.from_u32(&data[..257])?;
        algos::seg_quicksort(env, &v).map(|_| ())
    });
    s += &coverage("split_radix_sort", |env| {
        let v = env.from_u32(&data[..301])?;
        algos::split_radix_sort(env, &v, 32).map(|_| ())
    });
    s
}

#[test]
fn golden_fusion_coverage() {
    let got = measured();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fusion_coverage.txt");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(path, &got).expect("write fixture");
        eprintln!("fixture regenerated at {path}");
        return;
    }
    let want =
        std::fs::read_to_string(path).expect("fixture missing — regenerate with GOLDEN_REGEN=1");
    assert_eq!(
        got, want,
        "fusion coverage drifted from the checked-in fixture; if the \
         codegen or matcher change is intentional, regenerate with \
         GOLDEN_REGEN=1 and review the diff"
    );
}

#[test]
fn scan_kernels_actually_fuse() {
    // Fixture-independent floor: the workloads the paper's tables hinge on
    // must run a meaningful share of their instructions through fused
    // kernels — losing the scan-ladder or strip-loop shapes is a
    // performance bug even when every count above is regenerated.
    for name in ["plus_scan", "seg_plus_scan"] {
        let mut env = fused_env();
        let data: Vec<u32> = (0..N as u32).collect();
        let v = env.from_u32(&data).unwrap();
        if name == "plus_scan" {
            plus_scan(&mut env, &v).unwrap();
        } else {
            let flags = env.from_u32(&random_head_flags(N, 42)).unwrap();
            seg_plus_scan(&mut env, &v, &flags).unwrap();
        }
        let stats = env.fused_stats();
        assert!(stats.windows > 0, "{name}: no fused windows committed");
        assert!(
            stats.ops * 5 >= env.retired(),
            "{name}: fused coverage below 20% ({} of {})",
            stats.ops,
            env.retired()
        );
    }
}
