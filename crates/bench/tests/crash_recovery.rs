//! Kill-based recovery tests against the real `run_all` binary: a
//! journaled sweep interrupted by a deterministic abort — or by an actual
//! `SIGKILL` delivered mid-sweep — and then resumed must reproduce the
//! uninterrupted run's deterministic outputs byte for byte.
//!
//! These are child-process tests (`CARGO_BIN_EXE_run_all`): the
//! in-process truncation/resume coverage lives in `rvv-batch`'s
//! `journaled` suite; what only a separate process can prove is that the
//! on-disk journal a *dead* process leaves behind is resumable.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const RUN_ALL: &str = env!("CARGO_BIN_EXE_run_all");

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "rvv-crash-recovery-{tag}-{}-{:p}",
        std::process::id(),
        &tag as *const _
    ));
    fs::create_dir_all(&d).unwrap();
    d
}

/// `run_all --max-n 1000 --journal <extra>` in `dir` (the binary writes
/// relative `results/` paths, so the working directory isolates the run).
fn run_all(dir: &Path, extra: &[&str]) -> std::process::ExitStatus {
    Command::new(RUN_ALL)
        .current_dir(dir)
        .args(["--max-n", "1000", "--journal"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn run_all")
}

fn sweep_json(dir: &Path) -> Vec<u8> {
    fs::read(dir.join("results/parallel_sweep.json")).expect("parallel_sweep.json")
}

#[test]
fn crash_at_every_stage_then_resume_matches_the_uninterrupted_run() {
    for threads in ["1", "4"] {
        let dir = tmpdir("crash-at");
        // Uninterrupted reference.
        assert!(run_all(&dir, &["--threads", threads]).success());
        let golden = sweep_json(&dir);
        fs::remove_dir_all(dir.join("results")).unwrap();

        // Crash after 5 journaled points (SIGABRT — same on-disk state as
        // kill -9), crash *again* on the resume, then finish: the journal
        // must survive repeated interruption.
        let st = run_all(&dir, &["--threads", threads, "--crash-at", "5"]);
        assert!(!st.success(), "crash run must die");
        let st = run_all(&dir, &["--threads", threads, "--resume", "--crash-at", "5"]);
        assert!(!st.success(), "second crash run must die");
        assert!(run_all(&dir, &["--threads", threads, "--resume"]).success());

        assert_eq!(
            sweep_json(&dir),
            golden,
            "resumed run diverged at --threads {threads}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn derived_crash_points_behave_like_explicit_ones() {
    let dir = tmpdir("crash-seed");
    assert!(run_all(&dir, &["--threads", "2"]).success());
    let golden = sweep_json(&dir);
    fs::remove_dir_all(dir.join("results")).unwrap();

    // `--crash-seed` derives the abort ordinal (1..=jobs) from the seed,
    // the host-level analogue of the chaos suite's derived fault plans.
    let st = run_all(&dir, &["--threads", "2", "--crash-seed", "0xc4a5"]);
    assert!(!st.success(), "derived crash must die");
    assert!(run_all(&dir, &["--threads", "2", "--resume"]).success());
    assert_eq!(sweep_json(&dir), golden);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sigkill_mid_sweep_resumes_to_the_uninterrupted_outputs() {
    let dir = tmpdir("sigkill");
    assert!(run_all(&dir, &["--threads", "4"]).success());
    let golden = sweep_json(&dir);
    fs::remove_dir_all(dir.join("results")).unwrap();

    // Race a real kill against the sweep: spawn, wait until the journal
    // holds at least one data record, then SIGKILL (`Child::kill` on
    // unix). The child may win the race and exit cleanly — that's fine,
    // resume over a complete journal is also a supported path.
    let mut child = Command::new(RUN_ALL)
        .current_dir(&dir)
        .args(["--max-n", "1000", "--journal", "--threads", "4"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn run_all");
    let journal = dir.join("results/run_all.journal");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if child.try_wait().expect("try_wait").is_some() {
            break; // child finished before the kill landed
        }
        // Any growth past the header record means data records exist.
        let big_enough = fs::metadata(&journal)
            .map(|m| m.len() > 256)
            .unwrap_or(false);
        if big_enough {
            child.kill().expect("SIGKILL");
            break;
        }
        assert!(Instant::now() < deadline, "journal never appeared");
        std::thread::sleep(Duration::from_millis(2));
    }
    child.wait().expect("reap child");

    assert!(run_all(&dir, &["--threads", "4", "--resume"]).success());
    assert_eq!(sweep_json(&dir), golden, "post-SIGKILL resume diverged");
    fs::remove_dir_all(&dir).unwrap();
}
