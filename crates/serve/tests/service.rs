//! In-process service tests: the served digest contract (byte-identical
//! to a serial batch-runner reference at every worker count), throughput,
//! deadline cancellation, and chaos determinism.

use rvv_batch::BatchRunner;
use rvv_ckpt::fnv1a;
use rvv_serve::http::request;
use rvv_serve::{JobSpec, ServeOptions, Server};
use scanvec::Engine;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SPECS: &[&str] = &[
    "plus_scan n=1000 vlen=256 lmul=m1 seed=1",
    "p_add n=500 vlen=128 lmul=m2 seed=2",
    "seg_scan n=800 vlen=512 lmul=m1 seed=3",
    "radix_sort n=300 vlen=256 lmul=m4 seed=4",
    "plus_scan n=2000 vlen=1024 lmul=m8 seed=5",
    "p_add n=50 vlen=64 lmul=m1 seed=6",
    "seg_scan n=123 vlen=128 lmul=m1 seed=7",
    "radix_sort n=77 vlen=512 lmul=m2 seed=8",
    "plus_scan n=640 vlen=256 lmul=m2 seed=9",
    "p_add n=4096 vlen=1024 lmul=m1 seed=10",
    "seg_scan n=2048 vlen=256 lmul=m4 seed=11",
    "radix_sort n=512 vlen=128 lmul=m1 seed=12",
];

fn specs() -> Vec<JobSpec> {
    SPECS.iter().map(|s| s.parse().unwrap()).collect()
}

/// The uninterrupted serial reference: the same jobs (same `job-<id>`
/// names a fresh server assigns), run through the plain batch runner on
/// an engine configured like the service's, formatted exactly as
/// `GET /sweeps/<id>` formats a completed sweep.
fn serial_reference(specs: &[JobSpec]) -> String {
    let engine = Arc::new(Engine::builder().default_fuel_budget(1_000_000_000).build());
    let jobs = specs
        .iter()
        .enumerate()
        .map(|(i, s)| s.to_job(format!("job-{}", i + 1)))
        .collect();
    let result = BatchRunner::with_engine(1, engine).run(jobs);
    let mut body = String::new();
    for r in &result.reports {
        body.push_str(&r.stable_line());
        body.push('\n');
    }
    format!(
        "complete jobs={}\ndigest={:#018x}\n{body}",
        result.reports.len(),
        fnv1a(body.as_bytes())
    )
}

fn submit_sweep(addr: &str, specs: &[JobSpec]) -> u64 {
    let body: String = specs.iter().map(|s| format!("{s}\n")).collect();
    let (status, reply) = request(addr, "POST", "/sweeps", &body).unwrap();
    assert_eq!(status, 202, "{reply}");
    reply
        .lines()
        .next()
        .unwrap()
        .strip_prefix("sweep ")
        .unwrap()
        .parse()
        .unwrap()
}

fn wait_sweep(addr: &str, sweep: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = request(addr, "GET", &format!("/sweeps/{sweep}"), "").unwrap();
        assert_eq!(status, 200, "{body}");
        if body.starts_with("complete") {
            return body;
        }
        assert!(Instant::now() < deadline, "sweep {sweep} never completed");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn served_digest_matches_serial_reference_at_every_thread_count() {
    let specs = specs();
    let expected = serial_reference(&specs);
    for threads in [1usize, 2, 4] {
        let server = Server::spawn(
            "127.0.0.1:0",
            ServeOptions {
                threads,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let addr = server.addr.to_string();
        let sweep = submit_sweep(&addr, &specs);
        let body = wait_sweep(&addr, sweep);
        assert_eq!(
            body, expected,
            "served digest diverged at {threads} threads"
        );
        server.shutdown().unwrap();
    }
}

#[test]
fn throughput_clears_a_thousand_jobs_per_minute() {
    let specs: Vec<JobSpec> = (0..100)
        .map(|i| {
            format!("p_add n=8 vlen=128 lmul=m1 seed={i}")
                .parse()
                .unwrap()
        })
        .collect();
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeOptions {
            threads: 4,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr.to_string();
    let started = Instant::now();
    let sweep = submit_sweep(&addr, &specs);
    wait_sweep(&addr, sweep);
    let elapsed = started.elapsed();
    // The acceptance floor is 1000 jobs/min; 100 jobs must clear in 6 s.
    assert!(
        elapsed <= Duration::from_secs(6),
        "100 jobs took {elapsed:?} ({:.0} jobs/min)",
        100.0 * 60.0 / elapsed.as_secs_f64()
    );
    server.shutdown().unwrap();
}

#[test]
fn overdue_jobs_are_cancelled_and_reported() {
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeOptions {
            threads: 1,
            deadline: Some(Duration::from_millis(1)),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr.to_string();
    let sweep = submit_sweep(&addr, &["radix_sort n=500000 vlen=256".parse().unwrap()]);
    let body = wait_sweep(&addr, sweep);
    assert!(body.contains("cancelled at="), "{body}");
    let (_, stats) = request(&addr, "GET", "/stats", "").unwrap();
    assert!(stats.contains("cancelled=1"), "{stats}");
    server.shutdown().unwrap();
}

/// One full chaos run: submit `rounds` single-spec sweeps (recording the
/// shed pattern), wait for everything accepted, return the shed pattern
/// and the final stats body.
fn chaos_run(seed: u64, rounds: usize) -> (Vec<bool>, String, Vec<String>) {
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeOptions {
            threads: 2,
            inject_seed: Some(seed),
            retries: 2,
            queue_depth: 4096,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr.to_string();
    let mut shed = Vec::with_capacity(rounds);
    let mut accepted = Vec::new();
    for i in 0..rounds {
        let spec = format!("plus_scan n=200 vlen=256 lmul=m1 seed={i}");
        let (status, reply) = request(&addr, "POST", "/sweeps", &spec).unwrap();
        match status {
            202 => {
                shed.push(false);
                accepted.push(
                    reply
                        .lines()
                        .next()
                        .unwrap()
                        .strip_prefix("sweep ")
                        .unwrap()
                        .parse::<u64>()
                        .unwrap(),
                );
            }
            429 => shed.push(true),
            other => panic!("unexpected status {other}: {reply}"),
        }
    }
    let bodies: Vec<String> = accepted.iter().map(|&s| wait_sweep(&addr, s)).collect();
    let (_, stats) = request(&addr, "GET", "/stats", "").unwrap();
    server.shutdown().unwrap();
    // Only the chaos-governed counters are deterministic; queue high-water
    // and session-pool counts depend on which worker won which job.
    let deterministic: Vec<&str> = [
        "submitted=",
        "completed=",
        "cancelled=",
        "quarantined=",
        "retries=",
        "shed=",
        "injected_shed=",
        "admitted=",
    ]
    .into_iter()
    .flat_map(|prefix| stats.lines().filter(move |l| l.starts_with(prefix)))
    .collect();
    (shed, deterministic.join("\n"), bodies)
}

#[test]
fn chaos_sheds_retries_and_results_are_deterministic_for_a_seed() {
    let (shed_a, stats_a, bodies_a) = chaos_run(1234, 24);
    let (shed_b, stats_b, bodies_b) = chaos_run(1234, 24);
    assert_eq!(shed_a, shed_b, "shed pattern must be seed-deterministic");
    assert!(shed_a.iter().any(|&s| s), "seed 1234 sheds at least once");
    assert!(!shed_a.iter().all(|&s| s), "and accepts at least once");
    assert_eq!(
        bodies_a, bodies_b,
        "chaos sweep results must be deterministic"
    );
    assert_eq!(
        stats_a, stats_b,
        "shed/retry counters must be deterministic"
    );
    let (shed_c, _, _) = chaos_run(99, 24);
    assert_ne!(shed_a, shed_c, "different seeds draw different chaos");
}
