//! Child-process tests against the real `rvv-serve` binary: the
//! journal-before-acknowledge contract under `abort()` (same on-disk
//! state as `kill -9`), a real SIGKILL, and the SIGTERM graceful drain.
//! In every case a restart with `--resume` must serve the interrupted
//! sweep byte-identically to the uninterrupted serial reference.

use rvv_batch::BatchRunner;
use rvv_ckpt::fnv1a;
use rvv_serve::http::request;
use rvv_serve::JobSpec;
use scanvec::Engine;
use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SERVE: &str = env!("CARGO_BIN_EXE_rvv-serve");

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "rvv-serve-crash-{tag}-{}-{:p}",
        std::process::id(),
        &tag as *const _
    ));
    fs::create_dir_all(&d).unwrap();
    d
}

/// A spawned server. Keeps the stdout pipe open for the child's lifetime:
/// the binary prints a final line on graceful exit, and a closed pipe
/// would turn that into a broken-pipe failure.
struct ServeProc {
    child: Child,
    addr: String,
    stdout: BufReader<ChildStdout>,
}

impl ServeProc {
    fn spawn(dir: &Path, extra: &[&str]) -> ServeProc {
        let mut child = Command::new(SERVE)
            .current_dir(dir)
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn rvv-serve");
        let mut stdout = BufReader::new(child.stdout.take().unwrap());
        let mut line = String::new();
        stdout.read_line(&mut line).expect("listening line");
        let addr = line
            .trim()
            .strip_prefix("rvv-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
            .to_string();
        ServeProc {
            child,
            addr,
            stdout,
        }
    }

    fn wait(mut self) -> std::process::ExitStatus {
        let status = self.child.wait().expect("reap rvv-serve");
        let mut rest = String::new();
        use std::io::Read;
        let _ = self.stdout.read_to_string(&mut rest);
        status
    }
}

/// Forty small mixed-workload specs — enough that a crash mid-drain
/// leaves real work both done and pending.
fn forty_specs() -> Vec<JobSpec> {
    let workloads = ["p_add", "plus_scan", "seg_scan", "radix_sort"];
    let vlens = [128u32, 256, 512];
    let lmuls = ["m1", "m2", "m4"];
    (0..40u64)
        .map(|i| {
            format!(
                "{} n={} vlen={} lmul={} seed={i}",
                workloads[(i % 4) as usize],
                50 + i * 13,
                vlens[(i % 3) as usize],
                lmuls[(i % 3) as usize],
            )
            .parse()
            .unwrap()
        })
        .collect()
}

/// The uninterrupted reference body for `GET /sweeps/1` over `specs`
/// submitted as one sweep to a fresh server (ids 1..=N).
fn serial_reference(specs: &[JobSpec]) -> String {
    let engine = Arc::new(Engine::builder().default_fuel_budget(1_000_000_000).build());
    let jobs = specs
        .iter()
        .enumerate()
        .map(|(i, s)| s.to_job(format!("job-{}", i + 1)))
        .collect();
    let result = BatchRunner::with_engine(1, engine).run(jobs);
    let mut body = String::new();
    for r in &result.reports {
        body.push_str(&r.stable_line());
        body.push('\n');
    }
    format!(
        "complete jobs={}\ndigest={:#018x}\n{body}",
        result.reports.len(),
        fnv1a(body.as_bytes())
    )
}

fn submit_sweep(addr: &str, specs: &[JobSpec]) -> u64 {
    let body: String = specs.iter().map(|s| format!("{s}\n")).collect();
    let (status, reply) = request(addr, "POST", "/sweeps", &body).unwrap();
    assert_eq!(status, 202, "{reply}");
    reply
        .lines()
        .next()
        .unwrap()
        .strip_prefix("sweep ")
        .unwrap()
        .parse()
        .unwrap()
}

fn wait_sweep(addr: &str, sweep: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = request(addr, "GET", &format!("/sweeps/{sweep}"), "").unwrap();
        assert_eq!(status, 200, "{body}");
        if body.starts_with("complete") {
            return body;
        }
        assert!(Instant::now() < deadline, "sweep {sweep} never completed");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Graceful stop via the API, then assert exit code 0.
fn shutdown_ok(proc_: ServeProc) {
    let (status, _) = request(&proc_.addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(status, 202);
    assert!(proc_.wait().success(), "graceful shutdown must exit 0");
}

#[test]
fn crash_mid_drain_then_resume_is_byte_identical_at_every_thread_count() {
    let specs = forty_specs();
    let expected = serial_reference(&specs);
    for threads in ["1", "2", "4"] {
        let dir = tmpdir("abort");
        // Crash (abort(), the deterministic kill -9) after the 5th
        // journaled completion: real work done, real work pending.
        let crashed = ServeProc::spawn(
            &dir,
            &[
                "--journal",
                "q.journal",
                "--crash-after",
                "5",
                "--threads",
                threads,
            ],
        );
        let sweep = submit_sweep(&crashed.addr, &specs);
        assert_eq!(sweep, 1);
        let status = crashed.wait();
        assert!(!status.success(), "crash run must die (threads={threads})");

        // Restart, resume: completed results replay verbatim, pending
        // jobs re-run — the digest must match the uninterrupted run.
        let resumed = ServeProc::spawn(
            &dir,
            &["--journal", "q.journal", "--resume", "--threads", threads],
        );
        let body = wait_sweep(&resumed.addr, 1);
        assert_eq!(
            body, expected,
            "post-crash digest diverged (threads={threads})"
        );
        shutdown_ok(resumed);
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn sigterm_mid_sweep_drains_exits_zero_and_resumes_byte_identical() {
    let specs = forty_specs();
    let expected = serial_reference(&specs);
    let dir = tmpdir("sigterm");
    let proc_ = ServeProc::spawn(&dir, &["--journal", "q.journal", "--threads", "2"]);
    let sweep = submit_sweep(&proc_.addr, &specs);
    assert_eq!(sweep, 1);
    // SIGTERM mid-sweep: the service must stop accepting, drain the
    // queue to the journal, and exit 0 — Child::kill would be SIGKILL,
    // so go through kill(1).
    let term = Command::new("kill")
        .args(["-TERM", &proc_.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    assert!(proc_.wait().success(), "SIGTERM drain must exit 0");

    let resumed = ServeProc::spawn(
        &dir,
        &["--journal", "q.journal", "--resume", "--threads", "2"],
    );
    let body = wait_sweep(&resumed.addr, 1);
    assert_eq!(body, expected, "post-SIGTERM digest diverged");
    shutdown_ok(resumed);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sigkill_mid_drain_then_resume_is_byte_identical() {
    let specs = forty_specs();
    let expected = serial_reference(&specs);
    let dir = tmpdir("sigkill");
    let mut proc_ = ServeProc::spawn(&dir, &["--journal", "q.journal", "--threads", "2"]);
    let sweep = submit_sweep(&proc_.addr, &specs);
    assert_eq!(sweep, 1);
    // Race a real SIGKILL against the drain: wait until at least one job
    // has completed so the kill lands mid-sweep (the child may still win
    // and finish everything — resume over a complete journal is also a
    // supported path).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if proc_.child.try_wait().expect("try_wait").is_some() {
            break;
        }
        let progressed = request(&proc_.addr, "GET", "/stats", "")
            .map(|(_, stats)| !stats.contains("completed=0\n"))
            .unwrap_or(false);
        if progressed {
            proc_.child.kill().expect("SIGKILL");
            break;
        }
        assert!(Instant::now() < deadline, "service never made progress");
        std::thread::sleep(Duration::from_millis(2));
    }
    proc_.wait();

    let resumed = ServeProc::spawn(
        &dir,
        &["--journal", "q.journal", "--resume", "--threads", "2"],
    );
    let body = wait_sweep(&resumed.addr, 1);
    assert_eq!(body, expected, "post-SIGKILL digest diverged");
    shutdown_ok(resumed);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_against_a_foreign_journal_is_refused() {
    let dir = tmpdir("foreign");
    fs::write(dir.join("q.journal"), b"not a journal at all").unwrap();
    let status = Command::new(SERVE)
        .current_dir(&dir)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--journal",
            "q.journal",
            "--resume",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn rvv-serve");
    assert!(!status.success(), "foreign journal must be refused");
    fs::remove_dir_all(&dir).unwrap();
}
