//! The storage-integrity acceptance contract, end to end:
//!
//! * a journal with one corrupted interior record salvages all the
//!   others and a `--resume` reaches a byte-identical sweep digest at
//!   worker counts {1, 2, 4} after deterministic re-execution;
//! * a journal append failure walks the degradation ladder — `/healthz`
//!   flips to `storage=degraded`, new submissions shed with 503, the
//!   in-flight sweep still drains — with zero panics.

use rvv_serve::http::request;
use rvv_serve::{ServeOptions, Server};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "rvv-serve-storage-{tag}-{}-{:p}",
        std::process::id(),
        &tag as *const _
    ));
    fs::create_dir_all(&d).unwrap();
    d
}

/// A small mixed sweep: enough records that an interior one can be
/// corrupted with live records after it.
fn sweep_body() -> String {
    let workloads = ["p_add", "plus_scan", "seg_scan", "radix_sort"];
    (0..8u64)
        .map(|i| {
            format!(
                "{} n={} vlen={} lmul=m{} seed={i}\n",
                workloads[(i % 4) as usize],
                40 + i * 11,
                if i % 2 == 0 { 128 } else { 256 },
                1 << (i % 2),
            )
        })
        .collect()
}

fn submit(addr: &str, body: &str) -> (u16, String) {
    request(addr, "POST", "/sweeps", body).unwrap()
}

fn wait_sweep(addr: &str, sweep: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = request(addr, "GET", &format!("/sweeps/{sweep}"), "").unwrap();
        assert_eq!(status, 200, "{body}");
        if body.starts_with("complete") {
            return body;
        }
        assert!(Instant::now() < deadline, "sweep {sweep} never completed");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// `(offset, size)` of each record frame in the journal, header first.
fn record_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pos = 0;
    while pos + 12 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        spans.push((pos, 12 + len));
        pos += 12 + len;
    }
    assert_eq!(pos, bytes.len(), "journal parses into whole records");
    spans
}

#[test]
fn corrupted_interior_record_salvages_and_resumes_byte_identical() {
    // Phase 1: an uninterrupted run builds the reference digest and a
    // fully-drained journal.
    let dir = tmpdir("salvage");
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeOptions {
            journal: Some(dir.join("q.journal")),
            threads: 2,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr.to_string();
    let (status, reply) = submit(&addr, &sweep_body());
    assert_eq!(status, 202, "{reply}");
    let reference = wait_sweep(&addr, 1);
    server.shutdown().unwrap();

    // Corrupt one *interior* done record (payload tag 2, not the last
    // record in the file): the jobs after it must survive salvage.
    let clean = fs::read(dir.join("q.journal")).unwrap();
    let spans = record_spans(&clean);
    let (start, size) = spans[1..spans.len() - 1]
        .iter()
        .copied()
        .find(|&(s, _)| clean[s + 12] == 2)
        .expect("an interior done record");
    let mut corrupt = clean.clone();
    corrupt[start + size / 2] ^= 0x40;

    // Phase 2: resume over the damaged journal at every worker count.
    // The lost completion re-runs deterministically; everything else
    // replays verbatim — so the digest is byte-identical every time.
    for threads in [1usize, 2, 4] {
        let dir2 = tmpdir(&format!("salvage-t{threads}"));
        fs::write(dir2.join("q.journal"), &corrupt).unwrap();
        let resumed = Server::spawn(
            "127.0.0.1:0",
            ServeOptions {
                journal: Some(dir2.join("q.journal")),
                resume: true,
                threads,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let addr = resumed.addr.to_string();
        let body = wait_sweep(&addr, 1);
        assert_eq!(body, reference, "digest diverged (threads={threads})");
        let (_, stats) = request(&addr, "GET", "/stats", "").unwrap();
        assert!(stats.contains("salvaged_records=1"), "{stats}");
        assert!(
            dir2.join("q.journal.salvage.txt").exists(),
            "salvage manifest written"
        );
        let manifest = fs::read_to_string(dir2.join("q.journal.salvage.txt")).unwrap();
        assert!(manifest.contains(&format!("offset {start}")), "{manifest}");
        resumed.shutdown().unwrap();
        fs::remove_dir_all(&dir2).unwrap();
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn append_failure_degrades_storage_sheds_and_drains() {
    use rvv_ckpt::{ChaosBackend, ChaosPlan, StorageBackend};
    // Write op 0 is the journal header, ops 1-2 the first sweep's two
    // submit records; every later append (the done records, the next
    // submit) fails hard.
    let chaos = Arc::new(ChaosBackend::new(ChaosPlan {
        fail_writes_after: Some(3),
        ..ChaosPlan::quiet()
    }));
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeOptions {
            journal: Some(PathBuf::from("/j/q.journal")),
            storage: Some(Arc::clone(&chaos) as Arc<dyn StorageBackend>),
            threads: 2,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr.to_string();
    let (status, _) = request(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);

    // The first sweep is journaled and acknowledged before the disk dies.
    let (status, reply) = submit(&addr, "p_add n=32 seed=1\nplus_scan n=48 seed=2\n");
    assert_eq!(status, 202, "{reply}");
    // Its done-record appends fail, but the in-flight jobs still drain
    // to completion in memory — degrade, don't die.
    let body = wait_sweep(&addr, 1);
    assert!(body.starts_with("complete jobs=2"), "{body}");

    // The ladder: degraded healthz, 503 sheds, stats tell the story.
    let (status, health) = request(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!((status, health.as_str()), (503, "storage=degraded\n"));
    let (status, reply) = submit(&addr, "p_add n=8 seed=3\n");
    assert_eq!(status, 503, "{reply}");
    assert!(reply.contains("storage degraded"), "{reply}");
    let (_, stats) = request(&addr, "GET", "/stats", "").unwrap();
    assert!(stats.contains("storage_degraded=true"), "{stats}");
    assert!(!stats.contains("journal_errors=0"), "{stats}");

    // An operator reset closes the breaker; the still-broken disk
    // re-trips it on the next append, again without a false ack.
    let (status, _) = request(&addr, "POST", "/breakers/reset", "").unwrap();
    assert_eq!(status, 200);
    let (status, _) = request(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    let (status, _) = submit(&addr, "p_add n=8 seed=4\n");
    assert_eq!(status, 503);
    let (status, _) = request(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 503);

    // Shutdown still drains; the final journal sync may honestly report
    // the broken disk, but nothing panics.
    let _ = server.shutdown();
}
