//! Shared service state: the durable queue, admission control, breakers,
//! deadline registry, and the job/sweep tables every connection handler
//! and worker thread reads through one `Arc`.

use crate::spec::JobSpec;
use rvv_batch::AdmissionGate;
use rvv_ckpt::queue::{QueueJournal, QueueRecovery};
use rvv_ckpt::{fnv1a, fs_backend, write_atomic_on, StorageBackend};
use rvv_fault::ServeFault;
use scanvec::{CancelToken, Engine, EnvConfig, ExecEngine};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The journal tag binding a queue file to this service (see
/// [`QueueJournal::create`]): a resume against a journal some other tool
/// wrote is refused instead of misinterpreted.
pub const JOURNAL_TAG: &str = "rvv-serve/v1";

/// Everything the service is configured with at startup. Immutable once
/// the server is running — tenants share one policy.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads draining the queue.
    pub threads: usize,
    /// Admission-control queue depth: submissions beyond this many
    /// outstanding jobs are shed with 429 + Retry-After.
    pub queue_depth: usize,
    /// Durable queue journal path (`None` = in-memory only: no crash
    /// survival, used by throughput tests).
    pub journal: Option<PathBuf>,
    /// Resume from an existing journal instead of truncating it.
    pub resume: bool,
    /// Per-job wall-clock deadline, measured from the moment a worker
    /// starts the job; the deadline supervisor cancels overdue jobs
    /// cooperatively.
    pub deadline: Option<Duration>,
    /// Retries per failed job (attempts = retries + 1), spaced by the
    /// deterministic backoff schedule.
    pub retries: u32,
    /// Chaos seed: derive a [`ServeFault`] per submission/job (shed,
    /// latency, machine faults). `None` = no injected chaos.
    pub inject_seed: Option<u64>,
    /// Crash harness: `std::process::abort()` once this many *done*
    /// records have been journaled — a deterministic stand-in for
    /// `kill -9` mid-drain that the recovery tests drive.
    pub crash_after: Option<u64>,
    /// Execution tier sessions run on.
    pub exec: ExecEngine,
    /// Consecutive poisoned (panicked) jobs on one configuration before
    /// its circuit breaker opens and further jobs are quarantined.
    pub breaker_threshold: u32,
    /// Engine-default instruction watchdog per attempt.
    pub watchdog: Option<u64>,
    /// Storage backend the journal runs on. `None` = the real filesystem;
    /// tests hand in a chaos backend to drive the degradation ladder
    /// deterministically.
    pub storage: Option<Arc<dyn StorageBackend>>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            threads: 2,
            queue_depth: 256,
            journal: None,
            resume: false,
            deadline: None,
            retries: 1,
            inject_seed: None,
            crash_after: None,
            exec: ExecEngine::Plan,
            breaker_threshold: 3,
            watchdog: Some(1_000_000_000),
            storage: None,
        }
    }
}

/// One job sitting in (or recovered into) the run queue.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Queue-assigned id (monotonic, journal-stable).
    pub id: u64,
    /// The sweep this job belongs to.
    pub sweep: u64,
    /// What to run.
    pub spec: JobSpec,
}

/// Where a job is in its lifecycle. `Done` holds the stable report line —
/// the only result form the service keeps (and journals).
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Accepted and journaled, waiting for a worker.
    Queued,
    /// A worker is running it.
    Running,
    /// Finished; the stable line is final.
    Done(String),
}

/// Why a submission was refused.
#[derive(Debug)]
pub enum SubmitError {
    /// The service is shutting down; nothing new is accepted.
    Draining,
    /// Admission control shed the submission (genuine overload or
    /// injected chaos): 429 + Retry-After.
    Overloaded,
    /// The spec failed validation; the message names the field.
    Invalid(String),
    /// Storage is degraded (a journal append failed now or earlier): the
    /// job is NOT accepted — the durability contract is
    /// journal-before-acknowledge, and acknowledging without a journal
    /// would be a silent lie. Clients see 503 and should retry elsewhere
    /// or later; in-flight jobs keep draining.
    Storage(String),
}

#[derive(Debug, Default)]
struct Breaker {
    consecutive_poisoned: u32,
    open: bool,
}

/// Monotonic service counters, all quarantined from job results: they
/// describe the service's behavior, not the sweeps'.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Jobs accepted (journaled and queued).
    pub submitted: AtomicU64,
    /// Jobs finished, any outcome.
    pub completed: AtomicU64,
    /// Jobs whose outcome was `Cancelled` (deadline or shutdown).
    pub cancelled: AtomicU64,
    /// Jobs refused by an open circuit breaker.
    pub quarantined: AtomicU64,
    /// Submissions shed by injected chaos (a subset of the gate's total
    /// shed count, which also counts genuine overload).
    pub injected_shed: AtomicU64,
    /// Retry attempts consumed across all jobs.
    pub retries: AtomicU64,
    /// Done records journaled (the crash harness counts these).
    pub done_records: AtomicU64,
    /// Journal appends that failed (each one trips or re-confirms the
    /// storage breaker).
    pub journal_errors: AtomicU64,
    /// Times a poisoned lock was recovered instead of propagating the
    /// panic to the next caller.
    pub lock_poisoned: AtomicU64,
    /// Journal records quarantined by salvage during the last resume.
    pub salvaged: AtomicU64,
}

/// The shared state behind one service instance.
pub struct ServeState {
    /// The engine every worker session comes from.
    pub engine: Arc<Engine>,
    /// Startup configuration.
    pub opts: ServeOptions,
    /// Admission control (bounded queue depth, shed counters).
    pub gate: AdmissionGate,
    /// Service counters.
    pub counters: ServeCounters,
    queue: Mutex<VecDeque<QueuedJob>>,
    available: Condvar,
    journal: Option<Mutex<QueueJournal>>,
    jobs: Mutex<BTreeMap<u64, JobStatus>>,
    sweeps: Mutex<BTreeMap<u64, Vec<u64>>>,
    breakers: Mutex<HashMap<EnvConfig, Breaker>>,
    deadlines: Mutex<Vec<(Instant, u64, CancelToken)>>,
    next_job_id: AtomicU64,
    next_sweep_id: AtomicU64,
    submissions: AtomicU64,
    draining: AtomicBool,
    storage: Arc<dyn StorageBackend>,
    storage_degraded: AtomicBool,
}

fn encode_payload(sweep: u64, text: &str) -> Vec<u8> {
    format!("sweep={sweep} {text}").into_bytes()
}

fn decode_payload(payload: &[u8]) -> io::Result<(u64, String)> {
    let bad = || {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "queue payload missing sweep= prefix",
        )
    };
    let text = std::str::from_utf8(payload).map_err(|_| bad())?;
    let rest = text.strip_prefix("sweep=").ok_or_else(bad)?;
    let (sid, body) = rest.split_once(' ').ok_or_else(bad)?;
    let sid: u64 = sid.parse().map_err(|_| bad())?;
    Ok((sid, body.to_string()))
}

impl ServeState {
    /// Build the state: construct the engine, open (or resume) the
    /// journal, and re-enqueue any pending work a crash left behind.
    pub fn new(opts: ServeOptions) -> io::Result<Arc<ServeState>> {
        let mut builder = Engine::builder().default_exec_engine(opts.exec);
        if let Some(fuel) = opts.watchdog {
            builder = builder.default_fuel_budget(fuel);
        }
        let engine = Arc::new(builder.build());
        let storage = opts.storage.clone().unwrap_or_else(fs_backend);
        let mut journal = None;
        let mut recovery = QueueRecovery::default();
        if let Some(path) = &opts.journal {
            if opts.resume && storage.exists(path) {
                let (j, r) = QueueJournal::resume_on(&storage, path, JOURNAL_TAG, 1)?;
                journal = Some(Mutex::new(j));
                recovery = r;
            } else {
                journal = Some(Mutex::new(QueueJournal::create_on(
                    &storage,
                    path,
                    JOURNAL_TAG,
                    1,
                )?));
            }
        }
        let state = ServeState {
            engine,
            gate: AdmissionGate::new(opts.queue_depth),
            counters: ServeCounters::default(),
            opts,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            journal,
            jobs: Mutex::new(BTreeMap::new()),
            sweeps: Mutex::new(BTreeMap::new()),
            breakers: Mutex::new(HashMap::new()),
            deadlines: Mutex::new(Vec::new()),
            next_job_id: AtomicU64::new(1),
            next_sweep_id: AtomicU64::new(1),
            submissions: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            storage,
            storage_degraded: AtomicBool::new(false),
        };
        state.restore(recovery)?;
        Ok(Arc::new(state))
    }

    /// Lock one of the state's mutexes, recovering from poison instead of
    /// propagating it: one panicking handler thread must not brick every
    /// subsequent request. The tables a panicked holder may have left
    /// half-updated describe *job bookkeeping*, not results — recovered
    /// state is at worst missing one status transition, which the
    /// counters surface via `lock_poisoned` in `/stats`.
    fn lock<'a, T>(&self, m: &'a Mutex<T>) -> MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|poisoned| {
            self.counters.lock_poisoned.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// Fold a journal replay back into live state: completed jobs keep
    /// their recorded lines verbatim (this is what makes post-crash
    /// digests byte-identical), pending jobs re-enter the queue.
    /// Quarantined (salvaged) ranges are surfaced — counted in `/stats`,
    /// logged, and written to a `<journal>.salvage.txt` manifest — and
    /// their lost work is already accounted for by the queue replay: a
    /// lost done re-pends its job for deterministic re-execution, a lost
    /// submit is reconstructed from its surviving done.
    fn restore(&self, recovery: QueueRecovery) -> io::Result<()> {
        if !recovery.salvage.is_empty() {
            self.counters
                .salvaged
                .fetch_add(recovery.salvage.len() as u64, Ordering::Relaxed);
            let mut manifest = String::new();
            for entry in &recovery.salvage {
                eprintln!("serve: journal salvage: {entry}");
                manifest.push_str(&entry.to_string());
                manifest.push('\n');
            }
            if let Some(path) = &self.opts.journal {
                let mut name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                name.push_str(".salvage.txt");
                let manifest_path = path.with_file_name(name);
                if let Err(e) = write_atomic_on(&self.storage, &manifest_path, manifest.as_bytes())
                {
                    eprintln!(
                        "serve: could not write salvage manifest {}: {e}",
                        manifest_path.display()
                    );
                }
            }
        }
        if recovery.max_id == 0 {
            return Ok(());
        }
        let mut jobs = self.lock(&self.jobs);
        let mut sweeps = self.lock(&self.sweeps);
        let mut queue = self.lock(&self.queue);
        let mut max_sweep = 0u64;
        for item in &recovery.completed {
            let (sid, line) = decode_payload(&item.payload)?;
            jobs.insert(item.id, JobStatus::Done(line));
            sweeps.entry(sid).or_default().push(item.id);
            max_sweep = max_sweep.max(sid);
            self.counters.submitted.fetch_add(1, Ordering::Relaxed);
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
        }
        let pending = recovery.pending.len();
        if pending > 0 && !self.gate.try_admit(pending) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "journal has {pending} pending jobs but --queue-depth is {}; restart with a deeper queue",
                    self.gate.capacity()
                ),
            ));
        }
        for item in &recovery.pending {
            let (sid, text) = decode_payload(&item.payload)?;
            let spec: JobSpec = text.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("journaled spec `{text}`: {e}"),
                )
            })?;
            jobs.insert(item.id, JobStatus::Queued);
            sweeps.entry(sid).or_default().push(item.id);
            max_sweep = max_sweep.max(sid);
            self.counters.submitted.fetch_add(1, Ordering::Relaxed);
            queue.push_back(QueuedJob {
                id: item.id,
                sweep: sid,
                spec,
            });
        }
        // Job ids inside a sweep are assigned in submit order; the maps
        // above were folded from (completed, pending) partitions, so
        // re-sort for stable digest ordering.
        for ids in sweeps.values_mut() {
            ids.sort_unstable();
        }
        self.next_job_id
            .store(recovery.max_id + 1, Ordering::SeqCst);
        self.next_sweep_id.store(max_sweep + 1, Ordering::SeqCst);
        self.available.notify_all();
        Ok(())
    }

    /// Admit one sweep of `specs` all-or-nothing: validate, (maybe) shed,
    /// journal every submit record durably, then queue. The acknowledged
    /// ids are durable before this returns.
    pub fn submit(&self, specs: &[JobSpec]) -> Result<(u64, Vec<u64>), SubmitError> {
        if specs.is_empty() {
            return Err(SubmitError::Invalid("empty submission".to_string()));
        }
        if self.draining.load(Ordering::SeqCst) {
            return Err(SubmitError::Draining);
        }
        if self.storage_degraded.load(Ordering::SeqCst) {
            // The storage breaker is open: new work cannot be made
            // durable, so it is shed *before* admission — no slot, no
            // journal attempt, no false acknowledgment.
            return Err(SubmitError::Storage(
                "storage degraded: journal unavailable".to_string(),
            ));
        }
        for spec in specs {
            self.engine
                .validate(&spec.config())
                .map_err(|e| SubmitError::Invalid(e.to_string()))?;
        }
        // Injected chaos sheds whole submissions by ordinal — the
        // deterministic stand-in for overload (see `ServeFault`).
        let ordinal = self.submissions.fetch_add(1, Ordering::SeqCst);
        if let Some(seed) = self.opts.inject_seed {
            if ServeFault::derive(seed, ordinal).shed {
                self.counters.injected_shed.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Overloaded);
            }
        }
        if !self.gate.try_admit(specs.len()) {
            return Err(SubmitError::Overloaded);
        }
        let sweep = self.next_sweep_id.fetch_add(1, Ordering::SeqCst);
        let first = self
            .next_job_id
            .fetch_add(specs.len() as u64, Ordering::SeqCst);
        let ids: Vec<u64> = (first..first + specs.len() as u64).collect();
        // Journal-before-acknowledge: all submit records are on disk
        // before the client hears "accepted". A failed append un-admits
        // the whole sweep and trips the storage breaker.
        if let Some(journal) = &self.journal {
            let mut j = self.lock(journal);
            for (id, spec) in ids.iter().zip(specs) {
                let payload = encode_payload(sweep, &spec.to_string());
                if let Err(e) = j.submit(*id, &payload) {
                    self.gate.release(specs.len());
                    self.trip_storage(&e);
                    return Err(SubmitError::Storage(e.to_string()));
                }
            }
        }
        {
            let mut jobs = self.lock(&self.jobs);
            for id in &ids {
                jobs.insert(*id, JobStatus::Queued);
            }
        }
        self.lock(&self.sweeps).insert(sweep, ids.clone());
        {
            let mut queue = self.lock(&self.queue);
            for (id, spec) in ids.iter().zip(specs) {
                queue.push_back(QueuedJob {
                    id: *id,
                    sweep,
                    spec: *spec,
                });
            }
        }
        self.counters
            .submitted
            .fetch_add(specs.len() as u64, Ordering::Relaxed);
        self.available.notify_all();
        Ok((sweep, ids))
    }

    /// Block until a job is available or the service is draining with an
    /// empty queue (then `None`: the worker exits).
    pub fn next_job(&self) -> Option<QueuedJob> {
        let mut queue = self.lock(&self.queue);
        loop {
            if let Some(job) = queue.pop_front() {
                self.lock(&self.jobs).insert(job.id, JobStatus::Running);
                return Some(job);
            }
            if self.draining.load(Ordering::SeqCst) {
                return None;
            }
            queue = match self
                .available
                .wait_timeout(queue, Duration::from_millis(50))
            {
                Ok((q, _)) => q,
                Err(poisoned) => {
                    self.counters.lock_poisoned.fetch_add(1, Ordering::Relaxed);
                    poisoned.into_inner().0
                }
            };
        }
    }

    /// Open the storage circuit breaker: note the failure, flip
    /// `/healthz` to degraded, and start shedding new submissions while
    /// in-flight jobs drain.
    fn trip_storage(&self, err: &io::Error) {
        self.counters.journal_errors.fetch_add(1, Ordering::Relaxed);
        if !self.storage_degraded.swap(true, Ordering::SeqCst) {
            eprintln!("serve: storage degraded (journal append failed): {err}");
        }
    }

    /// Is the storage breaker open?
    pub fn storage_is_degraded(&self) -> bool {
        self.storage_degraded.load(Ordering::SeqCst)
    }

    /// The per-job chaos decisions (latency, machine faults), or quiet.
    pub fn chaos_for(&self, job_id: u64) -> ServeFault {
        match self.opts.inject_seed {
            Some(seed) => ServeFault::derive(seed, job_id),
            None => ServeFault::none(),
        }
    }

    /// Register a running job with the deadline supervisor; returns the
    /// token the job must run under (or `None` when no deadline is set).
    pub fn arm_deadline(&self, job_id: u64) -> Option<CancelToken> {
        let deadline = self.opts.deadline?;
        let token = CancelToken::new();
        self.lock(&self.deadlines)
            .push((Instant::now() + deadline, job_id, token.clone()));
        Some(token)
    }

    /// Supervisor tick: cancel every registered token whose deadline has
    /// passed. Cancellation is cooperative — the worker observes the token
    /// at the next instruction boundary and reports `Cancelled`.
    pub fn cancel_overdue(&self, now: Instant) -> usize {
        let mut deadlines = self.lock(&self.deadlines);
        let mut fired = 0;
        deadlines.retain(|(at, _, token)| {
            if *at <= now {
                token.cancel();
                fired += 1;
                false
            } else {
                true
            }
        });
        fired
    }

    fn disarm_deadline(&self, job_id: u64) {
        self.lock(&self.deadlines)
            .retain(|(_, id, _)| *id != job_id);
    }

    /// Record a finished job: journal the done record (durably), update
    /// the tables and counters, release its admission slot — and, when the
    /// crash harness is armed, abort the process once the configured done
    /// record is on disk.
    ///
    /// Infallible by design: a failed done-record append trips the
    /// storage breaker (new submissions shed with 503) but the in-memory
    /// completion still lands, so in-flight work drains to clients
    /// instead of wedging. The un-journaled completion is the safe loss:
    /// after a crash the job replays as pending and re-runs
    /// deterministically.
    pub fn finish(
        &self,
        job: &QueuedJob,
        line: String,
        attempts: u32,
        poisoned: bool,
        cancelled: bool,
    ) {
        self.disarm_deadline(job.id);
        if let Some(journal) = &self.journal {
            let mut j = self.lock(journal);
            match j.complete(job.id, &encode_payload(job.sweep, &line)) {
                Ok(()) => {
                    let done = self.counters.done_records.fetch_add(1, Ordering::SeqCst) + 1;
                    if self.opts.crash_after == Some(done) {
                        // The crash harness: die as unceremoniously as
                        // `kill -9` (no unwinding, no drop glue, no drain)
                        // the instant the configured done record is durable.
                        std::process::abort();
                    }
                }
                Err(e) => self.trip_storage(&e),
            }
        } else {
            self.counters.done_records.fetch_add(1, Ordering::SeqCst);
        }
        self.lock(&self.jobs).insert(job.id, JobStatus::Done(line));
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        self.counters
            .retries
            .fetch_add(u64::from(attempts.saturating_sub(1)), Ordering::Relaxed);
        if cancelled {
            self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        self.note_breaker(&job.spec.config(), poisoned);
        self.gate.release(1);
    }

    /// Is the breaker for `cfg` open (jobs on it quarantined)?
    pub fn breaker_open(&self, cfg: &EnvConfig) -> bool {
        self.lock(&self.breakers).get(cfg).is_some_and(|b| b.open)
    }

    fn note_breaker(&self, cfg: &EnvConfig, poisoned: bool) {
        let mut breakers = self.lock(&self.breakers);
        let b = breakers.entry(*cfg).or_default();
        if poisoned {
            b.consecutive_poisoned += 1;
            if b.consecutive_poisoned >= self.opts.breaker_threshold {
                b.open = true;
            }
        } else {
            b.consecutive_poisoned = 0;
        }
    }

    /// The quarantine line for a breaker-refused job: stable (pure
    /// function of the spec) so quarantined sweeps still digest
    /// deterministically when the poisons themselves are deterministic.
    pub fn quarantine_line(&self, job: &QueuedJob) -> String {
        let cfg = job.spec.config();
        self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
        format!(
            "job-{} cfg=vlen{}/{:?}/{:?} quarantined=breaker-open",
            job.id, cfg.vlen, cfg.lmul, cfg.spill_profile
        )
    }

    /// Close every breaker and zero its failure count (the operator's
    /// `POST /breakers/reset`). The storage breaker resets too — if the
    /// journal is still broken, the next append re-trips it. Returns how
    /// many were open (counting storage).
    pub fn reset_breakers(&self) -> usize {
        let mut breakers = self.lock(&self.breakers);
        let mut open = breakers.values().filter(|b| b.open).count();
        breakers.clear();
        if self.storage_degraded.swap(false, Ordering::SeqCst) {
            open += 1;
        }
        open
    }

    /// Stop accepting work; wake every worker so the drain can finish.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    /// Is the service draining?
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Force the journal to disk (graceful-shutdown path).
    pub fn sync_journal(&self) -> io::Result<()> {
        if let Some(journal) = &self.journal {
            if let Err(e) = self.lock(journal).sync() {
                self.trip_storage(&e);
                return Err(e);
            }
        }
        Ok(())
    }

    /// One job's status line, or `None` for an unknown id.
    pub fn job_text(&self, id: u64) -> Option<String> {
        let jobs = self.lock(&self.jobs);
        Some(match jobs.get(&id)? {
            JobStatus::Queued => format!("job {id} queued\n"),
            JobStatus::Running => format!("job {id} running\n"),
            JobStatus::Done(line) => format!("job {id} done\n{line}\n"),
        })
    }

    /// One sweep's status: progress while running; on completion the
    /// stable lines in job-id order plus their FNV-1a digest — the bytes
    /// the crash-recovery contract compares.
    pub fn sweep_text(&self, id: u64) -> Option<String> {
        let ids = self.lock(&self.sweeps).get(&id)?.clone();
        let jobs = self.lock(&self.jobs);
        let mut lines = Vec::with_capacity(ids.len());
        for job_id in &ids {
            match jobs.get(job_id) {
                Some(JobStatus::Done(line)) => lines.push(line.clone()),
                _ => {
                    return Some(format!("pending {}/{} jobs done\n", lines.len(), ids.len()));
                }
            }
        }
        let mut body = String::new();
        for line in &lines {
            body.push_str(line);
            body.push('\n');
        }
        Some(format!(
            "complete jobs={}\ndigest={:#018x}\n{body}",
            ids.len(),
            fnv1a(body.as_bytes())
        ))
    }

    /// The `/stats` body: service counters, queue state, engine health.
    pub fn stats_text(&self) -> String {
        let breakers_open = self
            .lock(&self.breakers)
            .values()
            .filter(|b| b.open)
            .count();
        let health = self.engine.health();
        format!(
            "submitted={}\ncompleted={}\ncancelled={}\nquarantined={}\nretries={}\n\
             queue_depth={}\nqueue_capacity={}\nqueue_high_water={}\n\
             shed={}\ninjected_shed={}\nadmitted={}\n\
             sessions_created={}\nsessions_poisoned={}\nbreakers_open={}\ndraining={}\n\
             storage_degraded={}\njournal_errors={}\nsalvaged_records={}\nlock_poisoned={}\n",
            self.counters.submitted.load(Ordering::Relaxed),
            self.counters.completed.load(Ordering::Relaxed),
            self.counters.cancelled.load(Ordering::Relaxed),
            self.counters.quarantined.load(Ordering::Relaxed),
            self.counters.retries.load(Ordering::Relaxed),
            self.gate.depth(),
            self.gate.capacity(),
            self.gate.high_water(),
            self.gate.shed(),
            self.counters.injected_shed.load(Ordering::Relaxed),
            self.gate.admitted(),
            health.sessions_created(),
            health.sessions_poisoned(),
            breakers_open,
            self.is_draining(),
            self.storage_is_degraded(),
            self.counters.journal_errors.load(Ordering::Relaxed),
            self.counters.salvaged.load(Ordering::Relaxed),
            self.counters.lock_poisoned.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(texts: &[&str]) -> Vec<JobSpec> {
        texts.iter().map(|t| t.parse().unwrap()).collect()
    }

    #[test]
    fn submit_assigns_monotonic_ids_and_tracks_status() {
        let state = ServeState::new(ServeOptions::default()).unwrap();
        let (s1, ids1) = state
            .submit(&specs(&["plus_scan n=64", "p_add n=32"]))
            .unwrap();
        let (s2, ids2) = state.submit(&specs(&["radix_sort n=16"])).unwrap();
        assert_eq!(ids1, vec![1, 2]);
        assert_eq!(ids2, vec![3]);
        assert_ne!(s1, s2);
        assert_eq!(state.gate.depth(), 3);
        assert!(state.job_text(1).unwrap().contains("queued"));
        assert!(state.job_text(99).is_none());
        assert!(state.sweep_text(s1).unwrap().starts_with("pending 0/2"));
    }

    #[test]
    fn overload_and_drain_refuse_submissions() {
        let state = ServeState::new(ServeOptions {
            queue_depth: 2,
            ..ServeOptions::default()
        })
        .unwrap();
        assert!(state.submit(&specs(&["p_add n=8", "p_add n=8"])).is_ok());
        assert!(matches!(
            state.submit(&specs(&["p_add n=8"])),
            Err(SubmitError::Overloaded)
        ));
        assert_eq!(state.gate.shed(), 1);
        state.begin_drain();
        assert!(matches!(
            state.submit(&specs(&["p_add n=8"])),
            Err(SubmitError::Draining)
        ));
    }

    #[test]
    fn invalid_specs_are_refused_before_admission() {
        let state = ServeState::new(ServeOptions::default()).unwrap();
        let bad = JobSpec {
            vlen: 48, // not a power of two: Engine::validate refuses
            ..JobSpec::default()
        };
        assert!(matches!(state.submit(&[bad]), Err(SubmitError::Invalid(_))));
        assert_eq!(state.gate.depth(), 0, "nothing admitted");
    }

    #[test]
    fn breakers_open_after_consecutive_poisons_and_reset() {
        let state = ServeState::new(ServeOptions {
            breaker_threshold: 2,
            ..ServeOptions::default()
        })
        .unwrap();
        let cfg = JobSpec::default().config();
        state.note_breaker(&cfg, true);
        assert!(!state.breaker_open(&cfg));
        state.note_breaker(&cfg, true);
        assert!(state.breaker_open(&cfg));
        // A success on a *different* config does not close it.
        let other = JobSpec {
            vlen: 128,
            ..JobSpec::default()
        }
        .config();
        state.note_breaker(&other, false);
        assert!(state.breaker_open(&cfg));
        assert_eq!(state.reset_breakers(), 1);
        assert!(!state.breaker_open(&cfg));
    }

    #[test]
    fn deadline_supervisor_cancels_only_overdue_tokens() {
        let state = ServeState::new(ServeOptions {
            deadline: Some(Duration::from_secs(3600)),
            ..ServeOptions::default()
        })
        .unwrap();
        let token = state.arm_deadline(7).unwrap();
        assert_eq!(state.cancel_overdue(Instant::now()), 0);
        assert!(!token.is_cancelled());
        assert_eq!(
            state.cancel_overdue(Instant::now() + Duration::from_secs(7200)),
            1
        );
        assert!(token.is_cancelled());
        // Disarmed on finish: a second tick has nothing left.
        assert_eq!(
            state.cancel_overdue(Instant::now() + Duration::from_secs(7200)),
            0
        );
    }

    #[test]
    fn poisoned_locks_recover_instead_of_bricking_the_service() {
        let state = ServeState::new(ServeOptions::default()).unwrap();
        state.submit(&specs(&["p_add n=8"])).unwrap();
        // Poison the jobs mutex: a handler thread panics while holding it.
        let s = Arc::clone(&state);
        std::thread::spawn(move || {
            let _guard = s.jobs.lock().unwrap();
            panic!("injected handler panic");
        })
        .join()
        .unwrap_err();
        assert!(state.jobs.is_poisoned());
        // Every subsequent request still works, and the recovery is
        // surfaced in the counters + /stats.
        assert!(state.job_text(1).unwrap().contains("queued"));
        assert!(state.sweep_text(1).is_some());
        assert!(state.submit(&specs(&["p_add n=8"])).is_ok());
        assert!(state.counters.lock_poisoned.load(Ordering::Relaxed) >= 1);
        let stats = state.stats_text();
        assert!(stats.contains("lock_poisoned="), "{stats}");
        assert!(!stats.contains("lock_poisoned=0"), "{stats}");
    }

    #[test]
    fn journal_failure_trips_the_storage_breaker_and_sheds() {
        use rvv_ckpt::{ChaosBackend, ChaosPlan};
        // Write op 0 is the journal header; op 1 is the first submit
        // record; everything after fails hard (the disk went away).
        let chaos = Arc::new(ChaosBackend::new(ChaosPlan {
            fail_writes_after: Some(2),
            ..ChaosPlan::quiet()
        }));
        let state = ServeState::new(ServeOptions {
            journal: Some(PathBuf::from("/j/q.journal")),
            storage: Some(chaos as Arc<dyn StorageBackend>),
            queue_depth: 16,
            ..ServeOptions::default()
        })
        .unwrap();
        let (_sweep, ids) = state.submit(&specs(&["p_add n=8"])).unwrap();
        assert!(!state.storage_is_degraded());
        // The second submit's journal append fails: un-admitted, breaker
        // trips, the client hears Storage (503), never a false "accepted".
        assert!(matches!(
            state.submit(&specs(&["p_add n=8"])),
            Err(SubmitError::Storage(_))
        ));
        assert!(state.storage_is_degraded());
        assert_eq!(state.gate.depth(), 1, "failed sweep released its slot");
        // While degraded, submissions are shed before admission…
        assert!(matches!(
            state.submit(&specs(&["p_add n=8"])),
            Err(SubmitError::Storage(_))
        ));
        // …but the accepted in-flight job still drains: its done-record
        // append fails too, yet the completion lands in memory.
        let job = QueuedJob {
            id: ids[0],
            sweep: 1,
            spec: "p_add n=8".parse().unwrap(),
        };
        state.finish(&job, "job-1 ok".to_string(), 1, false, false);
        assert!(state.job_text(ids[0]).unwrap().contains("done"));
        assert_eq!(state.gate.depth(), 0, "drained");
        let stats = state.stats_text();
        assert!(stats.contains("storage_degraded=true"), "{stats}");
        assert!(state.counters.journal_errors.load(Ordering::Relaxed) >= 2);
        // The operator reset closes the storage breaker too.
        assert!(state.reset_breakers() >= 1);
        assert!(!state.storage_is_degraded());
    }

    #[test]
    fn chaos_sheds_are_deterministic_per_seed() {
        let run = || {
            let state = ServeState::new(ServeOptions {
                inject_seed: Some(42),
                queue_depth: 4096,
                ..ServeOptions::default()
            })
            .unwrap();
            let spec = specs(&["p_add n=8"]);
            (0..64)
                .map(|_| matches!(state.submit(&spec), Err(SubmitError::Overloaded)))
                .collect::<Vec<bool>>()
        };
        let a = run();
        assert_eq!(a, run(), "same seed, same shed pattern");
        assert!(a.iter().any(|&s| s), "seed 42 sheds at least once in 64");
        assert!(!a.iter().all(|&s| s), "and accepts at least once");
    }
}
