//! A deliberately minimal HTTP/1.1 layer over `std::net`.
//!
//! The build environment has no network stack beyond the standard
//! library, so the service speaks just enough HTTP for `curl` and the
//! load client: one request per connection, `Content-Length` bodies only
//! (no chunked encoding, no keep-alive, no TLS), hard caps on header and
//! body sizes so a malicious peer cannot balloon memory. Anything outside
//! that envelope gets a clean 4xx and a closed connection — never a
//! panic, never an unbounded read.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Upper bound on a request body.
const MAX_BODY_BYTES: usize = 256 * 1024;
/// Per-connection socket timeout: a stalled peer cannot pin a handler
/// thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the client already; matched verbatim).
    pub method: String,
    /// The path, query string included (the service uses none).
    pub path: String,
    /// The body, if a `Content-Length` was present.
    pub body: String,
}

/// Read and parse one request from `stream`, enforcing the size caps.
/// Returns `Ok(None)` for a malformed or oversized request *after* writing
/// the 4xx response — the caller just closes the connection.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut head = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            // Peer closed before a full head: nothing to answer.
            return Ok(None);
        }
        if head.len() + line.len() > MAX_HEAD_BYTES {
            respond(stream, 431, "request head too large\n")?;
            return Ok(None);
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
    }
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            respond(stream, 400, "malformed request line\n")?;
            return Ok(None);
        }
    };
    let mut content_length = 0usize;
    for header in lines {
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                match value.trim().parse::<usize>() {
                    Ok(n) if n <= MAX_BODY_BYTES => content_length = n,
                    _ => {
                        respond(stream, 413, "body too large\n")?;
                        return Ok(None);
                    }
                }
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = match String::from_utf8(body) {
        Ok(s) => s,
        Err(_) => {
            respond(stream, 400, "body must be utf-8\n")?;
            return Ok(None);
        }
    };
    Ok(Some(Request { method, path, body }))
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Write a plain-text response with extra headers (already formatted as
/// `Name: value` lines, no trailing CRLF).
pub fn respond_with(
    stream: &mut TcpStream,
    code: u16,
    extra_headers: &[String],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_text(code),
        body.len()
    );
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Write a plain-text response with no extra headers.
pub fn respond(stream: &mut TcpStream, code: u16, body: &str) -> io::Result<()> {
    respond_with(stream, code, &[], body)
}

/// One-shot client: open a connection to `addr`, send `method path` with
/// `body`, return `(status, body)`. This is what the load client, the CI
/// smoke job, and the integration tests use to talk to the service — the
/// same minimal dialect the server speaks.
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut content_length = None;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let mut body = String::new();
    match content_length {
        Some(n) => {
            let mut bytes = vec![0u8; n];
            reader.read_exact(&mut bytes)?;
            body = String::from_utf8_lossy(&bytes).into_owned();
        }
        None => {
            reader.read_to_string(&mut body)?;
        }
    }
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn echo_server() -> (String, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            if let Some(req) = read_request(&mut stream).unwrap() {
                let body = format!("{} {}\n{}", req.method, req.path, req.body);
                respond(&mut stream, 200, &body).unwrap();
            }
        });
        (addr, handle)
    }

    #[test]
    fn request_and_response_round_trip() {
        let (addr, handle) = echo_server();
        let (status, body) = request(&addr, "POST", "/jobs", "plus_scan n=64").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "POST /jobs\nplus_scan n=64");
        handle.join().unwrap();
    }

    #[test]
    fn oversized_bodies_are_refused() {
        let (addr, handle) = echo_server();
        let big = "x".repeat(MAX_BODY_BYTES + 1);
        let (status, _) = request(&addr, "POST", "/jobs", &big).unwrap();
        assert_eq!(status, 413);
        handle.join().unwrap();
    }

    #[test]
    fn malformed_request_lines_get_400() {
        let (addr, handle) = echo_server();
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut reply = String::new();
        BufReader::new(stream).read_line(&mut reply).unwrap();
        assert!(reply.contains("400"), "{reply}");
        handle.join().unwrap();
    }
}
