//! rvv-serve: a supervised, crash-survivable sweep service.
//!
//! The batch layer runs one sweep and exits; this crate keeps a sweep
//! *service* alive: tenants submit job specs over a minimal HTTP/1.1
//! surface, a durable journal-backed queue holds them, worker threads
//! drain them through the shared [`scanvec::Engine`] with the batch
//! layer's pooling/retry/panic-isolation discipline, and supervision
//! keeps the whole thing honest under faults:
//!
//! * **Durability** — every accepted job is journaled ([`rvv_ckpt::queue`])
//!   *before* the client is acknowledged; `kill -9` at any instant loses
//!   nothing accepted, and a restart with `--resume` replays completed
//!   results verbatim and re-runs pending ones, so sweep digests are
//!   byte-identical to an uninterrupted run.
//! * **Deadlines** — a supervisor thread cancels overdue jobs
//!   cooperatively ([`scanvec::CancelToken`] observed at instruction
//!   boundaries in every execution tier).
//! * **Bounded everything** — admission control sheds work beyond the
//!   configured queue depth (429 + Retry-After), request heads and bodies
//!   are size-capped, retries are bounded and spaced by deterministic
//!   backoff ([`rvv_batch::BackoffPolicy`]).
//! * **Graceful degradation** — per-configuration circuit breakers
//!   quarantine configurations that repeatedly poison their sessions;
//!   one tenant's pathological config cannot take the service down. A
//!   *storage* breaker does the same for the disk: a failed journal
//!   append flips `/healthz` to `503 storage=degraded` and sheds new
//!   submissions with 503 while in-flight jobs drain — never a panic,
//!   never an acknowledgment without durability.
//! * **Salvage on resume** — a resume over a journal with mid-stream
//!   corruption quarantines the damaged records (surfaced in `/stats`
//!   and a `<journal>.salvage.txt` manifest) and keeps everything after
//!   them; jobs whose records were lost re-run deterministically.
//! * **Graceful shutdown** — SIGTERM (or `POST /shutdown`) stops
//!   admissions, drains in-flight work to the journal, and exits 0.
//!
//! # Endpoints
//!
//! | Method & path          | Meaning                                          |
//! |------------------------|--------------------------------------------------|
//! | `GET /healthz`         | `200 ok` (`503 draining` / `503 storage=degraded`) |
//! | `GET /stats`           | service counters, queue state, engine health     |
//! | `POST /sweeps`         | submit one spec per body line; `202` + ids       |
//! | `POST /jobs`           | alias of `/sweeps`                               |
//! | `GET /jobs/<id>`       | one job's status / stable result line            |
//! | `GET /sweeps/<id>`     | progress, or the stable lines + FNV-1a digest    |
//! | `POST /breakers/reset` | close all circuit breakers                       |
//! | `POST /shutdown`       | begin the graceful drain                         |
//!
//! A job spec is a workload name plus `key=value` fields, e.g.
//! `plus_scan n=1000 vlen=256 lmul=m2 seed=7` — see [`JobSpec`].

#![forbid(unsafe_code)]

pub mod http;
mod server;
mod spec;
mod state;

pub use server::{RunningServer, Server};
pub use spec::{JobSpec, Workload, MAX_N};
pub use state::{
    JobStatus, QueuedJob, ServeCounters, ServeOptions, ServeState, SubmitError, JOURNAL_TAG,
};
