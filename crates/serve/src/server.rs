//! The server proper: listener loop, connection handlers, worker pool,
//! and the deadline supervisor — all over one [`ServeState`].
//!
//! Thread model: the accept loop polls a nonblocking listener so it can
//! also watch the termination flag; each accepted connection gets a
//! short-lived handler thread (one request per connection, so handlers
//! are bounded by the socket timeout); `threads` long-lived workers drain
//! the queue through [`execute_job`] with per-worker [`SessionPool`]s;
//! one supervisor thread ticks the deadline registry. Graceful shutdown
//! ([`Server::serve_until`] observing its predicate, or `POST /shutdown`)
//! stops admissions, drains in-flight jobs to the journal, joins every
//! worker, syncs, and returns `Ok(())` — exit code 0.

use crate::http::{read_request, respond, respond_with, Request};
use crate::spec::JobSpec;
use crate::state::{ServeOptions, ServeState, SubmitError};
use rvv_batch::{execute_job, BackoffPolicy, JobOutcome, SessionPool};
use rvv_fault::ArmedFaults;
use scanvec::HEAP_BASE;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often the accept loop polls for termination/drain progress.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// How often the deadline supervisor ticks.
const SUPERVISOR_POLL: Duration = Duration::from_millis(5);

/// A bound, not-yet-running server.
pub struct Server {
    state: Arc<ServeState>,
    listener: TcpListener,
    addr: SocketAddr,
}

/// A server running on background threads (in-process harness for tests
/// and the load client; the binary calls [`Server::serve_until`] on its
/// main thread instead).
pub struct RunningServer {
    /// The bound address.
    pub addr: SocketAddr,
    /// The shared state (tests inspect counters through it).
    pub state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    handle: JoinHandle<io::Result<()>>,
}

impl RunningServer {
    /// Request shutdown and wait for the drain to finish.
    pub fn shutdown(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        self.handle.join().expect("server thread panicked")
    }
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and build
    /// the service state — resuming the journal if the options say so.
    pub fn bind(addr: &str, opts: ServeOptions) -> io::Result<Server> {
        let state = ServeState::new(opts)?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            state,
            listener,
            addr,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state.
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Bind and run on a background thread; returns once the listener is
    /// accepting. The in-process form of the service.
    pub fn spawn(addr: &str, opts: ServeOptions) -> io::Result<RunningServer> {
        let server = Server::bind(addr, opts)?;
        let addr = server.local_addr();
        let state = server.state();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = thread::spawn(move || server.serve_until(move || flag.load(Ordering::SeqCst)));
        Ok(RunningServer {
            addr,
            state,
            shutdown,
            handle,
        })
    }

    /// Run until `should_term` returns true (polled between accepts) or a
    /// client posts `/shutdown`, then drain gracefully: refuse new
    /// submissions, let workers finish (and journal) everything queued,
    /// join all threads, sync the journal, return `Ok(())`.
    pub fn serve_until(self, should_term: impl Fn() -> bool) -> io::Result<()> {
        let Server {
            state, listener, ..
        } = self;
        listener.set_nonblocking(true)?;
        let workers: Vec<JoinHandle<()>> = (0..state.opts.threads.max(1))
            .map(|worker| {
                let state = Arc::clone(&state);
                thread::spawn(move || worker_loop(&state, worker))
            })
            .collect();
        let supervisor = state.opts.deadline.map(|_| {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                while !(state.is_draining()) {
                    state.cancel_overdue(Instant::now());
                    thread::sleep(SUPERVISOR_POLL);
                }
                // One final tick so jobs still draining keep their
                // deadlines during shutdown.
                state.cancel_overdue(Instant::now());
            })
        });
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        loop {
            if should_term() && !state.is_draining() {
                state.begin_drain();
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&state);
                    handlers.push(thread::spawn(move || handle_connection(stream, &state)));
                    handlers.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if state.is_draining() {
                        break;
                    }
                    thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: workers exit once the queue is empty (begin_drain already
        // woke them); handlers are short-lived by construction.
        for w in workers {
            let _ = w.join();
        }
        if let Some(s) = supervisor {
            let _ = s.join();
        }
        for h in handlers {
            let _ = h.join();
        }
        state.sync_journal()?;
        Ok(())
    }
}

/// One worker: block on the queue, honor chaos latency, quarantine
/// breaker-open configurations, run everything else through
/// [`execute_job`] under the deadline token, journal the result.
fn worker_loop(state: &Arc<ServeState>, worker: usize) {
    let mut pool = SessionPool::new(&state.engine);
    // Retry backoff keyed by the chaos seed (0 when quiet) and, per job,
    // by its queue ordinal — deterministic like everything else derived
    // from `(seed, ordinal)`.
    let backoff = BackoffPolicy::new(state.opts.inject_seed.unwrap_or(0));
    while let Some(job) = state.next_job() {
        let chaos = state.chaos_for(job.id);
        if chaos.latency_ms > 0 {
            thread::sleep(Duration::from_millis(chaos.latency_ms));
        }
        if state.breaker_open(&job.spec.config()) {
            let line = state.quarantine_line(&job);
            state.finish(&job, line, 0, false, false);
            continue;
        }
        let mut batch_job = job
            .spec
            .to_job(format!("job-{}", job.id))
            .retries(state.opts.retries);
        let token = state.arm_deadline(job.id);
        if let Some(t) = &token {
            batch_job = batch_job.cancel_token(t.clone());
        }
        if !chaos.plan.faults.is_empty() {
            let plan = chaos.plan.clone();
            batch_job = batch_job.with_setup(move |env| {
                for r in plan.guard_ranges(HEAP_BASE) {
                    env.machine_mut().mem.add_guard(r);
                }
                env.attach_fault_hook(Box::new(ArmedFaults::new(&plan)));
            });
        }
        let report = execute_job(&batch_job, job.id, &mut pool, worker, &backoff);
        let cancelled = matches!(report.outcome, JobOutcome::Cancelled { .. });
        // `finish` is infallible by design: a failed done-append trips
        // the storage breaker but the in-flight result still drains.
        state.finish(
            &job,
            report.stable_line(),
            report.attempts,
            report.poisoned > 0,
            cancelled,
        );
    }
}

fn parse_specs(body: &str) -> Result<Vec<JobSpec>, String> {
    body.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|l| l.parse().map_err(|e| format!("{l}: {e}")))
        .collect()
}

fn submit_response(stream: &mut TcpStream, state: &ServeState, body: &str) -> io::Result<()> {
    let specs = match parse_specs(body) {
        Ok(s) => s,
        Err(e) => return respond(stream, 400, &format!("{e}\n")),
    };
    match state.submit(&specs) {
        Ok((sweep, ids)) => respond(
            stream,
            202,
            &format!(
                "sweep {sweep}\njobs {}..={}\n",
                ids.first().unwrap(),
                ids.last().unwrap()
            ),
        ),
        Err(SubmitError::Overloaded) => respond_with(
            stream,
            429,
            &["Retry-After: 1".to_string()],
            "queue full, retry later\n",
        ),
        Err(SubmitError::Draining) => respond(stream, 503, "draining, not accepting work\n"),
        Err(SubmitError::Invalid(e)) => respond(stream, 400, &format!("{e}\n")),
        // Storage degraded: the job was NOT acknowledged (durability
        // before acknowledgment); clients retry later while in-flight
        // work drains.
        Err(SubmitError::Storage(e)) => respond(stream, 503, &format!("storage degraded: {e}\n")),
    }
}

fn id_from(path: &str, prefix: &str) -> Option<u64> {
    path.strip_prefix(prefix)?.parse().ok()
}

/// Route one request. The surface is deliberately small and text-only;
/// see the crate docs for the endpoint table.
fn handle_connection(mut stream: TcpStream, state: &Arc<ServeState>) {
    let Ok(Some(Request { method, path, body })) = read_request(&mut stream) else {
        return;
    };
    let result = match (method.as_str(), path.as_str()) {
        ("GET", "/healthz") => {
            if state.is_draining() {
                respond(&mut stream, 503, "draining\n")
            } else if state.storage_is_degraded() {
                respond(&mut stream, 503, "storage=degraded\n")
            } else {
                respond(&mut stream, 200, "ok\n")
            }
        }
        ("GET", "/stats") => respond(&mut stream, 200, &state.stats_text()),
        ("POST", "/jobs") | ("POST", "/sweeps") => submit_response(&mut stream, state, &body),
        ("POST", "/shutdown") => {
            state.begin_drain();
            respond(&mut stream, 202, "draining\n")
        }
        ("POST", "/breakers/reset") => {
            let reopened = state.reset_breakers();
            respond(
                &mut stream,
                200,
                &format!("reset {reopened} open breakers\n"),
            )
        }
        ("GET", p) if p.starts_with("/jobs/") => match id_from(p, "/jobs/") {
            Some(id) => match state.job_text(id) {
                Some(text) => respond(&mut stream, 200, &text),
                None => respond(&mut stream, 404, "unknown job\n"),
            },
            None => respond(&mut stream, 400, "bad job id\n"),
        },
        ("GET", p) if p.starts_with("/sweeps/") => match id_from(p, "/sweeps/") {
            Some(id) => match state.sweep_text(id) {
                Some(text) => respond(&mut stream, 200, &text),
                None => respond(&mut stream, 404, "unknown sweep\n"),
            },
            None => respond(&mut stream, 400, "bad sweep id\n"),
        },
        ("GET", _) => respond(&mut stream, 404, "no such endpoint\n"),
        _ => respond(&mut stream, 405, "method not allowed\n"),
    };
    // A peer that vanished mid-response is its own problem.
    let _ = result;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::request;

    fn wait_for_sweep(addr: &str, sweep: u64) -> String {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (status, body) = request(addr, "GET", &format!("/sweeps/{sweep}"), "").unwrap();
            assert_eq!(status, 200, "{body}");
            if body.starts_with("complete") {
                return body;
            }
            assert!(Instant::now() < deadline, "sweep {sweep} never completed");
            thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn end_to_end_submit_poll_digest() {
        let server = Server::spawn("127.0.0.1:0", ServeOptions::default()).unwrap();
        let addr = server.addr.to_string();
        let (status, body) = request(&addr, "GET", "/healthz", "").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, body) = request(
            &addr,
            "POST",
            "/sweeps",
            "plus_scan n=100 vlen=256 lmul=m1 seed=1\np_add n=50 vlen=128 lmul=m2 seed=2\n",
        )
        .unwrap();
        assert_eq!(status, 202, "{body}");
        let sweep: u64 = body
            .lines()
            .next()
            .unwrap()
            .strip_prefix("sweep ")
            .unwrap()
            .parse()
            .unwrap();
        let body = wait_for_sweep(&addr, sweep);
        assert!(body.contains("digest=0x"), "{body}");
        assert!(body.contains("job-1 "), "{body}");
        let (status, stats) = request(&addr, "GET", "/stats", "").unwrap();
        assert_eq!(status, 200);
        assert!(stats.contains("completed=2"), "{stats}");
        server.shutdown().unwrap();
    }

    #[test]
    fn unknown_routes_and_ids_are_4xx() {
        let server = Server::spawn("127.0.0.1:0", ServeOptions::default()).unwrap();
        let addr = server.addr.to_string();
        assert_eq!(request(&addr, "GET", "/nope", "").unwrap().0, 404);
        assert_eq!(request(&addr, "GET", "/jobs/999", "").unwrap().0, 404);
        assert_eq!(request(&addr, "GET", "/jobs/abc", "").unwrap().0, 400);
        assert_eq!(request(&addr, "DELETE", "/jobs", "").unwrap().0, 405);
        assert_eq!(request(&addr, "POST", "/jobs", "fizz n=1").unwrap().0, 400);
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_endpoint_drains_and_refuses_new_work() {
        let server = Server::spawn("127.0.0.1:0", ServeOptions::default()).unwrap();
        let addr = server.addr.to_string();
        let (status, _) = request(&addr, "POST", "/sweeps", "p_add n=64").unwrap();
        assert_eq!(status, 202);
        let (status, _) = request(&addr, "POST", "/shutdown", "").unwrap();
        assert_eq!(status, 202);
        // Draining refuses new submissions (503), and healthz degrades.
        for _ in 0..100 {
            match request(&addr, "POST", "/sweeps", "p_add n=64") {
                Ok((503, _)) | Err(_) => break,
                Ok((202, _)) => panic!("accepted work while draining"),
                Ok(_) => thread::sleep(Duration::from_millis(2)),
            }
        }
        server.shutdown().unwrap();
    }
}
