//! The rvv-serve daemon.
//!
//! Binds the sweep service and runs until SIGTERM/SIGINT (graceful drain,
//! exit 0) or a client posts `/shutdown`. The only unsafe in the whole
//! crate is the two `signal(2)` registrations below — the library proper
//! is `#![forbid(unsafe_code)]`.
//!
//! ```text
//! rvv-serve --addr 127.0.0.1:7190 --threads 4 --journal /tmp/q.journal
//! curl -X POST --data-binary 'plus_scan n=1000 vlen=256' http://127.0.0.1:7190/sweeps
//! ```

use rvv_serve::{ServeOptions, Server};
use scanvec::ExecEngine;
use std::path::PathBuf;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    // Async-signal-safe: one relaxed-ordering-free store, nothing else.
    TERM.store(true, Ordering::SeqCst);
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    // Minimal libc binding — the environment has no libc crate, and the C
    // runtime is linked anyway. `signal` suffices for one boolean flag.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

fn usage() -> ! {
    eprintln!(
        "usage: rvv-serve [flags]\n\
         \x20 --addr HOST:PORT        bind address (default 127.0.0.1:7190, :0 = ephemeral)\n\
         \x20 --threads N             worker threads (default 2)\n\
         \x20 --queue-depth N         admission-control capacity (default 256)\n\
         \x20 --journal PATH          durable queue journal (omit = in-memory)\n\
         \x20 --resume                resume an existing journal instead of truncating\n\
         \x20 --deadline-ms N         per-job wall-clock deadline\n\
         \x20 --retries N             retries per failed job (default 1)\n\
         \x20 --inject-seed N         chaos seed (deterministic shed/latency/faults)\n\
         \x20 --crash-after N         abort() after the Nth journaled completion (test harness)\n\
         \x20 --exec-engine NAME      execution tier (plan, legacy, fused)\n\
         \x20 --breaker-threshold N   consecutive poisons before quarantine (default 3)\n\
         \x20 --watchdog FUEL         per-attempt instruction budget (default 1000000000)"
    );
    exit(2)
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("rvv-serve: {flag} needs a value");
        exit(2)
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("rvv-serve: bad {flag} value `{value}`");
            exit(2)
        }
    }
}

fn main() {
    let mut opts = ServeOptions::default();
    let mut addr = "127.0.0.1:7190".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse_num::<String>("--addr", args.next()),
            "--threads" => opts.threads = parse_num("--threads", args.next()),
            "--queue-depth" => opts.queue_depth = parse_num("--queue-depth", args.next()),
            "--journal" => opts.journal = Some(parse_num::<PathBuf>("--journal", args.next())),
            "--resume" => opts.resume = true,
            "--deadline-ms" => {
                opts.deadline = Some(Duration::from_millis(parse_num(
                    "--deadline-ms",
                    args.next(),
                )))
            }
            "--retries" => opts.retries = parse_num("--retries", args.next()),
            "--inject-seed" => opts.inject_seed = Some(parse_num("--inject-seed", args.next())),
            "--crash-after" => opts.crash_after = Some(parse_num("--crash-after", args.next())),
            "--exec-engine" => {
                let value = parse_num::<String>("--exec-engine", args.next());
                opts.exec = match ExecEngine::parse(&value) {
                    Some(e) => e,
                    None => {
                        let valid: Vec<String> = ExecEngine::ALL
                            .iter()
                            .map(|e| format!("{e:?}").to_ascii_lowercase())
                            .collect();
                        eprintln!(
                            "rvv-serve: unknown --exec-engine `{value}` (expected one of: {})",
                            valid.join(", ")
                        );
                        exit(2)
                    }
                }
            }
            "--breaker-threshold" => {
                opts.breaker_threshold = parse_num("--breaker-threshold", args.next())
            }
            "--watchdog" => opts.watchdog = Some(parse_num("--watchdog", args.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("rvv-serve: unknown flag `{other}`");
                usage()
            }
        }
    }
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
    let server = match Server::bind(&addr, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rvv-serve: {e}");
            exit(1)
        }
    };
    // The harness (CI smoke, crash tests) parses this line for the port.
    println!("rvv-serve listening on {}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    match server.serve_until(|| TERM.load(Ordering::SeqCst)) {
        Ok(()) => {
            println!("rvv-serve: drained, journal synced, exiting");
        }
        Err(e) => {
            eprintln!("rvv-serve: {e}");
            exit(1)
        }
    }
}
