//! Job specifications: the client-facing, journal-stable description of
//! one sweep point.
//!
//! A [`JobSpec`] is everything needed to rebuild a job from scratch —
//! workload, size, machine configuration, data seed. Its `Display` form is
//! what goes into the durable queue's submit records, and `FromStr` must
//! round-trip it exactly: after `kill -9`, the restarted service re-parses
//! the journal payloads and rebuilds byte-identical [`BatchJob`]s. Nothing
//! about a job may live only in process memory.

use rvv_batch::BatchJob;
use rvv_fault::XorShift64;
use rvv_isa::Lmul;
use scanvec::primitives::{p_add, plus_scan, seg_plus_scan};
use scanvec::EnvConfig;
use scanvec_algos::split_radix_sort;
use std::fmt;
use std::str::FromStr;

/// Largest `n` a spec may request — bounds per-job device memory so a
/// tenant cannot exhaust the host by submitting one giant job.
pub const MAX_N: usize = 1_000_000;

/// The workloads the service knows how to run. A closed set on purpose:
/// clients name computations, they do not ship them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Elementwise add of a constant ([`p_add`]).
    PAdd,
    /// Inclusive `+`-scan ([`plus_scan`]).
    PlusScan,
    /// Segmented `+`-scan with seeded head flags ([`seg_plus_scan`]).
    SegScan,
    /// Split radix sort over the low 8 bits ([`split_radix_sort`]).
    RadixSort,
}

impl Workload {
    /// Every workload, for listings in error messages.
    pub const ALL: [Workload; 4] = [
        Workload::PAdd,
        Workload::PlusScan,
        Workload::SegScan,
        Workload::RadixSort,
    ];

    /// The wire name (`Display` uses this too).
    pub fn name(self) -> &'static str {
        match self {
            Workload::PAdd => "p_add",
            Workload::PlusScan => "plus_scan",
            Workload::SegScan => "seg_scan",
            Workload::RadixSort => "radix_sort",
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Workload {
    type Err = String;

    fn from_str(s: &str) -> Result<Workload, String> {
        Workload::ALL
            .into_iter()
            .find(|w| w.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = Workload::ALL.iter().map(|w| w.name()).collect();
                format!(
                    "unknown workload `{s}` (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

/// One sweep point, as submitted by a client and journaled by the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// What to compute.
    pub workload: Workload,
    /// Input size (elements), `1..=`[`MAX_N`].
    pub n: usize,
    /// Vector register length in bits.
    pub vlen: u32,
    /// Register-group multiplier.
    pub lmul: Lmul,
    /// Seed for the deterministic input data.
    pub seed: u64,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            workload: Workload::PlusScan,
            n: 1000,
            vlen: 256,
            lmul: Lmul::M1,
            seed: 0,
        }
    }
}

impl fmt::Display for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} n={} vlen={} lmul={} seed={}",
            self.workload, self.n, self.vlen, self.lmul, self.seed
        )
    }
}

fn parse_lmul(s: &str) -> Result<Lmul, String> {
    // `Lmul` has `Display` but deliberately no `FromStr` (the simulator
    // never parses it); the service maps the whole-register forms it
    // accepts from tenants by hand. Fractional LMUL is not sweepable here.
    match s {
        "m1" => Ok(Lmul::M1),
        "m2" => Ok(Lmul::M2),
        "m4" => Ok(Lmul::M4),
        "m8" => Ok(Lmul::M8),
        other => Err(format!(
            "unknown lmul `{other}` (expected m1, m2, m4, or m8)"
        )),
    }
}

impl FromStr for JobSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<JobSpec, String> {
        let mut parts = s.split_ascii_whitespace();
        let workload: Workload = parts
            .next()
            .ok_or_else(|| "empty job spec".to_string())?
            .parse()?;
        let mut spec = JobSpec {
            workload,
            ..JobSpec::default()
        };
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad spec field `{part}` (expected key=value)"))?;
            match key {
                "n" => {
                    spec.n = value.parse().map_err(|e| format!("bad n `{value}`: {e}"))?;
                }
                "vlen" => {
                    spec.vlen = value
                        .parse()
                        .map_err(|e| format!("bad vlen `{value}`: {e}"))?;
                }
                "lmul" => spec.lmul = parse_lmul(value)?,
                "seed" => {
                    spec.seed = value
                        .parse()
                        .map_err(|e| format!("bad seed `{value}`: {e}"))?;
                }
                other => return Err(format!("unknown spec field `{other}`")),
            }
        }
        if spec.n == 0 || spec.n > MAX_N {
            return Err(format!("n must be in 1..={MAX_N}, got {}", spec.n));
        }
        Ok(spec)
    }
}

impl JobSpec {
    /// The environment configuration this spec runs under: the paper
    /// profile with the spec's vlen/lmul, device memory scaled to the
    /// input so small jobs pool small sessions.
    pub fn config(&self) -> EnvConfig {
        EnvConfig {
            vlen: self.vlen,
            lmul: self.lmul,
            mem_bytes: if self.n <= 100_000 {
                64 << 20
            } else {
                192 << 20
            },
            ..EnvConfig::paper_default()
        }
    }

    /// Deterministic input data: a pure function of `(seed, n, workload)`,
    /// so a job rebuilt from its journaled spec recomputes the same bytes.
    fn data(&self) -> Vec<u32> {
        let mut rng = XorShift64::from_pair(self.seed, 0xda7a);
        // Radix sort runs over the low 8 bits; keep values inside them.
        let limit = match self.workload {
            Workload::RadixSort => 256,
            _ => 1 << 20,
        };
        (0..self.n).map(|_| rng.below(limit) as u32).collect()
    }

    /// Segment head flags for [`Workload::SegScan`] (~1 head in 8,
    /// element 0 always a head).
    fn flags(&self) -> Vec<u32> {
        let mut rng = XorShift64::from_pair(self.seed, 0xf1a6);
        (0..self.n)
            .map(|i| u32::from(i == 0 || rng.below(8) == 0))
            .collect()
    }

    /// Build the runnable job. The closure regenerates its input from the
    /// spec every attempt, so retries and crash-replays see identical
    /// data; `weight` is `n` so the batch runner's LPT sharding balances
    /// mixed-size sweeps.
    pub fn to_job(&self, name: impl Into<String>) -> BatchJob<u64> {
        let spec = *self;
        BatchJob::new(name, spec.config(), move |env| {
            let v = env.from_u32(&spec.data())?;
            match spec.workload {
                Workload::PAdd => p_add(env, &v, 1),
                Workload::PlusScan => plus_scan(env, &v),
                Workload::SegScan => {
                    let f = env.from_u32(&spec.flags())?;
                    seg_plus_scan(env, &v, &f)
                }
                Workload::RadixSort => split_radix_sort(env, &v, 8),
            }
        })
        .weight(self.n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_display() {
        let specs = [
            JobSpec::default(),
            "p_add n=5000 vlen=512 lmul=m4 seed=9"
                .parse::<JobSpec>()
                .unwrap(),
            "radix_sort n=100 vlen=128 lmul=m8 seed=123"
                .parse::<JobSpec>()
                .unwrap(),
            "seg_scan n=777 vlen=1024 lmul=m2 seed=42"
                .parse::<JobSpec>()
                .unwrap(),
        ];
        for spec in specs {
            let text = spec.to_string();
            let back: JobSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(spec, back, "{text}");
        }
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let spec: JobSpec = "plus_scan n=64".parse().unwrap();
        assert_eq!(spec.vlen, 256);
        assert_eq!(spec.lmul, Lmul::M1);
        assert_eq!(spec.seed, 0);
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for (text, needle) in [
            ("", "empty"),
            ("fizz n=10", "unknown workload"),
            ("p_add n=0", "1..="),
            ("p_add n=10000001", "1..="),
            ("p_add n=ten", "bad n"),
            ("p_add lmul=mf2", "unknown lmul"),
            ("p_add bogus=1", "unknown spec field"),
            ("p_add n", "key=value"),
        ] {
            let err = text.parse::<JobSpec>().unwrap_err();
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn jobs_are_deterministic_across_rebuilds() {
        use rvv_batch::BatchRunner;
        let spec: JobSpec = "seg_scan n=500 vlen=256 lmul=m2 seed=3".parse().unwrap();
        let run = |spec: JobSpec| {
            BatchRunner::new(1)
                .run(vec![spec.to_job("job-1")])
                .stable_digest()
        };
        assert_eq!(run(spec), run(spec.to_string().parse().unwrap()));
    }
}
