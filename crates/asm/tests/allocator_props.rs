//! Property tests for the LMUL-aware allocator: whatever the declared
//! value mix, pinned homes must be disjoint, aligned, and outside the
//! mask-reserved registers; spill accounting must be exact.

use proptest::prelude::*;
use rvv_asm::{KernelBuilder, SpillProfile, ValueKind};
use rvv_isa::{Lmul, XReg};

fn lmul() -> impl Strategy<Value = Lmul> {
    prop_oneof![
        Just(Lmul::M1),
        Just(Lmul::M2),
        Just(Lmul::M4),
        Just(Lmul::M8)
    ]
}

fn kinds(n: usize) -> impl Strategy<Value = Vec<ValueKind>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(ValueKind::Normal),
            1 => Just(ValueKind::Temp),
            1 => Just(ValueKind::Remat(XReg::new(15))),
        ],
        1..=n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn pinned_homes_are_disjoint_aligned_and_clear_of_masks(
        l in lmul(),
        ks in kinds(10),
        ideal in any::<bool>(),
    ) {
        let profile = if ideal { SpillProfile::ideal() } else { SpillProfile::llvm14() };
        let mut k = KernelBuilder::new("prop", l, 16, profile);
        let named: Vec<(&str, ValueKind)> = ks.iter().map(|&kind| ("v", kind)).collect();
        let handles = k.declare_kinds(&named);
        prop_assert_eq!(handles.len(), ks.len());

        let report = k.report();
        let normals = ks.iter().filter(|k| matches!(k, ValueKind::Normal)).count();
        // Only Normals can take stack slots.
        prop_assert!(report.spilled <= normals);
        let pressured = ks.len() > KernelBuilder::data_groups(l).len();
        if !pressured {
            // No pressure: every value pinned, no frame.
            prop_assert_eq!(report.pinned, ks.len());
            prop_assert_eq!(report.frame_bytes, 0);
            for &h in &handles {
                prop_assert!(k.home_of(h).is_some());
            }
        } else {
            // Under pressure, pinned + spilled covers exactly the Normals
            // (temps live in scratch, constants rematerialize).
            prop_assert_eq!(report.pinned + report.spilled, normals);
            // Frame: nothing if no Normal actually spilled; otherwise the
            // conservative profile reserves one slot per declared value,
            // the ideal one only per real spill.
            let slot_bytes = l.regs() * 16;
            let expected = if report.spilled == 0 {
                0
            } else if ideal {
                report.spilled as u32 * slot_bytes
            } else {
                ks.len() as u32 * slot_bytes
            };
            prop_assert_eq!(report.frame_bytes, expected);
        }

        // Pinned homes: aligned, disjoint, never touching v0..v3.
        let mut seen: Vec<(u8, u32)> = Vec::new();
        for &h in &handles {
            if let Some(r) = k.home_of(h) {
                prop_assert!(l.aligned(r.num()), "{r} misaligned for {l}");
                prop_assert!(r.num() >= 4, "{r} collides with mask registers");
                let (nlo, nhi) = (r.num() as u32, r.num() as u32 + l.regs());
                for &(base, regs) in &seen {
                    let (lo, hi) = (base as u32, base as u32 + regs);
                    prop_assert!(nhi <= lo || nlo >= hi, "group overlap at {r}");
                }
                seen.push((r.num(), l.regs()));
            }
        }
    }

    /// Spill accounting: every spilled-Normal use/def emits exactly one
    /// whole-register memory op (plus addressing), counted by spill_ops.
    #[test]
    fn spill_ops_count_matches_accesses(reads in 0usize..6, writes in 0usize..6) {
        let mut k = KernelBuilder::new("ops", Lmul::M8, 16, SpillProfile::ideal());
        // 4 Normals at m8 -> 1 pinned, 3 spilled.
        let vs = k.declare(&["a", "b", "c", "d"]);
        let spilled = vs[3];
        for _ in 0..reads {
            let _ = k.vin(spilled);
        }
        for _ in 0..writes {
            let r = k.vout(spilled);
            k.vflush(spilled, r);
        }
        prop_assert_eq!(k.spill_ops(), (reads + writes) as u64);
        // Pinned accesses never count.
        let pinned = vs[0];
        let _ = k.vin(pinned);
        let r = k.vout(pinned);
        k.vflush(pinned, r);
        prop_assert_eq!(k.spill_ops(), (reads + writes) as u64);
    }
}
