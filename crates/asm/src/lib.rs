//! # rvv-asm — assembler EDSL and LMUL-aware register allocation
//!
//! The workspace's stand-in for the *compiler* layer of the paper's stack
//! (the paper writes C with RVV intrinsics and lets GCC/LLVM produce
//! strip-mined vector loops; we generate the same shape of code
//! programmatically):
//!
//! * [`ProgramBuilder`] — typed assembler with labels, forward references,
//!   and pseudo-instructions (`li`, `mv`, `beqz`, …). Produces
//!   [`rvv_sim::Program`]s that also assemble to genuine RISC-V machine
//!   code.
//! * [`KernelBuilder`] — vector *value* allocation on top of the builder:
//!   values are pinned to LMUL-aligned register groups while groups last
//!   and spilled to a stack frame after that, with reload-per-use /
//!   store-per-def traffic emitted as real instructions. This is the
//!   mechanism behind the paper's LMUL=8 register-pressure anomaly
//!   (Tables 5 and 6); [`SpillProfile`] selects between the calibrated
//!   LLVM-14-like cost model and an idealized one (ablated in
//!   `scanvec-bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod kernel;
mod parse;

pub use builder::{AsmError, Label, ProgramBuilder};
pub use kernel::{AllocationReport, KernelBuilder, SpillProfile, VValue, ValueKind, FP};
pub use parse::{parse_program, ParseError};
