//! The assembler EDSL: build [`Program`]s with labels, forward references,
//! and pseudo-instructions.
//!
//! Branch/jump targets are [`Label`]s; [`ProgramBuilder::finish`] resolves
//! them to PC-relative byte offsets (and fails loudly on unbound labels or
//! out-of-range offsets rather than emitting garbage).

use rvv_isa::{AluOp, BranchCond, Instr, MemWidth, Sew, VAluOp, VCmp, VRedOp, VReg, VType, XReg};
use rvv_sim::{CompiledPlan, Program};
use std::fmt;

/// A branch target. Created by [`ProgramBuilder::label`], positioned by
/// [`ProgramBuilder::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Error produced by [`ProgramBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(usize),
    /// A resolved branch offset does not fit the instruction encoding.
    OffsetOutOfRange {
        /// Instruction index of the branch.
        at: usize,
        /// The offset that did not fit.
        offset: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(i) => write!(f, "label {i} was never bound"),
            AsmError::OffsetOutOfRange { at, offset } => {
                write!(
                    f,
                    "branch at instruction {at} has out-of-range offset {offset}"
                )
            }
        }
    }
}

impl std::error::Error for AsmError {}

enum Item {
    Fixed(Instr),
    Branch {
        cond: BranchCond,
        rs1: XReg,
        rs2: XReg,
        target: Label,
    },
    Jump {
        rd: XReg,
        target: Label,
    },
}

/// Incrementally builds a [`Program`].
///
/// Most methods mirror an instruction or standard pseudo-instruction and
/// append exactly one instruction; `li` may emit up to a handful. The escape
/// hatch [`ProgramBuilder::raw`] appends any [`Instr`] directly.
pub struct ProgramBuilder {
    name: String,
    items: Vec<Item>,
    labels: Vec<Option<usize>>,
    marks: Vec<(usize, String)>,
}

impl ProgramBuilder {
    /// Start a program named `name`.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            items: Vec::new(),
            labels: Vec::new(),
            marks: Vec::new(),
        }
    }

    /// Attach a symbol mark at the current position: instructions emitted
    /// from here until the next mark are attributed to `label` by
    /// profilers (see [`rvv_sim::Program::symbol_for`]). Marks never affect
    /// the emitted code.
    pub fn mark(&mut self, label: impl Into<String>) -> &mut Self {
        self.marks.push((self.items.len(), label.into()));
        self
    }

    /// Current instruction count (next emission index).
    pub fn here(&self) -> usize {
        self.items.len()
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `l` to the current position. Panics if already bound (that is a
    /// kernel-generator bug).
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.items.len());
    }

    /// Append an arbitrary instruction.
    pub fn raw(&mut self, i: Instr) -> &mut Self {
        self.items.push(Item::Fixed(i));
        self
    }

    // ------------------------------------------------------------- scalar --

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: XReg, rs1: XReg, imm: i32) -> &mut Self {
        self.raw(Instr::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        })
    }

    /// `mv rd, rs` (canonical `addi rd, rs, 0`).
    pub fn mv(&mut self, rd: XReg, rs: XReg) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    /// `li rd, value` — load immediate, expanding to `addi` / `lui`+`addi` /
    /// a shift-and-or sequence as needed.
    pub fn li(&mut self, rd: XReg, value: i64) -> &mut Self {
        if (-2048..=2047).contains(&value) {
            return self.addi(rd, XReg::ZERO, value as i32);
        }
        // lui+addi reaches any value where the upper part fits the 20-bit
        // lui immediate *without 32-bit wraparound* (RV64 lui sign-extends,
        // so e.g. 0x7fff_ffff needs the long form).
        let lo = ((value << 52) >> 52) as i32; // low 12, sign-extended
        let hi = value.wrapping_sub(lo as i64) >> 12;
        if (-(1 << 19)..(1 << 19)).contains(&hi) {
            self.raw(Instr::Lui {
                rd,
                imm20: hi as i32,
            });
            if lo != 0 {
                self.addi(rd, rd, lo);
            }
            return self;
        }
        // 64-bit constants: build the upper 32 bits, shift, then OR in the
        // lower bits 11 at a time (keeps every addi immediate non-negative
        // so sign extension cannot corrupt already-placed bits).
        self.li(rd, value >> 32);
        let low = value as u32 as u64;
        self.slli(rd, rd, 11);
        self.addi(rd, rd, ((low >> 21) & 0x7ff) as i32);
        self.slli(rd, rd, 11);
        self.addi(rd, rd, ((low >> 10) & 0x7ff) as i32);
        self.slli(rd, rd, 10);
        if low & 0x3ff != 0 {
            self.addi(rd, rd, (low & 0x3ff) as i32);
        }
        self
    }

    /// Register-register ALU op.
    pub fn op(&mut self, op: AluOp, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.raw(Instr::Op { op, rd, rs1, rs2 })
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.op(AluOp::Add, rd, rs1, rs2)
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.op(AluOp::Sub, rd, rs1, rs2)
    }

    /// `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: XReg, rs1: XReg, shamt: i32) -> &mut Self {
        self.raw(Instr::OpImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm: shamt,
        })
    }

    /// `srli rd, rs1, shamt`.
    pub fn srli(&mut self, rd: XReg, rs1: XReg, shamt: i32) -> &mut Self {
        self.raw(Instr::OpImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm: shamt,
        })
    }

    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: XReg, rs1: XReg, imm: i32) -> &mut Self {
        self.raw(Instr::OpImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        })
    }

    /// Scalar load. (`ld` has no unsigned variant; width D normalizes to
    /// signed, matching the decoder.)
    pub fn load(
        &mut self,
        width: MemWidth,
        signed: bool,
        rd: XReg,
        rs1: XReg,
        off: i32,
    ) -> &mut Self {
        let signed = signed || width == MemWidth::D;
        self.raw(Instr::Load {
            width,
            signed,
            rd,
            rs1,
            offset: off,
        })
    }

    /// `lw rd, off(rs1)` (signed).
    pub fn lw(&mut self, rd: XReg, rs1: XReg, off: i32) -> &mut Self {
        self.load(MemWidth::W, true, rd, rs1, off)
    }

    /// `lwu rd, off(rs1)`.
    pub fn lwu(&mut self, rd: XReg, rs1: XReg, off: i32) -> &mut Self {
        self.load(MemWidth::W, false, rd, rs1, off)
    }

    /// `ld rd, off(rs1)`.
    pub fn ld(&mut self, rd: XReg, rs1: XReg, off: i32) -> &mut Self {
        self.load(MemWidth::D, true, rd, rs1, off)
    }

    /// Scalar store.
    pub fn store(&mut self, width: MemWidth, rs2: XReg, rs1: XReg, off: i32) -> &mut Self {
        self.raw(Instr::Store {
            width,
            rs2,
            rs1,
            offset: off,
        })
    }

    /// `sw rs2, off(rs1)`.
    pub fn sw(&mut self, rs2: XReg, rs1: XReg, off: i32) -> &mut Self {
        self.store(MemWidth::W, rs2, rs1, off)
    }

    /// `sd rs2, off(rs1)`.
    pub fn sd(&mut self, rs2: XReg, rs1: XReg, off: i32) -> &mut Self {
        self.store(MemWidth::D, rs2, rs1, off)
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: BranchCond, rs1: XReg, rs2: XReg, target: Label) -> &mut Self {
        self.items.push(Item::Branch {
            cond,
            rs1,
            rs2,
            target,
        });
        self
    }

    /// `beq rs1, rs2, target`.
    pub fn beq(&mut self, rs1: XReg, rs2: XReg, target: Label) -> &mut Self {
        self.branch(BranchCond::Eq, rs1, rs2, target)
    }

    /// `bne rs1, rs2, target`.
    pub fn bne(&mut self, rs1: XReg, rs2: XReg, target: Label) -> &mut Self {
        self.branch(BranchCond::Ne, rs1, rs2, target)
    }

    /// `blt rs1, rs2, target` (signed).
    pub fn blt(&mut self, rs1: XReg, rs2: XReg, target: Label) -> &mut Self {
        self.branch(BranchCond::Lt, rs1, rs2, target)
    }

    /// `bge rs1, rs2, target` (signed).
    pub fn bge(&mut self, rs1: XReg, rs2: XReg, target: Label) -> &mut Self {
        self.branch(BranchCond::Ge, rs1, rs2, target)
    }

    /// `bltu rs1, rs2, target`.
    pub fn bltu(&mut self, rs1: XReg, rs2: XReg, target: Label) -> &mut Self {
        self.branch(BranchCond::Ltu, rs1, rs2, target)
    }

    /// `bgeu rs1, rs2, target`.
    pub fn bgeu(&mut self, rs1: XReg, rs2: XReg, target: Label) -> &mut Self {
        self.branch(BranchCond::Geu, rs1, rs2, target)
    }

    /// `beqz rs, target`.
    pub fn beqz(&mut self, rs: XReg, target: Label) -> &mut Self {
        self.beq(rs, XReg::ZERO, target)
    }

    /// `bnez rs, target`.
    pub fn bnez(&mut self, rs: XReg, target: Label) -> &mut Self {
        self.bne(rs, XReg::ZERO, target)
    }

    /// Unconditional jump to a label (`jal x0`).
    pub fn jump(&mut self, target: Label) -> &mut Self {
        self.items.push(Item::Jump {
            rd: XReg::ZERO,
            target,
        });
        self
    }

    /// `jal rd, target` — call a label.
    pub fn call(&mut self, rd: XReg, target: Label) -> &mut Self {
        self.items.push(Item::Jump { rd, target });
        self
    }

    /// `jalr rd, off(rs1)` — indirect jump (returns).
    pub fn jalr(&mut self, rd: XReg, rs1: XReg, off: i32) -> &mut Self {
        self.raw(Instr::Jalr {
            rd,
            rs1,
            offset: off,
        })
    }

    /// `ret` (`jalr x0, 0(ra)`).
    pub fn ret(&mut self) -> &mut Self {
        self.jalr(XReg::ZERO, XReg::RA, 0)
    }

    /// `ecall` — halt.
    pub fn halt(&mut self) -> &mut Self {
        self.raw(Instr::Ecall)
    }

    // ------------------------------------------------------------- vector --

    /// `vsetvli rd, rs1, vtype`.
    pub fn vsetvli(&mut self, rd: XReg, rs1: XReg, vtype: VType) -> &mut Self {
        self.raw(Instr::Vsetvli { rd, rs1, vtype })
    }

    /// Unit-stride load `vle<eew>.v`.
    pub fn vle(&mut self, eew: Sew, vd: VReg, rs1: XReg) -> &mut Self {
        self.raw(Instr::VLoad {
            eew,
            vd,
            rs1,
            vm: true,
        })
    }

    /// Unit-stride store `vse<eew>.v`.
    pub fn vse(&mut self, eew: Sew, vs3: VReg, rs1: XReg) -> &mut Self {
        self.raw(Instr::VStore {
            eew,
            vs3,
            rs1,
            vm: true,
        })
    }

    /// Indexed-unordered store `vsuxei<eew>.v` — the paper's permutation
    /// primitive.
    pub fn vsuxei(&mut self, eew: Sew, vs3: VReg, rs1: XReg, vs2: VReg) -> &mut Self {
        self.raw(Instr::VStoreIndexed {
            eew,
            ordered: false,
            vs3,
            rs1,
            vs2,
            vm: true,
        })
    }

    /// Whole-register load (spill reload).
    pub fn vlr(&mut self, nregs: u8, vd: VReg, rs1: XReg) -> &mut Self {
        self.raw(Instr::VLoadWhole { nregs, vd, rs1 })
    }

    /// Whole-register store (spill).
    pub fn vsr(&mut self, nregs: u8, vs3: VReg, rs1: XReg) -> &mut Self {
        self.raw(Instr::VStoreWhole { nregs, vs3, rs1 })
    }

    /// Vector-vector ALU op.
    pub fn vop_vv(&mut self, op: VAluOp, vd: VReg, vs2: VReg, vs1: VReg, vm: bool) -> &mut Self {
        self.raw(Instr::VOpVV {
            op,
            vd,
            vs2,
            vs1,
            vm,
        })
    }

    /// Vector-scalar ALU op.
    pub fn vop_vx(&mut self, op: VAluOp, vd: VReg, vs2: VReg, rs1: XReg, vm: bool) -> &mut Self {
        self.raw(Instr::VOpVX {
            op,
            vd,
            vs2,
            rs1,
            vm,
        })
    }

    /// Vector-immediate ALU op.
    pub fn vop_vi(&mut self, op: VAluOp, vd: VReg, vs2: VReg, imm: i8, vm: bool) -> &mut Self {
        self.raw(Instr::VOpVI {
            op,
            vd,
            vs2,
            imm,
            vm,
        })
    }

    /// Compare-to-mask, vector-immediate.
    pub fn vcmp_vi(&mut self, cond: VCmp, vd: VReg, vs2: VReg, imm: i8, vm: bool) -> &mut Self {
        self.raw(Instr::VCmpVI {
            cond,
            vd,
            vs2,
            imm,
            vm,
        })
    }

    /// Compare-to-mask, vector-scalar.
    pub fn vcmp_vx(&mut self, cond: VCmp, vd: VReg, vs2: VReg, rs1: XReg, vm: bool) -> &mut Self {
        self.raw(Instr::VCmpVX {
            cond,
            vd,
            vs2,
            rs1,
            vm,
        })
    }

    /// `vmv.v.v vd, vs1`.
    pub fn vmv_vv(&mut self, vd: VReg, vs1: VReg) -> &mut Self {
        self.raw(Instr::VMvVV { vd, vs1 })
    }

    /// `vmv.v.x vd, rs1`.
    pub fn vmv_vx(&mut self, vd: VReg, rs1: XReg) -> &mut Self {
        self.raw(Instr::VMvVX { vd, rs1 })
    }

    /// `vmv.v.i vd, imm`.
    pub fn vmv_vi(&mut self, vd: VReg, imm: i8) -> &mut Self {
        self.raw(Instr::VMvVI { vd, imm })
    }

    /// `vmv.s.x vd, rs1`.
    pub fn vmv_sx(&mut self, vd: VReg, rs1: XReg) -> &mut Self {
        self.raw(Instr::VMvSX { vd, rs1 })
    }

    /// `vmv.x.s rd, vs2`.
    pub fn vmv_xs(&mut self, rd: XReg, vs2: VReg) -> &mut Self {
        self.raw(Instr::VMvXS { rd, vs2 })
    }

    /// `vslideup.vx`.
    pub fn vslideup_vx(&mut self, vd: VReg, vs2: VReg, rs1: XReg, vm: bool) -> &mut Self {
        self.raw(Instr::VSlideUpVX { vd, vs2, rs1, vm })
    }

    /// `vslidedown.vx`.
    pub fn vslidedown_vx(&mut self, vd: VReg, vs2: VReg, rs1: XReg, vm: bool) -> &mut Self {
        self.raw(Instr::VSlideDownVX { vd, vs2, rs1, vm })
    }

    /// `viota.m`.
    pub fn viota(&mut self, vd: VReg, vs2: VReg) -> &mut Self {
        self.raw(Instr::VIota { vd, vs2, vm: true })
    }

    /// `vcpop.m`.
    pub fn vcpop(&mut self, rd: XReg, vs2: VReg) -> &mut Self {
        self.raw(Instr::VCpop { rd, vs2, vm: true })
    }

    /// `vmsbf.m`.
    pub fn vmsbf(&mut self, vd: VReg, vs2: VReg) -> &mut Self {
        self.raw(Instr::VMsbf { vd, vs2, vm: true })
    }

    /// `vid.v`.
    pub fn vid(&mut self, vd: VReg) -> &mut Self {
        self.raw(Instr::VId { vd, vm: true })
    }

    /// Reduction `vred<op>.vs`.
    pub fn vred(&mut self, op: VRedOp, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.raw(Instr::VRed {
            op,
            vd,
            vs2,
            vs1,
            vm: true,
        })
    }

    /// Resolve labels and produce the program.
    pub fn finish(self) -> Result<Program, AsmError> {
        let mut instrs = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let resolve = |l: &Label| -> Result<i64, AsmError> {
                let t = self.labels[l.0].ok_or(AsmError::UnboundLabel(l.0))?;
                Ok((t as i64 - idx as i64) * 4)
            };
            let i = match item {
                Item::Fixed(i) => *i,
                Item::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    let offset = resolve(target)?;
                    if !(-4096..=4094).contains(&offset) {
                        return Err(AsmError::OffsetOutOfRange { at: idx, offset });
                    }
                    Instr::Branch {
                        cond: *cond,
                        rs1: *rs1,
                        rs2: *rs2,
                        offset: offset as i32,
                    }
                }
                Item::Jump { rd, target } => {
                    let offset = resolve(target)?;
                    if !(-(1i64 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::OffsetOutOfRange { at: idx, offset });
                    }
                    Instr::Jal {
                        rd: *rd,
                        offset: offset as i32,
                    }
                }
            };
            instrs.push(i);
        }
        let mut p = Program::new(self.name, instrs);
        for (idx, label) in self.marks {
            p.add_mark(idx as u64 * 4, label);
        }
        Ok(p)
    }

    /// Resolve labels and produce a pre-decoded execution plan — `finish`
    /// followed by [`CompiledPlan::compile`]. Use this when the program goes
    /// straight to a machine; the plan still carries the source program for
    /// disassembly and legacy-engine runs.
    pub fn finish_plan(self) -> Result<CompiledPlan, AsmError> {
        Ok(CompiledPlan::compile(self.finish()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvv_sim::{Machine, MachineConfig};

    fn run(p: &Program) -> Machine {
        let mut m = Machine::new(MachineConfig {
            vlen: 128,
            mem_bytes: 1 << 16,
        });
        m.run_default(p).unwrap();
        m
    }

    #[test]
    fn finish_plan_matches_finish() {
        let build = || {
            let mut b = ProgramBuilder::new("plan");
            b.li(XReg::new(5), 7);
            b.halt();
            b
        };
        let plan = build().finish_plan().unwrap();
        let p = build().finish().unwrap();
        assert_eq!(plan.program().instrs, p.instrs);
        let mut m = Machine::new(MachineConfig {
            vlen: 128,
            mem_bytes: 1 << 16,
        });
        m.run_plan(&plan, 100).unwrap();
        assert_eq!(m.xreg(XReg::new(5)), 7);
    }

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ProgramBuilder::new("labels");
        let loop_head = b.label();
        let done = b.label();
        b.li(XReg::new(5), 3);
        b.bind(loop_head);
        b.beqz(XReg::new(5), done); // forward reference
        b.addi(XReg::new(5), XReg::new(5), -1);
        b.addi(XReg::new(6), XReg::new(6), 10);
        b.jump(loop_head); // backward reference
        b.bind(done);
        b.halt();
        let p = b.finish().unwrap();
        let m = run(&p);
        assert_eq!(m.xreg(XReg::new(6)), 30);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new("bad");
        let l = b.label();
        b.jump(l);
        assert!(matches!(b.finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn li_small_medium_large() {
        for v in [
            0i64,
            1,
            -1,
            2047,
            -2048,
            2048,
            -2049,
            0x12345,
            -0x12345,
            i32::MAX as i64,
            i32::MIN as i64,
            0x1234_5678_9abc_def0,
            -0x1234_5678_9abc_def0,
            i64::MAX,
            i64::MIN,
            0x8000_0000, // not representable as positive i32 lui path
            0xdead_beef_i64,
        ] {
            let mut b = ProgramBuilder::new("li");
            b.li(XReg::new(5), v);
            b.halt();
            let p = b.finish().unwrap();
            let m = run(&p);
            assert_eq!(
                m.xreg(XReg::new(5)) as i64,
                v,
                "li {v:#x} materialized wrong"
            );
        }
    }

    #[test]
    fn branch_offset_overflow_detected() {
        let mut b = ProgramBuilder::new("far");
        let far = b.label();
        b.beqz(XReg::ZERO, far);
        for _ in 0..2000 {
            b.addi(XReg::new(5), XReg::new(5), 1);
        }
        b.bind(far);
        b.halt();
        assert!(matches!(b.finish(), Err(AsmError::OffsetOutOfRange { .. })));
    }

    #[test]
    fn programs_assemble_to_valid_machine_code() {
        let mut b = ProgramBuilder::new("asm");
        let l = b.label();
        b.li(XReg::new(5), 123456789);
        b.bind(l);
        b.addi(XReg::new(5), XReg::new(5), -1);
        b.bnez(XReg::new(5), l);
        b.halt();
        let p = b.finish().unwrap();
        let bytes = p.assemble().unwrap();
        for (i, c) in bytes.chunks_exact(4).enumerate() {
            let w = u32::from_le_bytes(c.try_into().unwrap());
            assert_eq!(rvv_isa::decode(w).unwrap(), p.instrs[i]);
        }
    }
}
