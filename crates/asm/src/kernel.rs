//! LMUL-aware vector register allocation with spill insertion.
//!
//! The paper's Table 5/6 anomaly — LMUL=8 *slower* than LMUL=1 on small
//! inputs, faster on large ones — is a register-allocation effect: grouping
//! registers by LMUL shrinks the number of allocatable names (28 data
//! groups at LMUL=1, but only `{v8, v16, v24}` at LMUL=8 once the low
//! registers are reserved for masks), so kernels with more live vector
//! values than groups spill. [`KernelBuilder`] reproduces that mechanism:
//!
//! * Kernels declare their vector **values** up front, with a
//!   [`ValueKind`]: `Normal` (a live variable), `Temp` (lives only within
//!   one statement group), or `Remat` (a broadcast constant the compiler
//!   can rematerialize from a scalar register instead of spilling).
//! * While aligned groups last, everything is pinned to registers and all
//!   access helpers are free.
//! * When values outnumber groups, the two highest groups become
//!   **scratch**: `Normal` values beyond the pinned set get stack slots
//!   with reload-per-use / store-per-def traffic (`addi` +
//!   `vl<LMUL>r.v`/`vs<LMUL>r.v` — real, counted instructions); `Temp`s
//!   live transiently in scratch; `Remat`s are re-broadcast (`vmv.v.x`)
//!   on use.
//! * The [`SpillProfile`] sets the per-call fixed cost. `Llvm14` sizes the
//!   frame conservatively — one slot per declared vector value, the way
//!   LLVM 14's RVV backend allocated slots for every vector virtual live
//!   across intrinsic statements — and zero-initializes it with a scalar
//!   loop; this reproduces the N-independent ≈2×10³-instruction overhead
//!   the paper's Table 5 shows at LMUL=8 for small N. `Ideal` allocates
//!   only what actually spills and skips the initialization. The ablation
//!   bench compares the two.
//!
//! ## Register conventions
//!
//! * `v0` — active mask; `v1..v3` — mask temporaries (masks occupy a single
//!   register at every LMUL).
//! * Data groups are allocated from `v4` upward (so `v8` upward at LMUL=8).
//! * `x8` (fp) addresses the spill frame; `x29..x31` are scratch for spill
//!   addressing and frame initialization. Kernels built through
//!   [`KernelBuilder`] must not use these for their own state.

use crate::builder::ProgramBuilder;
use rvv_isa::{Lmul, VReg, XReg};

/// Models the compiler's spill code generation cost.
///
/// `Hash` because the profile is part of the shared plan registry's cache
/// key: kernels generated under different spill strategies are different
/// programs and must never be served across profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpillProfile {
    /// Allocate a frame slot for *every* declared vector value (not just
    /// the ones that spill) and zero-initialize the frame with a scalar
    /// store loop in the prologue. Calibrated to LLVM 14's observed
    /// behaviour (paper Table 5, N=10²: ≈2×10³ instructions for a single
    /// strip). The traffic is real, executed and counted; its *size* is
    /// what is calibrated.
    pub conservative_frame: bool,
}

impl SpillProfile {
    /// Calibrated to the paper's LLVM-14 measurements. The default.
    pub const fn llvm14() -> SpillProfile {
        SpillProfile {
            conservative_frame: true,
        }
    }

    /// An idealized compiler: minimal frame, spill traffic only.
    pub const fn ideal() -> SpillProfile {
        SpillProfile {
            conservative_frame: false,
        }
    }
}

impl Default for SpillProfile {
    fn default() -> Self {
        SpillProfile::llvm14()
    }
}

/// How a declared vector value may be stored when registers run out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// A live variable: spilled to a stack slot under pressure.
    Normal,
    /// A short-lived temporary (defined and consumed within one statement
    /// group): lives in scratch under pressure, never touches the stack.
    Temp,
    /// A broadcast constant whose scalar source is held in the given
    /// x-register: rematerialized with `vmv.v.x` under pressure.
    Remat(XReg),
}

/// Handle to a declared vector value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VValue(usize);

#[derive(Debug, Clone, Copy)]
enum Loc {
    /// Pinned to a register group (no-pressure mode, any kind).
    Reg(VReg),
    /// Stack slot (pressure mode, `Normal`).
    Slot(usize),
    /// Scratch-resident temp (pressure mode): register + generation stamp.
    TempIn(Option<(VReg, u64)>),
    /// Rematerialized constant (pressure mode).
    Remat(XReg),
}

/// Fixed scratch x-registers (documented above).
const X_ADDR: XReg = XReg::new(31); // t6: spill slot addressing
const X_ZERO_PTR: XReg = XReg::new(30); // t5: frame-init cursor
const X_ZERO_END: XReg = XReg::new(29); // t4: frame-init limit
/// Frame pointer.
pub const FP: XReg = XReg::new(8);

/// Summary of an allocation, for tests and reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationReport {
    /// Number of values pinned to registers.
    pub pinned: usize,
    /// Number of `Normal` values spilled to stack slots.
    pub spilled: usize,
    /// Spill frame size in bytes (0 when nothing spills).
    pub frame_bytes: u32,
}

/// Builds a kernel with LMUL-aware vector value allocation on top of a
/// [`ProgramBuilder`].
pub struct KernelBuilder {
    /// The underlying assembler (public: kernels emit instructions through
    /// it with registers obtained from [`KernelBuilder::vin`] /
    /// [`KernelBuilder::vout`]).
    pub b: ProgramBuilder,
    lmul: Lmul,
    slot_bytes: u32,
    profile: SpillProfile,
    kinds: Vec<ValueKind>,
    locs: Vec<Loc>,
    scratch: Vec<VReg>,
    scratch_gen: Vec<u64>,
    next_scratch: usize,
    gen_counter: u64,
    n_slots: usize,
    n_declared: usize,
    spill_ops: u64,
}

impl KernelBuilder {
    /// Start a kernel. `vlenb` is VLEN/8 of the machine the kernel will run
    /// on (spill slot sizes depend on it, so kernels are built per VLEN —
    /// mirroring how a compiler lays out its frame for a known target).
    pub fn new(
        name: impl Into<String>,
        lmul: Lmul,
        vlenb: u32,
        profile: SpillProfile,
    ) -> KernelBuilder {
        KernelBuilder {
            b: ProgramBuilder::new(name),
            lmul,
            slot_bytes: lmul.regs() * vlenb,
            profile,
            kinds: Vec::new(),
            locs: Vec::new(),
            scratch: Vec::new(),
            scratch_gen: Vec::new(),
            next_scratch: 0,
            gen_counter: 0,
            n_slots: 0,
            n_declared: 0,
            spill_ops: 0,
        }
    }

    /// Aligned data group bases available at `lmul` under the v0–v3 mask
    /// reservation.
    pub fn data_groups(lmul: Lmul) -> Vec<VReg> {
        let step = lmul.regs() as u8;
        let first = step.max(4);
        (0..32u8)
            .step_by(step as usize)
            .filter(|&r| r >= first)
            .map(VReg::new)
            .collect()
    }

    /// Declare the kernel's vector values with kinds, hottest `Normal`s
    /// first. Must be called exactly once, before any access helper.
    pub fn declare_kinds(&mut self, values: &[(&str, ValueKind)]) -> Vec<VValue> {
        assert!(self.locs.is_empty(), "declare must be called once");
        self.n_declared = values.len();
        self.kinds = values.iter().map(|&(_, k)| k).collect();
        let mut free = Self::data_groups(self.lmul);
        if values.len() <= free.len() {
            // No pressure: everything (including temps and constants) pins.
            self.locs = free.drain(..values.len()).map(Loc::Reg).collect();
        } else {
            // Pressure: reserve the two highest groups as scratch. Pin the
            // hottest Normals; remaining Normals get stack slots; Temps go
            // scratch-resident; Remats rematerialize.
            assert!(free.len() >= 3, "need at least 3 groups to spill through");
            self.scratch = free.split_off(free.len() - 2);
            self.scratch_gen = vec![0; self.scratch.len()];
            let mut slots = 0usize;
            for &(_, kind) in values {
                let loc = match kind {
                    ValueKind::Normal => {
                        if free.is_empty() {
                            let s = slots;
                            slots += 1;
                            Loc::Slot(s)
                        } else {
                            Loc::Reg(free.remove(0))
                        }
                    }
                    ValueKind::Temp => Loc::TempIn(None),
                    ValueKind::Remat(x) => Loc::Remat(x),
                };
                self.locs.push(loc);
            }
            self.n_slots = slots;
        }
        (0..values.len()).map(VValue).collect()
    }

    /// [`KernelBuilder::declare_kinds`] with every value `Normal`.
    pub fn declare(&mut self, names: &[&str]) -> Vec<VValue> {
        let kinds: Vec<(&str, ValueKind)> = names.iter().map(|&n| (n, ValueKind::Normal)).collect();
        self.declare_kinds(&kinds)
    }

    /// The pinned home register of a value, if it has one (`None` for
    /// spilled, scratch-resident, or rematerialized values). Introspection
    /// for tests and diagnostics; emits no code.
    pub fn home_of(&self, v: VValue) -> Option<VReg> {
        match self.locs[v.0] {
            Loc::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// Allocation summary.
    pub fn report(&self) -> AllocationReport {
        let pinned = self
            .locs
            .iter()
            .filter(|l| matches!(l, Loc::Reg(_)))
            .count();
        AllocationReport {
            pinned,
            spilled: self.n_slots,
            frame_bytes: self.frame_bytes(),
        }
    }

    /// Does this kernel operate under register pressure (scratch + slots)?
    pub fn spills(&self) -> bool {
        self.n_slots > 0
    }

    /// Count of spill/reload whole-register memory operations emitted so far
    /// (diagnostic for the ablation benches).
    pub fn spill_ops(&self) -> u64 {
        self.spill_ops
    }

    fn frame_bytes(&self) -> u32 {
        if self.n_slots == 0 {
            return 0;
        }
        let slots = if self.profile.conservative_frame {
            // LLVM-14-style: a slot for every declared vector value.
            self.n_declared
        } else {
            self.n_slots
        };
        slots as u32 * self.slot_bytes
    }

    /// Emit the frame prologue. Call after `declare`, before the body.
    /// No-op when nothing spills.
    pub fn prologue(&mut self) {
        let frame = self.frame_bytes();
        if frame == 0 {
            return;
        }
        self.b.mark("spill_prologue");
        let f = frame as i64;
        if f <= 2047 {
            self.b.addi(XReg::SP, XReg::SP, -(f as i32));
        } else {
            self.b.li(X_ADDR, f);
            self.b.sub(XReg::SP, XReg::SP, X_ADDR);
        }
        self.b.mv(FP, XReg::SP);
        if self.profile.conservative_frame {
            // sd x0 loop over the frame: 3 instructions per 8 bytes. This is
            // the calibrated LLVM-14 fixed overhead (see module docs).
            self.b.mark("frame_zero_init");
            self.b.mv(X_ZERO_PTR, FP);
            if f <= 2047 {
                self.b.addi(X_ZERO_END, FP, f as i32);
            } else {
                self.b.li(X_ZERO_END, f);
                self.b.add(X_ZERO_END, FP, X_ZERO_END);
            }
            let head = self.b.label();
            self.b.bind(head);
            self.b.sd(XReg::ZERO, X_ZERO_PTR, 0);
            self.b.addi(X_ZERO_PTR, X_ZERO_PTR, 8);
            self.b.bne(X_ZERO_PTR, X_ZERO_END, head);
        }
    }

    /// Emit the frame epilogue. Call before `halt`. No-op when nothing
    /// spills.
    pub fn epilogue(&mut self) {
        let frame = self.frame_bytes() as i64;
        if frame == 0 {
            return;
        }
        self.b.mark("spill_epilogue");
        if frame <= 2047 {
            self.b.addi(XReg::SP, XReg::SP, frame as i32);
        } else {
            self.b.li(X_ADDR, frame);
            self.b.add(XReg::SP, XReg::SP, X_ADDR);
        }
    }

    fn slot_addr(&mut self, slot: usize) {
        let off = slot as i64 * self.slot_bytes as i64;
        if off <= 2047 {
            self.b.addi(X_ADDR, FP, off as i32);
        } else {
            self.b.li(X_ADDR, off);
            self.b.add(X_ADDR, FP, X_ADDR);
        }
    }

    fn take_scratch(&mut self) -> (VReg, u64) {
        let i = self.next_scratch % self.scratch.len();
        self.next_scratch += 1;
        self.gen_counter += 1;
        self.scratch_gen[i] = self.gen_counter;
        (self.scratch[i], self.gen_counter)
    }

    /// Obtain a register holding the current value of `v` for reading.
    ///
    /// Pinned values cost nothing. Spilled `Normal`s are reloaded into
    /// scratch (`addi` + whole-register load). `Remat` constants are
    /// re-broadcast (`vmv.v.x`) into scratch. `Temp`s return the scratch
    /// they were defined in — which must not have been reused since
    /// (checked; a violation is a kernel-author bug and panics).
    ///
    /// At most **two** pressure-mode reads may be live at once (there are
    /// two scratch groups); order reads accordingly.
    pub fn vin(&mut self, v: VValue) -> VReg {
        match self.locs[v.0] {
            Loc::Reg(r) => r,
            Loc::Slot(s) => {
                let (r, _) = self.take_scratch();
                self.slot_addr(s);
                self.b.vlr(self.lmul.regs() as u8, r, X_ADDR);
                self.spill_ops += 1;
                r
            }
            Loc::TempIn(state) => {
                let (r, gen) = state.expect("temp read before any definition");
                let idx = self
                    .scratch
                    .iter()
                    .position(|&s| s == r)
                    .expect("temp in scratch");
                assert_eq!(
                    self.scratch_gen[idx], gen,
                    "temp value was clobbered by scratch rotation before its use"
                );
                r
            }
            Loc::Remat(x) => {
                let (r, _) = self.take_scratch();
                self.b.vmv_vx(r, x);
                r
            }
        }
    }

    /// Obtain a register to hold a new definition of `v`. For spilled
    /// `Normal`s this is scratch (no reload) and the caller **must** pass
    /// the returned register to [`KernelBuilder::vflush`] after the defining
    /// instruction(s). `Remat` values cannot be redefined.
    pub fn vout(&mut self, v: VValue) -> VReg {
        match self.locs[v.0] {
            Loc::Reg(r) => r,
            Loc::Slot(_) => self.take_scratch().0,
            Loc::TempIn(_) => {
                let (r, gen) = self.take_scratch();
                self.locs[v.0] = Loc::TempIn(Some((r, gen)));
                r
            }
            Loc::Remat(_) => panic!("broadcast constants cannot be redefined"),
        }
    }

    /// Store a freshly defined value back to its home. No-op for pinned
    /// values and temps.
    pub fn vflush(&mut self, v: VValue, r: VReg) {
        match self.locs[v.0] {
            Loc::Reg(home) => debug_assert_eq!(home, r, "pinned value defined elsewhere"),
            Loc::Slot(s) => {
                self.slot_addr(s);
                self.b.vsr(self.lmul.regs() as u8, r, X_ADDR);
                self.spill_ops += 1;
            }
            Loc::TempIn(_) => {}
            Loc::Remat(_) => panic!("broadcast constants cannot be redefined"),
        }
    }

    /// Fill `dst` with the broadcast constant `v` (a `Remat` value, or any
    /// pinned value): one instruction either way — `vmv.v.v` from the
    /// pinned home, or `vmv.v.x` from the constant's scalar register under
    /// pressure.
    pub fn vfill(&mut self, dst: VReg, v: VValue) {
        match self.locs[v.0] {
            Loc::Reg(r) => {
                self.b.vmv_vv(dst, r);
            }
            Loc::Remat(x) => {
                self.b.vmv_vx(dst, x);
            }
            _ => panic!("vfill source must be a pinned value or a broadcast constant"),
        }
    }

    /// One-time initialization for a `Remat` constant: broadcasts the
    /// scalar into the pinned home register when there is no pressure;
    /// emits nothing under pressure (uses rematerialize instead). Call in
    /// the preamble after the scalar register is loaded.
    pub fn init_remat(&mut self, v: VValue) {
        let x = match self.kinds[v.0] {
            ValueKind::Remat(x) => x,
            _ => panic!("init_remat on a non-Remat value"),
        };
        if let Loc::Reg(r) = self.locs[v.0] {
            self.b.vmv_vx(r, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T9: XReg = XReg::new(9);

    #[test]
    fn group_counts_match_the_register_pressure_story() {
        // These counts are the whole Table 5 mechanism.
        assert_eq!(KernelBuilder::data_groups(Lmul::M1).len(), 28); // v4..v31
        assert_eq!(KernelBuilder::data_groups(Lmul::M2).len(), 14); // v4,v6..v30
        assert_eq!(KernelBuilder::data_groups(Lmul::M4).len(), 7); // v4,v8..v28
        assert_eq!(KernelBuilder::data_groups(Lmul::M8).len(), 3); // v8,v16,v24
        assert_eq!(
            KernelBuilder::data_groups(Lmul::M8),
            vec![VReg::new(8), VReg::new(16), VReg::new(24)]
        );
    }

    fn seg_scan_values() -> Vec<(&'static str, ValueKind)> {
        vec![
            ("flags", ValueKind::Normal),
            ("x", ValueKind::Normal),
            ("y", ValueKind::Temp),
            ("fs", ValueKind::Temp),
            ("ident", ValueKind::Remat(T9)),
            ("one", ValueKind::Remat(T9)),
        ]
    }

    #[test]
    fn six_values_fit_at_m4_but_pressure_at_m8() {
        let mut k4 = KernelBuilder::new("k4", Lmul::M4, 16, SpillProfile::llvm14());
        k4.declare_kinds(&seg_scan_values());
        assert!(!k4.spills());
        assert_eq!(
            k4.report(),
            AllocationReport {
                pinned: 6,
                spilled: 0,
                frame_bytes: 0
            }
        );

        let mut k8 = KernelBuilder::new("k8", Lmul::M8, 16, SpillProfile::llvm14());
        k8.declare_kinds(&seg_scan_values());
        assert!(k8.spills());
        // 3 groups - 2 scratch = 1 pinned (flags); x spilled; temps and
        // constants take no slots. Conservative frame: 6 slots.
        assert_eq!(
            k8.report(),
            AllocationReport {
                pinned: 1,
                spilled: 1,
                frame_bytes: 6 * 8 * 16
            }
        );
        let mut k8i = KernelBuilder::new("k8i", Lmul::M8, 16, SpillProfile::ideal());
        k8i.declare_kinds(&seg_scan_values());
        assert_eq!(k8i.report().frame_bytes, 8 * 16); // only the real slot
    }

    #[test]
    fn pinned_access_emits_nothing() {
        let mut k = KernelBuilder::new("k", Lmul::M1, 16, SpillProfile::llvm14());
        let vs = k.declare(&["a", "b"]);
        let before = k.b.here();
        let ra = k.vin(vs[0]);
        let rb = k.vout(vs[1]);
        k.vflush(vs[1], rb);
        assert_eq!(k.b.here(), before);
        assert_ne!(ra, rb);
        assert_eq!(k.spill_ops(), 0);
    }

    #[test]
    fn spilled_access_emits_reload_and_store() {
        let mut k = KernelBuilder::new("k", Lmul::M8, 16, SpillProfile::ideal());
        let vs = k.declare(&["a", "b", "c", "d"]); // 1 pinned, 3 spilled
        let before = k.b.here();
        let _r = k.vin(vs[3]); // spilled -> addi + vl8r
        assert_eq!(k.b.here(), before + 2);
        let r = k.vout(vs[2]);
        assert_eq!(k.b.here(), before + 2); // no reload on def
        k.vflush(vs[2], r);
        assert_eq!(k.b.here(), before + 4); // addi + vs8r
        assert_eq!(k.spill_ops(), 2);
    }

    #[test]
    fn remat_rebroadcasts_one_instruction() {
        let mut k = KernelBuilder::new("k", Lmul::M8, 16, SpillProfile::ideal());
        let vs = k.declare_kinds(&[
            ("a", ValueKind::Normal),
            ("b", ValueKind::Normal),
            ("c", ValueKind::Normal),
            ("id", ValueKind::Remat(T9)),
        ]);
        let before = k.b.here();
        k.init_remat(vs[3]); // pressure mode: no-op
        assert_eq!(k.b.here(), before);
        let _r = k.vin(vs[3]); // vmv.v.x
        assert_eq!(k.b.here(), before + 1);
        assert_eq!(k.spill_ops(), 0);
    }

    #[test]
    fn temp_lives_in_scratch_and_detects_clobber() {
        let mut k = KernelBuilder::new("k", Lmul::M8, 16, SpillProfile::ideal());
        let vs = k.declare_kinds(&[
            ("a", ValueKind::Normal),
            ("b", ValueKind::Normal),
            ("c", ValueKind::Normal),
            ("t", ValueKind::Temp),
        ]);
        let before = k.b.here();
        let rt = k.vout(vs[3]); // scratch, no code
        assert_eq!(k.b.here(), before);
        assert_eq!(k.vin(vs[3]), rt); // still valid
                                      // Two more scratch takes wrap the rotation and clobber the temp.
        let _ = k.vin(vs[2]);
        let _ = k.vin(vs[2]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| k.vin(vs[3])));
        assert!(r.is_err(), "clobbered temp read must be detected");
    }

    #[test]
    fn vfill_is_one_instruction_both_modes() {
        // No pressure: vmv.v.v from pinned home.
        let mut k = KernelBuilder::new("k", Lmul::M1, 16, SpillProfile::llvm14());
        let vs = k.declare_kinds(&[("x", ValueKind::Normal), ("id", ValueKind::Remat(T9))]);
        k.init_remat(vs[1]); // broadcasts once
        let rx = k.vout(vs[0]);
        let before = k.b.here();
        k.vfill(rx, vs[1]);
        assert_eq!(k.b.here(), before + 1);
        // Pressure: vmv.v.x from the scalar.
        let mut k8 = KernelBuilder::new("k8", Lmul::M8, 16, SpillProfile::llvm14());
        let vs8 = k8.declare_kinds(&[
            ("a", ValueKind::Normal),
            ("b", ValueKind::Normal),
            ("c", ValueKind::Normal),
            ("id", ValueKind::Remat(T9)),
        ]);
        let ra = k8.vin(vs8[0]);
        let before = k8.b.here();
        k8.vfill(ra, vs8[3]);
        assert_eq!(k8.b.here(), before + 1);
    }

    #[test]
    fn prologue_epilogue_balance_and_run() {
        use rvv_sim::{Machine, MachineConfig};
        let vlenb = 128 / 8;
        for profile in [SpillProfile::ideal(), SpillProfile::llvm14()] {
            let mut k = KernelBuilder::new("spill-frame", Lmul::M8, vlenb, profile);
            let vs = k.declare(&["a", "b", "c", "d"]);
            k.prologue();
            // Define then read back a spilled value through the frame.
            let rd = k.vout(vs[3]);
            k.b.vid(rd);
            k.vflush(vs[3], rd);
            let rr = k.vin(vs[3]);
            // Move element 0 (== 0 from vid) to x15 to prove the roundtrip.
            k.b.vmv_xs(XReg::new(15), rr);
            k.epilogue();
            k.b.halt();
            let mut m = Machine::new(MachineConfig {
                vlen: 128,
                mem_bytes: 1 << 16,
            });
            m.set_xreg(XReg::SP, 1 << 15);
            // Configure vtype so vid is legal.
            m.set_xreg(XReg::new(10), 4);
            let mut pre = ProgramBuilder::new("cfg");
            pre.vsetvli(
                XReg::ZERO,
                XReg::new(10),
                rvv_isa::VType::new(rvv_isa::Sew::E32, Lmul::M8),
            );
            // Splice the config in front of the kernel body.
            let mut instrs = pre.finish().unwrap().instrs;
            let body = k.b.finish().unwrap();
            instrs.extend(body.instrs);
            let p = rvv_sim::Program::new("test", instrs);
            m.run_default(&p).unwrap();
            assert_eq!(m.xreg(XReg::new(15)), 0);
            assert_eq!(m.xreg(XReg::SP), 1 << 15, "sp must balance");
        }
    }

    #[test]
    fn llvm14_profile_zeroes_frame_with_scalar_loop() {
        let vlenb = 1024 / 8;
        let mut ideal = KernelBuilder::new("i", Lmul::M8, vlenb, SpillProfile::ideal());
        ideal.declare_kinds(&seg_scan_values());
        ideal.prologue();
        let ideal_len = ideal.b.here();
        let mut cal = KernelBuilder::new("c", Lmul::M8, vlenb, SpillProfile::llvm14());
        cal.declare_kinds(&seg_scan_values());
        cal.prologue();
        // Same static length order (the zero loop is a loop), but it
        // executes ~3 dynamic instructions per 8 frame bytes.
        assert!(cal.b.here() > ideal_len);
    }
}
