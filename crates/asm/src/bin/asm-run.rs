//! `asm-run` — assemble-and-execute for the modelled RV64IM+RVV subset.
//!
//! Takes a textual assembly file (the syntax `dump_kernels` prints and
//! `rvv_asm::parse_program` accepts, labels included), runs it on the
//! simulator, and reports dynamic instruction counts.
//!
//! ```text
//! asm-run program.s [--vlen 1024] [--mem-mib 64] [--a0 N] .. [--a7 N]
//!                   [--emit program.bin] [--dump-u32 ADDR COUNT]
//! ```

use rvv_asm::parse_program;
use rvv_isa::{InstrClass, XReg};
use rvv_sim::{Machine, MachineConfig};

fn usage() -> ! {
    eprintln!(
        "usage: asm-run <program.s> [--vlen N] [--mem-mib N] [--a0 N] .. [--a7 N] \
         [--emit FILE] [--dump-u32 ADDR COUNT]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let path = &args[0];
    let mut vlen = 1024u32;
    let mut mem_mib = 64usize;
    let mut regs: Vec<(u8, u64)> = Vec::new();
    let mut emit: Option<String> = None;
    let mut dump: Option<(u64, usize)> = None;
    let parse = |s: &str| -> u64 {
        if let Some(hex) = s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).unwrap_or_else(|_| usage())
        } else {
            s.parse().unwrap_or_else(|_| usage())
        }
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--vlen" => {
                vlen = parse(&args[i + 1]) as u32;
                i += 2;
            }
            "--mem-mib" => {
                mem_mib = parse(&args[i + 1]) as usize;
                i += 2;
            }
            "--emit" => {
                emit = Some(args[i + 1].clone());
                i += 2;
            }
            "--dump-u32" => {
                dump = Some((parse(&args[i + 1]), parse(&args[i + 2]) as usize));
                i += 3;
            }
            a if a.starts_with("--a") => {
                let n: u8 = a[3..].parse().unwrap_or_else(|_| usage());
                if n >= 8 {
                    usage();
                }
                regs.push((n, parse(&args[i + 1])));
                i += 2;
            }
            _ => usage(),
        }
    }

    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("asm-run: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let program = parse_program(path.clone(), &src).unwrap_or_else(|e| {
        eprintln!("asm-run: {path}:{e}");
        std::process::exit(1);
    });
    if let Some(out) = emit {
        let bytes = program.assemble().unwrap_or_else(|e| {
            eprintln!("asm-run: encode failed: {e}");
            std::process::exit(1);
        });
        std::fs::write(&out, bytes).unwrap_or_else(|e| {
            eprintln!("asm-run: cannot write {out}: {e}");
            std::process::exit(1);
        });
        println!("wrote {out} ({} bytes)", program.len() * 4);
    }

    let mut m = Machine::new(MachineConfig {
        vlen,
        mem_bytes: mem_mib << 20,
    });
    for &(n, v) in &regs {
        m.set_xreg(XReg::arg(n), v);
    }
    m.set_xreg(XReg::SP, (mem_mib as u64) << 20);
    match m.run_default(&program) {
        Ok(report) => {
            println!("halted at pc {:#x}", report.halt_pc);
            println!("retired: {}", report.retired);
            for c in InstrClass::ALL {
                let n = m.counters.class(c);
                if n > 0 {
                    println!("  {:12} {}", c.label(), n);
                }
            }
            println!("a0 = {:#x}", m.xreg(XReg::arg(0)));
            if let Some((addr, count)) = dump {
                println!("mem[{addr:#x}..]: {:?}", m.mem.read_u32_slice(addr, count));
            }
        }
        Err(e) => {
            eprintln!("asm-run: trap: {e}");
            std::process::exit(1);
        }
    }
}
