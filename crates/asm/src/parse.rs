//! Textual assembler: parse standard RISC-V assembly (the same syntax the
//! disassembler prints) into a [`Program`].
//!
//! Supported grammar, line-oriented:
//!
//! * `# comment` and `// comment` to end of line;
//! * `label:` definitions (a leading bare hex address followed by `:` — as
//!   produced by the disassembler — is skipped);
//! * every instruction of the modelled subset, in the mnemonic syntax of
//!   [`rvv_isa::Instr`]'s `Display` (e.g. `vadd.vv v8, v8, v9, v0.t`,
//!   `vsetvli x13, x10, e32, m1, ta, mu`, `lw x5, 8(x11)`);
//! * branch/jump targets as numeric byte offsets *or* label names.
//!
//! The key invariant, property-tested against every generated kernel:
//! `parse(program.to_string()) == program`.

use crate::builder::ProgramBuilder;
use rvv_isa::{
    AluOp, BranchCond, Instr, Lmul, MaskOp, MemWidth, Sew, VAluOp, VCmp, VCsr, VRedOp, VReg, VType,
    XReg,
};
use rvv_sim::Program;
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

/// Either a resolved numeric byte offset or a label to resolve.
enum Target {
    Offset(i32),
    Label(String),
}

enum Stmt {
    Label(String),
    Instr(Instr),
    Branch {
        cond: BranchCond,
        rs1: XReg,
        rs2: XReg,
        target: Target,
    },
    Jal {
        rd: XReg,
        target: Target,
    },
}

fn parse_xreg(s: &str, line: usize) -> Result<XReg, ParseError> {
    let n: u8 = s
        .strip_prefix('x')
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError {
            line,
            msg: format!("expected x-register, got `{s}`"),
        })?;
    XReg::try_new(n).ok_or(ParseError {
        line,
        msg: format!("register {s} out of range"),
    })
}

fn parse_vreg(s: &str, line: usize) -> Result<VReg, ParseError> {
    let n: u8 = s
        .strip_prefix('v')
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError {
            line,
            msg: format!("expected v-register, got `{s}`"),
        })?;
    VReg::try_new(n).ok_or(ParseError {
        line,
        msg: format!("register {s} out of range"),
    })
}

fn parse_int(s: &str, line: usize) -> Result<i64, ParseError> {
    let (neg, t) = match s.strip_prefix('-') {
        Some(t) => (true, t),
        None => (false, s),
    };
    let v = if let Some(h) = t.strip_prefix("0x") {
        i64::from_str_radix(h, 16).ok()
    } else {
        t.parse::<i64>().ok()
    };
    match v {
        Some(v) => Ok(if neg { -v } else { v }),
        None => err(line, format!("expected integer, got `{s}`")),
    }
}

/// `off(xreg)` or `(xreg)`.
fn parse_mem_operand(s: &str, line: usize) -> Result<(i32, XReg), ParseError> {
    let open = s.find('(').ok_or_else(|| ParseError {
        line,
        msg: format!("expected `offset(reg)`, got `{s}`"),
    })?;
    if !s.ends_with(')') {
        return err(line, format!("expected `offset(reg)`, got `{s}`"));
    }
    let off = if open == 0 {
        0
    } else {
        parse_int(&s[..open], line)? as i32
    };
    let reg = parse_xreg(&s[open + 1..s.len() - 1], line)?;
    Ok((off, reg))
}

fn scalar_alu(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "sll" => AluOp::Sll,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        "xor" => AluOp::Xor,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "or" => AluOp::Or,
        "and" => AluOp::And,
        "mul" => AluOp::Mul,
        "mulh" => AluOp::Mulh,
        "mulhu" => AluOp::Mulhu,
        "div" => AluOp::Div,
        "divu" => AluOp::Divu,
        "rem" => AluOp::Rem,
        "remu" => AluOp::Remu,
        _ => return None,
    })
}

fn valu(m: &str) -> Option<VAluOp> {
    Some(match m {
        "vadd" => VAluOp::Add,
        "vsub" => VAluOp::Sub,
        "vrsub" => VAluOp::Rsub,
        "vminu" => VAluOp::Minu,
        "vmin" => VAluOp::Min,
        "vmaxu" => VAluOp::Maxu,
        "vmax" => VAluOp::Max,
        "vand" => VAluOp::And,
        "vor" => VAluOp::Or,
        "vxor" => VAluOp::Xor,
        "vsll" => VAluOp::Sll,
        "vsrl" => VAluOp::Srl,
        "vsra" => VAluOp::Sra,
        "vmul" => VAluOp::Mul,
        "vmulh" => VAluOp::Mulh,
        "vmulhu" => VAluOp::Mulhu,
        "vdivu" => VAluOp::Divu,
        "vdiv" => VAluOp::Div,
        "vremu" => VAluOp::Remu,
        "vrem" => VAluOp::Rem,
        _ => return None,
    })
}

fn vcmp(m: &str) -> Option<VCmp> {
    Some(match m {
        "vmseq" => VCmp::Eq,
        "vmsne" => VCmp::Ne,
        "vmsltu" => VCmp::Ltu,
        "vmslt" => VCmp::Lt,
        "vmsleu" => VCmp::Leu,
        "vmsle" => VCmp::Le,
        "vmsgtu" => VCmp::Gtu,
        "vmsgt" => VCmp::Gt,
        _ => return None,
    })
}

fn mask_op(m: &str) -> Option<MaskOp> {
    Some(match m {
        "vmandn.mm" => MaskOp::Andn,
        "vmand.mm" => MaskOp::And,
        "vmor.mm" => MaskOp::Or,
        "vmxor.mm" => MaskOp::Xor,
        "vmorn.mm" => MaskOp::Orn,
        "vmnand.mm" => MaskOp::Nand,
        "vmnor.mm" => MaskOp::Nor,
        "vmxnor.mm" => MaskOp::Xnor,
        _ => return None,
    })
}

fn vred(m: &str) -> Option<VRedOp> {
    Some(match m {
        "vredsum.vs" => VRedOp::Sum,
        "vredand.vs" => VRedOp::And,
        "vredor.vs" => VRedOp::Or,
        "vredxor.vs" => VRedOp::Xor,
        "vredminu.vs" => VRedOp::Minu,
        "vredmin.vs" => VRedOp::Min,
        "vredmaxu.vs" => VRedOp::Maxu,
        "vredmax.vs" => VRedOp::Max,
        _ => return None,
    })
}

fn mem_sew(digits: &str) -> Option<Sew> {
    Some(match digits {
        "8" => Sew::E8,
        "16" => Sew::E16,
        "32" => Sew::E32,
        "64" => Sew::E64,
        _ => return None,
    })
}

fn parse_vtype(ops: &[&str], line: usize) -> Result<VType, ParseError> {
    if ops.len() != 4 {
        return err(line, "expected `eN, mN, t?, m?` vtype operands");
    }
    let sew = match ops[0] {
        "e8" => Sew::E8,
        "e16" => Sew::E16,
        "e32" => Sew::E32,
        "e64" => Sew::E64,
        other => return err(line, format!("bad SEW `{other}`")),
    };
    let lmul = match ops[1] {
        "m1" => Lmul::M1,
        "m2" => Lmul::M2,
        "m4" => Lmul::M4,
        "m8" => Lmul::M8,
        "mf2" => Lmul::F2,
        "mf4" => Lmul::F4,
        "mf8" => Lmul::F8,
        other => return err(line, format!("bad LMUL `{other}`")),
    };
    let ta = match ops[2] {
        "ta" => true,
        "tu" => false,
        other => return err(line, format!("bad tail policy `{other}`")),
    };
    let ma = match ops[3] {
        "ma" => true,
        "mu" => false,
        other => return err(line, format!("bad mask policy `{other}`")),
    };
    Ok(VType { sew, lmul, ta, ma })
}

/// Split off a trailing `v0.t` mask operand; returns (operands, vm).
fn take_mask<'a>(ops: &'a [&'a str]) -> (&'a [&'a str], bool) {
    match ops.last() {
        Some(&"v0.t") => (&ops[..ops.len() - 1], false),
        _ => (ops, true),
    }
}

#[allow(clippy::too_many_lines)] // one arm per mnemonic family, table-like
fn parse_instr(mnemonic: &str, ops: &[&str], line: usize) -> Result<Stmt, ParseError> {
    let x = |i: usize| parse_xreg(ops[i], line);
    let v = |i: usize| parse_vreg(ops[i], line);
    let need = |n: usize| -> Result<(), ParseError> {
        if ops.len() == n {
            Ok(())
        } else {
            err(
                line,
                format!("{mnemonic} expects {n} operands, got {}", ops.len()),
            )
        }
    };

    // Scalar register-register / register-immediate ALU.
    if let Some(op) = scalar_alu(mnemonic) {
        need(3)?;
        return Ok(Stmt::Instr(Instr::Op {
            op,
            rd: x(0)?,
            rs1: x(1)?,
            rs2: x(2)?,
        }));
    }
    if let Some(base) = mnemonic.strip_suffix('i') {
        if let Some(op) = scalar_alu(base) {
            if op.has_imm_form() {
                need(3)?;
                let imm = parse_int(ops[2], line)? as i32;
                return Ok(Stmt::Instr(Instr::OpImm {
                    op,
                    rd: x(0)?,
                    rs1: x(1)?,
                    imm,
                }));
            }
        }
    }
    if mnemonic == "sltiu" {
        need(3)?;
        let imm = parse_int(ops[2], line)? as i32;
        return Ok(Stmt::Instr(Instr::OpImm {
            op: AluOp::Sltu,
            rd: x(0)?,
            rs1: x(1)?,
            imm,
        }));
    }

    // Scalar loads/stores.
    let load = |width, signed| -> Result<Stmt, ParseError> {
        need(2)?;
        let (offset, rs1) = parse_mem_operand(ops[1], line)?;
        Ok(Stmt::Instr(Instr::Load {
            width,
            signed,
            rd: x(0)?,
            rs1,
            offset,
        }))
    };
    match mnemonic {
        "lb" => return load(MemWidth::B, true),
        "lbu" => return load(MemWidth::B, false),
        "lh" => return load(MemWidth::H, true),
        "lhu" => return load(MemWidth::H, false),
        "lw" => return load(MemWidth::W, true),
        "lwu" => return load(MemWidth::W, false),
        "ld" => return load(MemWidth::D, true),
        _ => {}
    }
    let store = |width| -> Result<Stmt, ParseError> {
        need(2)?;
        let (offset, rs1) = parse_mem_operand(ops[1], line)?;
        Ok(Stmt::Instr(Instr::Store {
            width,
            rs2: x(0)?,
            rs1,
            offset,
        }))
    };
    match mnemonic {
        "sb" => return store(MemWidth::B),
        "sh" => return store(MemWidth::H),
        "sw" => return store(MemWidth::W),
        "sd" => return store(MemWidth::D),
        _ => {}
    }

    // Branches / jumps / system.
    let branch = |cond| -> Result<Stmt, ParseError> {
        need(3)?;
        let target = if ops[2].starts_with(|c: char| c.is_ascii_alphabetic() || c == '_') {
            Target::Label(ops[2].to_string())
        } else {
            Target::Offset(parse_int(ops[2], line)? as i32)
        };
        Ok(Stmt::Branch {
            cond,
            rs1: x(0)?,
            rs2: x(1)?,
            target,
        })
    };
    match mnemonic {
        "beq" => return branch(BranchCond::Eq),
        "bne" => return branch(BranchCond::Ne),
        "blt" => return branch(BranchCond::Lt),
        "bge" => return branch(BranchCond::Ge),
        "bltu" => return branch(BranchCond::Ltu),
        "bgeu" => return branch(BranchCond::Geu),
        "jal" => {
            need(2)?;
            let target = if ops[1].starts_with(|c: char| c.is_ascii_alphabetic() || c == '_') {
                Target::Label(ops[1].to_string())
            } else {
                Target::Offset(parse_int(ops[1], line)? as i32)
            };
            return Ok(Stmt::Jal { rd: x(0)?, target });
        }
        "jalr" => {
            need(2)?;
            let (offset, rs1) = parse_mem_operand(ops[1], line)?;
            return Ok(Stmt::Instr(Instr::Jalr {
                rd: x(0)?,
                rs1,
                offset,
            }));
        }
        "lui" | "auipc" => {
            need(2)?;
            let imm20 = parse_int(ops[1], line)? as i32;
            let rd = x(0)?;
            return Ok(Stmt::Instr(if mnemonic == "lui" {
                Instr::Lui { rd, imm20 }
            } else {
                Instr::Auipc { rd, imm20 }
            }));
        }
        "ecall" => {
            need(0)?;
            return Ok(Stmt::Instr(Instr::Ecall));
        }
        "ebreak" => {
            need(0)?;
            return Ok(Stmt::Instr(Instr::Ebreak));
        }
        "csrr" => {
            need(2)?;
            let csr = match ops[1] {
                "vl" => VCsr::Vl,
                "vtype" => VCsr::Vtype,
                "vlenb" => VCsr::Vlenb,
                other => return err(line, format!("unsupported CSR `{other}`")),
            };
            return Ok(Stmt::Instr(Instr::Csrr { rd: x(0)?, csr }));
        }
        "vsetvli" => {
            if ops.len() != 6 {
                return err(line, "vsetvli expects rd, rs1, e*, m*, t*, m*");
            }
            let vtype = parse_vtype(&ops[2..], line)?;
            return Ok(Stmt::Instr(Instr::Vsetvli {
                rd: x(0)?,
                rs1: x(1)?,
                vtype,
            }));
        }
        "vsetivli" => {
            if ops.len() != 6 {
                return err(line, "vsetivli expects rd, uimm, e*, m*, t*, m*");
            }
            let uimm = parse_int(ops[1], line)? as u8;
            let vtype = parse_vtype(&ops[2..], line)?;
            return Ok(Stmt::Instr(Instr::Vsetivli {
                rd: x(0)?,
                uimm,
                vtype,
            }));
        }
        "vsetvl" => {
            need(3)?;
            return Ok(Stmt::Instr(Instr::Vsetvl {
                rd: x(0)?,
                rs1: x(1)?,
                rs2: x(2)?,
            }));
        }
        _ => {}
    }

    // Vector memory: vle32.v, vse32.v, vlse32.v, vsse32.v, vluxei32.v,
    // vsuxei32.v, vloxei32.v, vsoxei32.v, vl4re8.v, vs4r.v, vlm.v, vsm.v.
    if let Some(rest) = mnemonic.strip_suffix(".v") {
        let (ops_nm, vm) = take_mask(ops);
        let vmem = |s: &str| mem_sew(s);
        if let Some(d) = rest.strip_prefix("vle").and_then(vmem) {
            let (_, rs1) = parse_mem_operand(ops_nm[1], line)?;
            return Ok(Stmt::Instr(Instr::VLoad {
                eew: d,
                vd: v(0)?,
                rs1,
                vm,
            }));
        }
        if let Some(d) = rest.strip_prefix("vse").and_then(vmem) {
            let (_, rs1) = parse_mem_operand(ops_nm[1], line)?;
            return Ok(Stmt::Instr(Instr::VStore {
                eew: d,
                vs3: v(0)?,
                rs1,
                vm,
            }));
        }
        if let Some(d) = rest.strip_prefix("vlse").and_then(vmem) {
            let (_, rs1) = parse_mem_operand(ops_nm[1], line)?;
            let rs2 = parse_xreg(ops_nm[2], line)?;
            return Ok(Stmt::Instr(Instr::VLoadStrided {
                eew: d,
                vd: v(0)?,
                rs1,
                rs2,
                vm,
            }));
        }
        if let Some(d) = rest.strip_prefix("vsse").and_then(vmem) {
            let (_, rs1) = parse_mem_operand(ops_nm[1], line)?;
            let rs2 = parse_xreg(ops_nm[2], line)?;
            return Ok(Stmt::Instr(Instr::VStoreStrided {
                eew: d,
                vs3: v(0)?,
                rs1,
                rs2,
                vm,
            }));
        }
        for (prefix, is_load, ordered) in [
            ("vluxei", true, false),
            ("vloxei", true, true),
            ("vsuxei", false, false),
            ("vsoxei", false, true),
        ] {
            if let Some(d) = rest.strip_prefix(prefix).and_then(vmem) {
                let (_, rs1) = parse_mem_operand(ops_nm[1], line)?;
                let vs2 = parse_vreg(ops_nm[2], line)?;
                return Ok(Stmt::Instr(if is_load {
                    Instr::VLoadIndexed {
                        eew: d,
                        ordered,
                        vd: v(0)?,
                        rs1,
                        vs2,
                        vm,
                    }
                } else {
                    Instr::VStoreIndexed {
                        eew: d,
                        ordered,
                        vs3: v(0)?,
                        rs1,
                        vs2,
                        vm,
                    }
                }));
            }
        }
        if let Some(n) = rest.strip_prefix("vl").and_then(|t| t.strip_suffix("re8")) {
            let nregs: u8 = n.parse().map_err(|_| ParseError {
                line,
                msg: format!("bad whole-register count in `{mnemonic}`"),
            })?;
            let (_, rs1) = parse_mem_operand(ops_nm[1], line)?;
            return Ok(Stmt::Instr(Instr::VLoadWhole {
                nregs,
                vd: v(0)?,
                rs1,
            }));
        }
        if let Some(n) = rest.strip_prefix("vs").and_then(|t| t.strip_suffix('r')) {
            if let Ok(nregs) = n.parse::<u8>() {
                let (_, rs1) = parse_mem_operand(ops_nm[1], line)?;
                return Ok(Stmt::Instr(Instr::VStoreWhole {
                    nregs,
                    vs3: v(0)?,
                    rs1,
                }));
            }
        }
        if rest == "vlm" {
            let (_, rs1) = parse_mem_operand(ops_nm[1], line)?;
            return Ok(Stmt::Instr(Instr::VLoadMask { vd: v(0)?, rs1 }));
        }
        if rest == "vsm" {
            let (_, rs1) = parse_mem_operand(ops_nm[1], line)?;
            return Ok(Stmt::Instr(Instr::VStoreMask { vs3: v(0)?, rs1 }));
        }
        if rest == "vid" {
            return Ok(Stmt::Instr(Instr::VId { vd: v(0)?, vm }));
        }
    }

    // Vector arithmetic and friends: split `name.suffix`.
    if let Some((name, suffix)) = mnemonic.rsplit_once('.') {
        let (ops_nm, vm) = take_mask(ops);
        let imm = |i: usize| parse_int(ops_nm[i], line).map(|x| x as i8);
        match (valu(name), suffix) {
            (Some(op), "vv") => {
                return Ok(Stmt::Instr(Instr::VOpVV {
                    op,
                    vd: v(0)?,
                    vs2: v(1)?,
                    vs1: parse_vreg(ops_nm[2], line)?,
                    vm,
                }))
            }
            (Some(op), "vx") => {
                return Ok(Stmt::Instr(Instr::VOpVX {
                    op,
                    vd: v(0)?,
                    vs2: v(1)?,
                    rs1: parse_xreg(ops_nm[2], line)?,
                    vm,
                }))
            }
            (Some(op), "vi") => {
                return Ok(Stmt::Instr(Instr::VOpVI {
                    op,
                    vd: v(0)?,
                    vs2: v(1)?,
                    imm: imm(2)?,
                    vm,
                }))
            }
            _ => {}
        }
        match (vcmp(name), suffix) {
            (Some(cond), "vv") => {
                return Ok(Stmt::Instr(Instr::VCmpVV {
                    cond,
                    vd: v(0)?,
                    vs2: v(1)?,
                    vs1: parse_vreg(ops_nm[2], line)?,
                    vm,
                }))
            }
            (Some(cond), "vx") => {
                return Ok(Stmt::Instr(Instr::VCmpVX {
                    cond,
                    vd: v(0)?,
                    vs2: v(1)?,
                    rs1: parse_xreg(ops_nm[2], line)?,
                    vm,
                }))
            }
            (Some(cond), "vi") => {
                return Ok(Stmt::Instr(Instr::VCmpVI {
                    cond,
                    vd: v(0)?,
                    vs2: v(1)?,
                    imm: imm(2)?,
                    vm,
                }))
            }
            _ => {}
        }
        match mnemonic {
            "vmerge.vvm" => {
                return Ok(Stmt::Instr(Instr::VMergeVVM {
                    vd: v(0)?,
                    vs2: v(1)?,
                    vs1: v(2)?,
                }))
            }
            "vmerge.vxm" => {
                return Ok(Stmt::Instr(Instr::VMergeVXM {
                    vd: v(0)?,
                    vs2: v(1)?,
                    rs1: x(2)?,
                }))
            }
            "vmerge.vim" => {
                return Ok(Stmt::Instr(Instr::VMergeVIM {
                    vd: v(0)?,
                    vs2: v(1)?,
                    imm: imm(2)?,
                }))
            }
            "vmv.v.v" => {
                return Ok(Stmt::Instr(Instr::VMvVV {
                    vd: v(0)?,
                    vs1: v(1)?,
                }))
            }
            "vmv.v.x" => {
                return Ok(Stmt::Instr(Instr::VMvVX {
                    vd: v(0)?,
                    rs1: x(1)?,
                }))
            }
            "vmv.v.i" => {
                return Ok(Stmt::Instr(Instr::VMvVI {
                    vd: v(0)?,
                    imm: imm(1)?,
                }))
            }
            "vmv.s.x" => {
                return Ok(Stmt::Instr(Instr::VMvSX {
                    vd: v(0)?,
                    rs1: x(1)?,
                }))
            }
            "vmv.x.s" => {
                return Ok(Stmt::Instr(Instr::VMvXS {
                    rd: x(0)?,
                    vs2: v(1)?,
                }))
            }
            "vslideup.vx" => {
                return Ok(Stmt::Instr(Instr::VSlideUpVX {
                    vd: v(0)?,
                    vs2: v(1)?,
                    rs1: parse_xreg(ops_nm[2], line)?,
                    vm,
                }))
            }
            "vslideup.vi" => {
                return Ok(Stmt::Instr(Instr::VSlideUpVI {
                    vd: v(0)?,
                    vs2: v(1)?,
                    uimm: imm(2)? as u8,
                    vm,
                }))
            }
            "vslidedown.vx" => {
                return Ok(Stmt::Instr(Instr::VSlideDownVX {
                    vd: v(0)?,
                    vs2: v(1)?,
                    rs1: parse_xreg(ops_nm[2], line)?,
                    vm,
                }))
            }
            "vslidedown.vi" => {
                return Ok(Stmt::Instr(Instr::VSlideDownVI {
                    vd: v(0)?,
                    vs2: v(1)?,
                    uimm: imm(2)? as u8,
                    vm,
                }))
            }
            "vslide1up.vx" => {
                return Ok(Stmt::Instr(Instr::VSlide1Up {
                    vd: v(0)?,
                    vs2: v(1)?,
                    rs1: parse_xreg(ops_nm[2], line)?,
                    vm,
                }))
            }
            "vslide1down.vx" => {
                return Ok(Stmt::Instr(Instr::VSlide1Down {
                    vd: v(0)?,
                    vs2: v(1)?,
                    rs1: parse_xreg(ops_nm[2], line)?,
                    vm,
                }))
            }
            "vrgather.vv" => {
                return Ok(Stmt::Instr(Instr::VRGatherVV {
                    vd: v(0)?,
                    vs2: v(1)?,
                    vs1: parse_vreg(ops_nm[2], line)?,
                    vm,
                }))
            }
            "vrgather.vx" => {
                return Ok(Stmt::Instr(Instr::VRGatherVX {
                    vd: v(0)?,
                    vs2: v(1)?,
                    rs1: parse_xreg(ops_nm[2], line)?,
                    vm,
                }))
            }
            "vcompress.vm" => {
                return Ok(Stmt::Instr(Instr::VCompress {
                    vd: v(0)?,
                    vs2: v(1)?,
                    vs1: v(2)?,
                }))
            }
            "viota.m" => {
                return Ok(Stmt::Instr(Instr::VIota {
                    vd: v(0)?,
                    vs2: v(1)?,
                    vm,
                }))
            }
            "vcpop.m" => {
                return Ok(Stmt::Instr(Instr::VCpop {
                    rd: x(0)?,
                    vs2: v(1)?,
                    vm,
                }))
            }
            "vfirst.m" => {
                return Ok(Stmt::Instr(Instr::VFirst {
                    rd: x(0)?,
                    vs2: v(1)?,
                    vm,
                }))
            }
            "vmsbf.m" => {
                return Ok(Stmt::Instr(Instr::VMsbf {
                    vd: v(0)?,
                    vs2: v(1)?,
                    vm,
                }))
            }
            "vmsif.m" => {
                return Ok(Stmt::Instr(Instr::VMsif {
                    vd: v(0)?,
                    vs2: v(1)?,
                    vm,
                }))
            }
            "vmsof.m" => {
                return Ok(Stmt::Instr(Instr::VMsof {
                    vd: v(0)?,
                    vs2: v(1)?,
                    vm,
                }))
            }
            _ => {}
        }
        if let Some(op) = mask_op(mnemonic) {
            return Ok(Stmt::Instr(Instr::VMaskLogic {
                op,
                vd: v(0)?,
                vs2: v(1)?,
                vs1: v(2)?,
            }));
        }
        if let Some(op) = vred(mnemonic) {
            return Ok(Stmt::Instr(Instr::VRed {
                op,
                vd: v(0)?,
                vs2: v(1)?,
                vs1: parse_vreg(ops_nm[2], line)?,
                vm,
            }));
        }
    }

    err(line, format!("unknown mnemonic `{mnemonic}`"))
}

/// Parse an assembly listing into a program.
pub fn parse_program(name: impl Into<String>, source: &str) -> Result<Program, ParseError> {
    let mut stmts: Vec<(usize, Stmt)> = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split('#').next().unwrap_or("");
        let text = text.split("//").next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut rest = text;
        // Leading labels (and disassembler addresses like `1c:`): any
        // leading whitespace-delimited token ending in ':' is one.
        loop {
            let first = rest.split_whitespace().next().unwrap_or("");
            let Some(head) = first.strip_suffix(':') else {
                break;
            };
            let is_addr = !head.is_empty() && head.chars().all(|c| c.is_ascii_hexdigit());
            if !is_addr {
                stmts.push((line, Stmt::Label(head.to_string())));
            }
            rest = rest[first.len()..].trim_start();
            if rest.is_empty() {
                break;
            }
        }
        if rest.is_empty() {
            continue;
        }
        let (mnemonic, operand_text) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
        let ops: Vec<&str> = operand_text
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        stmts.push((line, parse_instr(mnemonic, &ops, line)?));
    }

    // First pass: label addresses.
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut pc = 0usize;
    for (line, s) in &stmts {
        match s {
            Stmt::Label(l) => {
                if labels.insert(l.clone(), pc).is_some() {
                    return err(*line, format!("label `{l}` defined twice"));
                }
            }
            _ => pc += 1,
        }
    }

    // Second pass: emit through the builder (reusing its offset checks).
    let mut b = ProgramBuilder::new(name);
    let mut bound: HashMap<String, crate::builder::Label> = HashMap::new();
    // Pre-create builder labels for every defined label.
    for l in labels.keys() {
        let lbl = b.label();
        bound.insert(l.clone(), lbl);
    }
    let resolve_offset = |line: usize, at: usize, off: i32| -> Result<usize, ParseError> {
        let target = at as i64 * 4 + off as i64;
        if target < 0 || target % 4 != 0 {
            return err(
                line,
                format!("branch offset {off} lands outside the program"),
            );
        }
        Ok((target / 4) as usize)
    };
    // Numeric-offset targets need synthetic labels at their landing index.
    let mut synthetic: HashMap<usize, crate::builder::Label> = HashMap::new();
    let mut at = 0usize;
    for (line, s) in &stmts {
        match s {
            Stmt::Label(_) => {}
            Stmt::Branch {
                target: Target::Offset(off),
                ..
            }
            | Stmt::Jal {
                target: Target::Offset(off),
                ..
            } => {
                let idx = resolve_offset(*line, at, *off)?;
                synthetic.entry(idx).or_insert_with(|| b.label());
                at += 1;
            }
            _ => at += 1,
        }
    }

    let mut at = 0usize;
    let mut bound_synthetic: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for (line, s) in &stmts {
        if let Some(lbl) = synthetic.get(&at) {
            if !matches!(s, Stmt::Label(_)) && bound_synthetic.insert(at) {
                b.bind(*lbl);
            }
        }
        match s {
            Stmt::Label(l) => {
                b.bind(bound[l]);
                continue;
            }
            Stmt::Instr(i) => {
                b.raw(*i);
            }
            Stmt::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let lbl = match target {
                    Target::Label(l) => *bound.get(l).ok_or_else(|| ParseError {
                        line: *line,
                        msg: format!("unknown label `{l}`"),
                    })?,
                    Target::Offset(off) => synthetic
                        .get(&resolve_offset(*line, at, *off)?)
                        .copied()
                        .unwrap_or_else(|| panic!("synthetic label missing")),
                };
                b.branch(*cond, *rs1, *rs2, lbl);
            }
            Stmt::Jal { rd, target } => {
                let lbl = match target {
                    Target::Label(l) => *bound.get(l).ok_or_else(|| ParseError {
                        line: *line,
                        msg: format!("unknown label `{l}`"),
                    })?,
                    Target::Offset(off) => synthetic
                        .get(&resolve_offset(*line, at, *off)?)
                        .copied()
                        .unwrap_or_else(|| panic!("synthetic label missing")),
                };
                b.call(*rd, lbl);
            }
        }
        at += 1;
    }
    // Bind any forward synthetic labels that land exactly at the end.
    for (idx, lbl) in synthetic {
        if bound_synthetic.contains(&idx) {
            continue;
        }
        if idx == at {
            b.bind(lbl);
        } else {
            return Err(ParseError {
                line: 0,
                msg: format!("branch target at instruction {idx} does not exist"),
            });
        }
    }

    b.finish().map_err(|e| ParseError {
        line: 0,
        msg: e.to_string(),
    })
}
