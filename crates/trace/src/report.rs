//! Human-readable text report.

use crate::profiler::TraceProfiler;
use rvv_isa::InstrClass;
use std::fmt::Write as _;

impl TraceProfiler {
    /// Render the profile as a text report: totals, per-phase table,
    /// spill traffic, class histogram, and top hotspots.
    pub fn text_report(&self) -> String {
        let mut out = String::new();
        let total = self.total_retired();
        let t = self.totals();
        let pct = |n: u64| {
            if total == 0 {
                0.0
            } else {
                100.0 * n as f64 / total as f64
            }
        };
        let cycles = self.cycles();
        writeln!(out, "rvv-trace profile").unwrap();
        writeln!(out, "=================").unwrap();
        writeln!(out, "total retired: {total}").unwrap();
        if let (Some(c), Some(m)) = (&cycles, self.cost_model()) {
            writeln!(
                out,
                "est. cycles:   {} (cost model: {})",
                c.total(),
                m.name()
            )
            .unwrap();
        }
        let r = self.stack_region();
        writeln!(out, "stack region:  {:#x}..{:#x}", r.start, r.end).unwrap();

        writeln!(out, "\nphases (attributed to innermost):").unwrap();
        writeln!(
            out,
            "  {:<16} {:>8} {:>12} {:>7} {:>10} {:>12}{}",
            "phase",
            "enters",
            "retired",
            "%",
            "spill ops",
            "spill bytes",
            if cycles.is_some() {
                format!(" {:>12}", "busy cyc")
            } else {
                String::new()
            }
        )
        .unwrap();
        for p in self.phases() {
            writeln!(
                out,
                "  {:<16} {:>8} {:>12} {:>6.1}% {:>10} {:>12}{}",
                p.name,
                p.enters,
                p.retired,
                pct(p.retired),
                p.spill.total_ops(),
                p.spill.total_bytes(),
                if cycles.is_some() {
                    format!(" {:>12}", p.cycles)
                } else {
                    String::new()
                }
            )
            .unwrap();
        }
        let un = self.unattributed();
        if un > 0 {
            writeln!(
                out,
                "  {:<16} {:>8} {:>12} {:>6.1}%",
                "(unattributed)",
                "-",
                un,
                pct(un)
            )
            .unwrap();
        }

        let s = self.spill();
        writeln!(out, "\nspill / stack traffic:").unwrap();
        writeln!(
            out,
            "  vector: {} loads, {} stores, {} bytes",
            s.vector_loads, s.vector_stores, s.vector_bytes
        )
        .unwrap();
        writeln!(
            out,
            "  scalar: {} loads, {} stores, {} bytes",
            s.scalar_loads, s.scalar_stores, s.scalar_bytes
        )
        .unwrap();

        writeln!(out, "\ninstruction classes:").unwrap();
        for c in InstrClass::ALL {
            let n = t.class(c);
            if n > 0 {
                writeln!(out, "  {:<12} {:>12} {:>6.1}%", c.label(), n, pct(n)).unwrap();
            }
        }

        if let Some(cy) = &cycles {
            writeln!(out, "\nbusy cycles by class (units overlap):").unwrap();
            for (c, n) in cy.iter() {
                if n > 0 {
                    writeln!(out, "  {:<12} {:>12}", c.label(), n).unwrap();
                }
            }
        }

        let hs = self.hotspots(10);
        if !hs.is_empty() {
            writeln!(out, "\ntop hotspots:").unwrap();
            for h in hs {
                writeln!(
                    out,
                    "  {:>12} {:>6.1}%  {}",
                    h.count,
                    pct(h.count),
                    h.location()
                )
                .unwrap();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvv_isa::Instr;
    use rvv_sim::{RetireEvent, TraceSink};

    #[test]
    fn report_mentions_phases_and_totals() {
        let mut p = TraceProfiler::new(0x100..0x200);
        let i = Instr::Ecall;
        p.phase_begin("seg_scan");
        p.retire(&RetireEvent {
            pc: 0,
            instr: &i,
            class: InstrClass::of(&i),
            vl: 0,
            vtype: None,
            mem: None,
            seq: 0,
        });
        p.phase_end("seg_scan");
        let text = p.text_report();
        assert!(text.contains("total retired: 1"), "{text}");
        assert!(text.contains("seg_scan"), "{text}");
        assert!(text.contains("scalar-ctrl"), "{text}");
    }
}
