//! The aggregating profiler: phase attribution, hotspots, spill detection.

use rvv_cost::{CostModel, CycleCounters, CycleEstimator};
use rvv_isa::InstrClass;
use rvv_sim::{Program, RetireEvent, TraceSink};
use std::collections::HashMap;
use std::ops::Range;

/// Memory traffic into the stack region, split by access kind.
///
/// Vector traffic here is register-group save/restore (the whole-register
/// `vsNr.v`/`vlNr.v` pairs the allocator emits under pressure, plus any
/// other vector access aimed at the frame). Scalar traffic is frame
/// management — under the calibrated LLVM-14 profile, dominated by the
/// conservative `sd x0` frame zero-initialization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Vector loads from the stack region (spill reloads).
    pub vector_loads: u64,
    /// Vector stores to the stack region (spill saves).
    pub vector_stores: u64,
    /// Bytes moved by vector stack traffic.
    pub vector_bytes: u64,
    /// Scalar loads from the stack region.
    pub scalar_loads: u64,
    /// Scalar stores to the stack region (frame zero-init traffic).
    pub scalar_stores: u64,
    /// Bytes moved by scalar stack traffic.
    pub scalar_bytes: u64,
}

impl SpillStats {
    /// All stack-region accesses, vector and scalar.
    pub fn total_ops(&self) -> u64 {
        self.vector_loads + self.vector_stores + self.scalar_loads + self.scalar_stores
    }

    /// All stack-region bytes, vector and scalar.
    pub fn total_bytes(&self) -> u64 {
        self.vector_bytes + self.scalar_bytes
    }

    /// Vector spill operations only (the paper's LMUL=8 signal).
    pub fn vector_ops(&self) -> u64 {
        self.vector_loads + self.vector_stores
    }

    fn add(&mut self, other: &SpillStats) {
        self.vector_loads += other.vector_loads;
        self.vector_stores += other.vector_stores;
        self.vector_bytes += other.vector_bytes;
        self.scalar_loads += other.scalar_loads;
        self.scalar_stores += other.scalar_stores;
        self.scalar_bytes += other.scalar_bytes;
    }
}

/// Aggregated statistics for one named phase.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase name as passed to `ScanEnv::phase`.
    pub name: String,
    /// Times the phase was entered.
    pub enters: u64,
    /// Instructions retired while this phase was innermost.
    pub retired: u64,
    /// Per-class histogram of those instructions (indexed like
    /// [`InstrClass::ALL`]).
    pub by_class: [u64; InstrClass::ALL.len()],
    /// Stack-region traffic attributed to this phase.
    pub spill: SpillStats,
    /// Estimated busy cycles attributed to this phase — 0 unless the
    /// profiler was built with [`TraceProfiler::with_cost`].
    pub cycles: u64,
}

impl PhaseStats {
    fn new(name: &str) -> PhaseStats {
        PhaseStats {
            name: name.to_string(),
            enters: 0,
            retired: 0,
            by_class: [0; InstrClass::ALL.len()],
            spill: SpillStats::default(),
            cycles: 0,
        }
    }

    /// Count for one instruction class.
    pub fn class(&self, c: InstrClass) -> u64 {
        self.by_class[c.index()]
    }

    fn merge(&mut self, other: &PhaseStats) {
        self.enters += other.enters;
        self.retired += other.retired;
        for (a, b) in self.by_class.iter_mut().zip(other.by_class.iter()) {
            *a += *b;
        }
        self.spill.add(&other.spill);
        self.cycles += other.cycles;
    }
}

/// One entry of the per-PC histogram, symbolicated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hotspot {
    /// Program (kernel) name the PC belongs to.
    pub program: String,
    /// Byte PC within that program.
    pub pc: u64,
    /// Innermost covering symbol mark, if the generator left any.
    pub symbol: Option<String>,
    /// Times an instruction at this PC retired.
    pub count: u64,
}

impl Hotspot {
    /// `kernel`symbol+0x10` or `kernel+0x10` when unsymbolicated.
    pub fn location(&self) -> String {
        match &self.symbol {
            Some(s) => format!("{}`{}@{:#x}", self.program, s, self.pc),
            None => format!("{}+{:#x}", self.program, self.pc),
        }
    }
}

/// What a [`PhaseEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseEventKind {
    /// A phase opened.
    Begin,
    /// A phase closed.
    End,
    /// A kernel launched (instant).
    Launch,
}

/// A timeline event, timestamped in retired instructions since profiling
/// began. The sequence is what the Chrome exporter serializes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEvent {
    /// Begin / end / launch.
    pub kind: PhaseEventKind,
    /// Phase or program name.
    pub name: String,
    /// Virtual timestamp: retired-instruction count at the event.
    pub ts: u64,
}

/// A [`TraceSink`] that aggregates a run into per-phase, per-PC, and
/// spill statistics. Purely additive per event — no allocation on the
/// retire path beyond first-touch of a PC bucket.
#[derive(Debug)]
pub struct TraceProfiler {
    stack_region: Range<u64>,
    clock: u64,
    total: PhaseStats,
    phases: Vec<PhaseStats>,
    phase_index: HashMap<String, usize>,
    phase_stack: Vec<usize>,
    programs: Vec<(String, Vec<(u64, String)>)>,
    program_index: HashMap<String, usize>,
    current_program: Option<usize>,
    pc_counts: HashMap<(usize, u64), u64>,
    events: Vec<PhaseEvent>,
    cost: Option<CycleEstimator>,
}

impl TraceProfiler {
    /// A profiler that classifies accesses into `stack_region` as
    /// spill/stack traffic (pass `ScanEnv::stack_region()`; an empty range
    /// disables spill detection).
    pub fn new(stack_region: Range<u64>) -> TraceProfiler {
        TraceProfiler {
            stack_region,
            clock: 0,
            total: PhaseStats::new("(total)"),
            phases: Vec::new(),
            phase_index: HashMap::new(),
            phase_stack: Vec::new(),
            programs: Vec::new(),
            program_index: HashMap::new(),
            current_program: None,
            pc_counts: HashMap::new(),
            events: Vec::new(),
            cost: None,
        }
    }

    /// A profiler that additionally runs a [`CycleEstimator`] over the
    /// retire stream: per-phase busy cycles land in
    /// [`PhaseStats::cycles`], totals in [`TraceProfiler::cycles`], and
    /// the exporters gain cycle columns. Profilers built with
    /// [`TraceProfiler::new`] pay nothing for any of it.
    pub fn with_cost(stack_region: Range<u64>, model: CostModel) -> TraceProfiler {
        let mut p = TraceProfiler::new(stack_region.clone());
        p.cost = Some(CycleEstimator::new(model, stack_region));
        p
    }

    /// Recover a concrete profiler from a detached sink (`None` if the box
    /// holds some other sink type).
    pub fn from_sink(sink: Box<dyn TraceSink>) -> Option<TraceProfiler> {
        let any: Box<dyn std::any::Any> = sink;
        any.downcast::<TraceProfiler>().ok().map(|b| *b)
    }

    /// Total instructions retired while profiling.
    pub fn total_retired(&self) -> u64 {
        self.total.retired
    }

    /// Totals across all phases (name `"(total)"`).
    pub fn totals(&self) -> &PhaseStats {
        &self.total
    }

    /// Aggregate spill statistics for the whole run.
    pub fn spill(&self) -> &SpillStats {
        &self.total.spill
    }

    /// Accumulated cycle estimate — `None` unless this profiler was
    /// built with [`TraceProfiler::with_cost`].
    pub fn cycles(&self) -> Option<CycleCounters> {
        self.cost.as_ref().map(CycleEstimator::counters)
    }

    /// The cost model driving the cycle estimate, if any.
    pub fn cost_model(&self) -> Option<&CostModel> {
        self.cost.as_ref().map(CycleEstimator::model)
    }

    /// The stack region this profiler classifies against.
    pub fn stack_region(&self) -> Range<u64> {
        self.stack_region.clone()
    }

    /// Per-phase statistics, in first-entered order.
    pub fn phases(&self) -> &[PhaseStats] {
        &self.phases
    }

    /// Statistics of one phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phase_index.get(name).map(|&i| &self.phases[i])
    }

    /// Instructions retired outside any phase (host glue, direct launches).
    pub fn unattributed(&self) -> u64 {
        self.total.retired - self.phases.iter().map(|p| p.retired).sum::<u64>()
    }

    /// The raw timeline (what the Chrome exporter serializes).
    pub fn events(&self) -> &[PhaseEvent] {
        &self.events
    }

    /// The `limit` hottest PCs, symbolicated, descending by count (ties
    /// broken by program name and PC so the order is deterministic).
    pub fn hotspots(&self, limit: usize) -> Vec<Hotspot> {
        let mut all: Vec<Hotspot> = self
            .pc_counts
            .iter()
            .map(|(&(prog, pc), &count)| {
                let (name, marks) = &self.programs[prog];
                let i = marks.partition_point(|(p, _)| *p <= pc);
                let symbol = i.checked_sub(1).map(|i| marks[i].1.clone());
                Hotspot {
                    program: name.clone(),
                    pc,
                    symbol,
                    count,
                }
            })
            .collect();
        all.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.program.cmp(&b.program))
                .then_with(|| a.pc.cmp(&b.pc))
        });
        all.truncate(limit);
        all
    }

    /// Names of the programs launched under this profiler, in first-launch
    /// order.
    pub fn programs(&self) -> Vec<&str> {
        self.programs.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Fold another (quiescent) profiler into this one.
    ///
    /// Phase and spill statistics add; per-PC histograms add with program
    /// identity matched **by name** (a kernel profiled on two workers is one
    /// hotspot table); `other`'s timeline is appended with its virtual
    /// timestamps shifted past this profiler's clock, so the merged timeline
    /// reads as `self`'s run followed by `other`'s. Merging is therefore
    /// order-sensitive for events but order-insensitive for every aggregate —
    /// the batch engine merges worker profiles in job order to keep even the
    /// timeline deterministic.
    ///
    /// Both profilers must be outside any open phase (the batch engine only
    /// merges detached, finished sinks).
    pub fn merge(&mut self, other: &TraceProfiler) {
        debug_assert!(
            self.phase_stack.is_empty() && other.phase_stack.is_empty(),
            "merging profilers with open phases"
        );
        self.total.merge(&other.total);
        for phase in &other.phases {
            let idx = match self.phase_index.get(&phase.name) {
                Some(&i) => i,
                None => {
                    self.phases.push(PhaseStats::new(&phase.name));
                    self.phase_index
                        .insert(phase.name.clone(), self.phases.len() - 1);
                    self.phases.len() - 1
                }
            };
            self.phases[idx].merge(phase);
        }
        // Remap other's program indices into ours by name.
        let remap: Vec<usize> = other
            .programs
            .iter()
            .map(|(name, marks)| match self.program_index.get(name) {
                Some(&i) => i,
                None => {
                    self.programs.push((name.clone(), marks.clone()));
                    self.program_index
                        .insert(name.clone(), self.programs.len() - 1);
                    self.programs.len() - 1
                }
            })
            .collect();
        for (&(prog, pc), &count) in &other.pc_counts {
            *self.pc_counts.entry((remap[prog], pc)).or_insert(0) += count;
        }
        let base = self.clock;
        self.events.extend(other.events.iter().map(|e| PhaseEvent {
            kind: e.kind,
            name: e.name.clone(),
            ts: base + e.ts,
        }));
        self.clock += other.clock;
        self.current_program = None;
        // Cycle estimates compose sequentially, like the timeline: the
        // merged estimate reads as self's run followed by other's. A
        // costless profiler adopts the other's estimator so batch merges
        // don't silently drop cycles when only some jobs were costed.
        match (&mut self.cost, &other.cost) {
            (Some(mine), Some(theirs)) => mine.absorb(theirs),
            (None, Some(theirs)) => self.cost = Some(theirs.clone()),
            _ => {}
        }
    }
}

impl TraceSink for TraceProfiler {
    fn retire(&mut self, event: &RetireEvent<'_>) {
        self.clock += 1;
        let spill = event.mem.and_then(|m| {
            (self.stack_region.contains(&m.addr)).then(|| {
                let mut s = SpillStats::default();
                match (event.class == InstrClass::VectorMem, m.store) {
                    (true, true) => {
                        s.vector_stores = 1;
                        s.vector_bytes = m.bytes;
                    }
                    (true, false) => {
                        s.vector_loads = 1;
                        s.vector_bytes = m.bytes;
                    }
                    (false, true) => {
                        s.scalar_stores = 1;
                        s.scalar_bytes = m.bytes;
                    }
                    (false, false) => {
                        s.scalar_loads = 1;
                        s.scalar_bytes = m.bytes;
                    }
                }
                s
            })
        });
        let charge = self.cost.as_mut().map_or(0, |c| c.observe(event));
        let bump = |stats: &mut PhaseStats| {
            stats.retired += 1;
            stats.by_class[event.class.index()] += 1;
            stats.cycles += charge;
            if let Some(s) = &spill {
                stats.spill.add(s);
            }
        };
        bump(&mut self.total);
        if let Some(&top) = self.phase_stack.last() {
            bump(&mut self.phases[top]);
        }
        if let Some(prog) = self.current_program {
            *self.pc_counts.entry((prog, event.pc)).or_insert(0) += 1;
        }
    }

    fn launch(&mut self, program: &Program) {
        let idx = *self
            .program_index
            .entry(program.name.clone())
            .or_insert_with(|| {
                self.programs
                    .push((program.name.clone(), program.marks.clone()));
                self.programs.len() - 1
            });
        self.current_program = Some(idx);
        self.events.push(PhaseEvent {
            kind: PhaseEventKind::Launch,
            name: program.name.clone(),
            ts: self.clock,
        });
    }

    fn phase_begin(&mut self, name: &str) {
        let idx = match self.phase_index.get(name) {
            Some(&i) => i,
            None => {
                self.phases.push(PhaseStats::new(name));
                self.phase_index
                    .insert(name.to_string(), self.phases.len() - 1);
                self.phases.len() - 1
            }
        };
        self.phases[idx].enters += 1;
        self.phase_stack.push(idx);
        self.events.push(PhaseEvent {
            kind: PhaseEventKind::Begin,
            name: name.to_string(),
            ts: self.clock,
        });
    }

    fn phase_end(&mut self, name: &str) {
        let popped = self.phase_stack.pop();
        debug_assert_eq!(
            popped.map(|i| self.phases[i].name.as_str()),
            Some(name),
            "phase_end out of order"
        );
        self.events.push(PhaseEvent {
            kind: PhaseEventKind::End,
            name: name.to_string(),
            ts: self.clock,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvv_isa::{Instr, MemWidth, XReg};
    use rvv_sim::MemAccess;

    fn retire_event(instr: &Instr, mem: Option<MemAccess>) -> RetireEvent<'_> {
        RetireEvent {
            pc: 0,
            instr,
            class: InstrClass::of(instr),
            vl: 0,
            vtype: None,
            mem,
            seq: 0,
        }
    }

    #[test]
    fn phase_attribution_nests_to_innermost() {
        let mut p = TraceProfiler::new(0..0);
        let i = Instr::Ecall;
        p.phase_begin("outer");
        p.retire(&retire_event(&i, None));
        p.phase_begin("inner");
        p.retire(&retire_event(&i, None));
        p.retire(&retire_event(&i, None));
        p.phase_end("inner");
        p.retire(&retire_event(&i, None));
        p.phase_end("outer");
        p.retire(&retire_event(&i, None));
        assert_eq!(p.total_retired(), 5);
        assert_eq!(p.phase("outer").unwrap().retired, 2);
        assert_eq!(p.phase("inner").unwrap().retired, 2);
        assert_eq!(p.unattributed(), 1);
        assert_eq!(p.phase("outer").unwrap().enters, 1);
    }

    #[test]
    fn spill_classification_by_region_and_kind() {
        let mut p = TraceProfiler::new(1000..2000);
        let store = Instr::Store {
            width: MemWidth::D,
            rs2: XReg::ZERO,
            rs1: XReg::new(2),
            offset: 0,
        };
        // Scalar store inside the region counts; outside does not.
        p.retire(&retire_event(
            &store,
            Some(MemAccess {
                addr: 1500,
                bytes: 8,
                store: true,
            }),
        ));
        p.retire(&retire_event(
            &store,
            Some(MemAccess {
                addr: 100,
                bytes: 8,
                store: true,
            }),
        ));
        let vload = Instr::VLoadWhole {
            nregs: 8,
            vd: rvv_isa::VReg::new(8),
            rs1: XReg::new(2),
        };
        p.retire(&retire_event(
            &vload,
            Some(MemAccess {
                addr: 1000,
                bytes: 1024,
                store: false,
            }),
        ));
        let s = p.spill();
        assert_eq!(s.scalar_stores, 1);
        assert_eq!(s.scalar_bytes, 8);
        assert_eq!(s.vector_loads, 1);
        assert_eq!(s.vector_bytes, 1024);
        assert_eq!(s.total_ops(), 2);
    }

    #[test]
    fn hotspots_symbolicate_via_marks() {
        let mut p = TraceProfiler::new(0..0);
        let mut prog = Program::new("k", vec![Instr::Ecall; 4]);
        prog.add_mark(0, "head");
        prog.add_mark(8, "tail");
        p.launch(&prog);
        let i = Instr::Ecall;
        for pc in [0u64, 4, 8, 8, 8] {
            let mut e = retire_event(&i, None);
            e.pc = pc;
            p.retire(&e);
        }
        let hs = p.hotspots(10);
        assert_eq!(hs[0].pc, 8);
        assert_eq!(hs[0].count, 3);
        assert_eq!(hs[0].symbol.as_deref(), Some("tail"));
        assert_eq!(hs[0].location(), "k`tail@0x8");
        assert_eq!(hs[1].symbol.as_deref(), Some("head"));
        assert_eq!(hs.len(), 3);
    }

    #[test]
    fn merge_adds_aggregates_and_concatenates_timelines() {
        let prog = Program::new("k", vec![Instr::Ecall; 2]);
        let mk = |phase: &str, retires: usize| {
            let mut p = TraceProfiler::new(1000..2000);
            p.launch(&prog);
            p.phase_begin(phase);
            for _ in 0..retires {
                p.retire(&retire_event(&Instr::Ecall, None));
            }
            p.retire(&retire_event(
                &Instr::Store {
                    width: MemWidth::D,
                    rs2: XReg::ZERO,
                    rs1: XReg::new(2),
                    offset: 0,
                },
                Some(MemAccess {
                    addr: 1500,
                    bytes: 8,
                    store: true,
                }),
            ));
            p.phase_end(phase);
            p
        };
        let mut a = mk("shared", 2);
        let b = mk("shared", 4);
        let c = mk("only-c", 1);
        a.merge(&b);
        a.merge(&c);
        assert_eq!(a.total_retired(), 3 + 5 + 2);
        assert_eq!(a.phase("shared").unwrap().retired, 8);
        assert_eq!(a.phase("shared").unwrap().enters, 2);
        assert_eq!(a.phase("only-c").unwrap().retired, 2);
        assert_eq!(a.spill().scalar_stores, 3);
        // One program entry, counts added across profilers.
        assert_eq!(a.programs(), vec!["k"]);
        assert_eq!(a.hotspots(1)[0].count, 10);
        // Timelines concatenate with shifted timestamps.
        let ts: Vec<u64> = a.events().iter().map(|e| e.ts).collect();
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "timeline not monotonic"
        );
        assert_eq!(a.events().len(), 3 + 3 + 3);
    }

    #[test]
    fn cost_attaches_per_phase_cycle_attribution() {
        let mut p = TraceProfiler::with_cost(0..0, rvv_cost::CostModel::unit());
        let i = Instr::Ecall;
        p.phase_begin("scan");
        p.retire(&retire_event(&i, None));
        p.retire(&retire_event(&i, None));
        p.phase_end("scan");
        p.retire(&retire_event(&i, None));
        // Unit preset: one cycle per instruction, phase charges included.
        assert_eq!(p.cycles().unwrap().total(), 3);
        assert_eq!(p.phase("scan").unwrap().cycles, 2);
        assert_eq!(p.totals().cycles, 3);
        assert_eq!(p.cost_model().unwrap().name(), "unit");
        // Costless profilers report no cycles at all.
        let plain = TraceProfiler::new(0..0);
        assert!(plain.cycles().is_none());
    }

    #[test]
    fn merge_folds_cycles_sequentially() {
        let mk = |n: usize| {
            let mut p = TraceProfiler::with_cost(0..0, rvv_cost::CostModel::unit());
            p.phase_begin("w");
            for _ in 0..n {
                p.retire(&retire_event(&Instr::Ecall, None));
            }
            p.phase_end("w");
            p
        };
        let mut a = mk(2);
        a.merge(&mk(5));
        assert_eq!(a.cycles().unwrap().total(), 7);
        assert_eq!(a.phase("w").unwrap().cycles, 7);
        // A costless accumulator adopts the costed profile's estimate
        // (batch merges start from a fresh profiler).
        let mut base = TraceProfiler::new(0..0);
        base.merge(&a);
        assert_eq!(base.cycles().unwrap().total(), 7);
    }

    #[test]
    fn from_sink_roundtrips() {
        let mut p = TraceProfiler::new(0..0);
        p.retire(&retire_event(&Instr::Ecall, None));
        let boxed: Box<dyn TraceSink> = Box::new(p);
        let back = TraceProfiler::from_sink(boxed).unwrap();
        assert_eq!(back.total_retired(), 1);
    }
}
