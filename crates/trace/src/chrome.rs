//! Chrome trace-event JSON export.
//!
//! Serializes the profiler's timeline in the [Trace Event Format] consumed
//! by `chrome://tracing` and Perfetto. Virtual time maps one retired
//! instruction to one microsecond, so the timeline's horizontal axis *is*
//! the paper's figure of merit. Phases become nested duration events
//! (`B`/`E`); kernel launches become instant events (`i`); the aggregate
//! spill statistics ride along in `otherData`.
//!
//! The writer is hand-rolled: events are flat objects of strings and
//! integers, and keeping the simulator stack dependency-free is worth more
//! than a serializer dependency (which the build environment could not
//! fetch anyway).
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::profiler::{PhaseEventKind, TraceProfiler};

/// Escape a string for embedding in a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TraceProfiler {
    /// The full profile as a Chrome trace-event JSON document.
    pub fn chrome_trace_json(&self) -> String {
        let mut events = Vec::new();
        events.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
             \"args\":{\"name\":\"rvv-sim (1 instruction = 1us)\"}}"
                .to_string(),
        );
        for e in self.events() {
            let (ph, extra) = match e.kind {
                PhaseEventKind::Begin => ("B", ""),
                PhaseEventKind::End => ("E", ""),
                PhaseEventKind::Launch => ("i", ",\"s\":\"t\""),
            };
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":1{extra}}}",
                escape(&e.name),
                e.ts
            ));
        }
        let s = self.spill();
        // Cycle fields are appended only when a cost model was attached,
        // keeping the no-cost document (and its golden) byte-identical.
        let cost = match (self.cycles(), self.cost_model()) {
            (Some(c), Some(m)) => format!(
                ",\"costModel\":\"{}\",\"totalCycles\":{}",
                escape(m.name()),
                c.total()
            ),
            _ => String::new(),
        };
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\"otherData\":{{\
             \"totalRetired\":{},\"spillVectorOps\":{},\"spillVectorBytes\":{},\
             \"spillScalarOps\":{},\"spillScalarBytes\":{}{cost}}}}}",
            events.join(","),
            self.total_retired(),
            s.vector_ops(),
            s.vector_bytes,
            s.scalar_loads + s.scalar_stores,
            s.scalar_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvv_isa::{Instr, InstrClass};
    use rvv_sim::{Program, RetireEvent, TraceSink};

    /// Golden test: a small synthetic timeline serializes to exactly this
    /// document (valid JSON, stable field order).
    #[test]
    fn golden_chrome_trace() {
        let mut p = TraceProfiler::new(0..0);
        let i = Instr::Ecall;
        let ev = RetireEvent {
            pc: 0,
            instr: &i,
            class: InstrClass::of(&i),
            vl: 0,
            vtype: None,
            mem: None,
            seq: 0,
        };
        p.phase_begin("scan");
        p.launch(&Program::new("scan_plus_inc", vec![Instr::Ecall]));
        p.retire(&ev);
        p.retire(&ev);
        p.phase_end("scan");
        let want = concat!(
            "{\"traceEvents\":[",
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,",
            "\"args\":{\"name\":\"rvv-sim (1 instruction = 1us)\"}},",
            "{\"name\":\"scan\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1},",
            "{\"name\":\"scan_plus_inc\",\"ph\":\"i\",\"ts\":0,\"pid\":1,\"tid\":1,\"s\":\"t\"},",
            "{\"name\":\"scan\",\"ph\":\"E\",\"ts\":2,\"pid\":1,\"tid\":1}",
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{",
            "\"totalRetired\":2,\"spillVectorOps\":0,\"spillVectorBytes\":0,",
            "\"spillScalarOps\":0,\"spillScalarBytes\":0}}",
        );
        assert_eq!(p.chrome_trace_json(), want);
    }

    /// A costed profiler appends exactly two fields to `otherData`; the
    /// `unit` preset pins `totalCycles` to the retired count.
    #[test]
    fn golden_chrome_trace_with_cost() {
        let mut p = TraceProfiler::with_cost(0..0, rvv_cost::CostModel::unit());
        let i = Instr::Ecall;
        let ev = RetireEvent {
            pc: 0,
            instr: &i,
            class: InstrClass::of(&i),
            vl: 0,
            vtype: None,
            mem: None,
            seq: 0,
        };
        p.retire(&ev);
        p.retire(&ev);
        let json = p.chrome_trace_json();
        assert!(
            json.ends_with(
                "\"spillScalarOps\":0,\"spillScalarBytes\":0,\
                 \"costModel\":\"unit\",\"totalCycles\":2}}"
            ),
            "{json}"
        );
    }

    #[test]
    fn escapes_hostile_names() {
        let mut p = TraceProfiler::new(0..0);
        p.phase_begin("we\"ird\\name\n");
        p.phase_end("we\"ird\\name\n");
        let json = p.chrome_trace_json();
        assert!(json.contains("we\\\"ird\\\\name\\n"), "{json}");
        // Still structurally balanced.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
