//! `trace-run` — run a scan-vector workload under the profiler and export
//! a Chrome trace plus a text report.
//!
//! ```text
//! trace-run [--workload scan|seg_scan|radix] [--lmul 1|2|4|8] [--vlen N]
//!           [--n N] [--seg-len N] [--bits N] [--cost-preset NAME]
//!           [--out DIR | --no-out]
//! ```
//!
//! Outputs `<out>/trace_<workload>_m<lmul>.json` (open in
//! `chrome://tracing` or Perfetto) and the matching `.txt` report, which is
//! also printed to stdout. The defaults reproduce the paper's headline
//! configuration (VLEN=1024) on a small input, where the LMUL=8 segmented
//! scan's spill traffic is plainly visible in the report.
//!
//! `--cost-preset unit|ara-like|vitruvius-like` additionally runs the
//! `rvv-cost` timing model on the same retire stream: the report gains an
//! estimated-cycles header, a per-phase cycles column, and the per-class
//! busy-cycle breakdown.

use rvv_asm::SpillProfile;
use rvv_trace::TraceProfiler;
use scanvec::primitives::{plus_scan, seg_plus_scan};
use scanvec::{Engine, EnvConfig};
use scanvec_algos::radix_sort::split_radix_sort;

fn usage() -> ! {
    eprintln!(
        "usage: trace-run [--workload scan|seg_scan|radix] [--lmul 1|2|4|8] \
         [--vlen N] [--n N] [--seg-len N] [--bits N] [--cost-preset NAME] \
         [--out DIR | --no-out]"
    );
    std::process::exit(2);
}

struct Opts {
    workload: String,
    lmul: rvv_isa::Lmul,
    vlen: u32,
    n: usize,
    seg_len: usize,
    bits: u32,
    cost: Option<rvv_cost::CostModel>,
    out: Option<String>,
}

fn parse() -> Opts {
    let mut o = Opts {
        workload: "seg_scan".to_string(),
        lmul: rvv_isa::Lmul::M8,
        vlen: 1024,
        n: 4096,
        seg_len: 64,
        bits: 8,
        cost: None,
        out: Some("results".to_string()),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--workload" => o.workload = val(),
            "--lmul" => {
                o.lmul = match val().as_str() {
                    "1" => rvv_isa::Lmul::M1,
                    "2" => rvv_isa::Lmul::M2,
                    "4" => rvv_isa::Lmul::M4,
                    "8" => rvv_isa::Lmul::M8,
                    _ => usage(),
                }
            }
            "--vlen" => o.vlen = val().parse().unwrap_or_else(|_| usage()),
            "--n" => o.n = val().parse().unwrap_or_else(|_| usage()),
            "--seg-len" => o.seg_len = val().parse().unwrap_or_else(|_| usage()),
            "--bits" => o.bits = val().parse().unwrap_or_else(|_| usage()),
            "--cost-preset" => {
                o.cost = Some(rvv_cost::CostModel::preset(&val()).unwrap_or_else(|| usage()))
            }
            "--out" => o.out = Some(val()),
            "--no-out" => o.out = None,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    o
}

fn main() {
    let o = parse();
    // One engine up front: CLI-selected cost preset becomes the engine's
    // default cost model, and `--vlen` typos are rejected by validation
    // instead of tripping a simulator assert.
    let mut builder = Engine::builder();
    if let Some(model) = &o.cost {
        builder = builder.cost_model(model.clone());
    }
    let engine = builder.build();
    let mut env = engine
        .session(EnvConfig {
            vlen: o.vlen,
            lmul: o.lmul,
            spill_profile: SpillProfile::llvm14(),
            mem_bytes: 192 << 20,
        })
        .unwrap_or_else(|e| {
            eprintln!("trace-run: {e}");
            std::process::exit(2);
        });
    let profiler = match engine.cost_model() {
        Some(model) => TraceProfiler::with_cost(env.stack_region(), model.clone()),
        None => TraceProfiler::new(env.stack_region()),
    };
    env.attach_tracer(Box::new(profiler));

    let data: Vec<u32> = (0..o.n as u32)
        .map(|i| i.wrapping_mul(2654435761) % 997)
        .collect();
    match o.workload.as_str() {
        "scan" => {
            let v = env.from_u32(&data).expect("alloc");
            plus_scan(&mut env, &v).expect("scan");
        }
        "seg_scan" => {
            let flags: Vec<u32> = (0..o.n)
                .map(|i| u32::from(o.seg_len > 0 && i % o.seg_len == 0))
                .collect();
            let v = env.from_u32(&data).expect("alloc");
            let f = env.from_u32(&flags).expect("alloc");
            seg_plus_scan(&mut env, &v, &f).expect("seg_scan");
        }
        "radix" => {
            let keys: Vec<u32> = data.iter().map(|&x| x & ((1 << o.bits) - 1)).collect();
            let v = env.from_u32(&keys).expect("alloc");
            split_radix_sort(&mut env, &v, o.bits).expect("radix sort");
        }
        _ => usage(),
    }

    let profiler = TraceProfiler::from_sink(env.detach_tracer().expect("tracer attached"))
        .expect("profiler sink");
    let report = profiler.text_report();
    println!(
        "workload={} lmul=m{} vlen={} n={}\n",
        o.workload,
        o.lmul.regs(),
        o.vlen,
        o.n
    );
    print!("{report}");

    if let Some(dir) = o.out {
        std::fs::create_dir_all(&dir).expect("create output dir");
        let stem = format!("{dir}/trace_{}_m{}", o.workload, o.lmul.regs());
        std::fs::write(format!("{stem}.json"), profiler.chrome_trace_json())
            .expect("write chrome trace");
        std::fs::write(format!("{stem}.txt"), &report).expect("write text report");
        println!("\nwrote {stem}.json and {stem}.txt");
    }
}
