//! # rvv-trace — execution tracing and profiling for the scan-vector stack
//!
//! The simulator measures *how many* instructions a kernel retires; this
//! crate answers *where they went*. [`TraceProfiler`] is a
//! [`rvv_sim::TraceSink`] that aggregates a traced run into:
//!
//! * **Per-phase attribution** — the `scanvec` runtime brackets primitive
//!   launches in named phases (`scan`, `seg_scan`, `enumerate`, `split`,
//!   `radix_pass_7`, …); every retired instruction is attributed to the
//!   innermost open phase, with a per-class histogram each.
//! * **Hotspots** — a per-PC histogram, symbolicated against the kernel
//!   generators' [`rvv_sim::Program`] marks (`strip_load`, `ladder`,
//!   `spill_prologue`, …).
//! * **Spill detection** — memory traffic whose effective address falls in
//!   the device stack region is classified as spill/stack traffic,
//!   separately for vector and scalar accesses. This quantifies the
//!   paper's Table 5/6 story: at LMUL=8 the segmented scan has six live
//!   register-group values but only three aligned groups, and the
//!   resulting spill traffic is exactly what this detector counts.
//!
//! Exporters turn a finished profile into a Chrome trace-event JSON file
//! (`chrome://tracing` / Perfetto, with one retired instruction per
//! microsecond of virtual time) or a human-readable text report.
//!
//! The `trace-run` binary wires it all together: run a scan-vector
//! workload under the profiler and emit both exports.
//!
//! ## Example
//!
//! ```
//! use rvv_trace::TraceProfiler;
//! use scanvec::ScanEnv;
//! use scanvec::primitives::plus_scan;
//!
//! let mut env = ScanEnv::paper_default();
//! env.attach_tracer(Box::new(TraceProfiler::new(env.stack_region())));
//! let v = env.from_u32(&[3, 1, 4, 1, 5]).unwrap();
//! plus_scan(&mut env, &v).unwrap();
//! let profiler = TraceProfiler::from_sink(env.detach_tracer().unwrap()).unwrap();
//! assert_eq!(profiler.phase("scan").unwrap().retired, profiler.total_retired());
//! println!("{}", profiler.text_report());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod profiler;
mod report;

pub use profiler::{Hotspot, PhaseEvent, PhaseEventKind, PhaseStats, SpillStats, TraceProfiler};
