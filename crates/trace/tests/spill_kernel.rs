//! The spill detector against a hand-built kernel that deliberately saves
//! and restores a register group through the stack — plus equal traffic
//! aimed at the heap, which must NOT be classified as spill.

use rvv_asm::ProgramBuilder;
use rvv_isa::{Lmul, MemWidth, Sew, VReg, VType, XReg};
use rvv_sim::{Machine, MachineConfig, TraceSink};
use rvv_trace::TraceProfiler;

const MEM: usize = 1 << 16;
const STACK_BASE: u64 = (MEM - 0x1000) as u64;
const HEAP_ADDR: u64 = 0x1000;

/// vsetvli; fill v8; spill v8 group to the stack; reload it; store it to
/// the heap; load it back from the heap; one scalar store each to stack
/// and heap.
fn spilling_kernel() -> rvv_sim::Program {
    let sp = XReg::new(2);
    let heap = XReg::new(6);
    let mut b = ProgramBuilder::new("hand_spiller");
    b.mark("setup");
    b.li(sp, STACK_BASE as i64);
    b.li(heap, HEAP_ADDR as i64);
    b.vsetvli(XReg::new(5), XReg::ZERO, VType::new(Sew::E32, Lmul::M2));
    b.vmv_vi(VReg::new(8), 7);
    b.mark("spill_code");
    b.vsr(2, VReg::new(8), sp); // vector spill store
    b.vlr(2, VReg::new(8), sp); // vector spill reload
    b.sd(XReg::ZERO, sp, 8); // scalar stack store
    b.mark("real_work");
    b.vse(Sew::E32, VReg::new(8), heap); // heap traffic: not spill
    b.vle(Sew::E32, VReg::new(8), heap);
    b.store(MemWidth::D, XReg::ZERO, heap, 0);
    b.halt();
    b.finish().unwrap()
}

#[test]
fn detector_counts_only_stack_traffic() {
    let mut m = Machine::new(MachineConfig {
        vlen: 256,
        mem_bytes: MEM,
    });
    let mut profiler = TraceProfiler::new(STACK_BASE..MEM as u64);
    let program = spilling_kernel();
    profiler.phase_begin("kernel");
    let report = m
        .run_traced(&program, 10_000, &mut profiler)
        .expect("kernel runs");
    profiler.phase_end("kernel");

    let s = profiler.spill();
    assert_eq!(s.vector_stores, 1, "one vsr to the stack");
    assert_eq!(s.vector_loads, 1, "one vlr from the stack");
    // Whole-register ops move nregs x VLENB = 2 x 32 bytes each way.
    assert_eq!(s.vector_bytes, 128);
    assert_eq!(s.scalar_stores, 1, "one sd to the stack");
    assert_eq!(s.scalar_loads, 0);
    assert_eq!(s.scalar_bytes, 8);
    // The heap-directed vse/vle/sd were seen but not classified as spill:
    // the profiler retired everything, yet spill ops stay at 3.
    assert_eq!(profiler.total_retired(), report.retired);
    assert_eq!(s.total_ops(), 3);

    // Attribution: all spill traffic falls in the `spill_code` region and
    // the `kernel` phase.
    let phase = profiler.phase("kernel").unwrap();
    assert_eq!(phase.spill.total_ops(), 3);
    let hs = profiler.hotspots(100);
    for h in &hs {
        if h.symbol.as_deref() == Some("real_work") {
            assert!(h.pc > 0, "real_work instructions retired");
        }
    }
    assert!(
        hs.iter().any(|h| h.symbol.as_deref() == Some("spill_code")),
        "spill region symbolicated: {hs:?}"
    );
}

#[test]
fn detector_is_quiet_without_stack_traffic() {
    let mut m = Machine::new(MachineConfig {
        vlen: 256,
        mem_bytes: MEM,
    });
    // Same kernel, but the profiler watches an empty region.
    let mut profiler = TraceProfiler::new(0..0);
    m.run_traced(&spilling_kernel(), 10_000, &mut profiler)
        .expect("kernel runs");
    assert_eq!(profiler.spill().total_ops(), 0);
}
