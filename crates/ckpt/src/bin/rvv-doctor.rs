//! `rvv-doctor` — health checks and repair for durable state.
//!
//! ```text
//! rvv-doctor verify <path>...   inspect journals/snapshots/artifacts
//! rvv-doctor scrub  <path>...   verify + write <path>.salvage.txt manifests
//! rvv-doctor repair <path>...   compact salvageable journals in place
//! ```
//!
//! Directories are walked recursively (salvage manifests themselves are
//! skipped so a scrubbed tree stays idempotent). Exit codes are
//! CI-friendly: 0 = everything clean, 1 = salvageable damage found (or
//! repaired), 2 = fatal damage found, 64 = usage error.

use rvv_ckpt::doctor::{self, Health};
use rvv_ckpt::fs_backend;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: rvv-doctor <verify|scrub|repair> <path>...";

fn collect(path: &Path, out: &mut Vec<PathBuf>) {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = match std::fs::read_dir(path) {
            Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
            Err(e) => {
                eprintln!("rvv-doctor: cannot read directory {}: {e}", path.display());
                return;
            }
        };
        entries.sort();
        for entry in entries {
            collect(&entry, out);
        }
    } else if !path
        .file_name()
        .map(|n| n.to_string_lossy().ends_with(".salvage.txt"))
        .unwrap_or(false)
    {
        out.push(path.to_path_buf());
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, roots) = match args.split_first() {
        Some((cmd, rest)) if !rest.is_empty() => (cmd.as_str(), rest),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(64);
        }
    };
    if !matches!(cmd, "verify" | "scrub" | "repair") {
        eprintln!("rvv-doctor: unknown subcommand {cmd:?}\n{USAGE}");
        return ExitCode::from(64);
    }

    let backend = fs_backend();
    let mut files = Vec::new();
    for root in roots {
        collect(Path::new(root), &mut files);
    }
    if files.is_empty() {
        eprintln!("rvv-doctor: no files to inspect");
        return ExitCode::from(64);
    }

    let mut worst = Health::Clean;
    for file in &files {
        // For repair, the exit code reflects what was *found*, not the
        // (hopefully clean) state afterwards — CI should see "something
        // needed repair" as a nonzero exit.
        let outcome = match cmd {
            "verify" => {
                let r = doctor::inspect(&backend, file);
                let h = r.health;
                Ok((r, h))
            }
            "scrub" => doctor::scrub(&backend, file).map(|r| {
                let h = r.health;
                (r, h)
            }),
            _ => {
                let found = doctor::inspect(&backend, file).health;
                doctor::repair(&backend, file).map(|r| {
                    let h = found.max(r.health);
                    (r, h)
                })
            }
        };
        match outcome {
            Ok((report, health)) => {
                println!("{report}");
                worst = worst.max(health);
            }
            Err(e) => {
                eprintln!("rvv-doctor: {}: {e}", file.display());
                worst = Health::Fatal;
            }
        }
    }
    match worst {
        Health::Clean => ExitCode::SUCCESS,
        Health::Salvageable => ExitCode::from(1),
        Health::Fatal => ExitCode::from(2),
    }
}
