//! Health checks and repair for durable state — the library behind the
//! `rvv-doctor` bin.
//!
//! [`inspect`] classifies a file by sniffing its bytes (an `RVCK` sealed
//! frame, a record-framed journal, or a plain `results/` artifact) and
//! grades it on a three-step ladder:
//!
//! - [`Health::Clean`] — every byte verifies.
//! - [`Health::Salvageable`] — damaged but recoverable: a torn tail to
//!   truncate, or quarantined mid-stream ranges with every other record
//!   intact. The salvage manifest says exactly what was lost.
//! - [`Health::Fatal`] — nothing trustworthy can be read (corrupt journal
//!   header, broken frame, empty artifact).
//!
//! [`scrub`] additionally writes a `<path>.salvage.txt` manifest next to
//! a damaged file, and [`repair`] rewrites a salvageable journal
//! compacted to its verified records (atomically — a crash mid-repair
//! leaves the original untouched). `records_digest` is an FNV-1a digest
//! over the length-framed record payloads, stable across compaction, so
//! CI can pin that a salvaged journal matches a golden copy.

use crate::{
    fnv1a, parse_journal, write_atomic_on, ByteReader, ByteWriter, CodecError, SalvageEntry,
    StorageBackend,
};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Verdict of an [`inspect`] pass, ordered from best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// Every byte verifies.
    Clean,
    /// Damaged but recoverable; see the report's salvage entries/notes.
    Salvageable,
    /// Nothing trustworthy can be read from the file.
    Fatal,
}

impl fmt::Display for Health {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Health::Clean => write!(f, "clean"),
            Health::Salvageable => write!(f, "salvageable"),
            Health::Fatal => write!(f, "FATAL"),
        }
    }
}

/// What [`inspect`] found out about one file.
#[derive(Debug, Clone)]
pub struct Report {
    /// The inspected path.
    pub path: PathBuf,
    /// Sniffed file class: `journal(<kind>)`, `snapshot(<kind> v<n>)`,
    /// or `artifact`.
    pub kind: String,
    /// The verdict.
    pub health: Health,
    /// Human-readable findings, one per line.
    pub notes: Vec<String>,
    /// Verified data records (journals only).
    pub records: usize,
    /// Quarantined ranges (journals only; empty = none).
    pub salvage: Vec<SalvageEntry>,
    /// FNV-1a over the length-framed verified record payloads (header
    /// first). Stable across compaction — the anchor for golden digests.
    pub records_digest: Option<u64>,
}

impl Report {
    fn artifact(path: &Path, health: Health, note: String) -> Report {
        Report {
            path: path.to_path_buf(),
            kind: "artifact".to_owned(),
            health,
            notes: vec![note],
            records: 0,
            salvage: Vec::new(),
            records_digest: None,
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} {}", self.path.display(), self.health, self.kind)?;
        if let Some(d) = self.records_digest {
            write!(f, " records={} records_digest={d:#018x}", self.records)?;
        }
        for n in &self.notes {
            write!(f, "\n  {n}")?;
        }
        for s in &self.salvage {
            write!(f, "\n  {s}")?;
        }
        Ok(())
    }
}

/// Digest stable across journal compaction: FNV-1a over each verified
/// record payload framed by its `u32` length, header record first.
fn records_digest(header: &[u8], records: &[Vec<u8>]) -> u64 {
    let mut w = ByteWriter::new();
    w.put_bytes(header);
    for r in records {
        w.put_bytes(r);
    }
    fnv1a(&w.into_bytes())
}

/// Parse an `RVCK` frame without knowing its kind/version up front.
fn sniff_frame(bytes: &[u8]) -> Result<(String, u16, u64), CodecError> {
    let mut r = ByteReader::new(bytes);
    if r.get_raw(4)? != crate::FRAME_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let kind = r.get_str()?;
    let version = r.get_u16()?;
    let stamped = r.get_u64()?;
    let payload = r.get_bytes()?;
    r.finish()?;
    let computed = fnv1a(payload);
    if computed != stamped {
        return Err(CodecError::DigestMismatch {
            expected: stamped,
            found: computed,
        });
    }
    Ok((kind, version, computed))
}

/// The journal header payload is usually itself a sealed frame; name its
/// kind when it is.
fn header_kind(header: &[u8]) -> String {
    match sniff_frame(header) {
        Ok((kind, version, _)) => format!("{kind} v{version}"),
        Err(_) => "raw header".to_owned(),
    }
}

/// Classify and grade one file. Never errors: an unreadable file is a
/// [`Health::Fatal`] report, not an `Err`.
pub fn inspect(backend: &Arc<dyn StorageBackend>, path: &Path) -> Report {
    if !backend.exists(path) {
        return Report::artifact(path, Health::Fatal, "file does not exist".to_owned());
    }
    let bytes = match backend.read(path) {
        Ok(b) => b,
        Err(e) => return Report::artifact(path, Health::Fatal, format!("read failed: {e}")),
    };
    if bytes.starts_with(crate::FRAME_MAGIC) {
        return match sniff_frame(&bytes) {
            Ok((kind, version, digest)) => Report {
                path: path.to_path_buf(),
                kind: format!("snapshot({kind} v{version})"),
                health: Health::Clean,
                notes: vec![format!("payload digest {digest:#018x}")],
                records: 0,
                salvage: Vec::new(),
                records_digest: None,
            },
            Err(e) => Report {
                path: path.to_path_buf(),
                kind: "snapshot".to_owned(),
                health: Health::Fatal,
                notes: vec![format!("frame does not verify: {e}")],
                records: 0,
                salvage: Vec::new(),
                records_digest: None,
            },
        };
    }
    match parse_journal(&bytes, &path.display().to_string()) {
        Ok(j) => {
            let torn = j.valid_len < bytes.len() as u64;
            let mut notes = Vec::new();
            if torn {
                notes.push(format!(
                    "torn tail: {} trailing bytes past the valid prefix (truncated on resume)",
                    bytes.len() as u64 - j.valid_len
                ));
            }
            let health = if torn || !j.salvage.is_empty() {
                Health::Salvageable
            } else {
                Health::Clean
            };
            Report {
                path: path.to_path_buf(),
                kind: format!("journal({})", header_kind(&j.header)),
                health,
                records: j.records.len(),
                records_digest: Some(records_digest(&j.header, &j.records)),
                salvage: j.salvage,
                notes,
            }
        }
        Err(e) => {
            // Not a parsable journal. Plain-text artifacts (manifests,
            // results tables) are fine as long as they hold valid UTF-8.
            if looks_like_journal(&bytes) {
                Report::artifact(path, Health::Fatal, e.to_string())
            } else if bytes.is_empty() {
                Report::artifact(path, Health::Fatal, "empty file".to_owned())
            } else if std::str::from_utf8(&bytes).is_err() {
                Report::artifact(
                    path,
                    Health::Fatal,
                    "binary file is neither a frame nor a journal".to_owned(),
                )
            } else {
                Report::artifact(
                    path,
                    Health::Clean,
                    format!("text artifact, {} bytes", bytes.len()),
                )
            }
        }
    }
}

/// Heuristic: did these bytes *intend* to be a journal? A journal's
/// first record payload is a sealed frame, so the `RVCK` magic appears
/// at byte 12 even when the record checksum around it was destroyed.
fn looks_like_journal(bytes: &[u8]) -> bool {
    bytes.len() > crate::FRAME_MAGIC.len() + 12 && &bytes[12..16] == crate::FRAME_MAGIC
}

/// Render the salvage manifest for a damaged file.
fn manifest_text(report: &Report) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# salvage manifest for {}\nhealth={} kind={}\n",
        report.path.display(),
        report.health,
        report.kind
    ));
    if let Some(d) = report.records_digest {
        out.push_str(&format!(
            "records={} records_digest={d:#018x}\n",
            report.records
        ));
    }
    for n in &report.notes {
        out.push_str(n);
        out.push('\n');
    }
    for s in &report.salvage {
        out.push_str(&s.to_string());
        out.push('\n');
    }
    out
}

/// [`inspect`], plus: when the file is damaged (salvageable or fatal),
/// write a `<path>.salvage.txt` manifest beside it describing the damage.
pub fn scrub(backend: &Arc<dyn StorageBackend>, path: &Path) -> io::Result<Report> {
    let report = inspect(backend, path);
    if report.health != Health::Clean {
        let manifest = manifest_path(path);
        write_atomic_on(backend, &manifest, manifest_text(&report).as_bytes())?;
    }
    Ok(report)
}

/// Where [`scrub`] writes its manifest for `path`.
pub fn manifest_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(".salvage.txt");
    path.with_file_name(name)
}

/// Repair a salvageable journal in place: rewrite it compacted to its
/// header plus verified records (atomic — the original survives a crash
/// mid-repair), dropping quarantined ranges and the torn tail. Returns
/// the post-repair report. Clean files are left untouched; fatal files
/// are returned as-is (there is nothing trustworthy to rewrite).
pub fn repair(backend: &Arc<dyn StorageBackend>, path: &Path) -> io::Result<Report> {
    let before = inspect(backend, path);
    if before.health != Health::Salvageable || !before.kind.starts_with("journal") {
        return Ok(before);
    }
    let bytes = backend.read(path)?;
    let j = parse_journal(&bytes, &path.display().to_string())?;
    let mut compact = Vec::new();
    let mut put = |payload: &[u8]| {
        let len = payload.len() as u32;
        compact.extend_from_slice(&len.to_le_bytes());
        compact.extend_from_slice(&fnv1a(payload).to_le_bytes());
        compact.extend_from_slice(payload);
    };
    put(&j.header);
    for r in &j.records {
        put(r);
    }
    write_atomic_on(backend, path, &compact)?;
    Ok(inspect(backend, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{seal, ChaosBackend, ChaosPlan, JournalWriter};

    fn chaos() -> (Arc<ChaosBackend>, Arc<dyn StorageBackend>) {
        let c = Arc::new(ChaosBackend::new(ChaosPlan::quiet()));
        let b: Arc<dyn StorageBackend> = Arc::clone(&c) as _;
        (c, b)
    }

    fn journal_on(b: &Arc<dyn StorageBackend>, path: &Path, n: u8) {
        let header = seal("doctor-test", 1, b"jobs");
        let mut w = JournalWriter::create_on(b, path, &header, 1).unwrap();
        for i in 0..n {
            w.append(format!("record-{i}").as_bytes()).unwrap();
        }
    }

    #[test]
    fn clean_journal_reports_clean_with_a_digest() {
        let (_, b) = chaos();
        let path = Path::new("/j/clean.journal");
        journal_on(&b, path, 4);
        let r = inspect(&b, path);
        assert_eq!(r.health, Health::Clean);
        assert_eq!(r.records, 4);
        assert!(r.kind.starts_with("journal(doctor-test v1"), "{}", r.kind);
        assert!(r.records_digest.is_some());
    }

    #[test]
    fn interior_corruption_is_salvageable_and_repair_compacts_it() {
        let (c, b) = chaos();
        let path = Path::new("/j/mid.journal");
        journal_on(&b, path, 4);
        let clean = inspect(&b, path);

        // Corrupt an interior record's payload byte (the header record is
        // long; aim well past it, inside record 1's payload).
        let bytes = c.contents(path).unwrap();
        let hdr_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let rec1_payload = 12 + hdr_len + 12 + 2; // into "record-0"
        c.flip_at_rest(path, rec1_payload as u64, 0x40);

        let r = inspect(&b, path);
        assert_eq!(r.health, Health::Salvageable);
        assert_eq!(r.records, 3, "three of four records survive");
        assert_eq!(r.salvage.len(), 1);
        assert_ne!(r.records_digest, clean.records_digest);

        let repaired = repair(&b, path).unwrap();
        assert_eq!(repaired.health, Health::Clean);
        assert_eq!(repaired.records, 3);
        assert_eq!(repaired.records_digest, r.records_digest);
    }

    #[test]
    fn torn_tail_is_salvageable_and_scrub_writes_a_manifest() {
        let (c, b) = chaos();
        let path = Path::new("/j/torn.journal");
        journal_on(&b, path, 3);
        let len = c.contents(path).unwrap().len();
        let truncated = c.contents(path).unwrap()[..len - 3].to_vec();
        c.install(path, &truncated);

        let r = scrub(&b, path).unwrap();
        assert_eq!(r.health, Health::Salvageable);
        assert_eq!(r.records, 2);
        let manifest = c.contents(&manifest_path(path)).unwrap();
        let text = String::from_utf8(manifest).unwrap();
        assert!(text.contains("torn tail"), "{text}");
    }

    #[test]
    fn destroyed_header_is_fatal() {
        let (c, b) = chaos();
        let path = Path::new("/j/hdr.journal");
        journal_on(&b, path, 2);
        c.flip_at_rest(path, 16, 0xff); // inside the header record payload
        let r = inspect(&b, path);
        assert_eq!(r.health, Health::Fatal);
    }

    #[test]
    fn snapshots_and_artifacts_classify_correctly() {
        let (c, b) = chaos();
        let snap = Path::new("/s/state.g0");
        c.install(snap, &seal("snap-kind", 2, b"state"));
        let r = inspect(&b, snap);
        assert_eq!(r.health, Health::Clean);
        assert_eq!(r.kind, "snapshot(snap-kind v2)");

        c.flip_at_rest(snap, 20, 0x01);
        assert_eq!(inspect(&b, snap).health, Health::Fatal);

        let txt = Path::new("/s/results.txt");
        c.install(txt, b"algo,n,cycles\nplus_scan,1024,99\n");
        assert_eq!(inspect(&b, txt).health, Health::Clean);

        let empty = Path::new("/s/empty.txt");
        c.install(empty, b"");
        assert_eq!(inspect(&b, empty).health, Health::Fatal);

        assert_eq!(
            inspect(&b, Path::new("/s/nope")).health,
            Health::Fatal,
            "missing file"
        );
    }
}
