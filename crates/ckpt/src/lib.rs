//! Checkpoint record formats for the scan-vector workspace.
//!
//! Everything here is dependency-free and hand-rolled, in the same spirit
//! as `FaultPlan`'s Display/FromStr round-trip: a little-endian byte codec
//! ([`ByteWriter`]/[`ByteReader`]), a versioned digest-stamped frame
//! ([`seal`]/[`open`]) used by machine and environment snapshots, a
//! length-prefixed FNV-checksummed write-ahead journal
//! ([`JournalWriter`]/[`read_journal`]) whose reader tolerates a torn
//! tail *and salvages around mid-stream corruption* (see
//! [`SalvageEntry`]), [`write_atomic`] (write-temp-then-rename) so a
//! crash never leaves a truncated manifest, and dual-generation snapshot
//! slots ([`GenStore`]) that fall back to the older valid generation when
//! the newer one rots.
//!
//! All of it runs over a pluggable [`StorageBackend`] — the real
//! filesystem in production, a deterministic fault-injecting
//! [`ChaosBackend`] under test — so the durability contracts are
//! *exercised*, not assumed.
//!
//! The design contract shared by all the pieces: **a reader either
//! reproduces exactly what the writer recorded or reports why it cannot**
//! — never a silently corrupt value. With salvage, "reports why" is
//! per-record: a flipped byte quarantines one record (offset + reason in
//! the salvage manifest), never the rest of the journal.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub mod doctor;
mod gen;
pub mod queue;
mod storage;

pub use gen::{GenSlot, GenStore};
pub use storage::{fs_backend, ChaosBackend, ChaosPlan, FsBackend, StorageBackend, StorageFile};

/// Directory-entry syncs performed (test observability for the
/// rename-durability contract — see [`sync_dir`]).
#[cfg(test)]
pub(crate) static DIR_SYNCS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Fsync a directory so metadata operations inside it — a rename, a file
/// creation — survive power loss. POSIX makes renames atomic but not
/// durable: until the directory entry itself is synced, a crash can
/// resurrect the old name even though the renamed file's *contents* were
/// fsynced. Called after [`write_atomic`]'s rename and after
/// [`JournalWriter::create`] materializes a new journal.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(test)]
    DIR_SYNCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    File::open(dir)?.sync_all()
}

/// FNV-1a 64-bit hash — the same function (and constants) the batch
/// engine's stable digests are built on.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a decode failed. Every variant names what was being read, so the
/// error is actionable without a hex dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes remained than the field needs.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes the field needs.
        need: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// The frame does not start with the `RVCK` magic.
    BadMagic,
    /// The frame's kind tag differs from the expected one.
    WrongKind {
        /// Kind the caller asked for.
        expected: String,
        /// Kind found in the frame.
        found: String,
    },
    /// The frame's layout version differs from the expected one.
    WrongVersion {
        /// Version the caller understands.
        expected: u16,
        /// Version found in the frame.
        found: u16,
    },
    /// The payload's FNV-1a digest does not match the stamped one.
    DigestMismatch {
        /// Digest stamped in the frame.
        expected: u64,
        /// Digest of the payload actually read.
        found: u64,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A decoded discriminant or field value is outside its domain.
    BadValue {
        /// What was being decoded.
        what: &'static str,
        /// The offending raw value.
        value: u64,
    },
    /// Bytes remained after the decoder consumed the full structure.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { what, need, have } => {
                write!(f, "truncated {what}: need {need} bytes, have {have}")
            }
            CodecError::BadMagic => write!(f, "bad frame magic (not an RVCK frame)"),
            CodecError::WrongKind { expected, found } => {
                write!(
                    f,
                    "wrong frame kind: expected {expected:?}, found {found:?}"
                )
            }
            CodecError::WrongVersion { expected, found } => {
                write!(f, "wrong frame version: expected {expected}, found {found}")
            }
            CodecError::DigestMismatch { expected, found } => write!(
                f,
                "payload digest mismatch: stamped {expected:#018x}, computed {found:#018x}"
            ),
            CodecError::BadUtf8 => write!(f, "length-prefixed string is not valid UTF-8"),
            CodecError::BadValue { what, value } => {
                write!(f, "bad value for {what}: {value}")
            }
            CodecError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after decode")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for io::Error {
    fn from(e: CodecError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Append-only little-endian encoder. All multi-byte integers are LE;
/// byte strings are `u32` length-prefixed.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append raw bytes with no length prefix (fixed-size fields).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u32` length prefix followed by the bytes.
    ///
    /// # Panics
    /// If `bytes.len()` exceeds `u32::MAX` (no checkpoint field does).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(u32::try_from(bytes.len()).expect("field under 4 GiB"));
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Cursor over an encoded byte slice; the mirror of [`ByteWriter`].
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, what: &'static str, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                what,
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take("u8", 1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take("u16", 2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take("u32", 4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take("u64", 8)?.try_into().unwrap()))
    }

    /// Read a bool byte, rejecting anything other than 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CodecError::BadValue {
                what: "bool",
                value: u64::from(v),
            }),
        }
    }

    /// Read `n` raw bytes (fixed-size fields).
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take("raw bytes", n)
    }

    /// Read a `u32` length prefix followed by that many bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_u32()? as usize;
        self.take("length-prefixed bytes", n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| CodecError::BadUtf8)
    }

    /// Assert every byte was consumed — catches layout drift between
    /// writer and reader versions.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }
}

/// Frame magic: every sealed snapshot starts with these four bytes.
pub const FRAME_MAGIC: &[u8; 4] = b"RVCK";

/// Wrap `payload` in a versioned, digest-stamped frame:
///
/// ```text
/// [magic "RVCK"][kind: str][version: u16][digest: u64][payload: bytes]
/// ```
///
/// `kind` names the payload layout (e.g. `"rvv-env-snapshot"`); `version`
/// is bumped on any layout change; the digest is FNV-1a over the payload
/// so bit rot is detected before a corrupt snapshot is restored.
pub fn seal(kind: &str, version: u16, payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_raw(FRAME_MAGIC);
    w.put_str(kind);
    w.put_u16(version);
    w.put_u64(fnv1a(payload));
    w.put_bytes(payload);
    w.into_bytes()
}

/// Unwrap a frame produced by [`seal`], verifying magic, kind, version,
/// and digest. Returns the payload slice.
pub fn open<'a>(kind: &str, version: u16, bytes: &'a [u8]) -> Result<&'a [u8], CodecError> {
    let mut r = ByteReader::new(bytes);
    if r.get_raw(4)? != FRAME_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let found_kind = r.get_str()?;
    if found_kind != kind {
        return Err(CodecError::WrongKind {
            expected: kind.to_owned(),
            found: found_kind,
        });
    }
    let found_version = r.get_u16()?;
    if found_version != version {
        return Err(CodecError::WrongVersion {
            expected: version,
            found: found_version,
        });
    }
    let stamped = r.get_u64()?;
    let payload = r.get_bytes()?;
    r.finish()?;
    let computed = fnv1a(payload);
    if computed != stamped {
        return Err(CodecError::DigestMismatch {
            expected: stamped,
            found: computed,
        });
    }
    Ok(payload)
}

/// One journal record on disk: `[len: u32][digest: u64][payload: len bytes]`,
/// all little-endian, digest = FNV-1a over the payload.
const RECORD_HEADER: usize = 4 + 8;

/// One quarantined byte range of a journal: a record (or what was left of
/// one) that failed its checksum mid-stream and was skipped, not trusted.
///
/// A salvage entry is *evidence*: the reader keeps the corrupt bytes in
/// place (resume does not truncate them — they sit before `valid_len`),
/// records exactly where and why it skipped, and the layers above decide
/// what the loss means (a lost `Done` record re-runs its job; a lost
/// `Submit` is reconstructed from its surviving `Done`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageEntry {
    /// Byte offset of the quarantined range in the file.
    pub offset: u64,
    /// Length of the quarantined range.
    pub len: u64,
    /// Why the range was quarantined (checksum mismatch, bad length…).
    pub reason: String,
}

impl fmt::Display for SalvageEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quarantined {} bytes at offset {}: {}",
            self.len, self.offset, self.reason
        )
    }
}

/// A write-ahead journal file read back from disk.
///
/// The first record is the caller's header (typically a [`seal`]ed
/// description of the job list); the rest are data records in append
/// order. `valid_len` is the byte length of the parsed prefix (valid
/// records plus any quarantined ranges) — a torn tail (the expected
/// result of killing a writer mid-append) is dropped, and a resuming
/// writer truncates to `valid_len` before appending. Mid-stream
/// corruption does **not** end the parse: the reader quarantines the bad
/// range into `salvage` and resynchronizes on the next record whose
/// checksum verifies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Journal {
    /// Payload of the header record.
    pub header: Vec<u8>,
    /// Data-record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the parsed prefix of the file.
    pub valid_len: u64,
    /// Quarantined mid-stream ranges, in file order (empty = clean read).
    pub salvage: Vec<SalvageEntry>,
}

/// Is there a well-formed record at `bytes[pos..]`?
fn record_at(bytes: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    let rest = &bytes[pos..];
    if rest.len() < RECORD_HEADER {
        return None;
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
    let stamped = u64::from_le_bytes(rest[4..12].try_into().unwrap());
    let payload = rest.get(RECORD_HEADER..RECORD_HEADER + len)?;
    if fnv1a(payload) != stamped {
        return None;
    }
    Some((payload, RECORD_HEADER + len))
}

/// Parse journal bytes, salvaging around corruption (see [`Journal`]).
///
/// Errors only when even the header record is absent or corrupt — the
/// bytes are not a journal, or the writer was killed before the header
/// fsync completed; nothing can be resumed from them.
pub fn parse_journal(bytes: &[u8], label: &str) -> io::Result<Journal> {
    let mut records = Vec::new();
    let mut salvage = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= RECORD_HEADER {
        if let Some((payload, sz)) = record_at(bytes, pos) {
            records.push(payload.to_vec());
            pos += sz;
            continue;
        }
        // Bad record. Distinguish a torn tail (nothing valid follows —
        // truncate and resume) from mid-stream corruption (a later record
        // still verifies — quarantine this range and resynchronize). The
        // 64-bit payload checksum makes a false resync vanishingly
        // unlikely: a candidate must checksum-verify to be accepted.
        let reason = {
            let rest = &bytes[pos..];
            let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
            if rest.len() < RECORD_HEADER + len {
                format!(
                    "length prefix {len} outruns the file ({} bytes remain)",
                    rest.len() - RECORD_HEADER
                )
            } else {
                let stamped = u64::from_le_bytes(rest[4..12].try_into().unwrap());
                let computed = fnv1a(&rest[RECORD_HEADER..RECORD_HEADER + len]);
                format!("payload checksum mismatch (stamped {stamped:#018x}, computed {computed:#018x})")
            }
        };
        let resync = (pos + 1..=bytes.len().saturating_sub(RECORD_HEADER))
            .find(|&cand| record_at(bytes, cand).is_some());
        match resync {
            Some(cand) => {
                if records.is_empty() {
                    // The *header* record is the corrupt one: the journal
                    // cannot be bound to an owner, so nothing after it can
                    // be trusted either.
                    break;
                }
                salvage.push(SalvageEntry {
                    offset: pos as u64,
                    len: (cand - pos) as u64,
                    reason,
                });
                pos = cand;
            }
            None => break, // torn tail: truncate here on resume
        }
    }
    if records.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{label}: no valid journal header record"),
        ));
    }
    let header = records.remove(0);
    Ok(Journal {
        header,
        records,
        valid_len: pos as u64,
        salvage,
    })
}

/// Read a journal file from the real filesystem (see [`read_journal_on`]).
pub fn read_journal(path: &Path) -> io::Result<Journal> {
    read_journal_on(&fs_backend(), path)
}

/// Read a journal file through `backend`, tolerating a torn tail and
/// salvaging around mid-stream corruption (see [`parse_journal`]).
pub fn read_journal_on(backend: &Arc<dyn StorageBackend>, path: &Path) -> io::Result<Journal> {
    let bytes = backend.read(path)?;
    parse_journal(&bytes, &path.display().to_string())
}

/// Appending side of the write-ahead journal.
///
/// `fsync_every = K` syncs the file after every Kth appended record
/// (K = 1, the default in callers, makes every record durable before the
/// append returns); `K = 0` never syncs except in [`JournalWriter::sync`].
/// The header record is always synced immediately so a resumable file
/// exists from the first instant.
#[derive(Debug)]
pub struct JournalWriter {
    file: Box<dyn StorageFile>,
    fsync_every: u32,
    unsynced: u32,
    appended: u64,
}

/// The parent directory of `path` for dir-sync purposes (`.` when the
/// path has no parent component).
fn parent_dir(path: &Path) -> PathBuf {
    match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

impl JournalWriter {
    /// Create (truncate) `path` on the real filesystem — see
    /// [`JournalWriter::create_on`].
    pub fn create(path: &Path, header: &[u8], fsync_every: u32) -> io::Result<Self> {
        Self::create_on(&fs_backend(), path, header, fsync_every)
    }

    /// Create (truncate) `path` through `backend` and write + fsync the
    /// header record.
    pub fn create_on(
        backend: &Arc<dyn StorageBackend>,
        path: &Path,
        header: &[u8],
        fsync_every: u32,
    ) -> io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                backend.create_dir_all(dir)?;
            }
        }
        let file = backend.create(path)?;
        let mut w = Self {
            file,
            fsync_every,
            unsynced: 0,
            appended: 0,
        };
        w.write_record(header)?;
        w.file.sync_all()?;
        // The journal's directory entry must be durable too, or a crash
        // right after create could lose the whole (fsynced) file.
        backend.sync_dir(&parent_dir(path))?;
        w.unsynced = 0;
        w.appended = 0; // the header is not a data record
        Ok(w)
    }

    /// Reopen an existing journal on the real filesystem — see
    /// [`JournalWriter::resume_on`].
    pub fn resume(path: &Path, valid_len: u64, fsync_every: u32) -> io::Result<Self> {
        Self::resume_on(&fs_backend(), path, valid_len, fsync_every)
    }

    /// Reopen an existing journal for appending through `backend`,
    /// truncating the torn tail first: `valid_len` comes from
    /// [`read_journal`]. The truncation is fsynced before this returns —
    /// without that, a crash immediately after resume could resurrect
    /// the discarded tail and interleave it with freshly appended
    /// records.
    pub fn resume_on(
        backend: &Arc<dyn StorageBackend>,
        path: &Path,
        valid_len: u64,
        fsync_every: u32,
    ) -> io::Result<Self> {
        let mut file = backend.open_append(path, valid_len)?;
        file.sync_all()?;
        Ok(Self {
            file,
            fsync_every,
            unsynced: 0,
            appended: 0,
        })
    }

    fn write_record(&mut self, payload: &[u8]) -> io::Result<()> {
        let len = u32::try_from(payload.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "record over 4 GiB"))?;
        let mut frame = Vec::with_capacity(RECORD_HEADER + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)
    }

    /// Append one data record, honouring the fsync granularity. Returns
    /// the number of data records appended through this writer.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        self.write_record(payload)?;
        self.appended += 1;
        self.unsynced += 1;
        if self.fsync_every != 0 && self.unsynced >= self.fsync_every {
            self.file.sync_all()?;
            self.unsynced = 0;
        }
        Ok(self.appended)
    }

    /// Data records appended through this writer (excludes replayed ones).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Force everything written so far to disk.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()?;
        self.unsynced = 0;
        Ok(())
    }
}

/// Write `bytes` to `path` atomically: write a temp file in the same
/// directory, fsync it, then rename over the target. A crash at any
/// point leaves either the old file or the new one — never a truncated
/// hybrid.
pub fn write_atomic(path: impl AsRef<Path>, bytes: impl AsRef<[u8]>) -> io::Result<()> {
    write_atomic_on(&fs_backend(), path.as_ref(), bytes.as_ref())
}

/// [`write_atomic`] through an explicit [`StorageBackend`].
pub fn write_atomic_on(
    backend: &Arc<dyn StorageBackend>,
    path: &Path,
    bytes: &[u8],
) -> io::Result<()> {
    let dir = parent_dir(path);
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(".{name}.tmp-{}", std::process::id()));
    let result = (|| {
        let mut f = backend.create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        backend.rename(&tmp, path)?;
        // The rename is atomic but not durable until the directory entry
        // is synced — without this, power loss after `write_atomic`
        // returns could resurrect the old file.
        backend.sync_dir(&dir)
    })();
    if result.is_err() {
        let _ = backend.remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "rvv-ckpt-{tag}-{}-{:p}",
            std::process::id(),
            &tag as *const _
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn codec_round_trips_every_field_kind() {
        let mut w = ByteWriter::new();
        w.put_u8(0xab);
        w.put_u16(0xbeef);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_bool(true);
        w.put_bool(false);
        w.put_bytes(b"hello");
        w.put_str("scan-vector \u{2714}");
        w.put_raw(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u16().unwrap(), 0xbeef);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "scan-vector \u{2714}");
        assert_eq!(r.get_raw(3).unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn reader_reports_truncation_not_garbage() {
        let mut w = ByteWriter::new();
        w.put_u64(7);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert_eq!(
            r.get_u64(),
            Err(CodecError::Truncated {
                what: "u64",
                need: 8,
                have: 5
            })
        );
    }

    #[test]
    fn bool_rejects_out_of_domain_bytes() {
        let mut r = ByteReader::new(&[2]);
        assert_eq!(
            r.get_bool(),
            Err(CodecError::BadValue {
                what: "bool",
                value: 2
            })
        );
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let r = ByteReader::new(&[0, 0]);
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes { count: 2 }));
    }

    #[test]
    fn frame_seal_open_round_trip() {
        let sealed = seal("test-kind", 3, b"payload bytes");
        assert_eq!(open("test-kind", 3, &sealed).unwrap(), b"payload bytes");
    }

    #[test]
    fn frame_rejects_wrong_kind_version_magic_and_corruption() {
        let sealed = seal("test-kind", 3, b"payload bytes");
        assert!(matches!(
            open("other", 3, &sealed),
            Err(CodecError::WrongKind { .. })
        ));
        assert!(matches!(
            open("test-kind", 4, &sealed),
            Err(CodecError::WrongVersion {
                expected: 4,
                found: 3
            })
        ));
        let mut bad_magic = sealed.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(open("test-kind", 3, &bad_magic), Err(CodecError::BadMagic));
        // Flip each payload byte in turn: every corruption is caught.
        for i in sealed.len() - b"payload bytes".len()..sealed.len() {
            let mut corrupt = sealed.clone();
            corrupt[i] ^= 0x01;
            assert!(matches!(
                open("test-kind", 3, &corrupt),
                Err(CodecError::DigestMismatch { .. })
            ));
        }
    }

    #[test]
    fn journal_round_trip_and_torn_tail_recovery() {
        let dir = tmpdir("journal");
        let path = dir.join("t.journal");
        let records: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i; 3 + i as usize]).collect();
        {
            let mut w = JournalWriter::create(&path, b"HDR", 1).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
            assert_eq!(w.appended(), 5);
        }
        let j = read_journal(&path).unwrap();
        assert_eq!(j.header, b"HDR");
        assert_eq!(j.records, records);
        assert_eq!(j.valid_len, fs::metadata(&path).unwrap().len());

        // Tear the tail mid-record: the valid prefix survives.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 2]).unwrap();
        let torn = read_journal(&path).unwrap();
        assert_eq!(torn.records, records[..4].to_vec());

        // Resume truncates the tear and appends cleanly.
        {
            let mut w = JournalWriter::resume(&path, torn.valid_len, 1).unwrap();
            w.append(&records[4]).unwrap();
        }
        let healed = read_journal(&path).unwrap();
        assert_eq!(healed.records, records);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_with_corrupt_record_keeps_the_prefix() {
        let dir = tmpdir("corrupt");
        let path = dir.join("t.journal");
        {
            let mut w = JournalWriter::create(&path, b"H", 0).unwrap();
            w.append(b"first").unwrap();
            w.append(b"second").unwrap();
            w.sync().unwrap();
        }
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff; // corrupt the last record's payload
        fs::write(&path, &bytes).unwrap();
        let j = read_journal(&path).unwrap();
        assert_eq!(j.records, vec![b"first".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_without_header_is_an_error() {
        let dir = tmpdir("nohdr");
        let path = dir.join("t.journal");
        fs::write(&path, [0u8; 7]).unwrap();
        assert!(read_journal(&path).is_err());
        fs::write(&path, b"").unwrap();
        assert!(read_journal(&path).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = tmpdir("atomic");
        let path = dir.join("out.txt");
        write_atomic(&path, b"one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        write_atomic(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_syncs_the_directory_entry() {
        use std::sync::atomic::Ordering;
        // The file was always fsynced; the *rename* wasn't durable until
        // the parent directory fd was synced too. Pin that every
        // write_atomic performs the dir sync (JournalWriter::create pins
        // the same contract for journal creation).
        let dir = tmpdir("dirsync");
        let path = dir.join("out.txt");
        let before = DIR_SYNCS.load(Ordering::Relaxed);
        write_atomic(&path, b"payload").unwrap();
        let after_write = DIR_SYNCS.load(Ordering::Relaxed);
        assert!(
            after_write > before,
            "write_atomic must fsync the parent directory after the rename"
        );
        JournalWriter::create(&dir.join("t.journal"), b"H", 1).unwrap();
        assert!(
            DIR_SYNCS.load(Ordering::Relaxed) > after_write,
            "JournalWriter::create must fsync the parent directory"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
