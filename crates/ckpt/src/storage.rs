//! Storage backends: the file operations the journal/snapshot layer is
//! written against, abstracted so the *same* durability code runs on the
//! real filesystem and on a deterministic fault-injecting stand-in.
//!
//! Two implementations ship:
//!
//! * [`FsBackend`] — thin `std::fs` passthrough; what production uses.
//! * [`ChaosBackend`] — an in-memory filesystem with an explicit model of
//!   what is *durable* (would survive power loss) versus merely *visible*
//!   (in the page cache), plus seeded fault injection: transient write
//!   errors, short writes, read bitflips, lying fsyncs, and
//!   not-yet-durable directory entries (rename reordering). A
//!   [`ChaosBackend::crash`] call drops everything non-durable — the
//!   storage-layer analogue of `kill -9` plus power loss — with a seeded
//!   torn tail, so crash/recovery properties are testable without real
//!   power cuts.
//!
//! Fault points are keyed `(seed, op ordinal)` through the same
//! xorshift64* / SplitMix64 construction as `rvv-fault`'s plans (the
//! generator is duplicated here rather than imported so `rvv-ckpt` stays
//! dependency-free): a given plan faults the same operations on every
//! run, which is what makes the storage-chaos ablation reproducible.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// A writable file handle vended by a [`StorageBackend`]. Only the two
/// operations the journal layer needs: append bytes, force them durable.
pub trait StorageFile: fmt::Debug + Send {
    /// Append `buf` at the current position (journal files are only ever
    /// written sequentially).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Make everything written so far durable (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The file operations [`crate::JournalWriter`], [`crate::queue::QueueJournal`],
/// [`crate::write_atomic_on`], and [`crate::GenStore`] are written
/// against. Implementations must be shareable across threads (the serve
/// layer holds one behind an `Arc` for its whole lifetime).
pub trait StorageBackend: fmt::Debug + Send + Sync {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create (truncate) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Open an existing file for appending, truncating it to
    /// `truncate_to` bytes first and positioning at the new end.
    fn open_append(&self, path: &Path, truncate_to: u64) -> io::Result<Box<dyn StorageFile>>;
    /// Atomically rename `from` to `to` (visible immediately; durable
    /// only after [`StorageBackend::sync_dir`] on the parent).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Create a directory and its ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Fsync a directory so renames/creations inside it are durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Does `path` currently exist (visibly)?
    fn exists(&self, path: &Path) -> bool;
}

/// The shared `std::fs` backend (zero-sized; one `Arc` serves everyone).
pub fn fs_backend() -> Arc<dyn StorageBackend> {
    static FS: OnceLock<Arc<dyn StorageBackend>> = OnceLock::new();
    Arc::clone(FS.get_or_init(|| Arc::new(FsBackend)))
}

/// The real filesystem: every trait method is a direct `std::fs` call.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsBackend;

#[derive(Debug)]
struct FsFile(File);

impl StorageFile for FsFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl StorageBackend for FsBackend {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(FsFile(File::create(path)?)))
    }
    fn open_append(&self, path: &Path, truncate_to: u64) -> io::Result<Box<dyn StorageFile>> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(truncate_to)?;
        file.seek(SeekFrom::Start(truncate_to))?;
        Ok(Box::new(FsFile(file)))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        crate::sync_dir(path)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ------------------------------------------------------------- chaos --

/// SplitMix64 finalizer — same constants as `rvv-fault::mix64`, so chaos
/// plans here are keyed exactly like fault plans there.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tiny xorshift64* stream keyed by `(seed, ordinal)` — the per-op
/// decision source for every injected storage fault.
struct OpRng(u64);

impl OpRng {
    fn new(seed: u64, ordinal: u64) -> OpRng {
        let state = mix64(seed) ^ mix64(ordinal.wrapping_add(1));
        OpRng(if state == 0 { 0x9e37_79b9 } else { state })
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next() % n
    }
}

/// Does a seeded periodic fault fire at this op ordinal? `period = 0`
/// never fires; `period = 1` always fires; period `p` fires on roughly
/// one op in `p`, at ordinals that are a pure function of the seed.
fn fires(seed: u64, salt: u64, ordinal: u64, period: u64) -> bool {
    period != 0 && OpRng::new(seed ^ mix64(salt), ordinal).next().is_multiple_of(period)
}

const SALT_WRITE: u64 = 0x57;
const SALT_READ: u64 = 0x52;
const SALT_FSYNC: u64 = 0x46;
const SALT_TORN: u64 = 0x54;

/// What a [`ChaosBackend`] injects, and when. Everything is keyed off
/// `seed` and the backend's monotonically increasing op ordinal, so a
/// plan's faults land identically on every run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPlan {
    /// Seed for every periodic decision below.
    pub seed: u64,
    /// Fail roughly one write in `N` with a transient `io::Error`
    /// (`Some(1)` fails every write). `None` = writes never error.
    pub write_error_period: Option<u64>,
    /// Hard device failure: every write op *after* this many write ops
    /// fails. Models a disk going away mid-service — the trigger for the
    /// serve layer's storage circuit breaker.
    pub fail_writes_after: Option<u64>,
    /// Failing writes first persist a seeded prefix of the buffer (a
    /// short write), instead of nothing, before returning the error.
    pub short_writes: bool,
    /// Flip one seeded bit in roughly one read in `N` (the *returned*
    /// bytes only — at-rest corruption is [`ChaosBackend::flip_at_rest`]).
    pub read_bitflip_period: Option<u64>,
    /// Roughly one fsync in `N` lies: returns `Ok` without advancing
    /// durability. A later [`ChaosBackend::crash`] exposes the lie.
    pub drop_fsync_period: Option<u64>,
    /// On [`ChaosBackend::crash`], keep a seeded prefix of each file's
    /// non-durable tail (a torn write) instead of dropping it whole.
    pub torn_crash: bool,
}

impl ChaosPlan {
    /// A plan that injects nothing: the backend behaves as a perfectly
    /// reliable in-memory filesystem (useful on its own for hermetic
    /// tests and fixture generation).
    pub fn quiet() -> ChaosPlan {
        ChaosPlan {
            seed: 0,
            write_error_period: None,
            fail_writes_after: None,
            short_writes: false,
            read_bitflip_period: None,
            drop_fsync_period: None,
            torn_crash: false,
        }
    }
}

impl Default for ChaosPlan {
    fn default() -> ChaosPlan {
        ChaosPlan::quiet()
    }
}

/// One in-memory inode. `flushed` is the durable prefix length: bytes
/// beyond it exist only in the "page cache" and die in a crash (modulo
/// the seeded torn tail).
#[derive(Debug, Clone, Default)]
struct Inode {
    data: Vec<u8>,
    flushed: usize,
}

#[derive(Debug, Default)]
struct ChaosState {
    /// The visible namespace: what `open`/`read`/`exists` see now.
    visible: BTreeMap<PathBuf, u64>,
    /// The durable namespace: the directory entries that are on "disk".
    /// A crash restores exactly these names.
    durable: BTreeMap<PathBuf, u64>,
    inodes: BTreeMap<u64, Inode>,
    dirs: Vec<PathBuf>,
    next_inode: u64,
    write_ops: u64,
    ops: u64,
    crashes: u64,
}

impl ChaosState {
    fn inode(&mut self, path: &Path) -> Option<&mut Inode> {
        let id = *self.visible.get(path)?;
        self.inodes.get_mut(&id)
    }
}

/// The deterministic fault-injecting in-memory backend (see the module
/// docs). All state sits behind one mutex; handles share it by `Arc`.
#[derive(Debug)]
pub struct ChaosBackend {
    plan: ChaosPlan,
    state: Arc<Mutex<ChaosState>>,
}

impl ChaosBackend {
    /// An empty in-memory filesystem injecting `plan`'s faults.
    pub fn new(plan: ChaosPlan) -> ChaosBackend {
        ChaosBackend {
            plan,
            state: Arc::new(Mutex::new(ChaosState::default())),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ChaosState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Total backend operations so far (the fault ordinal clock).
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// The visible bytes of `path`, fault-free (test observability).
    pub fn contents(&self, path: &Path) -> Option<Vec<u8>> {
        let mut st = self.lock();
        st.inode(path).map(|i| i.data.clone())
    }

    /// Install a file as fully durable content (fixture setup).
    pub fn install(&self, path: &Path, bytes: &[u8]) {
        let mut st = self.lock();
        let id = st.next_inode;
        st.next_inode += 1;
        st.inodes.insert(
            id,
            Inode {
                data: bytes.to_vec(),
                flushed: bytes.len(),
            },
        );
        st.visible.insert(path.to_path_buf(), id);
        st.durable.insert(path.to_path_buf(), id);
    }

    /// Flip bits of the byte at `offset` in the *stored* file — at-rest
    /// corruption (bit rot), visible to every subsequent reader.
    ///
    /// # Panics
    /// If the path does not exist or `offset` is out of range (a test
    /// asking to corrupt nothing is a broken test).
    pub fn flip_at_rest(&self, path: &Path, offset: u64, mask: u8) {
        let mut st = self.lock();
        let inode = st.inode(path).expect("flip_at_rest: no such file");
        inode.data[offset as usize] ^= mask;
        // Bit rot corrupts the platter, not the cache: the durable copy
        // is the same bytes.
    }

    /// Power loss + restart: every non-durable directory entry vanishes,
    /// every file reverts to its durable prefix (plus a seeded torn tail
    /// when the plan says so). Returns the number of files that lost
    /// visible bytes or vanished.
    pub fn crash(&self) -> usize {
        let mut st = self.lock();
        st.crashes += 1;
        let crash_no = st.crashes;
        let mut lost = 0usize;
        let durable = st.durable.clone();
        for (path, id) in &st.visible {
            if durable.get(path) != Some(id) {
                lost += 1;
                continue;
            }
            let inode = st.inodes.get(id).expect("durable inode exists");
            if inode.data.len() > inode.flushed {
                lost += 1;
            }
            let _ = path;
        }
        // Rebuild visibility from the durable namespace.
        let torn = self.plan.torn_crash;
        let seed = self.plan.seed;
        st.visible = durable.clone();
        for (seq, id) in durable.values().enumerate() {
            let inode = st.inodes.get_mut(id).expect("durable inode exists");
            let tail = inode.data.len() - inode.flushed;
            let keep = if torn && tail > 0 {
                OpRng::new(
                    seed ^ mix64(SALT_TORN),
                    crash_no.wrapping_mul(1031) + seq as u64,
                )
                .below(tail as u64 + 1) as usize
            } else {
                0
            };
            inode.data.truncate(inode.flushed + keep);
            inode.flushed = inode.data.len();
        }
        st.durable = durable;
        lost
    }

    fn bump(st: &mut ChaosState) -> u64 {
        let n = st.ops;
        st.ops += 1;
        n
    }
}

#[derive(Debug)]
struct ChaosFile {
    backend_state: Arc<Mutex<ChaosState>>,
    plan: ChaosPlan,
    inode: u64,
}

impl ChaosFile {
    fn lock(&self) -> std::sync::MutexGuard<'_, ChaosState> {
        self.backend_state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl StorageFile for ChaosFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut st = self.lock();
        let op = ChaosBackend::bump(&mut st);
        let write_op = st.write_ops;
        st.write_ops += 1;
        let hard_fail = self.plan.fail_writes_after.is_some_and(|n| write_op >= n);
        let transient = self
            .plan
            .write_error_period
            .is_some_and(|p| fires(self.plan.seed, SALT_WRITE, op, p));
        let inode = st.inodes.get_mut(&self.inode).expect("open inode exists");
        if hard_fail || transient {
            if self.plan.short_writes && !buf.is_empty() {
                let keep = OpRng::new(self.plan.seed ^ mix64(SALT_WRITE), op)
                    .below(buf.len() as u64) as usize;
                inode.data.extend_from_slice(&buf[..keep]);
            }
            return Err(io::Error::other(
                if hard_fail {
                    format!("injected storage failure (write op {write_op})")
                } else {
                    format!("injected transient write error (op {op})")
                },
            ));
        }
        inode.data.extend_from_slice(buf);
        Ok(())
    }

    fn sync_all(&mut self) -> io::Result<()> {
        let mut st = self.lock();
        let op = ChaosBackend::bump(&mut st);
        if self
            .plan
            .drop_fsync_period
            .is_some_and(|p| fires(self.plan.seed, SALT_FSYNC, op, p))
        {
            return Ok(()); // the lying fsync: success reported, nothing durable
        }
        let inode = st.inodes.get_mut(&self.inode).expect("open inode exists");
        inode.flushed = inode.data.len();
        Ok(())
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("{}: no such file (chaos backend)", path.display()),
    )
}

impl StorageBackend for ChaosBackend {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut st = self.lock();
        let op = ChaosBackend::bump(&mut st);
        let mut bytes = st.inode(path).ok_or_else(|| not_found(path))?.data.clone();
        if !bytes.is_empty()
            && self
                .plan
                .read_bitflip_period
                .is_some_and(|p| fires(self.plan.seed, SALT_READ, op, p))
        {
            let mut rng = OpRng::new(self.plan.seed ^ mix64(SALT_READ), op);
            let at = rng.below(bytes.len() as u64) as usize;
            bytes[at] ^= 1 << rng.below(8);
        }
        Ok(bytes)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let mut st = self.lock();
        ChaosBackend::bump(&mut st);
        let id = st.next_inode;
        st.next_inode += 1;
        st.inodes.insert(id, Inode::default());
        st.visible.insert(path.to_path_buf(), id);
        // The new directory entry is NOT durable until sync_dir.
        Ok(Box::new(ChaosFile {
            backend_state: Arc::clone(&self.state),
            plan: self.plan,
            inode: id,
        }))
    }

    fn open_append(&self, path: &Path, truncate_to: u64) -> io::Result<Box<dyn StorageFile>> {
        let mut st = self.lock();
        ChaosBackend::bump(&mut st);
        let id = *st.visible.get(path).ok_or_else(|| not_found(path))?;
        let inode = st.inodes.get_mut(&id).expect("visible inode exists");
        inode.data.truncate(truncate_to as usize);
        inode.flushed = inode.flushed.min(inode.data.len());
        Ok(Box::new(ChaosFile {
            backend_state: Arc::clone(&self.state),
            plan: self.plan,
            inode: id,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.lock();
        ChaosBackend::bump(&mut st);
        let id = st.visible.remove(from).ok_or_else(|| not_found(from))?;
        st.visible.insert(to.to_path_buf(), id);
        // Durable namespace unchanged: a crash before sync_dir shows the
        // old entries (rename reordering).
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        ChaosBackend::bump(&mut st);
        st.visible.remove(path).ok_or_else(|| not_found(path))?;
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        ChaosBackend::bump(&mut st);
        let p = path.to_path_buf();
        if !st.dirs.contains(&p) {
            st.dirs.push(p);
        }
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let op = ChaosBackend::bump(&mut st);
        if self
            .plan
            .drop_fsync_period
            .is_some_and(|p| fires(self.plan.seed, SALT_FSYNC, op, p))
        {
            return Ok(()); // lying directory fsync
        }
        // Commit the directory's visible entries (creations, renames,
        // removals) to the durable namespace.
        let in_dir = |p: &Path| p.parent().map(Path::to_path_buf).unwrap_or_default() == *dir;
        st.durable.retain(|p, _| !in_dir(p));
        let committed: Vec<(PathBuf, u64)> = st
            .visible
            .iter()
            .filter(|(p, _)| in_dir(p))
            .map(|(p, id)| (p.clone(), *id))
            .collect();
        st.durable.extend(committed);
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.lock().visible.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_chaos_behaves_like_a_filesystem() {
        let b = ChaosBackend::new(ChaosPlan::quiet());
        let p = Path::new("/d/f");
        b.create_dir_all(Path::new("/d")).unwrap();
        {
            let mut f = b.create(p).unwrap();
            f.write_all(b"hello ").unwrap();
            f.write_all(b"world").unwrap();
            f.sync_all().unwrap();
        }
        b.sync_dir(Path::new("/d")).unwrap();
        assert!(b.exists(p));
        assert_eq!(b.read(p).unwrap(), b"hello world");
        assert_eq!(b.crash(), 0, "everything was durable");
        assert_eq!(b.read(p).unwrap(), b"hello world");
    }

    #[test]
    fn crash_drops_unsynced_data_and_undurable_names() {
        let b = ChaosBackend::new(ChaosPlan::quiet());
        let dir = Path::new("/d");
        b.create_dir_all(dir).unwrap();
        // Synced file with a synced name, then unsynced extra bytes.
        let mut f = b.create(Path::new("/d/a")).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync_all().unwrap();
        b.sync_dir(dir).unwrap();
        f.write_all(b" lost").unwrap();
        // A file whose name was never synced.
        let mut g = b.create(Path::new("/d/b")).unwrap();
        g.write_all(b"gone").unwrap();
        g.sync_all().unwrap();
        assert!(b.crash() >= 1);
        assert_eq!(b.read(Path::new("/d/a")).unwrap(), b"durable");
        assert!(!b.exists(Path::new("/d/b")), "name never made it to disk");
    }

    #[test]
    fn lying_fsync_is_exposed_by_crash() {
        let b = ChaosBackend::new(ChaosPlan {
            seed: 7,
            drop_fsync_period: Some(1), // every fsync lies
            ..ChaosPlan::quiet()
        });
        let dir = Path::new("/d");
        b.create_dir_all(dir).unwrap();
        let mut f = b.create(Path::new("/d/a")).unwrap();
        f.write_all(b"data").unwrap();
        f.sync_all().unwrap(); // lies
        b.sync_dir(dir).unwrap(); // lies
        b.crash();
        assert!(!b.exists(Path::new("/d/a")), "nothing was actually durable");
    }

    #[test]
    fn rename_is_visible_immediately_but_durable_only_after_dir_sync() {
        let b = ChaosBackend::new(ChaosPlan::quiet());
        let dir = Path::new("/d");
        b.create_dir_all(dir).unwrap();
        let mut old = b.create(Path::new("/d/t")).unwrap();
        old.write_all(b"old").unwrap();
        old.sync_all().unwrap();
        b.rename(Path::new("/d/t"), Path::new("/d/final")).unwrap();
        assert!(b.exists(Path::new("/d/final")));
        b.crash();
        // Neither name was ever committed by a dir sync.
        assert!(!b.exists(Path::new("/d/final")));
        assert!(!b.exists(Path::new("/d/t")));
    }

    #[test]
    fn seeded_faults_are_deterministic() {
        let run = |seed| {
            let b = ChaosBackend::new(ChaosPlan {
                seed,
                write_error_period: Some(3),
                ..ChaosPlan::quiet()
            });
            let mut f = b.create(Path::new("/f")).unwrap();
            (0..32)
                .map(|_| f.write_all(b"x").is_err())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(11), run(11), "same seed, same faults");
        assert_ne!(run(11), run(12), "different seed, different faults");
        assert!(run(11).iter().any(|&e| e) && !run(11).iter().all(|&e| e));
    }

    #[test]
    fn hard_failure_starts_at_the_configured_write_op() {
        let b = ChaosBackend::new(ChaosPlan {
            fail_writes_after: Some(2),
            ..ChaosPlan::quiet()
        });
        let mut f = b.create(Path::new("/f")).unwrap();
        assert!(f.write_all(b"a").is_ok());
        assert!(f.write_all(b"b").is_ok());
        assert!(f.write_all(b"c").is_err());
        assert!(f.write_all(b"d").is_err(), "hard failure is sticky");
        assert_eq!(b.contents(Path::new("/f")).unwrap(), b"ab");
    }

    #[test]
    fn read_bitflips_touch_the_copy_not_the_store() {
        let b = ChaosBackend::new(ChaosPlan {
            seed: 3,
            read_bitflip_period: Some(1), // every read is flipped
            ..ChaosPlan::quiet()
        });
        b.install(Path::new("/f"), b"stable bytes");
        let flipped = b.read(Path::new("/f")).unwrap();
        assert_ne!(flipped, b"stable bytes");
        assert_eq!(b.contents(Path::new("/f")).unwrap(), b"stable bytes");
    }

    #[test]
    fn flip_at_rest_corrupts_the_store() {
        let b = ChaosBackend::new(ChaosPlan::quiet());
        b.install(Path::new("/f"), b"abc");
        b.flip_at_rest(Path::new("/f"), 1, 0xff);
        assert_eq!(b.read(Path::new("/f")).unwrap(), [b'a', b'b' ^ 0xff, b'c']);
    }
}
