//! A durable job queue over the write-ahead journal.
//!
//! The serve layer's admission contract is *journal before acknowledge*:
//! a job the client was told "accepted" must survive `kill -9`. This
//! module gives that contract a file format — one journal whose records
//! are tagged [`Submit`](QueueEntry::Submit) / [`Done`](QueueEntry::Done)
//! pairs keyed by job id — and a replay that folds a (possibly torn)
//! journal back into *pending* (submitted, not yet done) and *completed*
//! work. Restart = [`QueueJournal::resume`] + re-enqueue the pending
//! items; nothing acknowledged is ever lost, and completed results replay
//! verbatim so digests stay byte-identical across the crash.
//!
//! Payloads are opaque bytes: the queue does not interpret them. The
//! serve layer stores a job-spec string in the submit record and the
//! job's stable report line in the done record.
//!
//! Replay salvages around mid-stream corruption (see
//! [`crate::SalvageEntry`]): a quarantined `Done` leaves its job pending
//! (it re-runs deterministically), and a quarantined `Submit` whose
//! `Done` survived is reconstructed from the completion — the orphan-done
//! hard error only applies to journals with *no* quarantined ranges,
//! where an orphan proves a writer protocol violation rather than lost
//! bytes.

use crate::{
    fs_backend, open, read_journal_on, seal, ByteReader, ByteWriter, JournalWriter, SalvageEntry,
    StorageBackend,
};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

const HEADER_KIND: &str = "rvv-queue-journal";
const HEADER_VERSION: u16 = 1;
const TAG_SUBMIT: u8 = 1;
const TAG_DONE: u8 = 2;

/// One decoded queue record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueEntry {
    /// A job was accepted: journaled before the client was acknowledged.
    Submit {
        /// Monotonic job id (assigned by the queue owner).
        id: u64,
        /// The job's specification, verbatim.
        payload: Vec<u8>,
    },
    /// A job finished (successfully or not — the payload records which).
    Done {
        /// The id from the matching submit record.
        id: u64,
        /// The job's result record, verbatim.
        payload: Vec<u8>,
    },
}

/// One queued or completed job recovered by [`QueueJournal::resume`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueItem {
    /// The job's id.
    pub id: u64,
    /// The submit payload (for pending items) or done payload (for
    /// completed ones).
    pub payload: Vec<u8>,
}

/// What a journal replay recovered (see the module docs).
#[derive(Debug, Default)]
pub struct QueueRecovery {
    /// Jobs submitted but not completed, in submit order — the work a
    /// restarted service re-enqueues.
    pub pending: Vec<QueueItem>,
    /// Jobs completed before the crash, in id order, with their recorded
    /// results.
    pub completed: Vec<QueueItem>,
    /// The highest job id seen; id assignment resumes above it.
    pub max_id: u64,
    /// Quarantined byte ranges the reader skipped (empty = clean replay).
    /// Non-empty salvage means some history was lost: the affected jobs
    /// are accounted for (re-run or reconstructed), but callers should
    /// surface the loss.
    pub salvage: Vec<SalvageEntry>,
}

/// The appending side of the durable queue.
///
/// `fsync_every` has the [`JournalWriter`] semantics; the serve layer
/// uses 1 so every submit is durable before its acknowledgment goes out.
#[derive(Debug)]
pub struct QueueJournal {
    writer: JournalWriter,
}

fn header(tag: &str) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(tag);
    seal(HEADER_KIND, HEADER_VERSION, &w.into_bytes())
}

fn encode_entry(tag: u8, id: u64, payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(tag);
    w.put_u64(id);
    w.put_bytes(payload);
    w.into_bytes()
}

fn decode_entry(record: &[u8]) -> io::Result<QueueEntry> {
    let mut r = ByteReader::new(record);
    let entry = (|| {
        let tag = r.get_u8()?;
        let id = r.get_u64()?;
        let payload = r.get_bytes()?.to_vec();
        Ok::<_, crate::CodecError>((tag, id, payload))
    })()
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("queue record: {e}")))?;
    r.finish()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("queue record: {e}")))?;
    match entry {
        (TAG_SUBMIT, id, payload) => Ok(QueueEntry::Submit { id, payload }),
        (TAG_DONE, id, payload) => Ok(QueueEntry::Done { id, payload }),
        (tag, id, _) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("queue record for job {id} has unknown tag {tag}"),
        )),
    }
}

impl QueueJournal {
    /// Create (truncate) a queue journal at `path`. `tag` binds the
    /// journal to its owner (the serve layer stamps its engine
    /// configuration) so a resume against the wrong service is refused.
    pub fn create(path: &Path, tag: &str, fsync_every: u32) -> io::Result<QueueJournal> {
        Self::create_on(&fs_backend(), path, tag, fsync_every)
    }

    /// [`QueueJournal::create`] through an explicit [`StorageBackend`].
    pub fn create_on(
        backend: &Arc<dyn StorageBackend>,
        path: &Path,
        tag: &str,
        fsync_every: u32,
    ) -> io::Result<QueueJournal> {
        Ok(QueueJournal {
            writer: JournalWriter::create_on(backend, path, &header(tag), fsync_every)?,
        })
    }

    /// Reopen a queue journal, replaying its valid prefix: verifies the
    /// header (kind, version, `tag`), folds submit/done pairs into a
    /// [`QueueRecovery`], truncates any torn tail, and returns a writer
    /// positioned to append.
    pub fn resume(
        path: &Path,
        tag: &str,
        fsync_every: u32,
    ) -> io::Result<(QueueJournal, QueueRecovery)> {
        Self::resume_on(&fs_backend(), path, tag, fsync_every)
    }

    /// [`QueueJournal::resume`] through an explicit [`StorageBackend`].
    pub fn resume_on(
        backend: &Arc<dyn StorageBackend>,
        path: &Path,
        tag: &str,
        fsync_every: u32,
    ) -> io::Result<(QueueJournal, QueueRecovery)> {
        let journal = read_journal_on(backend, path)?;
        let bad = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);
        let payload = open(HEADER_KIND, HEADER_VERSION, &journal.header)
            .map_err(|e| bad(format!("{}: {e}", path.display())))?;
        let mut r = ByteReader::new(payload);
        let found = r
            .get_str()
            .map_err(|e| bad(format!("{}: {e}", path.display())))?;
        if found != tag {
            return Err(bad(format!(
                "{}: journal belongs to {found:?}, expected {tag:?}",
                path.display()
            )));
        }
        let mut submitted: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut order: Vec<u64> = Vec::new();
        let mut completed: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut max_id = 0u64;
        for record in &journal.records {
            match decode_entry(record)? {
                QueueEntry::Submit { id, payload } => {
                    if submitted.insert(id, payload).is_none() {
                        order.push(id);
                    }
                    max_id = max_id.max(id);
                }
                QueueEntry::Done { id, payload } => {
                    if !submitted.contains_key(&id)
                        && journal.salvage.is_empty() {
                            // A clean journal with an orphan done means the
                            // writer protocol was violated; replay refuses
                            // rather than inventing history.
                            return Err(bad(format!(
                                "{}: done record for job {id} without a submit",
                                path.display()
                            )));
                        }
                        // The submit record was evidently inside a
                        // quarantined range: the completion is the proof
                        // the job was accepted *and* finished, so recover
                        // it as completed rather than discarding it.
                    // First completion wins: a crash can land between a
                    // re-run and its done append, so duplicates are legal
                    // — and byte-identical for deterministic jobs anyway.
                    completed.entry(id).or_insert(payload);
                    max_id = max_id.max(id);
                }
            }
        }
        let recovery = QueueRecovery {
            pending: order
                .iter()
                .filter(|id| !completed.contains_key(id))
                .map(|id| QueueItem {
                    id: *id,
                    payload: submitted[id].clone(),
                })
                .collect(),
            completed: completed
                .into_iter()
                .map(|(id, payload)| QueueItem { id, payload })
                .collect(),
            max_id,
            salvage: journal.salvage,
        };
        let writer = JournalWriter::resume_on(backend, path, journal.valid_len, fsync_every)?;
        Ok((QueueJournal { writer }, recovery))
    }

    /// Journal a submission. Durable (for `fsync_every = 1`) when this
    /// returns — acknowledge the client only after.
    pub fn submit(&mut self, id: u64, payload: &[u8]) -> io::Result<()> {
        self.writer.append(&encode_entry(TAG_SUBMIT, id, payload))?;
        Ok(())
    }

    /// Journal a completion, pairing a prior submit.
    pub fn complete(&mut self, id: u64, payload: &[u8]) -> io::Result<()> {
        self.writer.append(&encode_entry(TAG_DONE, id, payload))?;
        Ok(())
    }

    /// Records appended through this writer (submits + completions).
    pub fn appended(&self) -> u64 {
        self.writer.appended()
    }

    /// Force everything to disk (graceful-shutdown path).
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "rvv-queue-{tag}-{}-{:p}",
            std::process::id(),
            &tag as *const _
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn resume_splits_pending_from_completed() {
        let dir = tmpdir("split");
        let path = dir.join("q.journal");
        {
            let mut q = QueueJournal::create(&path, "svc", 1).unwrap();
            q.submit(1, b"job-one").unwrap();
            q.submit(2, b"job-two").unwrap();
            q.submit(3, b"job-three").unwrap();
            q.complete(2, b"result-two").unwrap();
        }
        let (_q, rec) = QueueJournal::resume(&path, "svc", 1).unwrap();
        assert_eq!(rec.max_id, 3);
        assert_eq!(
            rec.pending,
            vec![
                QueueItem {
                    id: 1,
                    payload: b"job-one".to_vec()
                },
                QueueItem {
                    id: 3,
                    payload: b"job-three".to_vec()
                },
            ]
        );
        assert_eq!(
            rec.completed,
            vec![QueueItem {
                id: 2,
                payload: b"result-two".to_vec()
            }]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_appends_after_the_valid_prefix() {
        let dir = tmpdir("append");
        let path = dir.join("q.journal");
        {
            let mut q = QueueJournal::create(&path, "svc", 1).unwrap();
            q.submit(1, b"a").unwrap();
        }
        // Torn tail: half a record of garbage after the valid prefix.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x55; 9]);
        fs::write(&path, &bytes).unwrap();
        let (mut q, rec) = QueueJournal::resume(&path, "svc", 1).unwrap();
        assert_eq!(rec.pending.len(), 1);
        q.complete(1, b"done-a").unwrap();
        drop(q);
        let (_q, rec) = QueueJournal::resume(&path, "svc", 1).unwrap();
        assert!(rec.pending.is_empty());
        assert_eq!(
            rec.completed,
            vec![QueueItem {
                id: 1,
                payload: b"done-a".to_vec()
            }]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_tag_or_orphan_done_is_refused() {
        let dir = tmpdir("guard");
        let path = dir.join("q.journal");
        {
            let mut q = QueueJournal::create(&path, "svc-a", 1).unwrap();
            q.submit(1, b"a").unwrap();
        }
        assert!(QueueJournal::resume(&path, "svc-b", 1).is_err());
        {
            let (mut q, _) = QueueJournal::resume(&path, "svc-a", 1).unwrap();
            // An orphan done (no submit) means the writer protocol was
            // violated; replay refuses rather than inventing history.
            q.complete(99, b"ghost").unwrap();
        }
        assert!(QueueJournal::resume(&path, "svc-a", 1).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_done_keeps_the_first_result() {
        let dir = tmpdir("dup");
        let path = dir.join("q.journal");
        {
            let mut q = QueueJournal::create(&path, "svc", 1).unwrap();
            q.submit(1, b"a").unwrap();
            q.complete(1, b"first").unwrap();
            q.complete(1, b"second").unwrap();
        }
        let (_q, rec) = QueueJournal::resume(&path, "svc", 1).unwrap();
        assert_eq!(
            rec.completed,
            vec![QueueItem {
                id: 1,
                payload: b"first".to_vec()
            }]
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
