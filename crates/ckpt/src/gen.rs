//! Dual-generation snapshot slots.
//!
//! A single snapshot file has a fatal failure mode: corrupt the one copy
//! (bit rot, a torn overwrite on a filesystem without atomic rename, a
//! lying fsync) and there is nothing to fall back to. A [`GenStore`]
//! keeps **two** generations at `<base>.g0` / `<base>.g1` and alternates
//! between them: every save writes the slot *not* holding the current
//! best generation (via [`crate::write_atomic_on`], so each slot write is
//! itself atomic), and every load picks the valid generation with the
//! highest sequence number — falling back to the older one when the
//! newer fails to [`crate::open`]. One rotten generation therefore costs
//! one save of history, never the state itself.

use crate::{fnv1a, open, seal, write_atomic_on, ByteReader, ByteWriter, StorageBackend};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The health of one generation slot, as seen by a load (doctor surface).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenSlot {
    /// The slot file does not exist.
    Missing,
    /// The slot holds a valid generation with this sequence number.
    Valid {
        /// The generation's sequence number.
        seq: u64,
        /// FNV-1a digest of the generation's payload.
        digest: u64,
    },
    /// The slot exists but fails verification; the string says why.
    Corrupt(String),
}

/// A two-slot alternating-generation store (see the module docs).
#[derive(Debug)]
pub struct GenStore {
    backend: Arc<dyn StorageBackend>,
    slots: [PathBuf; 2],
    kind: String,
    version: u16,
}

fn slot_paths(base: &Path) -> [PathBuf; 2] {
    let mk = |i: u32| {
        let mut name = base
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        name.push_str(&format!(".g{i}"));
        base.with_file_name(name)
    };
    [mk(0), mk(1)]
}

impl GenStore {
    /// A store over `<base>.g0` / `<base>.g1` through `backend`. `kind`
    /// and `version` are the [`crate::seal`] frame parameters — a slot
    /// written by a different owner or layout version reads as corrupt,
    /// never as data.
    pub fn new(
        backend: Arc<dyn StorageBackend>,
        base: impl AsRef<Path>,
        kind: &str,
        version: u16,
    ) -> GenStore {
        GenStore {
            backend,
            slots: slot_paths(base.as_ref()),
            kind: kind.to_owned(),
            version,
        }
    }

    /// The two slot paths (doctor surface).
    pub fn paths(&self) -> &[PathBuf; 2] {
        &self.slots
    }

    /// Inspect both slots without choosing.
    pub fn status(&self) -> [GenSlot; 2] {
        [self.slot_status(0), self.slot_status(1)]
    }

    fn slot_status(&self, i: usize) -> GenSlot {
        let path = &self.slots[i];
        if !self.backend.exists(path) {
            return GenSlot::Missing;
        }
        let bytes = match self.backend.read(path) {
            Ok(b) => b,
            Err(e) => return GenSlot::Corrupt(format!("read failed: {e}")),
        };
        match open(&self.kind, self.version, &bytes) {
            Ok(payload) => {
                let mut r = ByteReader::new(payload);
                match r.get_u64().and_then(|seq| {
                    let data = r.get_bytes()?;
                    Ok((seq, fnv1a(data)))
                }) {
                    Ok((seq, digest)) => GenSlot::Valid { seq, digest },
                    Err(e) => GenSlot::Corrupt(format!("payload: {e}")),
                }
            }
            Err(e) => GenSlot::Corrupt(e.to_string()),
        }
    }

    /// Which slot holds the best (valid, highest-seq) generation?
    fn best(&self) -> Option<(usize, u64)> {
        let mut best = None;
        for (i, s) in self.status().into_iter().enumerate() {
            if let GenSlot::Valid { seq, .. } = s {
                if best.is_none_or(|(_, b)| seq > b) {
                    best = Some((i, seq));
                }
            }
        }
        best
    }

    /// Load the newest valid generation: `Ok(Some((seq, data)))`, or
    /// `Ok(None)` when neither slot exists yet, or `Err` when slots exist
    /// but **none** verifies (both generations rotted — the one storage
    /// state a dual-generation store cannot survive).
    pub fn load(&self) -> io::Result<Option<(u64, Vec<u8>)>> {
        match self.best() {
            Some((i, _)) => {
                let bytes = self.backend.read(&self.slots[i])?;
                let payload = open(&self.kind, self.version, &bytes)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                let mut r = ByteReader::new(payload);
                let seq = r.get_u64().map_err(io::Error::from)?;
                let data = r.get_bytes().map_err(io::Error::from)?.to_vec();
                Ok(Some((seq, data)))
            }
            None => {
                let status = self.status();
                if status.iter().all(|s| *s == GenSlot::Missing) {
                    return Ok(None);
                }
                let detail: Vec<String> = self
                    .slots
                    .iter()
                    .zip(&status)
                    .map(|(p, s)| format!("{}: {s:?}", p.display()))
                    .collect();
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("no valid snapshot generation ({})", detail.join("; ")),
                ))
            }
        }
    }

    /// Write `data` as the next generation into the slot *not* holding
    /// the current best one (so a failure mid-save can at worst lose the
    /// save, never the previous generation). Returns the new sequence
    /// number.
    pub fn save(&self, data: &[u8]) -> io::Result<u64> {
        let (target, seq) = match self.best() {
            Some((best, seq)) => (1 - best, seq + 1),
            None => (0, 1),
        };
        let mut w = ByteWriter::new();
        w.put_u64(seq);
        w.put_bytes(data);
        let frame = seal(&self.kind, self.version, &w.into_bytes());
        write_atomic_on(&self.backend, &self.slots[target], &frame)?;
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChaosBackend, ChaosPlan};

    fn store(backend: &Arc<ChaosBackend>) -> GenStore {
        let b: Arc<dyn StorageBackend> = Arc::clone(backend) as _;
        GenStore::new(b, "/snaps/state", "test-snap", 1)
    }

    fn chaos() -> Arc<ChaosBackend> {
        let b = Arc::new(ChaosBackend::new(ChaosPlan::quiet()));
        b.install(Path::new("/snaps/.keep"), b"");
        b
    }

    #[test]
    fn save_alternates_slots_and_load_prefers_newest() {
        let backend = chaos();
        let s = store(&backend);
        assert_eq!(s.load().unwrap(), None);
        assert_eq!(s.save(b"one").unwrap(), 1);
        assert_eq!(s.load().unwrap(), Some((1, b"one".to_vec())));
        assert_eq!(s.save(b"two").unwrap(), 2);
        assert_eq!(s.load().unwrap(), Some((2, b"two".to_vec())));
        // Both slots exist now, holding different generations.
        assert!(backend.exists(&s.paths()[0]) && backend.exists(&s.paths()[1]));
        assert_eq!(s.save(b"three").unwrap(), 3);
        assert_eq!(s.load().unwrap(), Some((3, b"three".to_vec())));
    }

    #[test]
    fn corrupt_newer_generation_falls_back_to_older() {
        let backend = chaos();
        let s = store(&backend);
        s.save(b"old state").unwrap();
        s.save(b"new state").unwrap();
        // Rot a byte of the newer slot (whichever holds seq 2).
        let newer = s
            .status()
            .iter()
            .position(|st| matches!(st, GenSlot::Valid { seq: 2, .. }))
            .unwrap();
        let path = &s.paths()[newer];
        let len = backend.contents(path).unwrap().len();
        backend.flip_at_rest(path, (len - 1) as u64, 0x01);
        assert_eq!(
            s.load().unwrap(),
            Some((1, b"old state".to_vec())),
            "fell back to the older valid generation"
        );
        // The next save overwrites the corrupt slot and recovers.
        assert_eq!(s.save(b"healed").unwrap(), 2);
        assert_eq!(s.load().unwrap(), Some((2, b"healed".to_vec())));
    }

    #[test]
    fn both_generations_corrupt_is_an_error_not_garbage() {
        let backend = chaos();
        let s = store(&backend);
        s.save(b"a").unwrap();
        s.save(b"b").unwrap();
        for p in s.paths() {
            backend.flip_at_rest(p, 6, 0xff);
        }
        assert!(s.load().is_err());
    }

    #[test]
    fn wrong_kind_reads_as_corrupt() {
        let backend = chaos();
        let s = store(&backend);
        s.save(b"payload").unwrap();
        let other: Arc<dyn StorageBackend> = Arc::clone(&backend) as _;
        let wrong = GenStore::new(other, "/snaps/state", "other-kind", 1);
        assert!(wrong.load().is_err());
        assert!(matches!(wrong.status()[0], GenSlot::Corrupt(_)));
    }
}
