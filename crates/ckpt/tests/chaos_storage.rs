//! End-to-end durability drills on the chaos backend: the queue journal
//! and snapshot layers driven through seeded storage faults — crashes,
//! lying fsyncs, short writes — must never panic, never corrupt silently,
//! and always recover exactly what was durable.

use rvv_ckpt::queue::QueueJournal;
use rvv_ckpt::{read_journal_on, ChaosBackend, ChaosPlan, GenStore, StorageBackend};
use std::path::Path;
use std::sync::Arc;

const TAG: &str = "chaos-test";
const PATH: &str = "/q/q.journal";

fn pair(plan: ChaosPlan) -> (Arc<ChaosBackend>, Arc<dyn StorageBackend>) {
    let c = Arc::new(ChaosBackend::new(plan));
    let b: Arc<dyn StorageBackend> = Arc::clone(&c) as _;
    (c, b)
}

#[test]
fn acknowledged_submits_survive_a_torn_crash() {
    for seed in [1u64, 2, 3, 4, 5] {
        let (chaos, backend) = pair(ChaosPlan {
            seed,
            torn_crash: true,
            ..ChaosPlan::quiet()
        });
        {
            let mut q = QueueJournal::create_on(&backend, Path::new(PATH), TAG, 1).unwrap();
            for id in 1..=6u64 {
                q.submit(id, format!("job-{id}").as_bytes()).unwrap();
            }
            q.complete(3, b"result-3").unwrap();
            // Unsynced garbage after the last durable record: an append
            // that never reached its fsync.
            let _ = q; // writer dropped without further syncs
        }
        chaos.crash();
        let (_q, rec) = QueueJournal::resume_on(&backend, Path::new(PATH), TAG, 1)
            .unwrap_or_else(|e| panic!("seed {seed}: resume failed: {e}"));
        // fsync_every = 1: every acknowledged record was durable.
        let pending: Vec<u64> = rec.pending.iter().map(|i| i.id).collect();
        assert_eq!(pending, vec![1, 2, 4, 5, 6], "seed {seed}");
        assert_eq!(rec.completed.len(), 1, "seed {seed}");
        assert_eq!(rec.max_id, 6, "seed {seed}");
    }
}

#[test]
fn lying_fsyncs_lose_a_tail_but_never_a_parse() {
    // With fsyncs randomly lying, a crash may drop acknowledged records —
    // that is the *storage* breaking its contract, not ours. What must
    // still hold: the reader never panics and recovers a clean prefix of
    // what was submitted, and the journal resumes or refuses loudly.
    for seed in 0u64..8 {
        let (chaos, backend) = pair(ChaosPlan {
            seed,
            drop_fsync_period: Some(2),
            torn_crash: true,
            ..ChaosPlan::quiet()
        });
        let created = QueueJournal::create_on(&backend, Path::new(PATH), TAG, 1);
        let mut submitted = Vec::new();
        if let Ok(mut q) = created {
            for id in 1..=5u64 {
                if q.submit(id, format!("job-{id}").as_bytes()).is_ok() {
                    submitted.push(id);
                }
            }
        }
        chaos.crash();
        if !backend.exists(Path::new(PATH)) {
            continue; // the journal's directory entry was never durable
        }
        match QueueJournal::resume_on(&backend, Path::new(PATH), TAG, 1) {
            Ok((_q, rec)) => {
                let pending: Vec<u64> = rec.pending.iter().map(|i| i.id).collect();
                assert_eq!(
                    pending,
                    submitted[..pending.len()].to_vec(),
                    "seed {seed}: recovered records are a prefix of submissions"
                );
            }
            Err(e) => {
                // Header never became durable: refusing is correct as
                // long as the refusal names the file.
                assert!(e.to_string().contains("q.journal"), "seed {seed}: {e}");
            }
        }
    }
}

#[test]
fn short_writes_are_quarantined_and_later_records_salvaged() {
    for seed in [21u64, 22, 23] {
        let (chaos, backend) = pair(ChaosPlan {
            seed,
            write_error_period: Some(4),
            short_writes: true,
            ..ChaosPlan::quiet()
        });
        let mut q = match QueueJournal::create_on(&backend, Path::new(PATH), TAG, 0) {
            Ok(q) => q,
            Err(_) => continue, // header write itself faulted; nothing to test
        };
        let mut ok = Vec::new();
        for id in 1..=12u64 {
            if q.submit(id, format!("job-{id}").as_bytes()).is_ok() {
                ok.push(id);
            }
        }
        drop(q);
        assert!(!ok.is_empty(), "seed {seed}: some submits should succeed");
        let j = read_journal_on(&backend, Path::new(PATH))
            .unwrap_or_else(|e| panic!("seed {seed}: read failed: {e}"));
        // Every fully-written record is recovered, in order, with short
        // writes quarantined around (or torn off the tail).
        let recovered: Vec<u64> = j
            .records
            .iter()
            .map(|r| {
                // Queue record layout: [tag u8][id u64][len u32][payload].
                let s = std::str::from_utf8(&r[13..]).unwrap();
                s.trim_start_matches("job-").parse::<u64>().unwrap()
            })
            .collect();
        let expect: Vec<u64> = ok
            .iter()
            .copied()
            .filter(|id| recovered.contains(id) || *id > *recovered.last().unwrap_or(&0))
            .collect();
        assert_eq!(
            recovered,
            expect[..recovered.len()].to_vec(),
            "seed {seed}: recovered = successful submits (maybe minus a torn tail)"
        );
        if chaos
            .contents(Path::new(PATH))
            .map(|b| b.len() as u64 > j.valid_len)
            .unwrap_or(false)
        {
            // Trailing garbage exists; salvage or tear explains it.
        } else if !j.salvage.is_empty() {
            for s in &j.salvage {
                assert!(s.len > 0, "seed {seed}: quarantine ranges are non-empty");
            }
        }
    }
}

#[test]
fn snapshot_store_rides_out_a_lying_fsync_crash() {
    let (chaos, backend) = pair(ChaosPlan {
        seed: 9,
        drop_fsync_period: Some(3),
        ..ChaosPlan::quiet()
    });
    backend.create_dir_all(Path::new("/snaps")).unwrap();
    let store = GenStore::new(Arc::clone(&backend), "/snaps/state", "drill-snap", 1);
    let mut last_acked = None;
    for gen in 1..=6u64 {
        if store.save(format!("state-{gen}").as_bytes()).is_ok() {
            last_acked = Some(gen);
        }
    }
    chaos.crash();
    // Whatever survives must be a state we actually saved — possibly an
    // older generation than the last acknowledged one (the fsync lied),
    // but never garbage and never a panic. A load *error* is legal only
    // in the both-slots-rotted case (every slot fsync lied), which the
    // status view must then corroborate.
    match store.load() {
        Ok(Some((seq, data))) => {
            assert_eq!(data, format!("state-{seq}").as_bytes());
            assert!(seq <= last_acked.unwrap_or(0));
        }
        Ok(None) => {} // nothing ever became durable
        Err(_) => {
            use rvv_ckpt::GenSlot;
            assert!(
                store
                    .status()
                    .iter()
                    .all(|s| !matches!(s, GenSlot::Valid { .. })),
                "load refused even though a valid generation exists"
            );
        }
    }
}
