//! Pin the committed corrupted-journal fixtures under `tests/fixtures/`
//! to their deterministic generators, and the golden digests CI's
//! `rvv-doctor verify` leg asserts against.
//!
//! Regenerate after an intentional format change with:
//! `GOLDEN_REGEN=1 cargo test -p rvv-ckpt --test fixtures`.

use rvv_ckpt::doctor::{self, Health};
use rvv_ckpt::queue::QueueJournal;
use rvv_ckpt::{ChaosBackend, ChaosPlan, StorageBackend};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const TAG: &str = "rvv-fixture";

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// The clean reference journal: header, S1, S2, S3, D2.
fn clean_bytes() -> Vec<u8> {
    let chaos = Arc::new(ChaosBackend::new(ChaosPlan::quiet()));
    let backend: Arc<dyn StorageBackend> = Arc::clone(&chaos) as _;
    let p = Path::new("/fix/q.journal");
    let mut q = QueueJournal::create_on(&backend, p, TAG, 1).unwrap();
    q.submit(1, b"plus_scan n=256 seed=1").unwrap();
    q.submit(2, b"p_add n=256 seed=2").unwrap();
    q.submit(3, b"seg_scan n=256 seed=3").unwrap();
    q.complete(2, b"job=2 status=ok digest=0xfeedbeef").unwrap();
    drop(q);
    chaos.contents(p).unwrap()
}

/// Byte spans of each record frame, header first.
fn record_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pos = 0;
    while pos + 12 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        spans.push((pos, 12 + len));
        pos += 12 + len;
    }
    spans
}

/// Fixture: one interior record (S2) corrupted by a single bitflip.
fn interior_bitflip_bytes() -> Vec<u8> {
    let mut bytes = clean_bytes();
    let (start, _) = record_spans(&bytes)[2];
    bytes[start + 15] ^= 0x20; // inside S2's payload
    bytes
}

/// Fixture: the header record's payload destroyed — nothing trustworthy.
fn no_header_bytes() -> Vec<u8> {
    let mut bytes = clean_bytes();
    bytes[16] ^= 0xff;
    bytes
}

fn golden_text() -> String {
    let chaos = Arc::new(ChaosBackend::new(ChaosPlan::quiet()));
    let backend: Arc<dyn StorageBackend> = Arc::clone(&chaos) as _;
    let p = Path::new("/fix/interior-bitflip.queuejournal");
    chaos.install(p, &interior_bitflip_bytes());
    let report = doctor::inspect(&backend, p);
    assert_eq!(report.health, Health::Salvageable);
    format!(
        "# golden digests for the committed journal fixtures\n\
         # (regenerate with GOLDEN_REGEN=1 cargo test -p rvv-ckpt --test fixtures)\n\
         interior-bitflip records={} records_digest={:#018x}\n",
        report.records,
        report.records_digest.unwrap()
    )
}

fn pin(name: &str, expected: &[u8]) {
    let path = fixture_dir().join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(fixture_dir()).unwrap();
        std::fs::write(&path, expected).unwrap();
        return;
    }
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (run with GOLDEN_REGEN=1 to create)",
            path.display()
        )
    });
    assert_eq!(
        committed,
        expected,
        "{}: committed fixture drifted from its generator",
        path.display()
    );
}

#[test]
fn committed_fixtures_match_their_generators() {
    pin("clean.queuejournal", &clean_bytes());
    pin("interior-bitflip.queuejournal", &interior_bitflip_bytes());
    pin("no-header.queuejournal", &no_header_bytes());
    pin("golden.txt", golden_text().as_bytes());
}

#[test]
fn fixtures_grade_as_documented() {
    let chaos = Arc::new(ChaosBackend::new(ChaosPlan::quiet()));
    let backend: Arc<dyn StorageBackend> = Arc::clone(&chaos) as _;

    let clean = Path::new("/g/clean.queuejournal");
    chaos.install(clean, &clean_bytes());
    assert_eq!(doctor::inspect(&backend, clean).health, Health::Clean);

    let interior = Path::new("/g/interior-bitflip.queuejournal");
    chaos.install(interior, &interior_bitflip_bytes());
    let report = doctor::inspect(&backend, interior);
    assert_eq!(report.health, Health::Salvageable);
    assert_eq!(report.records, 3, "S1, S3, D2 survive; S2 is quarantined");
    assert_eq!(report.salvage.len(), 1);

    let no_header = Path::new("/g/no-header.queuejournal");
    chaos.install(no_header, &no_header_bytes());
    assert_eq!(doctor::inspect(&backend, no_header).health, Health::Fatal);

    // Repairing the interior-bitflip fixture compacts it to a clean
    // journal with the same records digest — the CI contract.
    let repaired = doctor::repair(&backend, interior).unwrap();
    assert_eq!(repaired.health, Health::Clean);
    assert_eq!(repaired.records_digest, report.records_digest);
    assert!(
        golden_text().contains(&format!("{:#018x}", repaired.records_digest.unwrap())),
        "golden.txt pins the post-salvage digest"
    );
}
