//! Property tests for the checkpoint record formats: arbitrary field
//! sequences survive writer→reader, arbitrary payloads survive
//! seal→open, and arbitrary journals survive append→read — including
//! after losing an arbitrary torn tail.

use proptest::prelude::*;
use rvv_ckpt::{fnv1a, open, read_journal, seal, ByteReader, ByteWriter, JournalWriter};
use std::fs;
use std::path::PathBuf;

/// One codec field: writer op + the value the reader must give back.
#[derive(Debug, Clone, PartialEq)]
enum Field {
    U8(u8),
    U16(u16),
    U32(u32),
    U64(u64),
    Bool(bool),
    Bytes(Vec<u8>),
    Str(String),
}

fn field() -> impl Strategy<Value = Field> {
    prop_oneof![
        any::<u8>().prop_map(Field::U8),
        any::<u16>().prop_map(Field::U16),
        any::<u32>().prop_map(Field::U32),
        any::<u64>().prop_map(Field::U64),
        any::<bool>().prop_map(Field::Bool),
        proptest::collection::vec(any::<u8>(), 0..40).prop_map(Field::Bytes),
        proptest::collection::vec(any::<char>(), 0..12)
            .prop_map(|cs| Field::Str(cs.into_iter().collect())),
    ]
}

fn tmpdir(tag: &str, salt: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "rvv-ckpt-props-{tag}-{}-{salt:x}",
        std::process::id()
    ));
    fs::create_dir_all(&d).unwrap();
    d
}

proptest! {
    #[test]
    fn arbitrary_field_sequences_round_trip(
        fields in proptest::collection::vec(field(), 0..24)
    ) {
        let mut w = ByteWriter::new();
        for f in &fields {
            match f {
                Field::U8(v) => w.put_u8(*v),
                Field::U16(v) => w.put_u16(*v),
                Field::U32(v) => w.put_u32(*v),
                Field::U64(v) => w.put_u64(*v),
                Field::Bool(v) => w.put_bool(*v),
                Field::Bytes(v) => w.put_bytes(v),
                Field::Str(v) => w.put_str(v),
            }
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for f in &fields {
            let got = match f {
                Field::U8(_) => Field::U8(r.get_u8().unwrap()),
                Field::U16(_) => Field::U16(r.get_u16().unwrap()),
                Field::U32(_) => Field::U32(r.get_u32().unwrap()),
                Field::U64(_) => Field::U64(r.get_u64().unwrap()),
                Field::Bool(_) => Field::Bool(r.get_bool().unwrap()),
                Field::Bytes(_) => Field::Bytes(r.get_bytes().unwrap().to_vec()),
                Field::Str(_) => Field::Str(r.get_str().unwrap()),
            };
            prop_assert_eq!(&got, f);
        }
        prop_assert!(r.finish().is_ok());
    }

    #[test]
    fn arbitrary_payloads_survive_seal_open(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        version in any::<u16>(),
    ) {
        let sealed = seal("prop-kind", version, &payload);
        prop_assert_eq!(open("prop-kind", version, &sealed).unwrap(), &payload[..]);
    }

    #[test]
    fn truncated_frames_never_open(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut in 0usize..64,
    ) {
        let sealed = seal("prop-kind", 1, &payload);
        let cut = cut.min(sealed.len().saturating_sub(1));
        prop_assert!(open("prop-kind", 1, &sealed[..cut]).is_err());
    }

    #[test]
    fn journals_survive_append_read_and_arbitrary_tears(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..32), 1..12),
        header in proptest::collection::vec(any::<u8>(), 0..16),
        tear in 0usize..64,
        salt in any::<u64>(),
    ) {
        let dir = tmpdir("journal", salt);
        let path = dir.join("p.journal");
        {
            let mut w = JournalWriter::create(&path, &header, 0).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
        }
        let j = read_journal(&path).unwrap();
        prop_assert_eq!(&j.header, &header);
        prop_assert_eq!(&j.records, &records);

        // Tear off 1..=tear bytes: the survivors are exactly a prefix.
        let full = fs::read(&path).unwrap();
        let keep = full.len().saturating_sub(1 + tear % full.len());
        fs::write(&path, &full[..keep]).unwrap();
        // Tearing into the header record itself is a hard error; any
        // survivor must be an exact record prefix.
        if let Ok(torn) = read_journal(&path) {
            prop_assert_eq!(&torn.header, &header);
            prop_assert!(torn.records.len() <= records.len());
            prop_assert_eq!(&torn.records[..], &records[..torn.records.len()]);
            prop_assert!(torn.valid_len <= keep as u64);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fnv1a_is_stable_against_the_reference_constants(
        bytes in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        prop_assert_eq!(fnv1a(&bytes), h);
    }
}
