//! Exhaustive mid-file corruption coverage: a bitflip at *every* byte
//! offset of an interior journal record must quarantine exactly that
//! record — never truncate the rest of the journal, never go unnoticed,
//! and never change which jobs the queue replay recovers.

use rvv_ckpt::queue::{QueueJournal, QueueRecovery};
use rvv_ckpt::{parse_journal, ChaosBackend, ChaosPlan, StorageBackend};
use std::path::Path;
use std::sync::Arc;

const TAG: &str = "salvage-test";
const PATH: &str = "/q/q.journal";

/// Build the reference journal: header, S1, S2, S3, D2, S4.
fn build() -> Vec<u8> {
    let chaos = Arc::new(ChaosBackend::new(ChaosPlan::quiet()));
    let backend: Arc<dyn StorageBackend> = Arc::clone(&chaos) as _;
    let mut q = QueueJournal::create_on(&backend, Path::new(PATH), TAG, 1).unwrap();
    q.submit(1, b"job-one").unwrap();
    q.submit(2, b"job-two").unwrap();
    q.submit(3, b"job-three").unwrap();
    q.complete(2, b"result-two").unwrap();
    q.submit(4, b"job-four").unwrap();
    chaos.contents(Path::new(PATH)).unwrap()
}

/// `(offset, size)` of each record frame in the file, header first.
fn record_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pos = 0;
    while pos + 12 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        spans.push((pos, 12 + len));
        pos += 12 + len;
    }
    assert_eq!(pos, bytes.len(), "journal parses into whole records");
    spans
}

fn resume_over(bytes: &[u8]) -> QueueRecovery {
    let chaos = Arc::new(ChaosBackend::new(ChaosPlan::quiet()));
    chaos.install(Path::new(PATH), bytes);
    let backend: Arc<dyn StorageBackend> = Arc::clone(&chaos) as _;
    let (_q, rec) = QueueJournal::resume_on(&backend, Path::new(PATH), TAG, 1).unwrap();
    rec
}

fn ids(items: &[rvv_ckpt::queue::QueueItem]) -> Vec<u64> {
    items.iter().map(|i| i.id).collect()
}

#[test]
fn bitflip_at_every_offset_of_an_interior_record_quarantines_exactly_it() {
    let clean = build();
    let spans = record_spans(&clean);
    assert_eq!(spans.len(), 6, "header + 5 data records");

    // Record index 4 in the file is D2 (done for job 2): interior, with a
    // live record (S4) after it.
    let (start, size) = spans[4];
    for offset in start..start + size {
        for mask in [0x01u8, 0x80] {
            let mut bytes = clean.clone();
            bytes[offset] ^= mask;
            let j = parse_journal(&bytes, "test")
                .unwrap_or_else(|e| panic!("offset {offset} mask {mask:#04x}: parse failed: {e}"));
            assert_eq!(
                j.salvage.len(),
                1,
                "offset {offset}: exactly one quarantined range"
            );
            let s = &j.salvage[0];
            assert_eq!(s.offset, start as u64, "offset {offset}: quarantine start");
            assert_eq!(s.len, size as u64, "offset {offset}: quarantine length");
            assert!(
                s.reason.contains("checksum mismatch") || s.reason.contains("length prefix"),
                "offset {offset}: reason {:?}",
                s.reason
            );
            // Every other record survives: S1 S2 S3 S4 (D2 lost).
            assert_eq!(j.records.len(), 4, "offset {offset}");
            assert_eq!(
                j.valid_len,
                clean.len() as u64,
                "offset {offset}: quarantined bytes stay inside the valid prefix"
            );
            // The queue replay re-pends job 2 deterministically.
            let rec = resume_over(&bytes);
            assert_eq!(ids(&rec.pending), vec![1, 2, 3, 4], "offset {offset}");
            assert!(rec.completed.is_empty(), "offset {offset}");
            assert_eq!(rec.salvage, j.salvage, "offset {offset}");
        }
    }
}

#[test]
fn corrupt_submit_is_reconstructed_from_its_surviving_done() {
    let clean = build();
    let spans = record_spans(&clean);
    let (start, size) = spans[2]; // S2
    for offset in start..start + size {
        let mut bytes = clean.clone();
        bytes[offset] ^= 0x10;
        let rec = resume_over(&bytes);
        assert_eq!(
            ids(&rec.pending),
            vec![1, 3, 4],
            "offset {offset}: job 2's submit is gone but its done survives"
        );
        assert_eq!(ids(&rec.completed), vec![2], "offset {offset}");
        assert_eq!(
            rec.completed[0].payload, b"result-two",
            "offset {offset}: the recorded result replays verbatim"
        );
        assert_eq!(rec.salvage.len(), 1, "offset {offset}");
        assert_eq!(rec.max_id, 4, "offset {offset}");
    }
}

#[test]
fn orphan_done_without_salvage_is_still_refused() {
    // The salvage-aware orphan rule must not weaken the clean-journal
    // protocol check: an orphan done in an *undamaged* journal is a
    // writer bug, not lost bytes.
    let chaos = Arc::new(ChaosBackend::new(ChaosPlan::quiet()));
    let backend: Arc<dyn StorageBackend> = Arc::clone(&chaos) as _;
    let mut q = QueueJournal::create_on(&backend, Path::new(PATH), TAG, 1).unwrap();
    q.complete(99, b"ghost").unwrap();
    drop(q);
    assert!(QueueJournal::resume_on(&backend, Path::new(PATH), TAG, 1).is_err());
}

#[test]
fn salvage_and_resume_are_deterministic() {
    let clean = build();
    let spans = record_spans(&clean);
    let (start, _) = spans[4];
    let mut bytes = clean.clone();
    bytes[start + 13] ^= 0x04;
    let a = resume_over(&bytes);
    let b = resume_over(&bytes);
    assert_eq!(a.pending, b.pending);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.salvage, b.salvage);
    assert_eq!(a.max_id, b.max_id);
}

#[test]
fn resume_preserves_quarantined_bytes_and_appends_cleanly() {
    let clean = build();
    let spans = record_spans(&clean);
    let (start, size) = spans[4]; // D2
    let mut bytes = clean.clone();
    bytes[start + 14] ^= 0x01;

    let chaos = Arc::new(ChaosBackend::new(ChaosPlan::quiet()));
    chaos.install(Path::new(PATH), &bytes);
    let backend: Arc<dyn StorageBackend> = Arc::clone(&chaos) as _;
    let (mut q, rec) = QueueJournal::resume_on(&backend, Path::new(PATH), TAG, 1).unwrap();
    assert_eq!(ids(&rec.pending), vec![1, 2, 3, 4]);

    // Job 2 re-runs and completes again after resume.
    q.complete(2, b"result-two").unwrap();
    drop(q);

    // The quarantined range is still in the file (evidence, not erased)…
    let after = chaos.contents(Path::new(PATH)).unwrap();
    assert_eq!(&after[start..start + size], &bytes[start..start + size]);
    // …and a fresh replay sees the journal healed: job 2 completed.
    let (_q, rec) = QueueJournal::resume_on(&backend, Path::new(PATH), TAG, 1).unwrap();
    assert_eq!(ids(&rec.pending), vec![1, 3, 4]);
    assert_eq!(ids(&rec.completed), vec![2]);
    assert_eq!(rec.salvage.len(), 1, "the old quarantine is still reported");
}
