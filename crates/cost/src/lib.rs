//! # rvv-cost — a cycle-approximate timing model for the scan-vector stack
//!
//! The workspace's primary metric is the paper's: dynamic instruction
//! count, as Spike reports it. That metric is exactly reproducible but
//! blind to latency — an LMUL=8 `vadd.vv` counts one instruction whether
//! it occupies a vector unit for 8 beats or 64, and a spilled register
//! group counts two instructions no matter how far away the stack is.
//! This crate adds the second metric ROADMAP item 5 calls for: an
//! **estimated cycle count** under a configurable microarchitecture
//! model, fed from the same retire-event stream the tracing profiler
//! consumes.
//!
//! * [`CostModel`] / [`CostSpec`] — the parameters: issue width, lane
//!   count, chaining, per-class latencies and per-element costs, memory
//!   port width and latency, per-class strided/indexed surcharges, and a
//!   spill penalty. Degenerate configurations (zero issue width,
//!   zero-latency memory) are rejected at construction with a
//!   descriptive [`CostError`].
//! * Presets: [`CostModel::unit`] (cycles ≡ instruction counts — the
//!   anchor), [`CostModel::ara_like`] (a 4-lane coupled unit in the
//!   style of "A New Ara"), and [`CostModel::vitruvius_like`] (an
//!   8-lane decoupled long-vector machine in the style of the Vitruvius
//!   simulator paper). See DESIGN §11 for the derivations.
//! * [`CycleEstimator`] — a [`rvv_sim::TraceSink`]: attach it to a
//!   `ScanEnv` (or let `rvv-batch`'s `costed` jobs do it) and every
//!   retired instruction advances a deterministic integer timeline.
//!   Untraced runs pay nothing; the estimate is a pure function of the
//!   retire stream, so it is byte-identical across engines, hosts, and
//!   thread counts.
//! * [`CycleCounters`] — the accumulated result, mirroring
//!   [`rvv_sim::Counters`] (merge / iter / `to_json` / stable text) so
//!   the batch engine folds cycles into stable digests the same way it
//!   folds counts.
//!
//! What is deliberately **not** modeled: caches (the paper's workloads
//! are streaming), branch prediction, scalar out-of-order execution, and
//! DRAM banking. The model is cycle-*approximate*: good enough to rank
//! configurations by latency behaviour (its purpose), not to predict
//! absolute cycle counts of silicon.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod estimate;
mod model;

pub use counters::CycleCounters;
pub use estimate::{CycleEstimator, MemClass};
pub use model::{CostError, CostModel, CostSpec, MemCosts};
