//! Cycle counters — the cycle-metric mirror of [`rvv_sim::Counters`].

use rvv_isa::InstrClass;
use std::fmt;

/// Accumulated cycle estimates: a modeled end-to-end total plus a
/// per-class busy-cycle attribution.
///
/// The shape deliberately mirrors [`rvv_sim::Counters`] — merge, iter,
/// JSON, stable text — so everything built for the count metric (batch
/// stable lines, journals, report tables) folds cycles in the same way.
/// One semantic difference: the per-class cycles are *busy* cycles of the
/// unit that executed the class, and units overlap (chaining, memory
/// running under compute), so `total` is at most — not exactly — the sum
/// of the classes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleCounters {
    total: u64,
    by_class: [u64; InstrClass::ALL.len()],
}

impl CycleCounters {
    /// Fresh, zeroed counters (the identity of [`CycleCounters::merge`]).
    pub fn new() -> CycleCounters {
        CycleCounters::default()
    }

    /// Build from a modeled total and a per-class busy histogram in
    /// [`InstrClass::ALL`] order. Unlike counts, the total is *not*
    /// derivable from the classes (units overlap), so it is carried
    /// explicitly.
    ///
    /// # Panics
    /// If `by_class` does not have one entry per class.
    pub fn from_parts(total: u64, by_class: &[u64]) -> CycleCounters {
        assert_eq!(
            by_class.len(),
            InstrClass::ALL.len(),
            "one busy-cycle entry per instruction class"
        );
        let mut classes = [0u64; InstrClass::ALL.len()];
        classes.copy_from_slice(by_class);
        CycleCounters {
            total,
            by_class: classes,
        }
    }

    /// Modeled end-to-end cycles.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Busy cycles attributed to one class.
    #[inline]
    pub fn class(&self, c: InstrClass) -> u64 {
        self.by_class[c.index()]
    }

    /// Busy cycles across all vector classes.
    pub fn vector_total(&self) -> u64 {
        [
            InstrClass::VectorCfg,
            InstrClass::VectorAlu,
            InstrClass::VectorMem,
            InstrClass::VectorMask,
            InstrClass::VectorPerm,
            InstrClass::VectorRed,
        ]
        .iter()
        .map(|&c| self.class(c))
        .sum()
    }

    /// Busy cycles across all scalar classes.
    pub fn scalar_total(&self) -> u64 {
        [
            InstrClass::ScalarAlu,
            InstrClass::ScalarMem,
            InstrClass::ScalarCtrl,
        ]
        .iter()
        .map(|&c| self.class(c))
        .sum()
    }

    /// Iterate over `(class, busy cycles)` for every class, zero entries
    /// included, in [`InstrClass::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (InstrClass, u64)> + '_ {
        InstrClass::ALL.iter().map(|&c| (c, self.class(c)))
    }

    /// Serialize as a JSON object:
    /// `{"cycles":N,"scalar":N,"vector":N,"classes":{"<label>":N,...}}`.
    /// The leading key is `"cycles"` (not `"total"`) so a cycle object is
    /// never mistaken for a count object; otherwise the shape matches
    /// [`rvv_sim::Counters::to_json`], class keys in [`InstrClass::ALL`]
    /// order. Field order is pinned by a golden test.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"cycles\":{},\"scalar\":{},\"vector\":{},\"classes\":{{",
            self.total(),
            self.scalar_total(),
            self.vector_total()
        );
        for (i, (c, n)) in self.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", c.label(), n));
        }
        s.push_str("}}");
        s
    }

    /// Accumulate another counter set: totals and classes add. Addition
    /// is associative and commutative with [`CycleCounters::new`] as
    /// identity (property-tested), so merged results are independent of
    /// worker scheduling; the batch engine still merges in job order for
    /// uniformity with every other aggregate. Adding totals models the
    /// merged runs as sequential — no overlap is assumed across jobs.
    pub fn merge(&mut self, other: &CycleCounters) {
        self.total += other.total;
        for (a, b) in self.by_class.iter_mut().zip(other.by_class.iter()) {
            *a += *b;
        }
    }
}

impl fmt::Display for CycleCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles: {}", self.total)?;
        for c in InstrClass::ALL {
            let n = self.class(c);
            if n > 0 {
                writeln!(f, "  {:12} {}", c.label(), n)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_total_and_classes() {
        let mut a = CycleCounters::from_parts(10, &[1, 0, 2, 0, 3, 4, 0, 0, 0]);
        let b = CycleCounters::from_parts(7, &[0, 1, 0, 0, 2, 4, 0, 0, 0]);
        a.merge(&b);
        assert_eq!(a.total(), 17);
        assert_eq!(a.class(InstrClass::ScalarAlu), 1);
        assert_eq!(a.class(InstrClass::VectorAlu), 5);
        assert_eq!(a.class(InstrClass::VectorMem), 8);
    }

    #[test]
    fn scalar_vector_split() {
        let c = CycleCounters::from_parts(100, &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(c.scalar_total(), 6);
        assert_eq!(c.vector_total(), 39);
        assert_eq!(c.iter().count(), InstrClass::ALL.len());
    }

    /// Golden: the exact serialized form, pinning field order alongside
    /// the Counters JSON golden. Batch stable lines embed this string —
    /// changing it invalidates recorded digests, so change it knowingly.
    #[test]
    fn golden_json_field_order() {
        let c = CycleCounters::from_parts(42, &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(
            c.to_json(),
            "{\"cycles\":42,\"scalar\":6,\"vector\":39,\"classes\":{\
             \"scalar-alu\":1,\"scalar-mem\":2,\"scalar-ctrl\":3,\
             \"vector-cfg\":4,\"vector-alu\":5,\"vector-mem\":6,\
             \"vector-mask\":7,\"vector-perm\":8,\"vector-red\":9}}"
        );
        // Zeroed counters serialize with every class present.
        assert_eq!(
            CycleCounters::new().to_json(),
            "{\"cycles\":0,\"scalar\":0,\"vector\":0,\"classes\":{\
             \"scalar-alu\":0,\"scalar-mem\":0,\"scalar-ctrl\":0,\
             \"vector-cfg\":0,\"vector-alu\":0,\"vector-mem\":0,\
             \"vector-mask\":0,\"vector-perm\":0,\"vector-red\":0}}"
        );
    }

    #[test]
    fn display_skips_zero_classes() {
        let c = CycleCounters::from_parts(9, &[0, 0, 0, 0, 9, 0, 0, 0, 0]);
        let s = c.to_string();
        assert!(s.contains("cycles: 9"), "{s}");
        assert!(s.contains("vector-alu"), "{s}");
        assert!(!s.contains("scalar-mem"), "{s}");
    }
}
