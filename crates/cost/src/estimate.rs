//! The cycle estimator: a [`TraceSink`] that folds a retire-event stream
//! through the cost model's integer timeline.

use crate::counters::CycleCounters;
use crate::model::CostModel;
use rvv_isa::{Instr, InstrClass};
use rvv_sim::{RetireEvent, TraceSink};
use std::ops::Range;

/// How a memory instruction exercises the memory port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemClass {
    /// Scalar load/store: one element.
    Scalar,
    /// Unit-stride vector access: a contiguous burst.
    Unit,
    /// Strided vector access: one port transaction per element.
    Strided,
    /// Indexed (gather/scatter) access: per-element address generation.
    Indexed,
    /// Whole-register access (`vlNr.v`/`vsNr.v`): a contiguous burst of
    /// `nregs × VLENB` bytes — the spill-code workhorse.
    Whole,
    /// Mask load/store: a `ceil(vl/8)`-byte burst.
    Mask,
}

impl MemClass {
    /// Classify an instruction's memory behaviour (`None` for
    /// non-memory instructions).
    pub fn of(instr: &Instr) -> Option<MemClass> {
        use Instr::*;
        match instr {
            Load { .. } | Store { .. } => Some(MemClass::Scalar),
            VLoad { .. } | VStore { .. } => Some(MemClass::Unit),
            VLoadStrided { .. } | VStoreStrided { .. } => Some(MemClass::Strided),
            VLoadIndexed { .. } | VStoreIndexed { .. } => Some(MemClass::Indexed),
            VLoadWhole { .. } | VStoreWhole { .. } => Some(MemClass::Whole),
            VLoadMask { .. } | VStoreMask { .. } => Some(MemClass::Mask),
            _ => None,
        }
    }
}

/// A [`TraceSink`] that estimates cycles from the retire stream.
///
/// The timeline is three saturating integer clocks — the front end
/// (`issue_width` instructions per cycle), the vector compute unit, and
/// the memory port — advanced deterministically per event:
///
/// * every instruction takes one issue slot;
/// * a vector op starts after its operands chain (or, without chaining,
///   after the previous vector op drains), runs `class_latency - 1 +
///   beats` cycles, `beats = ceil(vl × class_elem_cost / lanes)` — the
///   LMUL-proportional occupancy, since `vl` scales with LMUL;
/// * a memory op also waits for the port and holds it for a
///   [`MemClass`]-dependent beat count, plus the spill penalty when its
///   effective address falls in the device stack region.
///
/// The modeled total is the maximum of the three clocks; per-class busy
/// cycles accumulate into a [`CycleCounters`]. Everything is a pure
/// function of the event stream, so two runs that retire identical
/// streams — the Plan/Legacy engine contract — estimate identical
/// cycles, on any host, at any thread count.
#[derive(Debug, Clone)]
pub struct CycleEstimator {
    model: CostModel,
    stack_region: Range<u64>,
    /// Whole front-end cycles consumed.
    now: u64,
    /// Issue slots consumed within the current front-end cycle.
    slots: u32,
    /// When the latest vector op's first results exist (chaining target).
    vec_ready: u64,
    /// When the vector unit fully drains.
    vec_busy: u64,
    /// When the memory port frees up.
    mem_busy: u64,
    by_class: [u64; InstrClass::ALL.len()],
    /// Counters absorbed from merged (quiescent) estimators.
    merged: CycleCounters,
}

impl CycleEstimator {
    /// An estimator for `model`, classifying accesses into `stack_region`
    /// as spill traffic (pass `ScanEnv::stack_region()`; an empty range
    /// disables the spill penalty).
    pub fn new(model: CostModel, stack_region: Range<u64>) -> CycleEstimator {
        CycleEstimator {
            model,
            stack_region,
            now: 0,
            slots: 0,
            vec_ready: 0,
            vec_busy: 0,
            mem_busy: 0,
            by_class: [0; InstrClass::ALL.len()],
            merged: CycleCounters::new(),
        }
    }

    /// Recover a concrete estimator from a detached sink (`None` if the
    /// box holds some other sink type).
    pub fn from_sink(sink: Box<dyn TraceSink>) -> Option<CycleEstimator> {
        let any: Box<dyn std::any::Any> = sink;
        any.downcast::<CycleEstimator>().ok().map(|b| *b)
    }

    /// The model this estimator runs.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Front-end time: whole cycles plus one for a partially filled
    /// issue group.
    fn front_end(&self) -> u64 {
        self.now + u64::from(self.slots > 0)
    }

    /// The modeled end-to-end cycle count so far: the slowest clock.
    fn timeline_end(&self) -> u64 {
        self.front_end().max(self.vec_busy).max(self.mem_busy)
    }

    /// Accumulated cycle counters (including anything absorbed via
    /// [`CycleEstimator::absorb`]).
    pub fn counters(&self) -> CycleCounters {
        let mut c = self.merged.clone();
        c.merge(&CycleCounters::from_parts(
            self.timeline_end(),
            &self.by_class,
        ));
        c
    }

    /// Fold another (quiescent) estimator's cycles into this one, as if
    /// its run happened after this one's — totals add, exactly like
    /// [`CycleCounters::merge`].
    pub fn absorb(&mut self, other: &CycleEstimator) {
        self.merged.merge(&other.counters());
    }

    /// Advance the timeline by one retired instruction and return the
    /// busy-cycle charge attributed to its class (what per-phase
    /// attribution adds up).
    pub fn observe(&mut self, event: &RetireEvent<'_>) -> u64 {
        let spec = self.model.spec();
        // Issue: every instruction consumes one front-end slot.
        let issue_slot = self.now;
        self.slots += 1;
        if self.slots >= spec.issue_width {
            self.now += 1;
            self.slots = 0;
        }
        let lat = spec.class_latency[event.class.index()];
        let vl = event.elems();
        let spill = if event
            .mem
            .is_some_and(|m| self.stack_region.contains(&m.addr))
        {
            spec.spill_penalty
        } else {
            0
        };
        let charge = match event.class {
            InstrClass::ScalarAlu | InstrClass::ScalarCtrl | InstrClass::VectorCfg => lat,
            InstrClass::ScalarMem => {
                // Scalar accesses are pipelined through the port at one
                // beat each; latency models the (in-order) use stall.
                let start = issue_slot.max(self.mem_busy);
                let done = start + lat + spill;
                self.mem_busy = done;
                done - start
            }
            InstrClass::VectorAlu
            | InstrClass::VectorMask
            | InstrClass::VectorPerm
            | InstrClass::VectorRed => {
                let beats = (vl * spec.class_elem_cost[event.class.index()])
                    .div_ceil(u64::from(spec.lanes))
                    .max(1);
                let chain_from = if spec.chaining {
                    self.vec_ready
                } else {
                    self.vec_busy
                };
                let start = issue_slot.max(chain_from);
                let done = start + lat - 1 + beats;
                self.vec_ready = start + lat - 1;
                self.vec_busy = done;
                done - start
            }
            InstrClass::VectorMem => {
                let bytes = event.mem.map_or(0, |m| m.bytes);
                let burst = bytes.div_ceil(spec.mem.port_bytes).max(1);
                let beats = match MemClass::of(event.instr) {
                    Some(MemClass::Strided) => burst.max(vl * spec.mem.stride_elem_cycles),
                    Some(MemClass::Indexed) => burst.max(vl * spec.mem.index_elem_cycles),
                    // Unit, whole-register, and mask accesses are
                    // contiguous bursts; scalar cannot classify here.
                    _ => burst,
                };
                let lat = lat + spec.mem.latency - 1;
                let chain_from = if spec.chaining {
                    self.vec_ready
                } else {
                    self.vec_busy
                };
                let start = issue_slot.max(chain_from).max(self.mem_busy);
                let done = start + lat - 1 + beats + spill;
                self.vec_ready = start + lat - 1;
                self.vec_busy = done;
                self.mem_busy = done;
                done - start
            }
        };
        self.by_class[event.class.index()] += charge;
        charge
    }
}

impl TraceSink for CycleEstimator {
    fn retire(&mut self, event: &RetireEvent<'_>) {
        self.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvv_isa::{MemWidth, Sew, VAluOp, VReg, XReg};
    use rvv_sim::MemAccess;

    fn ev<'a>(instr: &'a Instr, vl: u32, mem: Option<MemAccess>) -> RetireEvent<'a> {
        RetireEvent {
            pc: 0,
            instr,
            class: InstrClass::of(instr),
            vl,
            vtype: None,
            mem,
            seq: 0,
        }
    }

    fn vadd() -> Instr {
        Instr::VOpVV {
            op: VAluOp::Add,
            vd: VReg::new(8),
            vs2: VReg::new(9),
            vs1: VReg::new(10),
            vm: true,
        }
    }

    fn vload(addr: u64, bytes: u64) -> (Instr, MemAccess) {
        (
            Instr::VLoad {
                eew: Sew::E32,
                vd: VReg::new(8),
                rs1: XReg::new(10),
                vm: true,
            },
            MemAccess {
                addr,
                bytes,
                store: false,
            },
        )
    }

    #[test]
    fn mem_classes_cover_the_memory_ops() {
        let scalar = Instr::Load {
            width: MemWidth::W,
            signed: false,
            rd: XReg::new(5),
            rs1: XReg::new(10),
            offset: 0,
        };
        assert_eq!(MemClass::of(&scalar), Some(MemClass::Scalar));
        assert_eq!(MemClass::of(&vload(0, 4).0), Some(MemClass::Unit));
        let strided = Instr::VLoadStrided {
            eew: Sew::E32,
            vd: VReg::new(8),
            rs1: XReg::new(10),
            rs2: XReg::new(11),
            vm: true,
        };
        assert_eq!(MemClass::of(&strided), Some(MemClass::Strided));
        let indexed = Instr::VStoreIndexed {
            eew: Sew::E32,
            ordered: false,
            vs3: VReg::new(8),
            rs1: XReg::new(10),
            vs2: VReg::new(12),
            vm: true,
        };
        assert_eq!(MemClass::of(&indexed), Some(MemClass::Indexed));
        let whole = Instr::VLoadWhole {
            nregs: 8,
            vd: VReg::new(8),
            rs1: XReg::new(10),
        };
        assert_eq!(MemClass::of(&whole), Some(MemClass::Whole));
        let mask = Instr::VStoreMask {
            vs3: VReg::V0,
            rs1: XReg::new(10),
        };
        assert_eq!(MemClass::of(&mask), Some(MemClass::Mask));
        assert_eq!(MemClass::of(&Instr::Ecall), None);
    }

    /// The anchor property: under the `unit` preset every instruction
    /// costs exactly one cycle, so cycles == dynamic instruction count
    /// for any event mix.
    #[test]
    fn unit_preset_equals_instruction_count() {
        let mut e = CycleEstimator::new(CostModel::unit(), 100..200);
        let add = vadd();
        let (ld, acc) = vload(150, 1024); // spilling address: still 1 cycle
        let scalar = Instr::Ecall;
        let mut n = 0u64;
        for _ in 0..5 {
            e.observe(&ev(&add, 256, None));
            e.observe(&ev(&ld, 256, Some(acc)));
            e.observe(&ev(&scalar, 0, None));
            n += 3;
        }
        let c = e.counters();
        assert_eq!(c.total(), n);
        assert_eq!(c.iter().map(|(_, x)| x).sum::<u64>(), n);
    }

    /// LMUL-proportional occupancy: `vl` scales with LMUL, and the charge
    /// scales with `vl / lanes`.
    #[test]
    fn vector_occupancy_scales_with_vl() {
        let model = CostModel::ara_like();
        let lanes = u64::from(model.spec().lanes);
        let lat = model.spec().class_latency[InstrClass::VectorAlu.index()];
        let add = vadd();
        let charge_at = |vl: u32| {
            let mut e = CycleEstimator::new(model.clone(), 0..0);
            e.observe(&ev(&add, vl, None))
        };
        // m1 at VLEN=1024/e32 -> vl=32; m8 -> vl=256.
        assert_eq!(charge_at(32), lat - 1 + 32 / lanes);
        assert_eq!(charge_at(256), lat - 1 + 256 / lanes);
        assert_eq!(charge_at(256) - charge_at(32), (256 - 32) / lanes);
    }

    /// Chaining lets a dependent vector op start at the producer's first
    /// result; without chaining it waits for the drain.
    #[test]
    fn chaining_overlaps_dependent_vector_ops() {
        let chained = CostModel::ara_like();
        let mut spec = *chained.spec();
        spec.chaining = false;
        let unchained = CostModel::new("ara-unchained", spec).unwrap();
        let add = vadd();
        let total = |m: CostModel| {
            let mut e = CycleEstimator::new(m, 0..0);
            for _ in 0..8 {
                e.observe(&ev(&add, 256, None));
            }
            e.counters().total()
        };
        let (with, without) = (total(chained), total(unchained));
        assert!(
            with < without,
            "chaining should shorten the timeline: {with} vs {without}"
        );
    }

    /// The port makes strided and indexed accesses cost more than a
    /// unit-stride access of the same data volume.
    #[test]
    fn port_contention_orders_the_memory_classes() {
        let model = CostModel::ara_like();
        let charge_of = |instr: &Instr| {
            let mut e = CycleEstimator::new(model.clone(), 0..0);
            e.observe(&ev(
                instr,
                256,
                Some(MemAccess {
                    addr: 0x1000,
                    bytes: 1024,
                    store: false,
                }),
            ))
        };
        let unit = charge_of(&vload(0, 0).0);
        let strided = charge_of(&Instr::VLoadStrided {
            eew: Sew::E32,
            vd: VReg::new(8),
            rs1: XReg::new(10),
            rs2: XReg::new(11),
            vm: true,
        });
        let indexed = charge_of(&Instr::VLoadIndexed {
            eew: Sew::E32,
            ordered: false,
            vd: VReg::new(8),
            rs1: XReg::new(10),
            vs2: VReg::new(12),
            vm: true,
        });
        assert!(unit < strided, "unit {unit} !< strided {strided}");
        assert!(strided < indexed, "strided {strided} !< indexed {indexed}");
    }

    /// An access into the stack region is charged the spill penalty; the
    /// same access elsewhere is not.
    #[test]
    fn spill_penalty_applies_inside_the_stack_region() {
        let model = CostModel::ara_like();
        let penalty = model.spec().spill_penalty;
        assert!(penalty > 0, "preset must model a spill penalty");
        let (ld, _) = vload(0, 0);
        let charge_at = |addr: u64| {
            let mut e = CycleEstimator::new(model.clone(), 0x8000..0x9000);
            e.observe(&ev(
                &ld,
                256,
                Some(MemAccess {
                    addr,
                    bytes: 1024,
                    store: false,
                }),
            ))
        };
        assert_eq!(charge_at(0x8100) - charge_at(0x1000), penalty);
    }

    #[test]
    fn absorb_composes_like_sequential_runs() {
        let add = vadd();
        let run = |n: usize| {
            let mut e = CycleEstimator::new(CostModel::ara_like(), 0..0);
            for _ in 0..n {
                e.observe(&ev(&add, 128, None));
            }
            e
        };
        let (mut a, b) = (run(3), run(5));
        let (ta, tb) = (a.counters().total(), b.counters().total());
        a.absorb(&b);
        assert_eq!(a.counters().total(), ta + tb);
        assert_eq!(
            a.counters().class(InstrClass::VectorAlu),
            run(3).counters().class(InstrClass::VectorAlu)
                + run(5).counters().class(InstrClass::VectorAlu)
        );
    }

    #[test]
    fn from_sink_roundtrips() {
        let mut e = CycleEstimator::new(CostModel::unit(), 0..0);
        e.observe(&ev(&Instr::Ecall, 0, None));
        let boxed: Box<dyn TraceSink> = Box::new(e);
        let back = CycleEstimator::from_sink(boxed).unwrap();
        assert_eq!(back.counters().total(), 1);
        assert_eq!(back.model().name(), "unit");
    }
}
