//! The cost model: parameters, validation, and named presets.

use rvv_isa::InstrClass;
use std::fmt;

/// Memory-system cost parameters (see [`CostSpec::mem`]).
///
/// All costs are in cycles or bytes-per-cycle; everything is an integer so
/// cycle totals stay exactly reproducible across platforms and thread
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCosts {
    /// Cycles from issue of a memory instruction to its first data beat
    /// (the memory-system latency a long vector access exposes once).
    /// Must be at least 1.
    pub latency: u64,
    /// Bytes the memory port moves per cycle for unit-stride,
    /// whole-register, and mask accesses. Must be at least 1.
    pub port_bytes: u64,
    /// Extra port cycles per element for strided accesses (0 = strided
    /// runs at unit-stride speed).
    pub stride_elem_cycles: u64,
    /// Extra port cycles per element for indexed (gather/scatter)
    /// accesses (0 = indexed runs at unit-stride speed).
    pub index_elem_cycles: u64,
}

/// The raw, user-editable parameter set of a cost model. Validated into a
/// [`CostModel`] by [`CostModel::new`]; degenerate values (zero issue
/// width, zero-latency memory) are rejected there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostSpec {
    /// Instructions the front end issues per cycle. Must be at least 1.
    pub issue_width: u32,
    /// Vector elements processed per cycle by the compute units (the
    /// "lane count"). LMUL-proportional occupancy falls out of this:
    /// a vector op over `vl` elements occupies its unit for
    /// `ceil(vl / lanes)` beats. Must be at least 1.
    pub lanes: u32,
    /// May a dependent vector instruction start once the producer's first
    /// results exist (`true`, chaining), or must it wait for the producer
    /// to drain completely (`false`)?
    pub chaining: bool,
    /// Startup latency (cycles to first result) per instruction class,
    /// indexed like [`InstrClass::ALL`]. For scalar classes this is the
    /// whole per-instruction cost; for vector memory it is the
    /// address-generation latency *in addition to* [`MemCosts::latency`].
    /// Every entry must be at least 1.
    pub class_latency: [u64; InstrClass::ALL.len()],
    /// Per-element beat multiplier per class, indexed like
    /// [`InstrClass::ALL`]. A vector compute op over `vl` elements takes
    /// `ceil(vl * class_elem_cost / lanes)` beats (clamped to at least
    /// one); 0 models an infinitely wide unit (always one beat). Ignored
    /// for scalar classes and vector memory (which uses [`MemCosts`]).
    pub class_elem_cost: [u64; InstrClass::ALL.len()],
    /// Memory-system costs.
    pub mem: MemCosts,
    /// Extra cycles charged to any load/store whose effective address
    /// falls in the device stack region — the latency cost of spill
    /// traffic beyond its port occupancy (0 disables the penalty).
    pub spill_penalty: u64,
}

/// Why a [`CostSpec`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostError {
    /// `issue_width` was 0: the front end could never issue anything and
    /// every run would take infinitely long (or, naively, 0 cycles).
    ZeroIssueWidth,
    /// `lanes` was 0: vector occupancy would divide by zero.
    ZeroLanes,
    /// A class latency was 0: instructions of this class would retire in
    /// no time and the run would under-count to a 0-cycle result.
    ZeroClassLatency(InstrClass),
    /// `mem.latency` was 0: a zero-latency memory class silently erases
    /// the entire memory system from the model.
    ZeroMemLatency,
    /// `mem.port_bytes` was 0: port occupancy would divide by zero.
    ZeroPortBytes,
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::ZeroIssueWidth => {
                write!(f, "cost model rejected: issue_width must be at least 1")
            }
            CostError::ZeroLanes => {
                write!(f, "cost model rejected: lanes must be at least 1")
            }
            CostError::ZeroClassLatency(c) => write!(
                f,
                "cost model rejected: class_latency[{c}] must be at least 1 \
                 (zero-latency classes produce 0-cycle runs)"
            ),
            CostError::ZeroMemLatency => write!(
                f,
                "cost model rejected: mem.latency must be at least 1 \
                 (a zero-latency memory class erases the memory system)"
            ),
            CostError::ZeroPortBytes => {
                write!(f, "cost model rejected: mem.port_bytes must be at least 1")
            }
        }
    }
}

impl std::error::Error for CostError {}

/// A validated cost model: a name plus a [`CostSpec`] that passed
/// [`CostModel::new`]'s degeneracy checks. The estimator only accepts
/// this type, so a 0-cycle configuration cannot reach the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    name: String,
    spec: CostSpec,
}

impl CostModel {
    /// The preset names [`CostModel::preset`] accepts.
    pub const PRESETS: [&'static str; 3] = ["unit", "ara-like", "vitruvius-like"];

    /// Validate `spec` into a usable model, rejecting degenerate
    /// configurations with a descriptive [`CostError`].
    pub fn new(name: impl Into<String>, spec: CostSpec) -> Result<CostModel, CostError> {
        if spec.issue_width == 0 {
            return Err(CostError::ZeroIssueWidth);
        }
        if spec.lanes == 0 {
            return Err(CostError::ZeroLanes);
        }
        for (i, &lat) in spec.class_latency.iter().enumerate() {
            if lat == 0 {
                return Err(CostError::ZeroClassLatency(InstrClass::ALL[i]));
            }
        }
        if spec.mem.latency == 0 {
            return Err(CostError::ZeroMemLatency);
        }
        if spec.mem.port_bytes == 0 {
            return Err(CostError::ZeroPortBytes);
        }
        Ok(CostModel {
            name: name.into(),
            spec,
        })
    }

    /// Look up a named preset (see [`CostModel::PRESETS`]).
    pub fn preset(name: &str) -> Option<CostModel> {
        match name {
            "unit" => Some(CostModel::unit()),
            "ara-like" => Some(CostModel::ara_like()),
            "vitruvius-like" => Some(CostModel::vitruvius_like()),
            _ => None,
        }
    }

    /// The identity preset: every instruction costs exactly one cycle, so
    /// the cycle total equals the dynamic instruction count. This anchors
    /// the new metric to the old one — any divergence under another
    /// preset is attributable to that preset's latency structure, not to
    /// the estimator plumbing.
    pub fn unit() -> CostModel {
        CostModel::new(
            "unit",
            CostSpec {
                issue_width: 1,
                lanes: u32::MAX,
                chaining: true,
                class_latency: [1; InstrClass::ALL.len()],
                class_elem_cost: [0; InstrClass::ALL.len()],
                mem: MemCosts {
                    latency: 1,
                    port_bytes: u64::MAX,
                    stride_elem_cycles: 0,
                    index_elem_cycles: 0,
                },
                spill_penalty: 0,
            },
        )
        .expect("unit preset is valid")
    }

    /// Derived from "A New Ara for Vector Computing" (PAPERS.md): a
    /// 4-lane (4×64-bit) vector unit coupled to a single-issue in-order
    /// CVA6-class scalar core, with chaining between vector units and an
    /// AXI memory path a few cycles deep. Latencies are order-of-magnitude
    /// approximations of that microarchitecture, not published figures:
    /// short ALU pipelines, slow gathers (the paper motivates its
    /// permutation rework with vrgather's element-serial cost), and a
    /// spill penalty at L2-latency scale since spilled register groups
    /// thrash past the L1.
    pub fn ara_like() -> CostModel {
        let mut class_latency = [1; InstrClass::ALL.len()];
        class_latency[InstrClass::VectorCfg.index()] = 1;
        class_latency[InstrClass::VectorAlu.index()] = 4;
        class_latency[InstrClass::VectorMem.index()] = 3;
        class_latency[InstrClass::VectorMask.index()] = 4;
        class_latency[InstrClass::VectorPerm.index()] = 6;
        class_latency[InstrClass::VectorRed.index()] = 8;
        let mut class_elem_cost = [0; InstrClass::ALL.len()];
        class_elem_cost[InstrClass::VectorAlu.index()] = 1;
        class_elem_cost[InstrClass::VectorMask.index()] = 1;
        class_elem_cost[InstrClass::VectorPerm.index()] = 2;
        class_elem_cost[InstrClass::VectorRed.index()] = 1;
        CostModel::new(
            "ara-like",
            CostSpec {
                issue_width: 1,
                lanes: 4,
                chaining: true,
                class_latency,
                class_elem_cost,
                mem: MemCosts {
                    latency: 12,
                    port_bytes: 32,
                    stride_elem_cycles: 2,
                    index_elem_cycles: 4,
                },
                spill_penalty: 24,
            },
        )
        .expect("ara-like preset is valid")
    }

    /// Derived from the Vitruvius+ simulator paper (PAPERS.md): a
    /// long-vector decoupled accelerator — eight lanes, a dual-issue
    /// front end, deeper pipelines, and a much deeper memory system whose
    /// latency the long vectors are designed to tolerate. As with
    /// `ara-like`, the structure (lanes, chaining, decoupled deep
    /// memory) follows the paper; the numbers are approximations.
    pub fn vitruvius_like() -> CostModel {
        let mut class_latency = [1; InstrClass::ALL.len()];
        class_latency[InstrClass::VectorCfg.index()] = 1;
        class_latency[InstrClass::VectorAlu.index()] = 6;
        class_latency[InstrClass::VectorMem.index()] = 4;
        class_latency[InstrClass::VectorMask.index()] = 6;
        class_latency[InstrClass::VectorPerm.index()] = 8;
        class_latency[InstrClass::VectorRed.index()] = 10;
        let mut class_elem_cost = [0; InstrClass::ALL.len()];
        class_elem_cost[InstrClass::VectorAlu.index()] = 1;
        class_elem_cost[InstrClass::VectorMask.index()] = 1;
        class_elem_cost[InstrClass::VectorPerm.index()] = 2;
        class_elem_cost[InstrClass::VectorRed.index()] = 1;
        CostModel::new(
            "vitruvius-like",
            CostSpec {
                issue_width: 2,
                lanes: 8,
                chaining: true,
                class_latency,
                class_elem_cost,
                mem: MemCosts {
                    latency: 30,
                    port_bytes: 64,
                    stride_elem_cycles: 4,
                    index_elem_cycles: 8,
                },
                spill_penalty: 40,
            },
        )
        .expect("vitruvius-like preset is valid")
    }

    /// The model's name (preset name, or whatever [`CostModel::new`] was
    /// given).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The validated parameters.
    pub fn spec(&self) -> &CostSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_spec() -> CostSpec {
        *CostModel::ara_like().spec()
    }

    #[test]
    fn presets_resolve_by_name() {
        for name in CostModel::PRESETS {
            let m = CostModel::preset(name).expect(name);
            assert_eq!(m.name(), name);
        }
        assert!(CostModel::preset("warp9").is_none());
    }

    #[test]
    fn zero_issue_width_is_rejected() {
        let mut s = valid_spec();
        s.issue_width = 0;
        let err = CostModel::new("bad", s).unwrap_err();
        assert_eq!(err, CostError::ZeroIssueWidth);
        assert!(err.to_string().contains("issue_width"), "{err}");
    }

    #[test]
    fn zero_lanes_is_rejected() {
        let mut s = valid_spec();
        s.lanes = 0;
        assert_eq!(CostModel::new("bad", s).unwrap_err(), CostError::ZeroLanes);
    }

    #[test]
    fn zero_class_latency_is_rejected_naming_the_class() {
        let mut s = valid_spec();
        s.class_latency[InstrClass::VectorPerm.index()] = 0;
        let err = CostModel::new("bad", s).unwrap_err();
        assert_eq!(err, CostError::ZeroClassLatency(InstrClass::VectorPerm));
        assert!(err.to_string().contains("vector-perm"), "{err}");
    }

    #[test]
    fn zero_memory_latency_is_rejected() {
        let mut s = valid_spec();
        s.mem.latency = 0;
        let err = CostModel::new("bad", s).unwrap_err();
        assert_eq!(err, CostError::ZeroMemLatency);
        assert!(err.to_string().contains("memory"), "{err}");
    }

    #[test]
    fn zero_port_bytes_is_rejected() {
        let mut s = valid_spec();
        s.mem.port_bytes = 0;
        assert_eq!(
            CostModel::new("bad", s).unwrap_err(),
            CostError::ZeroPortBytes
        );
    }

    #[test]
    fn zero_elem_costs_are_legal() {
        // 0 per-element cost means "infinitely wide unit", not a
        // degenerate model: beats clamp to one.
        let mut s = valid_spec();
        s.class_elem_cost = [0; InstrClass::ALL.len()];
        s.mem.stride_elem_cycles = 0;
        s.mem.index_elem_cycles = 0;
        s.spill_penalty = 0;
        assert!(CostModel::new("wide", s).is_ok());
    }
}
