//! Property tests for [`CycleCounters::merge`]: the algebra the batch
//! engine's determinism contract rests on. Merging per-job cycles must be
//! associative and commutative with the zero counters as identity —
//! otherwise the merged sweep total would depend on worker scheduling.

use proptest::prelude::*;
use rvv_cost::CycleCounters;
use rvv_isa::InstrClass;

fn counters() -> impl Strategy<Value = CycleCounters> {
    (
        0u64..1 << 40,
        proptest::collection::vec(0u64..1 << 40, InstrClass::ALL.len()),
    )
        .prop_map(|(total, classes)| CycleCounters::from_parts(total, &classes))
}

fn merged(a: &CycleCounters, b: &CycleCounters) -> CycleCounters {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    #[test]
    fn merge_is_commutative(a in counters(), b in counters()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(a in counters(), b in counters(), c in counters()) {
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    #[test]
    fn zero_is_the_identity(a in counters()) {
        let zero = CycleCounters::new();
        prop_assert_eq!(merged(&a, &zero), a.clone());
        prop_assert_eq!(merged(&zero, &a), a);
    }

    #[test]
    fn json_roundtrips_structurally(a in counters(), b in counters()) {
        // The serialized form of a merge is determined by the operands
        // alone (no hidden state), and stays structurally sound.
        let j = merged(&a, &b).to_json();
        prop_assert_eq!(j.matches('{').count(), j.matches('}').count());
        prop_assert!(j.starts_with(&format!("{{\"cycles\":{}", a.total() + b.total())));
        prop_assert!(!j.contains(",}"));
    }
}
