//! Engine differential tests: every algorithm in this crate, end-to-end,
//! on `ExecEngine::Plan` vs `ExecEngine::Legacy` vs `ExecEngine::Fused`.
//!
//! The three run loops are required to be architecturally
//! indistinguishable — same outputs, same dynamic instruction counts, same
//! traps, and (with a cost model listening) same modeled cycles. The plan
//! engine is the default everywhere and the fused tier is the fast path
//! for exactly these kernel shapes, so any divergence the unit tests miss
//! would silently corrupt the paper's tables; these tests pin the
//! equivalence at the full-algorithm level where every kernel, every
//! strip-mined loop shape, and every host-glue path gets exercised.

use rand::prelude::*;
use rvv_cost::{CostModel, CycleEstimator};
use rvv_isa::Sew;
use scanvec::{ExecEngine, ScanEnv};
use scanvec::{ScanError, ScanResult};
use scanvec_algos as algos;

/// Run the same measurement on a fresh environment per engine and require
/// identical results (outputs *or* errors), identical retired counts, and —
/// with a cost model listening on both retire streams — identical modeled
/// cycle totals. The cycle estimate is a pure function of the retire
/// stream, so any engine divergence in instruction *sequence* (not just
/// count) shows up here as a cycle mismatch.
/// Returns the (shared) result for further reference checks.
fn differential<T: PartialEq + std::fmt::Debug>(
    name: &str,
    run: impl Fn(&mut ScanEnv) -> ScanResult<T>,
) -> ScanResult<T> {
    let mut plan_env = ScanEnv::paper_default();
    assert_eq!(
        plan_env.exec_engine(),
        ExecEngine::Plan,
        "Plan is the default"
    );
    let mut legacy_env = ScanEnv::paper_default();
    legacy_env.set_exec_engine(ExecEngine::Legacy);
    let mut fused_env = ScanEnv::paper_default();
    fused_env.set_exec_engine(ExecEngine::Fused);
    let attach = |env: &mut ScanEnv| {
        let est = CycleEstimator::new(CostModel::ara_like(), env.stack_region());
        env.attach_tracer(Box::new(est));
    };
    attach(&mut plan_env);
    attach(&mut legacy_env);
    attach(&mut fused_env);
    let a = run(&mut plan_env);
    let b = run(&mut legacy_env);
    let c = run(&mut fused_env);
    assert_eq!(a, b, "{name}: plan vs legacy disagree");
    assert_eq!(c, b, "{name}: fused vs legacy disagree");
    assert_eq!(
        plan_env.retired(),
        legacy_env.retired(),
        "{name}: engines retired different dynamic instruction counts"
    );
    assert_eq!(
        fused_env.retired(),
        legacy_env.retired(),
        "{name}: fused tier retired a different dynamic instruction count"
    );
    let cycles = |env: &mut ScanEnv| {
        CycleEstimator::from_sink(env.detach_tracer().expect("sink attached"))
            .expect("sink is a CycleEstimator")
            .counters()
    };
    let (ca, cb, cc) = (
        cycles(&mut plan_env),
        cycles(&mut legacy_env),
        cycles(&mut fused_env),
    );
    assert_eq!(ca, cb, "{name}: plan vs legacy disagree on modeled cycles");
    assert_eq!(cc, cb, "{name}: fused vs legacy disagree on modeled cycles");
    assert!(
        ca.total() >= plan_env.retired(),
        "{name}: ara-like cycles below dynamic instruction count"
    );
    a
}

fn random_u32s(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random()).collect()
}

#[test]
fn bitonic_sort_differential() {
    // 300 exercises the power-of-two padding path.
    let data = random_u32s(300, 1);
    let out = differential("bitonic_sort", |env| {
        let v = env.from_u32(&data)?;
        let retired = algos::bitonic_sort(env, &v)?;
        Ok((env.to_u32(&v), retired))
    })
    .unwrap();
    let mut expect = data.clone();
    expect.sort_unstable();
    assert_eq!(out.0, expect);
}

#[test]
fn quickhull_differential() {
    let mut rng = StdRng::seed_from_u64(2);
    let points: Vec<(u32, u32)> = (0..200)
        .map(|_| (rng.random_range(0..10_000), rng.random_range(0..10_000)))
        .collect();
    let out = differential("quickhull", |env| algos::quickhull(env, &points)).unwrap();
    assert_eq!(out.0, algos::convex_hull_reference(&points));
}

#[test]
fn spmv_differential() {
    let mut rng = StdRng::seed_from_u64(3);
    let a = algos::random_csr(&mut rng, 40, 64, 6);
    let x: Vec<u32> = (0..64).map(|_| rng.random_range(0..1000)).collect();
    let out = differential("spmv", |env| algos::spmv(env, &a, &x)).unwrap();
    assert_eq!(out.0, a.spmv_reference(&x));
}

#[test]
fn rle_differential() {
    // Runs of random length: a workload with both long runs and singletons.
    let mut rng = StdRng::seed_from_u64(4);
    let mut data = Vec::new();
    while data.len() < 500 {
        let v: u32 = rng.random_range(0..8);
        for _ in 0..rng.random_range(1..20u32) {
            data.push(v);
        }
    }
    let out = differential("rle", |env| {
        let v = env.from_u32(&data)?;
        let (rle, enc) = algos::rle_encode(env, &v)?;
        let d = env.alloc(Sew::E32, rle.decoded_len())?;
        let dec = algos::rle_decode(env, &rle, &d)?;
        Ok((rle, env.to_u32(&d), enc, dec))
    })
    .unwrap();
    assert_eq!(out.0, algos::Rle::encode_reference(&data));
    assert_eq!(out.1, data);
}

#[test]
fn histogram_differential() {
    let mut rng = StdRng::seed_from_u64(5);
    let data: Vec<u32> = (0..700).map(|_| rng.random_range(0..64)).collect();
    let out = differential("histogram", |env| algos::histogram(env, &data, 64)).unwrap();
    let mut expect = vec![0u32; 64];
    for &d in &data {
        expect[d as usize] += 1;
    }
    assert_eq!(out.0, expect);
}

#[test]
fn line_of_sight_differential() {
    let mut rng = StdRng::seed_from_u64(6);
    let alt: Vec<u32> = (0..400).map(|_| rng.random_range(900..1100)).collect();
    let out = differential("line_of_sight", |env| algos::line_of_sight(env, &alt, 1000)).unwrap();
    assert_eq!(out.0, algos::line_of_sight_reference(&alt, 1000));
}

#[test]
fn seg_quicksort_differential() {
    let data = random_u32s(257, 7);
    let out = differential("seg_quicksort", |env| {
        let v = env.from_u32(&data)?;
        let retired = algos::seg_quicksort(env, &v)?;
        Ok((env.to_u32(&v), retired))
    })
    .unwrap();
    let mut expect = data.clone();
    expect.sort_unstable();
    assert_eq!(out.0, expect);
}

#[test]
fn radix_sort_differential() {
    let data = random_u32s(301, 8);
    let out = differential("split_radix_sort", |env| {
        let v = env.from_u32(&data)?;
        let retired = algos::split_radix_sort(env, &v, 32)?;
        Ok((env.to_u32(&v), retired))
    })
    .unwrap();
    let mut expect = data.clone();
    expect.sort_unstable();
    assert_eq!(out.0, expect);
}

#[test]
fn trap_behaviour_differential() {
    // Both engines must trap identically — same error, same retired count
    // up to the trap. A kernel told its buffer is longer than it is runs
    // into an armed guard region.
    let trap = differential("guard trap", |env| {
        let (v, _, _) = env.alloc_guarded(Sew::E32, 10)?;
        let p = env.kernel("difftest_elem_vx_add", Sew::E32, |cfg, sew| {
            scanvec::kernels::build_elem_vx(cfg, sew, rvv_isa::VAluOp::Add)
        })?;
        // Lie about the length: 4096 elements crosses the guard.
        Ok(env.run(&p, &[4096, v.addr(), 1]).map(|_| ()).err())
    })
    .unwrap();
    assert!(
        matches!(
            trap,
            Some(ScanError::Sim(rvv_sim::SimError::GuardHit { .. }))
        ),
        "expected a guard trap on both engines: {trap:?}"
    );
}
