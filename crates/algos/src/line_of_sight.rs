//! Line-of-sight via max-scan — Blelloch's other canonical scan
//! application: given terrain altitudes along a ray from an observer, a
//! point is visible iff no earlier point subtends a larger vertical angle.
//!
//! The parallel solution is one exclusive **max-scan** over the angles plus
//! an elementwise compare. Angles are computed in fixed point
//! (`(alt - observer) << SHIFT / distance`) and bias-mapped to unsigned so
//! the unsigned max-scan orders them correctly — the standard
//! order-preserving `i32 → u32` trick (`x ^ 0x8000_0000`).

use rvv_isa::{VAluOp, VCmp};
use scanvec::primitives::{cmp_flags, copy, elem_vv, elem_vx, iota, scan, ScanKind};
use scanvec::ScanEnv;
use scanvec::{ScanOp, ScanResult};

/// Fixed-point fraction bits for the angle ratio.
const SHIFT: u64 = 16;

/// Compute visibility flags for altitude samples `alt[0..n]` at distances
/// `1..=n` from an observer of height `observer`. Returns
/// `(visible_flags, retired_instructions)`.
///
/// Altitude differences must fit in 15 bits of magnitude for the fixed
/// point not to overflow (|alt − observer| < 2¹⁵), which covers any
/// realistic terrain heightfield.
pub fn line_of_sight(
    env: &mut ScanEnv,
    alt: &[u32],
    observer: u32,
) -> ScanResult<(Vec<bool>, u64)> {
    let n = alt.len();
    if n == 0 {
        return Ok((Vec::new(), 0));
    }
    let mark = env.heap_mark();
    let angles = env.from_u32(alt)?;
    let dist = env.alloc(angles.sew(), n)?;
    let horizon = env.alloc(angles.sew(), n)?;
    let vis = env.alloc(angles.sew(), n)?;
    let mut retired = 0;

    // angle_q = ((alt - observer) << SHIFT) / distance, signed.
    retired += elem_vx(env, VAluOp::Sub, &angles, observer as u64)?;
    retired += elem_vx(env, VAluOp::Sll, &angles, SHIFT)?;
    retired += iota(env, &dist)?;
    retired += elem_vx(env, VAluOp::Add, &dist, 1)?; // distances 1..=n
    retired += elem_vv(env, VAluOp::Div, &angles, &dist, &angles)?;
    // Order-preserving signed→unsigned bias.
    retired += elem_vx(env, VAluOp::Xor, &angles, 0x8000_0000)?;
    // horizon[i] = max over earlier angles (exclusive max-scan);
    // horizon[0] = 0 = biased -2³¹ = "nothing blocks the first point".
    retired += copy(env, &angles, &horizon)?;
    retired += scan(env, ScanOp::Max, &horizon, ScanKind::Exclusive)?;
    // visible iff angle strictly above every earlier one.
    retired += cmp_flags(env, VCmp::Gtu, &angles, &horizon, &vis)?;

    let flags = env.to_u32(&vis).into_iter().map(|f| f != 0).collect();
    env.release_to(mark);
    Ok((flags, retired))
}

/// Host reference implementation.
pub fn line_of_sight_reference(alt: &[u32], observer: u32) -> Vec<bool> {
    let mut out = Vec::with_capacity(alt.len());
    let mut horizon = i64::MIN;
    for (i, &a) in alt.iter().enumerate() {
        let angle = (((a as i64 - observer as i64) << SHIFT) / (i as i64 + 1)) as i32;
        out.push((angle as i64) > horizon);
        horizon = horizon.max(angle as i64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn env() -> ScanEnv {
        crate::testutil::test_session(256)
    }

    #[test]
    fn ridge_blocks_the_valley() {
        // Observer at height 10. A tall ridge at distance 3 hides the
        // lower ground behind it until a taller peak appears.
        // Angles from the observer: the ridge at index 2 subtends
        // (40-10)/3; index 5 must beat that, so (90-10)/6 > 30/3.
        let alt = [12u32, 11, 40, 13, 14, 90, 5];
        let mut e = env();
        let (vis, _) = line_of_sight(&mut e, &alt, 10).unwrap();
        assert_eq!(vis, line_of_sight_reference(&alt, 10));
        assert!(vis[0]); // first point always visible
        assert!(vis[2]); // the ridge
        assert!(!vis[3]); // hidden behind it
        assert!(vis[5]); // taller peak
        assert!(!vis[6]);
    }

    #[test]
    fn terrain_below_observer() {
        let alt = [5u32, 4, 3, 2, 1];
        let mut e = env();
        let (vis, _) = line_of_sight(&mut e, &alt, 100).unwrap();
        assert_eq!(vis, line_of_sight_reference(&alt, 100));
        // Downhill all the way: every point visible.
        assert!(vis.iter().all(|&v| v));
    }

    #[test]
    fn random_terrain_matches_reference() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let n = rng.random_range(1..300);
            let observer = rng.random_range(0..1000);
            let alt: Vec<u32> = (0..n).map(|_| rng.random_range(0..2000)).collect();
            let mut e = env();
            let (vis, _) = line_of_sight(&mut e, &alt, observer).unwrap();
            assert_eq!(
                vis,
                line_of_sight_reference(&alt, observer),
                "observer={observer}"
            );
        }
    }

    #[test]
    fn empty_input() {
        let mut e = env();
        let (vis, retired) = line_of_sight(&mut e, &[], 10).unwrap();
        assert!(vis.is_empty());
        assert_eq!(retired, 0);
    }
}
