//! Run-length encoding and decoding — a textbook scan application
//! (Blelloch §"split-and-segment" exercises): both directions are short
//! primitive pipelines with no data-dependent host loops.
//!
//! **Encode:** run starts are `x[i] != x[i-1]` (an offset compare);
//! values = `pack(x, starts)`; run *positions* = `pack(iota, starts)`; and
//! lengths are adjacent-position differences (one elementwise subtract on
//! the runs-sized arrays).
//!
//! **Decode:** head positions = exclusive plus-scan of lengths; scatter the
//! run values to those positions in a zeroed output; a segmented
//! plus-scan with head flags scattered the same way distributes each run's
//! value across its extent (the head value is the only nonzero in each
//! segment, so the plus-scan is a copy-scan).

use rvv_isa::{VAluOp, VCmp};
use scanvec::primitives::{
    cmp_flags, copy, elem_vv, iota, p_add, pack, permute, scan, seg_scan, ScanKind,
};
use scanvec::{ScanEnv, SvVector};
use scanvec::{ScanError, ScanOp, ScanResult};

/// A run-length encoded vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rle {
    /// Value of each run.
    pub values: Vec<u32>,
    /// Length of each run (same count as `values`, each ≥ 1).
    pub lengths: Vec<u32>,
}

impl Rle {
    /// Total decoded length.
    pub fn decoded_len(&self) -> usize {
        self.lengths.iter().map(|&l| l as usize).sum()
    }

    /// Host reference encoder.
    pub fn encode_reference(data: &[u32]) -> Rle {
        let mut values = Vec::new();
        let mut lengths = Vec::new();
        for &x in data {
            if values.last() == Some(&x) {
                *lengths.last_mut().expect("non-empty with last value") += 1;
            } else {
                values.push(x);
                lengths.push(1);
            }
        }
        Rle { values, lengths }
    }

    /// Host reference decoder.
    pub fn decode_reference(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.decoded_len());
        for (&v, &l) in self.values.iter().zip(&self.lengths) {
            out.extend(std::iter::repeat_n(v, l as usize));
        }
        out
    }
}

/// Encode a device vector. Returns `(rle, retired_instructions)`.
pub fn rle_encode(env: &mut ScanEnv, v: &SvVector) -> ScanResult<(Rle, u64)> {
    let n = v.len();
    if n == 0 {
        return Ok((
            Rle {
                values: vec![],
                lengths: vec![],
            },
            0,
        ));
    }
    let mark = env.heap_mark();
    let shifted = env.alloc(v.sew(), n)?;
    let starts = env.alloc(v.sew(), n)?;
    let idx = env.alloc(v.sew(), n)?;
    let vals = env.alloc(v.sew(), n)?;
    let heads = env.alloc(v.sew(), n)?;
    let mut retired = 0;

    // shifted[i] = x[i-1] (shifted[0] compares unequal by forcing !x[0]).
    retired += copy(
        env,
        &env.slice(v, 0, n - 1)?,
        &env.slice(&shifted, 1, n - 1)?,
    )?;
    env.store_elem(&shifted, 0, !env.load_elem(v, 0))?;
    retired += cmp_flags(env, VCmp::Ne, v, &shifted, &starts)?;

    // values and head positions of each run.
    let (runs, r) = pack(env, v, &starts, &vals)?;
    retired += r;
    retired += iota(env, &idx)?;
    let (_, r) = pack(env, &idx, &starts, &heads)?;
    retired += r;

    // lengths[i] = heads[i+1] - heads[i]; last runs to n.
    let runs = runs as usize;
    let lengths = env.alloc(v.sew(), runs)?;
    if runs > 1 {
        retired += copy(
            env,
            &env.slice(&heads, 1, runs - 1)?,
            &env.slice(&lengths, 0, runs - 1)?,
        )?;
    }
    env.store_elem(&lengths, runs - 1, n as u64)?;
    retired += elem_vv(
        env,
        VAluOp::Sub,
        &lengths,
        &env.slice(&heads, 0, runs)?,
        &lengths,
    )?;

    let rle = Rle {
        values: env.to_u32(&env.slice(&vals, 0, runs)?),
        lengths: env.to_u32(&lengths),
    };
    env.release_to(mark);
    Ok((rle, retired))
}

/// Decode into a device vector of exactly `rle.decoded_len()` elements.
/// Returns retired instructions.
pub fn rle_decode(env: &mut ScanEnv, rle: &Rle, out: &SvVector) -> ScanResult<u64> {
    let n = rle.decoded_len();
    if out.len() != n {
        return Err(ScanError::LengthMismatch {
            what: "rle_decode",
            a: out.len(),
            b: n,
        });
    }
    if n == 0 {
        return Ok(0);
    }
    if rle.lengths.contains(&0) {
        return Err(ScanError::BadSegmentDescriptor("zero-length run"));
    }
    let runs = rle.values.len();
    let mark = env.heap_mark();
    let vals = env.from_u32(&rle.values)?;
    let positions = env.from_u32(&rle.lengths)?;
    let ones = env.alloc(out.sew(), runs)?;
    let heads = env.alloc(out.sew(), n)?; // zero-filled
    let mut retired = 0;

    // Head positions = exclusive plus-scan of lengths (in place).
    retired += scan(env, ScanOp::Plus, &positions, ScanKind::Exclusive)?;
    // Scatter head flags and run values; zeros elsewhere.
    retired += p_add(env, &ones, 1)?;
    retired += permute(env, &ones, &positions, &heads)?;
    // out must start zeroed for the copy-scan trick (only run heads may be
    // nonzero before the distributing scan).
    retired += scanvec::primitives::elem_vx(env, VAluOp::And, out, 0)?;
    retired += permute(env, &vals, &positions, out)?;
    // Distribute each head value across its run.
    retired += seg_scan(env, ScanOp::Plus, out, &heads)?;
    env.release_to(mark);
    Ok(retired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rvv_isa::Sew;

    fn env() -> ScanEnv {
        crate::testutil::test_session(256)
    }

    #[test]
    fn encode_known_example() {
        let data = [7u32, 7, 7, 1, 1, 9, 9, 9, 9, 2];
        let mut e = env();
        let v = e.from_u32(&data).unwrap();
        let (rle, _) = rle_encode(&mut e, &v).unwrap();
        assert_eq!(rle.values, vec![7, 1, 9, 2]);
        assert_eq!(rle.lengths, vec![3, 2, 4, 1]);
        assert_eq!(rle, Rle::encode_reference(&data));
    }

    #[test]
    fn decode_known_example() {
        let rle = Rle {
            values: vec![5, 0, 8],
            lengths: vec![2, 3, 1],
        };
        let mut e = env();
        let out = e.alloc(Sew::E32, 6).unwrap();
        rle_decode(&mut e, &rle, &out).unwrap();
        assert_eq!(e.to_u32(&out), vec![5, 5, 0, 0, 0, 8]);
    }

    #[test]
    fn roundtrip_random_runs() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..5 {
            let mut data = Vec::new();
            while data.len() < 500 {
                let v: u32 = rng.random_range(0..12);
                let run = rng.random_range(1..9usize);
                data.extend(std::iter::repeat_n(v, run));
            }
            let mut e = env();
            let v = e.from_u32(&data).unwrap();
            let (rle, _) = rle_encode(&mut e, &v).unwrap();
            assert_eq!(rle, Rle::encode_reference(&data));
            let out = e.alloc(Sew::E32, data.len()).unwrap();
            rle_decode(&mut e, &rle, &out).unwrap();
            assert_eq!(e.to_u32(&out), data);
        }
    }

    #[test]
    fn degenerate_cases() {
        let mut e = env();
        // Empty.
        let v = e.from_u32(&[]).unwrap();
        let (rle, r) = rle_encode(&mut e, &v).unwrap();
        assert!(rle.values.is_empty() && r == 0);
        // Single element.
        let v = e.from_u32(&[42]).unwrap();
        let (rle, _) = rle_encode(&mut e, &v).unwrap();
        assert_eq!(
            (rle.values.as_slice(), rle.lengths.as_slice()),
            (&[42u32][..], &[1u32][..])
        );
        // All equal.
        let v = e.from_u32(&[3; 100]).unwrap();
        let (rle, _) = rle_encode(&mut e, &v).unwrap();
        assert_eq!(
            (rle.values.as_slice(), rle.lengths.as_slice()),
            (&[3u32][..], &[100u32][..])
        );
        // All distinct.
        let data: Vec<u32> = (0..50).collect();
        let v = e.from_u32(&data).unwrap();
        let (rle, _) = rle_encode(&mut e, &v).unwrap();
        assert_eq!(rle.values, data);
        assert_eq!(rle.lengths, vec![1; 50]);
    }

    #[test]
    fn decode_rejects_bad_shapes() {
        let mut e = env();
        let out = e.alloc(Sew::E32, 4).unwrap();
        let rle = Rle {
            values: vec![1],
            lengths: vec![3],
        };
        assert!(matches!(
            rle_decode(&mut e, &rle, &out),
            Err(ScanError::LengthMismatch { .. })
        ));
        let rle = Rle {
            values: vec![1, 2],
            lengths: vec![4, 0],
        };
        assert!(matches!(
            rle_decode(&mut e, &rle, &out),
            Err(ScanError::BadSegmentDescriptor(_))
        ));
    }

    #[test]
    fn first_element_value_is_never_misread() {
        // The shifted-compare trick forces x[0] to start a run even when
        // x[0] equals the bitwise-NOT sentinel's neighborhood.
        for first in [0u32, u32::MAX, 0x8000_0000] {
            let data = [first, first, 5];
            let mut e = env();
            let v = e.from_u32(&data).unwrap();
            let (rle, _) = rle_encode(&mut e, &v).unwrap();
            assert_eq!(rle, Rle::encode_reference(&data), "first={first:#x}");
        }
    }
}
