//! Bitonic sort — the classic *oblivious* vector-model sort, built from
//! `iota`, elementwise bit tricks, `gather`, min/max, and `select`.
//!
//! Every compare-exchange stage is three data-parallel steps: compute each
//! element's partner index (`i ^ j`, an elementwise XOR on the index
//! vector), `gather` the partner values, and select min or max according to
//! the element's position and its block's direction. The network is
//! O(n·lg²n) work but each of the lg²n stages is a constant number of
//! primitive launches — the textbook trade against the split radix sort's
//! O(bits) passes, quantified by the `ablation_sorts` bench.
//!
//! Inputs are padded to the next power of two with `u32::MAX` sentinels,
//! which sort to the tail and are discarded.

use rvv_isa::{Sew, VAluOp, VCmp};
use scanvec::primitives::{cmp_flags, copy, elem_vv, elem_vx, gather, iota, select};
use scanvec::ScanResult;
use scanvec::{ScanEnv, SvVector};

/// In-place bitonic sort (ascending) of a `u32` device vector.
/// Returns the dynamic instruction count.
pub fn bitonic_sort(env: &mut ScanEnv, v: &SvVector) -> ScanResult<u64> {
    let n = v.len();
    if n < 2 {
        return Ok(0);
    }
    let p = n.next_power_of_two();
    let mark = env.heap_mark();
    let mut retired = 0;

    // Padded working vector: data then MAX sentinels.
    let work = env.alloc(Sew::E32, p)?;
    retired += copy(env, v, &env.slice(&work, 0, n)?)?;
    if p > n {
        let tail = env.slice(&work, n, p - n)?;
        retired += elem_vx(env, VAluOp::Or, &tail, u32::MAX as u64)?;
    }

    let idx = env.alloc(Sew::E32, p)?;
    let partner_idx = env.alloc(Sew::E32, p)?;
    let partner = env.alloc(Sew::E32, p)?;
    let masked = env.alloc(Sew::E32, p)?;
    let zeros = env.alloc(Sew::E32, p)?; // stays zero
    let low = env.alloc(Sew::E32, p)?;
    let asc = env.alloc(Sew::E32, p)?;
    let want_min = env.alloc(Sew::E32, p)?;
    let mn = env.alloc(Sew::E32, p)?;
    let mx = env.alloc(Sew::E32, p)?;
    retired += iota(env, &idx)?;

    let lg = p.trailing_zeros();
    for stage in 0..lg {
        let k = 1u64 << (stage + 1); // block size of this stage
        for sub in (0..=stage).rev() {
            let j = 1u64 << sub; // partner distance
                                 // partner = i ^ j.
            retired += copy(env, &idx, &partner_idx)?;
            retired += elem_vx(env, VAluOp::Xor, &partner_idx, j)?;
            retired += gather(env, &work, &partner_idx, &partner)?;
            // low  = ((i & j) == 0): this element keeps the "first" slot.
            retired += copy(env, &idx, &masked)?;
            retired += elem_vx(env, VAluOp::And, &masked, j)?;
            retired += cmp_flags(env, VCmp::Eq, &masked, &zeros, &low)?;
            // asc  = ((i & k) == 0): this block sorts ascending.
            retired += copy(env, &idx, &masked)?;
            retired += elem_vx(env, VAluOp::And, &masked, k)?;
            retired += cmp_flags(env, VCmp::Eq, &masked, &zeros, &asc)?;
            // want_min = (low == asc).
            retired += cmp_flags(env, VCmp::Eq, &low, &asc, &want_min)?;
            retired += elem_vv(env, VAluOp::Minu, &work, &partner, &mn)?;
            retired += elem_vv(env, VAluOp::Maxu, &work, &partner, &mx)?;
            retired += select(env, &want_min, &mn, &mx, &work)?;
        }
    }

    retired += copy(env, &env.slice(&work, 0, n)?, v)?;
    env.release_to(mark);
    Ok(retired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn env() -> ScanEnv {
        crate::testutil::test_session(256)
    }

    fn check(data: Vec<u32>) {
        let mut e = env();
        let v = e.from_u32(&data).unwrap();
        bitonic_sort(&mut e, &v).unwrap();
        let mut want = data;
        want.sort_unstable();
        assert_eq!(e.to_u32(&v), want);
    }

    #[test]
    fn sorts_power_of_two_sizes() {
        let mut rng = StdRng::seed_from_u64(61);
        for n in [2usize, 4, 64, 256] {
            check((0..n).map(|_| rng.random()).collect());
        }
    }

    #[test]
    fn sorts_ragged_sizes_with_padding() {
        let mut rng = StdRng::seed_from_u64(62);
        for n in [3usize, 5, 17, 100, 333] {
            check((0..n).map(|_| rng.random()).collect());
        }
    }

    #[test]
    fn sorts_sentinel_valued_data() {
        // Data containing u32::MAX must still sort correctly (sentinels are
        // only in the padding region and get truncated away).
        check(vec![u32::MAX, 0, u32::MAX, 5, 1]);
    }

    #[test]
    fn degenerate_inputs() {
        check(vec![]);
        check(vec![7]);
        check(vec![2, 1]);
        check(vec![9; 50]);
        check((0..33u32).rev().collect());
    }

    #[test]
    fn agrees_with_radix_sort() {
        let mut rng = StdRng::seed_from_u64(63);
        let data: Vec<u32> = (0..200).map(|_| rng.random_range(0..10_000)).collect();
        let mut e = env();
        let a = e.from_u32(&data).unwrap();
        bitonic_sort(&mut e, &a).unwrap();
        let b = e.from_u32(&data).unwrap();
        crate::split_radix_sort(&mut e, &b, 32).unwrap();
        assert_eq!(e.to_u32(&a), e.to_u32(&b));
    }
}
