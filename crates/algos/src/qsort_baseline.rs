//! Scalar quicksort baseline — the workspace's stand-in for the paper's
//! `qsort()` from stdlib (Table 1's comparison column).
//!
//! A complete iterative quicksort written in the scalar EDSL and executed
//! on the simulated machine, so its dynamic instruction count is measured
//! by the same counter as the vectorized sort:
//!
//! * Lomuto partition with last-element pivot.
//! * Explicit stack of `(lo, hi)` ranges in simulated memory, growing down
//!   from `sp`; the **larger** side is pushed and the smaller side is
//!   iterated, bounding stack depth to ⌈lg n⌉ entries (the classic
//!   argument: everything pushed after a range lies inside its smaller
//!   sibling, so stacked sizes decrease geometrically).
//! * Ranges of fewer than two elements are never pushed.
//!
//! glibc's `qsort` is a merge sort with an insertion-sort fallback and more
//! per-comparison overhead (indirect comparator calls), which is why the
//! paper's absolute counts are higher (≈511 instructions/element at N=10⁶
//! vs ≈100 here); the *shape* — O(n log n) scalar sort vs O(bits·n)
//! vectorized radix sort — is what Table 1 compares.

use rvv_asm::ProgramBuilder;
use rvv_isa::{MemWidth, Sew, XReg};
use rvv_sim::Program;
use scanvec::ScanResult;
use scanvec::{ScanEnv, SvVector};

fn mem_width(sew: Sew) -> MemWidth {
    match sew {
        Sew::E8 => MemWidth::B,
        Sew::E16 => MemWidth::H,
        Sew::E32 => MemWidth::W,
        Sew::E64 => MemWidth::D,
    }
}

/// Build the quicksort program for a given element width.
///
/// Args: `a0` = n, `a1` = base pointer.
pub fn build_qsort(sew: Sew) -> ScanResult<Program> {
    let w = mem_width(sew);
    let esz = sew.bytes() as i32;
    let lo = XReg::new(5); // t0
    let hi = XReg::new(6); // t1
    let i = XReg::new(7); // t2
    let j = XReg::new(28); // t3
    let pivot = XReg::arg(4);
    let t1 = XReg::arg(5);
    let t2 = XReg::arg(6);
    let t3 = XReg::arg(7);
    let sentinel = XReg::arg(2);
    let sp = XReg::SP;

    let mut b = ProgramBuilder::new(format!("qsort_e{}", sew.bits()));
    let done = b.label();
    let outer = b.label();
    let pop = b.label();
    // n < 2: nothing to do.
    b.li(t1, 2);
    b.bltu(XReg::arg(0), t1, done);
    b.mv(sentinel, sp);
    b.mv(lo, XReg::arg(1));
    b.addi(t1, XReg::arg(0), -1);
    b.slli(t1, t1, sew.bytes().trailing_zeros() as i32);
    b.add(hi, XReg::arg(1), t1);

    b.bind(outer);
    b.bgeu(lo, hi, pop);
    // ---- Lomuto partition over [lo, hi], pivot = a[hi] ----
    b.load(w, false, pivot, hi, 0);
    b.mv(i, lo);
    b.mv(j, lo);
    let ploop = b.label();
    let noswap = b.label();
    b.bind(ploop);
    b.load(w, false, t1, j, 0);
    b.bgeu(t1, pivot, noswap);
    // a[j] < pivot: swap a[i], a[j]; i++.
    b.load(w, false, t2, i, 0);
    b.store(w, t1, i, 0);
    b.store(w, t2, j, 0);
    b.addi(i, i, esz);
    b.bind(noswap);
    b.addi(j, j, esz);
    b.bltu(j, hi, ploop);
    // Pivot into place: swap a[i], a[hi].
    b.load(w, false, t1, i, 0);
    b.store(w, pivot, i, 0);
    b.store(w, t1, hi, 0);
    // ---- push larger side, iterate smaller ----
    b.sub(t1, i, lo); // left bytes
    b.sub(t2, hi, i); // right bytes
    let left_smaller = b.label();
    let no_push_left = b.label();
    let no_push_right = b.label();
    b.bltu(t1, t2, left_smaller);
    // left >= right: push left (if >= 2 elements), iterate right.
    b.li(t3, 2 * esz as i64);
    b.bltu(t1, t3, no_push_left);
    b.addi(sp, sp, -16);
    b.sd(lo, sp, 0);
    b.addi(t3, i, -esz);
    b.sd(t3, sp, 8);
    b.bind(no_push_left);
    b.addi(lo, i, esz);
    b.jump(outer);
    b.bind(left_smaller);
    // right > left: push right (if >= 2 elements), iterate left.
    b.li(t3, 2 * esz as i64);
    b.bltu(t2, t3, no_push_right);
    b.addi(sp, sp, -16);
    b.addi(t3, i, esz);
    b.sd(t3, sp, 0);
    b.sd(hi, sp, 8);
    b.bind(no_push_right);
    b.addi(hi, i, -esz);
    b.jump(outer);

    b.bind(pop);
    b.beq(sp, sentinel, done);
    b.ld(lo, sp, 0);
    b.ld(hi, sp, 8);
    b.addi(sp, sp, 16);
    b.jump(outer);

    b.bind(done);
    b.halt();
    Ok(b.finish()?)
}

/// Sort a device vector in place with the scalar quicksort; returns the
/// dynamic instruction count.
pub fn qsort_baseline(env: &mut ScanEnv, v: &SvVector) -> ScanResult<u64> {
    let p = env.kernel("qsort_baseline", v.sew(), |_, sew| build_qsort(sew))?;
    let (r, _) = env.run(&p, &[v.len() as u64, v.addr()])?;
    Ok(r.retired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rvv_isa::InstrClass;

    #[test]
    fn sorts_random_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u32> = (0..1500).map(|_| rng.random()).collect();
        let mut e = ScanEnv::paper_default();
        let v = e.from_u32(&data).unwrap();
        qsort_baseline(&mut e, &v).unwrap();
        let mut want = data.clone();
        want.sort_unstable();
        assert_eq!(e.to_u32(&v), want);
        // Purely scalar.
        assert_eq!(e.machine().counters.vector_total(), 0);
    }

    #[test]
    fn handles_degenerate_inputs() {
        let mut e = ScanEnv::paper_default();
        for data in [
            vec![],
            vec![5u32],
            vec![2u32, 1],
            vec![1u32, 2],
            vec![3u32; 100],             // all equal
            (0..200u32).collect(),       // sorted
            (0..200u32).rev().collect(), // reverse sorted
        ] {
            let v = e.from_u32(&data).unwrap();
            qsort_baseline(&mut e, &v).unwrap();
            let mut want = data.clone();
            want.sort_unstable();
            assert_eq!(e.to_u32(&v), want, "failed on {data:?}");
        }
    }

    #[test]
    fn sorted_input_does_not_blow_the_stack() {
        // Lomuto + last-element pivot is O(n²) on sorted input, but the
        // explicit stack must stay within ⌈lg n⌉ entries (only real 2-sided
        // partitions push). 2000 sorted elements would need a 32 KB stack
        // if empty sides were pushed.
        let data: Vec<u32> = (0..2000).collect();
        let mut e = ScanEnv::paper_default();
        let v = e.from_u32(&data).unwrap();
        qsort_baseline(&mut e, &v).unwrap();
        assert_eq!(e.to_u32(&v), data);
    }

    #[test]
    fn cost_is_n_log_n_ish_on_random_data() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut costs = Vec::new();
        for n in [1000usize, 10000] {
            let data: Vec<u32> = (0..n).map(|_| rng.random()).collect();
            let mut e = ScanEnv::paper_default();
            let v = e.from_u32(&data).unwrap();
            let c = qsort_baseline(&mut e, &v).unwrap();
            costs.push(c as f64 / n as f64);
        }
        // Per-element cost grows roughly like lg n: the 10x input should
        // cost more per element, but far less than 10x more.
        assert!(costs[1] > costs[0]);
        assert!(costs[1] < costs[0] * 2.0, "{costs:?}");
    }

    #[test]
    fn e64_keys_sort() {
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<u64> = (0..300).map(|_| rng.random()).collect();
        let mut e = ScanEnv::paper_default();
        let v = e.from_u64(&data).unwrap();
        qsort_baseline(&mut e, &v).unwrap();
        let mut want = data.clone();
        want.sort_unstable();
        assert_eq!(e.to_elems(&v), want);
    }

    #[test]
    fn branch_heavy_profile() {
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<u32> = (0..500).map(|_| rng.random()).collect();
        let mut e = ScanEnv::paper_default();
        let v = e.from_u32(&data).unwrap();
        qsort_baseline(&mut e, &v).unwrap();
        let c = &e.machine().counters;
        assert!(c.class(InstrClass::ScalarCtrl) > 0);
        assert!(c.class(InstrClass::ScalarMem) > 0);
    }
}
