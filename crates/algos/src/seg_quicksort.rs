//! Segmented quicksort — the algorithm the paper cites as the motivation
//! for segmented scans (§5: "an algorithm like quick sort needs to split
//! the whole array into different segments and then sort each segment
//! recursively").
//!
//! This is Blelloch's flat quicksort: **all segments advance together** in
//! each round, with no host-side recursion over subarrays. One round:
//!
//! 1. Distribute each segment's first element as its pivot
//!    ([`crate::derived::seg_copy_first`]).
//! 2. Classify every element `<` / `=` / `>` its pivot (elementwise
//!    compares).
//! 3. Compute each element's destination with segmented enumerates: the
//!    `<` block first, then `=`, then `>`, each stable
//!    ([`crate::derived::seg_exclusive_plus`] + [`crate::derived::seg_total`]).
//! 4. Permute elements to their destinations; the same permutation carries
//!    the next round's head flags (block starts become segment heads; every
//!    `=` element becomes a singleton segment, which both preserves
//!    stability and makes duplicate-heavy inputs converge).
//!
//! The round is O(n) primitive work, and the expected number of rounds is
//! O(lg n), so this sorts in expected O(n lg n) — entirely in the scan
//! vector model.

use crate::derived::{seg_copy_first, seg_exclusive_plus, seg_total};
use rvv_isa::{VAluOp, VCmp};
use scanvec::primitives::{cmp_flags, copy, elem_vv, iota, permute, reduce, select};
use scanvec::{ScanEnv, SvVector};
use scanvec::{ScanOp, ScanResult};

/// One quicksort round over every live segment. Returns retired
/// instructions. `x` and `heads` are updated in place.
fn round(env: &mut ScanEnv, x: &SvVector, heads: &SvVector) -> ScanResult<u64> {
    let n = x.len();
    let sew = x.sew();
    let mark = env.heap_mark();
    let pivots = env.alloc(sew, n)?;
    let lt = env.alloc(sew, n)?;
    let eq = env.alloc(sew, n)?;
    let gt = env.alloc(sew, n)?;
    let lt_exc = env.alloc(sew, n)?;
    let gt_exc = env.alloc(sew, n)?;
    let lt_tot = env.alloc(sew, n)?;
    let eq_tot = env.alloc(sew, n)?;
    let base = env.alloc(sew, n)?;
    let pos = env.alloc(sew, n)?;
    let tmp = env.alloc(sew, n)?;
    let newx = env.alloc(sew, n)?;
    let newheads = env.alloc(sew, n)?;

    let mut r = 0;
    // 1. pivots = first element of each segment.
    r += seg_copy_first(env, x, heads, &pivots)?;
    // 2. three-way classification.
    r += cmp_flags(env, VCmp::Ltu, x, &pivots, &lt)?;
    r += cmp_flags(env, VCmp::Eq, x, &pivots, &eq)?;
    r += cmp_flags(env, VCmp::Gtu, x, &pivots, &gt)?;
    // 3. destination = seg_base
    //                + lt ? lt_exc
    //                : eq ? LT + eq_exc          (eq_exc derived below)
    //                : LT + EQ + gt_exc.
    r += seg_exclusive_plus(env, &lt, heads, &lt_exc)?;
    r += seg_exclusive_plus(env, &gt, heads, &gt_exc)?;
    r += seg_total(env, &lt, heads, &lt_tot)?;
    r += seg_total(env, &eq, heads, &eq_tot)?;
    // base = index of segment head, distributed.
    r += iota(env, &base)?;
    r += seg_copy_first(env, &base, heads, &base)?;
    // eq_exc can be derived without another scan: within a segment, the
    // number of earlier `=` elements is (elements before me) - (earlier <)
    // - (earlier >), i.e. (i - base) - lt_exc - gt_exc.
    r += iota(env, &tmp)?;
    r += elem_vv(env, VAluOp::Sub, &tmp, &base, &tmp)?;
    r += elem_vv(env, VAluOp::Sub, &tmp, &lt_exc, &tmp)?;
    r += elem_vv(env, VAluOp::Sub, &tmp, &gt_exc, &tmp)?; // tmp = eq_exc
                                                          // Assemble the three block offsets.
    r += elem_vv(env, VAluOp::Add, &tmp, &lt_tot, &tmp)?; // eq block: LT + eq_exc
    r += elem_vv(env, VAluOp::Add, &gt_exc, &lt_tot, &gt_exc)?;
    r += elem_vv(env, VAluOp::Add, &gt_exc, &eq_tot, &gt_exc)?; // gt block: LT+EQ+gt_exc
    r += select(env, &eq, &tmp, &gt_exc, &pos)?; // eq ? eq-dest : gt-dest
    r += select(env, &lt, &lt_exc, &pos, &pos)?; // lt ? lt-dest : ...
    r += elem_vv(env, VAluOp::Add, &pos, &base, &pos)?;
    // 4. scatter data and next-round head flags through the same permute.
    //    New heads: start of the < block (lt && lt_exc == 0), start of the
    //    > block (gt && gt_exc == LT+EQ at pos... equivalently gt_exc-block
    //    first), and every = element (singleton segments).
    //    first_of_lt = lt && (lt_exc == 0); first_of_gt computed on the
    //    pre-assembled gt_exc (already offset by LT+EQ): first iff its
    //    within-block exclusive count was zero, i.e. gt_exc == LT+EQ. It is
    //    easier to recompute from scratch: a fresh exclusive enumerate of
    //    gt. To stay frugal we reuse tmp: tmp currently holds LT + eq_exc.
    let first_lt = env.alloc(sew, n)?;
    let first_gt = env.alloc(sew, n)?;
    let zeros = env.alloc(sew, n)?; // alloc() zero-fills
    r += seg_exclusive_plus(env, &gt, heads, &first_gt)?; // raw gt_exc again
    r += cmp_flags(env, VCmp::Eq, &first_gt, &zeros, &first_gt)?;
    r += elem_vv(env, VAluOp::And, &first_gt, &gt, &first_gt)?;
    r += cmp_flags(env, VCmp::Eq, &lt_exc, &zeros, &first_lt)?;
    r += elem_vv(env, VAluOp::And, &first_lt, &lt, &first_lt)?;
    // head-flag source = first_lt | first_gt | eq.
    r += elem_vv(env, VAluOp::Or, &first_lt, &first_gt, &first_lt)?;
    r += elem_vv(env, VAluOp::Or, &first_lt, &eq, &first_lt)?;
    r += permute(env, x, &pos, &newx)?;
    r += permute(env, &first_lt, &pos, &newheads)?;
    r += copy(env, &newx, x)?;
    r += copy(env, &newheads, heads)?;
    env.release_to(mark);
    Ok(r)
}

/// Sort a device vector in place with the flat segmented quicksort.
/// Returns total retired instructions across all rounds.
pub fn seg_quicksort(env: &mut ScanEnv, v: &SvVector) -> ScanResult<u64> {
    let n = v.len();
    if n < 2 {
        return Ok(0);
    }
    let sew = v.sew();
    let mark = env.heap_mark();
    let heads = env.alloc(sew, n)?;
    env.store_elem(&heads, 0, 1)?; // one segment covering everything
    let mut retired = 0;
    // Expected O(lg n) rounds; the hard cap guards against an adversarial
    // pivot sequence (every round strictly refines segments, and a segment
    // of length L shrinks its longest child by at least 1, so n rounds is
    // an absolute upper bound).
    for _ in 0..n {
        retired += round(env, v, &heads)?;
        // Converged when every element is its own segment head.
        let (min_flag, r) = reduce(env, ScanOp::Min, &heads)?;
        retired += r;
        if min_flag == 1 {
            break;
        }
    }
    env.release_to(mark);
    Ok(retired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn env() -> ScanEnv {
        crate::testutil::test_session(256)
    }

    fn check_sorts(data: Vec<u32>) {
        let mut e = env();
        let v = e.from_u32(&data).unwrap();
        seg_quicksort(&mut e, &v).unwrap();
        let mut want = data;
        want.sort_unstable();
        assert_eq!(e.to_u32(&v), want);
    }

    #[test]
    fn sorts_small_example() {
        check_sorts(vec![5, 7, 3, 1, 4, 2, 3, 1]);
    }

    #[test]
    fn sorts_random() {
        let mut rng = StdRng::seed_from_u64(11);
        check_sorts((0..500).map(|_| rng.random()).collect());
    }

    #[test]
    fn sorts_duplicate_heavy() {
        let mut rng = StdRng::seed_from_u64(12);
        check_sorts((0..400).map(|_| rng.random_range(0..8)).collect());
    }

    #[test]
    fn sorts_degenerate() {
        check_sorts(vec![]);
        check_sorts(vec![1]);
        check_sorts(vec![2, 1]);
        check_sorts(vec![7; 100]);
        check_sorts((0..128).collect());
        check_sorts((0..128).rev().collect());
    }

    #[test]
    fn rounds_scale_logarithmically() {
        // Cost per element per round is O(1); random input should take
        // O(lg n) rounds, so per-element cost at 4x the size grows only
        // modestly.
        let mut rng = StdRng::seed_from_u64(21);
        let mut per_elem = Vec::new();
        for n in [256usize, 1024] {
            let data: Vec<u32> = (0..n).map(|_| rng.random()).collect();
            let mut e = env();
            let v = e.from_u32(&data).unwrap();
            let c = seg_quicksort(&mut e, &v).unwrap();
            per_elem.push(c as f64 / n as f64);
        }
        assert!(per_elem[1] < per_elem[0] * 3.0, "{per_elem:?}");
    }
}
