//! Derived segmented operations, composed purely from core primitives.
//!
//! Blelloch's algorithm toolbox uses a handful of segmented idioms beyond
//! the raw segmented scan; all are expressible as short primitive
//! compositions (this module is the proof). They power the segmented
//! quicksort and the sparse matrix-vector product.

use rvv_isa::VAluOp;
use scanvec::primitives::{copy, elem_vv, reverse, seg_scan};
use scanvec::{ScanEnv, SvVector};
use scanvec::{ScanOp, ScanResult};

/// Distribute each segment's **first** element to every element of the
/// segment (`seg-copy` / distribute in Blelloch's terms), writing into
/// `dst`.
///
/// Implemented as `seg_plus_scan(x · head_flags)`: only the head
/// contributes to each segment's running sum, so the scan carries the head
/// value across the whole segment.
pub fn seg_copy_first(
    env: &mut ScanEnv,
    x: &SvVector,
    head_flags: &SvVector,
    dst: &SvVector,
) -> ScanResult<u64> {
    let mut retired = elem_vv(env, VAluOp::Mul, x, head_flags, dst)?;
    retired += seg_scan(env, ScanOp::Plus, dst, head_flags)?;
    Ok(retired)
}

/// Segmented **exclusive** plus-scan into `dst`:
/// `dst[i] = Σ x[j]` over earlier `j` in the same segment.
///
/// Composed as `seg_inclusive(x) - x` elementwise — exact for plus over the
/// wrapping unsigned domain.
pub fn seg_exclusive_plus(
    env: &mut ScanEnv,
    x: &SvVector,
    head_flags: &SvVector,
    dst: &SvVector,
) -> ScanResult<u64> {
    let mut retired = copy(env, x, dst)?;
    retired += seg_scan(env, ScanOp::Plus, dst, head_flags)?;
    retired += elem_vv(env, VAluOp::Sub, dst, x, dst)?;
    Ok(retired)
}

/// Segmented **exclusive** scan for *any* operator: `dst[i]` combines the
/// earlier elements of `i`'s segment, starting from the identity at each
/// head.
///
/// Composition: inclusive segmented scan, shift down by one element
/// (an offset copy), then `select` the identity at segment heads. Unlike
/// [`seg_exclusive_plus`] this needs no inverse, so it works for
/// `Max`/`Min`/`And`/`Or` too.
pub fn seg_exclusive(
    env: &mut ScanEnv,
    op: ScanOp,
    x: &SvVector,
    head_flags: &SvVector,
    dst: &SvVector,
) -> ScanResult<u64> {
    let n = x.len();
    if n == 0 {
        return Ok(0);
    }
    let mark = env.heap_mark();
    let inc = env.alloc(x.sew(), n)?;
    let idvec = env.alloc(x.sew(), n)?;
    let mut retired = 0;
    retired += copy(env, x, &inc)?;
    retired += seg_scan(env, op, &inc, head_flags)?;
    // dst[1..] = inclusive[..n-1]; dst[0] irrelevant (head selected below).
    retired += copy(env, &env.slice(&inc, 0, n - 1)?, &env.slice(dst, 1, n - 1)?)?;
    // Identity everywhere heads are set.
    retired +=
        scanvec::primitives::elem_vx(env, rvv_isa::VAluOp::Or, &idvec, op.identity(x.sew()))?;
    retired += scanvec::primitives::select(env, head_flags, &idvec, dst, dst)?;
    env.release_to(mark);
    Ok(retired)
}

/// Per-segment reduction: `⊕` over each segment, packed to one value per
/// segment in `dst` (which must hold at least `segment_count` elements).
/// Returns `(segment_count, retired)`.
pub fn seg_reduce(
    env: &mut ScanEnv,
    op: ScanOp,
    x: &SvVector,
    head_flags: &SvVector,
    dst: &SvVector,
) -> ScanResult<(u64, u64)> {
    let n = x.len();
    if n == 0 {
        return Ok((0, 0));
    }
    let mark = env.heap_mark();
    let sums = env.alloc(x.sew(), n)?;
    let tails = env.alloc(x.sew(), n)?;
    let mut retired = 0;
    retired += copy(env, x, &sums)?;
    retired += seg_scan(env, op, &sums, head_flags)?;
    retired += tail_flags(env, head_flags, &tails)?;
    let (count, r) = scanvec::primitives::pack(env, &sums, &tails, dst)?;
    retired += r;
    env.release_to(mark);
    Ok((count, retired))
}

/// Tail flags from head flags: `tails[i] = 1` iff `i` is the last element
/// of its segment (`heads` shifted left by one, with the final element
/// always a tail).
pub fn tail_flags(env: &mut ScanEnv, heads: &SvVector, tails: &SvVector) -> ScanResult<u64> {
    let n = heads.len();
    if n == 0 {
        return Ok(0);
    }
    // tails[0..n-1] = heads[1..n]  (an offset copy), tails[n-1] = 1.
    let retired = copy(
        env,
        &env.slice(heads, 1, n - 1)?,
        &env.slice(tails, 0, n - 1)?,
    )?;
    env.store_elem(tails, n - 1, 1)?;
    Ok(retired)
}

/// Distribute each segment's **total** (`Σ x` over the segment) to every
/// element of the segment.
///
/// Composition: forward segmented inclusive scan puts the total at each
/// segment's tail; reversing data *and* descriptor turns tails into heads;
/// a segmented copy-first distributes them; reversing back restores order.
pub fn seg_total(
    env: &mut ScanEnv,
    x: &SvVector,
    head_flags: &SvVector,
    dst: &SvVector,
) -> ScanResult<u64> {
    let n = x.len();
    if n == 0 {
        return Ok(0);
    }
    let mark = env.heap_mark();
    let tails = env.alloc(x.sew(), n)?;
    let rsum = env.alloc(x.sew(), n)?;
    let rheads = env.alloc(x.sew(), n)?;
    let mut retired = 0;
    // dst = seg inclusive sums (totals sit at tails).
    retired += copy(env, x, dst)?;
    retired += seg_scan(env, ScanOp::Plus, dst, head_flags)?;
    // Reverse sums and descriptor: reversed tails are heads.
    retired += tail_flags(env, head_flags, &tails)?;
    retired += reverse(env, dst, &rsum)?;
    retired += reverse(env, &tails, &rheads)?;
    // Distribute the (reversed) head values, then reverse back.
    retired += seg_copy_first(env, &rsum, &rheads, &rsum)?;
    retired += reverse(env, &rsum, dst)?;
    env.release_to(mark);
    Ok(retired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvv_isa::Sew;
    use scanvec::Segments;

    fn env() -> ScanEnv {
        crate::testutil::test_session(128)
    }

    #[test]
    fn copy_first_distributes_heads() {
        let segs = Segments::from_lengths(&[3, 2, 4]).unwrap();
        let x = [7u32, 1, 2, 9, 4, 5, 5, 5, 5];
        let mut e = env();
        let vx = e.from_u32(&x).unwrap();
        let vf = e.from_u32(segs.head_flags()).unwrap();
        let d = e.alloc(Sew::E32, x.len()).unwrap();
        seg_copy_first(&mut e, &vx, &vf, &d).unwrap();
        assert_eq!(e.to_u32(&d), vec![7, 7, 7, 9, 9, 5, 5, 5, 5]);
    }

    #[test]
    fn exclusive_plus_matches_oracle() {
        let segs = Segments::from_lengths(&[4, 1, 3]).unwrap();
        let x = [1u32, 2, 3, 4, 10, 5, 6, 7];
        let mut e = env();
        let vx = e.from_u32(&x).unwrap();
        let vf = e.from_u32(segs.head_flags()).unwrap();
        let d = e.alloc(Sew::E32, x.len()).unwrap();
        seg_exclusive_plus(&mut e, &vx, &vf, &d).unwrap();
        let xs: Vec<u64> = x.iter().map(|&v| v as u64).collect();
        let want: Vec<u32> =
            scanvec::native::seg_scan_exclusive(ScanOp::Plus, Sew::E32, &xs, segs.head_flags())
                .into_iter()
                .map(|v| v as u32)
                .collect();
        assert_eq!(e.to_u32(&d), want);
    }

    #[test]
    fn tail_flags_mark_segment_ends() {
        let segs = Segments::from_lengths(&[2, 3, 1]).unwrap();
        let mut e = env();
        let vf = e.from_u32(segs.head_flags()).unwrap();
        let t = e.alloc(Sew::E32, 6).unwrap();
        tail_flags(&mut e, &vf, &t).unwrap();
        assert_eq!(e.to_u32(&t), vec![0, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn seg_exclusive_all_ops_match_oracle() {
        let segs = Segments::from_lengths(&[3, 1, 5, 2]).unwrap();
        let x: Vec<u32> = vec![4, 9, 1, 7, 3, 3, 8, 2, 6, 5, 5];
        let xs: Vec<u64> = x.iter().map(|&v| v as u64).collect();
        for &op in &ScanOp::ALL {
            let mut e = env();
            let vx = e.from_u32(&x).unwrap();
            let vf = e.from_u32(segs.head_flags()).unwrap();
            let d = e.alloc(Sew::E32, x.len()).unwrap();
            seg_exclusive(&mut e, op, &vx, &vf, &d).unwrap();
            let want: Vec<u32> =
                scanvec::native::seg_scan_exclusive(op, Sew::E32, &xs, segs.head_flags())
                    .into_iter()
                    .map(|v| v as u32)
                    .collect();
            assert_eq!(e.to_u32(&d), want, "op={op}");
        }
    }

    #[test]
    fn seg_reduce_packs_per_segment_results() {
        let segs = Segments::from_lengths(&[3, 2, 4]).unwrap();
        let x = [1u32, 2, 3, 10, 20, 7, 1, 9, 2];
        let mut e = env();
        let vx = e.from_u32(&x).unwrap();
        let vf = e.from_u32(segs.head_flags()).unwrap();
        let d = e.alloc(Sew::E32, 3).unwrap();
        let (count, _) = seg_reduce(&mut e, ScanOp::Plus, &vx, &vf, &d).unwrap();
        assert_eq!(count, 3);
        assert_eq!(e.to_u32(&d), vec![6, 30, 19]);
        let (count, _) = seg_reduce(&mut e, ScanOp::Max, &vx, &vf, &d).unwrap();
        assert_eq!(count, 3);
        assert_eq!(e.to_u32(&d), vec![3, 20, 9]);
    }

    #[test]
    fn totals_distributed_everywhere() {
        let segs = Segments::from_lengths(&[3, 2, 4]).unwrap();
        let x = [1u32, 2, 3, 10, 20, 1, 1, 1, 1];
        let mut e = env();
        let vx = e.from_u32(&x).unwrap();
        let vf = e.from_u32(segs.head_flags()).unwrap();
        let d = e.alloc(Sew::E32, x.len()).unwrap();
        seg_total(&mut e, &vx, &vf, &d).unwrap();
        assert_eq!(e.to_u32(&d), vec![6, 6, 6, 30, 30, 4, 4, 4, 4]);
    }

    #[test]
    fn single_segment_total_is_reduction() {
        let x: Vec<u32> = (1..=20).collect();
        let segs = Segments::from_lengths(&[20]).unwrap();
        let mut e = env();
        let vx = e.from_u32(&x).unwrap();
        let vf = e.from_u32(segs.head_flags()).unwrap();
        let d = e.alloc(Sew::E32, 20).unwrap();
        seg_total(&mut e, &vx, &vf, &d).unwrap();
        assert_eq!(e.to_u32(&d), vec![210u32; 20]);
    }
}
