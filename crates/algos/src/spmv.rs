//! Sparse matrix–vector product via segmented sum — the classic segmented
//! scan application (Blelloch's original motivating example).
//!
//! The matrix is CSR-like: per-row nonzero values and column indices, with
//! rows described by a head-flags segmentation. One product is four
//! primitive launches: `gather` the dense vector entries by column index,
//! multiply elementwise, segmented plus-scan, and `pack` the per-row totals
//! out of the segment tails.

use crate::derived::seg_reduce;
use rand::RngExt;
use rvv_isa::VAluOp;
use scanvec::primitives::{elem_vv, gather};
use scanvec::segment::Segments;
use scanvec::ScanEnv;
use scanvec::{ScanError, ScanOp, ScanResult};

/// A sparse matrix in CSR form over `u32` values (mod-2³² arithmetic, like
/// every plus-scan in the paper's evaluation).
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    /// Number of columns (dense vector length).
    pub cols: u32,
    /// Nonzero values, row-major.
    pub values: Vec<u32>,
    /// Column index of each nonzero.
    pub col_idx: Vec<u32>,
    /// Number of nonzeros per row (rows with zero nonzeros are allowed;
    /// their product is 0).
    pub row_nnz: Vec<u32>,
}

impl CsrMatrix {
    /// Validate shape invariants.
    pub fn validate(&self) -> ScanResult<()> {
        let nnz: u64 = self.row_nnz.iter().map(|&x| x as u64).sum();
        if nnz != self.values.len() as u64 || self.values.len() != self.col_idx.len() {
            return Err(ScanError::LengthMismatch {
                what: "csr nnz",
                a: self.values.len(),
                b: nnz as usize,
            });
        }
        if self.col_idx.iter().any(|&c| c >= self.cols) {
            return Err(ScanError::BadSegmentDescriptor("column index out of range"));
        }
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.row_nnz.len()
    }

    /// Reference product on the host (mod 2³²).
    pub fn spmv_reference(&self, x: &[u32]) -> Vec<u32> {
        let mut y = Vec::with_capacity(self.rows());
        let mut at = 0usize;
        for &nnz in &self.row_nnz {
            let mut acc = 0u32;
            for k in 0..nnz as usize {
                acc = acc.wrapping_add(
                    self.values[at + k].wrapping_mul(x[self.col_idx[at + k] as usize]),
                );
            }
            y.push(acc);
            at += nnz as usize;
        }
        y
    }
}

/// `y = A·x` on the device. Returns `(y, retired_instructions)`.
pub fn spmv(env: &mut ScanEnv, a: &CsrMatrix, x: &[u32]) -> ScanResult<(Vec<u32>, u64)> {
    a.validate()?;
    if x.len() != a.cols as usize {
        return Err(ScanError::LengthMismatch {
            what: "spmv x",
            a: x.len(),
            b: a.cols as usize,
        });
    }
    // Head flags only describe nonempty rows; empty rows contribute 0 and
    // are stitched back in on the host.
    let nonempty: Vec<u32> = a.row_nnz.iter().copied().filter(|&l| l > 0).collect();
    let nnz = a.values.len();
    if nnz == 0 {
        return Ok((vec![0; a.rows()], 0));
    }
    let segs = Segments::from_lengths(&nonempty)?;
    let mark = env.heap_mark();
    let vals = env.from_u32(&a.values)?;
    let cols = env.from_u32(&a.col_idx)?;
    let xv = env.from_u32(x)?;
    let flags = env.from_u32(segs.head_flags())?;
    let gathered = env.alloc(vals.sew(), nnz)?;
    let out = env.alloc(vals.sew(), segs.segment_count())?;

    let mut retired = 0;
    retired += gather(env, &xv, &cols, &gathered)?;
    retired += elem_vv(env, VAluOp::Mul, &vals, &gathered, &gathered)?;
    let (count, r) = seg_reduce(env, ScanOp::Plus, &gathered, &flags, &out)?;
    retired += r;
    debug_assert_eq!(count as usize, segs.segment_count());
    let sums = env.to_u32(&out);
    env.release_to(mark);

    // Reinsert zeros for empty rows.
    let mut y = Vec::with_capacity(a.rows());
    let mut it = sums.into_iter();
    for &nnzr in &a.row_nnz {
        y.push(if nnzr == 0 {
            0
        } else {
            it.next().expect("one sum per nonempty row")
        });
    }
    Ok((y, retired))
}

/// Generate a random CSR matrix with `rows`×`cols` shape and roughly
/// `nnz_per_row` nonzeros per row (some rows possibly empty).
pub fn random_csr(rng: &mut impl rand::Rng, rows: usize, cols: u32, nnz_per_row: u32) -> CsrMatrix {
    let mut values = Vec::new();
    let mut col_idx = Vec::new();
    let mut row_nnz = Vec::new();
    for _ in 0..rows {
        let nnz = rng.random_range(0..=2 * nnz_per_row);
        row_nnz.push(nnz);
        for _ in 0..nnz {
            values.push(rng.random_range(0..1000));
            col_idx.push(rng.random_range(0..cols));
        }
    }
    CsrMatrix {
        cols,
        values,
        col_idx,
        row_nnz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn env() -> ScanEnv {
        crate::testutil::test_session(256)
    }

    #[test]
    fn small_known_product() {
        // [ 1 2 0 ]   [1]   [5]
        // [ 0 0 3 ] x [2] = [9]
        // [ 4 0 5 ]   [3]   [19]
        let a = CsrMatrix {
            cols: 3,
            values: vec![1, 2, 3, 4, 5],
            col_idx: vec![0, 1, 2, 0, 2],
            row_nnz: vec![2, 1, 2],
        };
        let mut e = env();
        let (y, _) = spmv(&mut e, &a, &[1, 2, 3]).unwrap();
        assert_eq!(y, vec![5, 9, 19]);
    }

    #[test]
    fn empty_rows_give_zero() {
        let a = CsrMatrix {
            cols: 4,
            values: vec![7],
            col_idx: vec![3],
            row_nnz: vec![0, 1, 0],
        };
        let mut e = env();
        let (y, _) = spmv(&mut e, &a, &[1, 1, 1, 10]).unwrap();
        assert_eq!(y, vec![0, 70, 0]);
    }

    #[test]
    fn random_matches_reference() {
        let mut rng = StdRng::seed_from_u64(77);
        let a = random_csr(&mut rng, 50, 64, 6);
        let x: Vec<u32> = (0..64).map(|_| rng.random_range(0..100)).collect();
        let mut e = env();
        let (y, retired) = spmv(&mut e, &a, &x).unwrap();
        assert_eq!(y, a.spmv_reference(&x));
        assert!(retired > 0);
    }

    #[test]
    fn validation_catches_bad_shapes() {
        let a = CsrMatrix {
            cols: 2,
            values: vec![1],
            col_idx: vec![5],
            row_nnz: vec![1],
        };
        assert!(a.validate().is_err());
        let a = CsrMatrix {
            cols: 2,
            values: vec![1, 2],
            col_idx: vec![0, 1],
            row_nnz: vec![1],
        };
        assert!(a.validate().is_err());
    }

    #[test]
    fn all_empty_matrix() {
        let a = CsrMatrix {
            cols: 3,
            values: vec![],
            col_idx: vec![],
            row_nnz: vec![0, 0],
        };
        let mut e = env();
        let (y, retired) = spmv(&mut e, &a, &[1, 2, 3]).unwrap();
        assert_eq!(y, vec![0, 0]);
        assert_eq!(retired, 0);
    }
}
