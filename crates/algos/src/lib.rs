//! # scanvec-algos — applications of the scan vector model
//!
//! Everything here is written against `scanvec`'s primitives with no
//! knowledge of RVV — demonstrating the paper's thesis that the scan
//! vector model is a sufficient high-level interface to the vector unit.
//!
//! * [`radix_sort`] — the paper's running example (§4.4): split radix
//!   sort from `get_flags` + `split`. Table 1's subject.
//! * [`mod@qsort_baseline`] — a complete scalar quicksort in the EDSL,
//!   standing in for the paper's stdlib `qsort()` (Table 1's baseline).
//! * [`mod@seg_quicksort`] — Blelloch's flat segmented quicksort, the
//!   algorithm §5 cites as the motivation for segmented scans.
//! * [`derived`] — derived segmented operations (distribute-first,
//!   segmented exclusive scan, per-segment totals) composed from
//!   primitives.
//! * [`mod@spmv`] — sparse matrix-vector product via gather + segmented sum.
//! * [`rle`] — run-length encode/decode as pure scan pipelines.
//! * [`mod@quickhull`] — convex hull with data-parallel farthest-point splits.
//! * [`bitonic`] — the oblivious O(n·lg²n) sorting network, for comparison.
//! * [`mod@histogram`] — counting by sort + run-length encode (no scatter-add
//!   exists in the model).
//! * [`mod@line_of_sight`] — visibility along a ray via exclusive max-scan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitonic;
pub mod derived;
pub mod histogram;
pub mod line_of_sight;
pub mod qsort_baseline;
pub mod quickhull;
pub mod radix_sort;
pub mod rle;
pub mod seg_quicksort;
pub mod spmv;

pub use bitonic::bitonic_sort;
pub use histogram::histogram;
pub use line_of_sight::{line_of_sight, line_of_sight_reference};
pub use qsort_baseline::{build_qsort, qsort_baseline};
pub use quickhull::{convex_hull_reference, quickhull};
pub use radix_sort::{split_radix_sort, split_radix_sort_pairs};
pub use rle::{rle_decode, rle_encode, Rle};
pub use seg_quicksort::seg_quicksort;
pub use spmv::{random_csr, spmv, CsrMatrix};

/// Shared unit-test support: one session constructor instead of a
/// hand-rolled [`scanvec::EnvConfig`] literal per algorithm module.
#[cfg(test)]
pub(crate) mod testutil {
    use scanvec::{Engine, EnvConfig, ScanEnv};

    /// A session for unit tests: `vlen` bits, LMUL=1, LLVM-14 spill
    /// profile, and a heap large enough for every algorithm's test data.
    pub(crate) fn test_session(vlen: u32) -> ScanEnv {
        test_session_lmul(vlen, rvv_isa::Lmul::M1)
    }

    /// [`test_session`] with an explicit LMUL, for the grouping tests.
    pub(crate) fn test_session_lmul(vlen: u32, lmul: rvv_isa::Lmul) -> ScanEnv {
        Engine::new()
            .session(EnvConfig {
                vlen,
                lmul,
                spill_profile: rvv_asm::SpillProfile::llvm14(),
                mem_bytes: 64 << 20,
            })
            .expect("test config passes Engine::validate")
    }
}
