//! Quickhull — convex hull by repeated farthest-point splitting, the other
//! flagship application in Blelloch's scan-vector-model exposition.
//!
//! All per-point work is data-parallel on the device: signed cross
//! products (e64 two's-complement elementwise arithmetic), the
//! farthest-point selection (order-preserving bias + unsigned max
//! reduction), and candidate filtering (`pack`). The recursion over hull
//! edges runs on the host, reading back only O(1) scalars per edge — the
//! same division of labour as a GPU quickhull driver. Expected depth is
//! O(lg h) for h hull points.
//!
//! Coordinates must be below 2³¹ so that coordinate differences fit i32
//! and their products fit i64 — then the device's e64 modular arithmetic
//! *is* exact signed arithmetic. `quickhull` validates this.

use rvv_isa::{Sew, VAluOp, VCmp};
use scanvec::primitives::{cmp_flags, elem_vv, elem_vx, iota, pack, reduce};
use scanvec::{ScanEnv, SvVector};
use scanvec::{ScanOp, ScanResult};

/// Order-preserving i64 → u64 bias.
const BIAS: u64 = 1 << 63;

/// A 2-D point with unsigned 32-bit coordinates.
pub type Point = (u32, u32);

struct Hull<'e> {
    env: &'e mut ScanEnv,
    retired: u64,
}

impl Hull<'_> {
    /// Signed cross product `(b-a) × (p-a)` for every point, as biased-u64
    /// values in a fresh device vector (positive cross = strictly left of
    /// the directed line a→b).
    fn biased_cross(
        &mut self,
        px: &SvVector,
        py: &SvVector,
        a: Point,
        b: Point,
    ) -> ScanResult<SvVector> {
        let n = px.len();
        let e = &mut *self.env;
        let t1 = e.alloc(Sew::E64, n)?;
        let t2 = e.alloc(Sew::E64, n)?;
        let cross = e.alloc(Sew::E64, n)?;
        // t1 = (bx-ax) * (py-ay); t2 = (by-ay) * (px-ax); cross = t1 - t2.
        let (ax, ay) = (a.0 as u64, a.1 as u64);
        let (bx, by) = (b.0 as u64, b.1 as u64);
        let mut r = 0;
        r += scanvec::primitives::copy(e, py, &t1)?;
        r += elem_vx(e, VAluOp::Sub, &t1, ay)?;
        r += elem_vx(e, VAluOp::Mul, &t1, bx.wrapping_sub(ax))?;
        r += scanvec::primitives::copy(e, px, &t2)?;
        r += elem_vx(e, VAluOp::Sub, &t2, ax)?;
        r += elem_vx(e, VAluOp::Mul, &t2, by.wrapping_sub(ay))?;
        r += elem_vv(e, VAluOp::Sub, &t1, &t2, &cross)?;
        r += elem_vx(e, VAluOp::Xor, &cross, BIAS)?;
        self.retired += r;
        Ok(cross)
    }

    /// Filter `(px, py)` down to the points strictly left of a→b.
    /// Returns the compacted coordinate vectors.
    fn left_of(
        &mut self,
        px: &SvVector,
        py: &SvVector,
        a: Point,
        b: Point,
    ) -> ScanResult<(SvVector, SvVector)> {
        let n = px.len();
        let cross = self.biased_cross(px, py, a, b)?;
        let keep = self.env.alloc(Sew::E64, n)?;
        let bias0 = self.env.alloc(Sew::E64, n)?;
        let mut r = elem_vx(self.env, VAluOp::Add, &bias0, BIAS)?; // bias(0) everywhere
        r += cmp_flags(self.env, VCmp::Gtu, &cross, &bias0, &keep)?;
        let kx = self.env.alloc(Sew::E64, n)?;
        let ky = self.env.alloc(Sew::E64, n)?;
        let (c1, r1) = pack(self.env, px, &keep, &kx)?;
        let (c2, r2) = pack(self.env, py, &keep, &ky)?;
        debug_assert_eq!(c1, c2);
        self.retired += r + r1 + r2;
        Ok((
            self.env.slice(&kx, 0, c1 as usize)?,
            self.env.slice(&ky, 0, c1 as usize)?,
        ))
    }

    /// Recursive step: hull vertices strictly left of a→b, in order.
    /// `px`/`py` hold only points already known to be strictly left of a→b.
    fn side(
        &mut self,
        px: &SvVector,
        py: &SvVector,
        a: Point,
        b: Point,
        out: &mut Vec<Point>,
    ) -> ScanResult<()> {
        let n = px.len();
        if n == 0 {
            return Ok(());
        }
        let mark = self.env.heap_mark();
        // Farthest point: maximum biased cross. Every candidate is strictly
        // left, so the maximum is a genuine hull vertex.
        let cross = self.biased_cross(px, py, a, b)?;
        let (maxv, rr) = reduce(self.env, ScanOp::Max, &cross)?;
        let mut r = rr;
        let maxvec = self.env.alloc(Sew::E64, n)?;
        r += elem_vx(self.env, VAluOp::Add, &maxvec, maxv)?;
        let at_max = self.env.alloc(Sew::E64, n)?;
        r += cmp_flags(self.env, VCmp::Eq, &cross, &maxvec, &at_max)?;
        let idxs = self.env.alloc(Sew::E64, n)?;
        r += iota(self.env, &idxs)?;
        let first = self.env.alloc(Sew::E64, n)?;
        let (_, rr) = pack(self.env, &idxs, &at_max, &first)?;
        r += rr;
        self.retired += r;
        let far_idx = self.env.load_elem(&first, 0) as usize;
        let far = (
            self.env.load_elem(px, far_idx) as u32,
            self.env.load_elem(py, far_idx) as u32,
        );
        // Recurse on the points outside each child chord.
        let (lx, ly) = self.left_of(px, py, a, far)?;
        self.side(&lx, &ly, a, far, out)?;
        out.push(far);
        let (rx, ry) = self.left_of(px, py, far, b)?;
        self.side(&rx, &ry, far, b, out)?;
        self.env.release_to(mark);
        Ok(())
    }
}

/// Convex hull of `points`, returned counter-clockwise starting from the
/// leftmost-lowest point. Collinear boundary points are excluded (strict
/// hull). Returns `(hull, retired_instructions)`.
pub fn quickhull(env: &mut ScanEnv, points: &[Point]) -> ScanResult<(Vec<Point>, u64)> {
    assert!(
        points
            .iter()
            .all(|&(x, y)| x <= i32::MAX as u32 && y <= i32::MAX as u32),
        "quickhull coordinates must be below 2^31 (cross products must fit i64)"
    );
    if points.len() < 3 {
        let mut h: Vec<Point> = points.to_vec();
        h.sort_unstable();
        h.dedup();
        return Ok((h, 0));
    }
    // Anchor chord: lexicographically smallest and largest points.
    let a = *points.iter().min().expect("non-empty");
    let b = *points.iter().max().expect("non-empty");
    if a == b {
        return Ok((vec![a], 0));
    }
    let xs: Vec<u64> = points.iter().map(|&(x, _)| x as u64).collect();
    let ys: Vec<u64> = points.iter().map(|&(_, y)| y as u64).collect();
    let mark = env.heap_mark();
    let px = env.from_elems(Sew::E64, &xs)?;
    let py = env.from_elems(Sew::E64, &ys)?;
    let mut driver = Hull { env, retired: 0 };
    // Walk the hull clockwise (upper chain a→b, then lower chain b→a)…
    let mut hull = vec![a];
    let (ux, uy) = driver.left_of(&px, &py, a, b)?;
    driver.side(&ux, &uy, a, b, &mut hull)?;
    hull.push(b);
    let (lx, ly) = driver.left_of(&px, &py, b, a)?;
    driver.side(&lx, &ly, b, a, &mut hull)?;
    // …then flip everything after the anchor to make it counter-clockwise.
    hull[1..].reverse();
    let retired = driver.retired;
    env.release_to(mark);
    Ok((hull, retired))
}

/// Host reference: Andrew's monotone chain (strict hull, CCW from the
/// lexicographic minimum).
pub fn convex_hull_reference(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_unstable();
    pts.dedup();
    if pts.len() < 3 {
        return pts;
    }
    let cross = |o: Point, a: Point, b: Point| -> i128 {
        (a.0 as i128 - o.0 as i128) * (b.1 as i128 - o.1 as i128)
            - (a.1 as i128 - o.1 as i128) * (b.0 as i128 - o.0 as i128)
    };
    let mut lower: Vec<Point> = Vec::new();
    for &p in &pts {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<Point> = Vec::new();
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0 {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    lower
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn env() -> ScanEnv {
        crate::testutil::test_session(256)
    }

    fn normalize(mut h: Vec<Point>) -> Vec<Point> {
        // Rotate so the lexicographic minimum is first (order preserved).
        if let Some(pos) = h.iter().enumerate().min_by_key(|(_, &p)| p).map(|(i, _)| i) {
            h.rotate_left(pos);
        }
        h
    }

    fn check(points: &[Point]) {
        let mut e = env();
        let (hull, _) = quickhull(&mut e, points).unwrap();
        let want = convex_hull_reference(points);
        assert_eq!(normalize(hull), normalize(want), "points: {points:?}");
    }

    #[test]
    fn square_with_interior_points() {
        check(&[(0, 0), (10, 0), (10, 10), (0, 10), (5, 5), (3, 7), (1, 2)]);
    }

    #[test]
    fn triangle_and_degenerate() {
        check(&[(0, 0), (4, 0), (2, 5)]);
        check(&[(1, 1)]);
        check(&[(1, 1), (2, 2)]);
        check(&[(1, 1), (1, 1), (1, 1)]);
    }

    #[test]
    fn collinear_points_are_excluded() {
        // Strict hull: midpoints of edges don't appear.
        check(&[
            (0, 0),
            (2, 0),
            (4, 0),
            (4, 4),
            (2, 4),
            (0, 4),
            (0, 2),
            (4, 2),
        ]);
    }

    #[test]
    fn random_point_clouds_match_reference() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..6 {
            let n = rng.random_range(3..400);
            let pts: Vec<Point> = (0..n)
                .map(|_| (rng.random_range(0..1000), rng.random_range(0..1000)))
                .collect();
            check(&pts);
        }
    }

    #[test]
    fn extreme_coordinates() {
        // Largest supported coordinates: differences fit i32, products i64.
        let m = i32::MAX as u32;
        check(&[(0, 0), (m, 0), (m, m), (0, m), (m / 2, m / 2), (1, m - 1)]);
    }

    #[test]
    #[should_panic(expected = "below 2^31")]
    fn oversized_coordinates_are_rejected() {
        let mut e = env();
        let _ = quickhull(&mut e, &[(0, 0), (u32::MAX, 0), (1, 1)]);
    }

    #[test]
    fn circle_points() {
        // All points on a (discretized) circle are hull members.
        let pts: Vec<Point> = (0..40)
            .map(|i| {
                let ang = i as f64 * std::f64::consts::TAU / 40.0;
                (
                    (50_000.0 + 30_000.0 * ang.cos()) as u32,
                    (50_000.0 + 30_000.0 * ang.sin()) as u32,
                )
            })
            .collect();
        check(&pts);
    }
}
