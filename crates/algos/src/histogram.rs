//! Histogram by sort-and-count — Blelloch's composition recipe: there is
//! no data-parallel scatter-*add* in the model (indexed stores collide),
//! so counting is done by **sorting the keys and run-length encoding the
//! result**: each run is one bucket's population.

use crate::radix_sort::split_radix_sort;
use crate::rle::rle_encode;
use scanvec::ScanEnv;
use scanvec::ScanResult;

/// Count occurrences of each value in `data`, which must be bucket ids
/// below `buckets`. Returns `(counts, retired_instructions)` with
/// `counts.len() == buckets`.
pub fn histogram(env: &mut ScanEnv, data: &[u32], buckets: u32) -> ScanResult<(Vec<u32>, u64)> {
    assert!(buckets > 0, "need at least one bucket");
    assert!(
        data.iter().all(|&x| x < buckets),
        "every sample must be a bucket id below {buckets}"
    );
    if data.is_empty() {
        return Ok((vec![0; buckets as usize], 0));
    }
    let mark = env.heap_mark();
    let v = env.from_u32(data)?;
    // Sorting only the bits that can be set keeps the pass count minimal.
    let bits = 32 - (buckets - 1).leading_zeros().min(31);
    let mut retired = split_radix_sort(env, &v, bits.max(1))?;
    let (rle, r) = rle_encode(env, &v)?;
    retired += r;
    env.release_to(mark);
    let mut counts = vec![0u32; buckets as usize];
    for (value, len) in rle.values.iter().zip(&rle.lengths) {
        counts[*value as usize] = *len;
    }
    Ok((counts, retired))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn env() -> ScanEnv {
        crate::testutil::test_session(512)
    }

    #[test]
    fn counts_known_distribution() {
        let data = [0u32, 3, 3, 1, 3, 0, 2, 2];
        let mut e = env();
        let (counts, _) = histogram(&mut e, &data, 5).unwrap();
        assert_eq!(counts, vec![2, 1, 2, 3, 0]);
    }

    #[test]
    fn random_matches_host_count() {
        let mut rng = StdRng::seed_from_u64(71);
        let buckets = 37u32;
        let data: Vec<u32> = (0..2000).map(|_| rng.random_range(0..buckets)).collect();
        let mut e = env();
        let (counts, retired) = histogram(&mut e, &data, buckets).unwrap();
        let mut want = vec![0u32; buckets as usize];
        for &x in &data {
            want[x as usize] += 1;
        }
        assert_eq!(counts, want);
        assert!(retired > 0);
        assert_eq!(
            counts.iter().map(|&c| c as usize).sum::<usize>(),
            data.len()
        );
    }

    #[test]
    fn single_bucket_and_empty() {
        let mut e = env();
        let (counts, _) = histogram(&mut e, &[0, 0, 0], 1).unwrap();
        assert_eq!(counts, vec![3]);
        let (counts, retired) = histogram(&mut e, &[], 4).unwrap();
        assert_eq!(counts, vec![0, 0, 0, 0]);
        assert_eq!(retired, 0);
    }

    #[test]
    fn power_of_two_buckets_use_exact_bit_count() {
        // 16 buckets -> 4 radix passes; correctness is what matters, the
        // pass count shows up as a much smaller cost than a 32-bit sort.
        let data: Vec<u32> = (0..500).map(|i| (i % 16) as u32).collect();
        let mut e = env();
        let (counts, cost16) = histogram(&mut e, &data, 16).unwrap();
        // 500 = 16*31 + 4: the first four buckets get 32, the rest 31.
        assert!(counts.iter().all(|&c| c == 31 || c == 32));
        assert_eq!(counts.iter().sum::<u32>(), 500);
        let mut e2 = env();
        let v = e2.from_u32(&data).unwrap();
        let cost32 = split_radix_sort(&mut e2, &v, 32).unwrap();
        assert!(
            cost16 < cost32,
            "bounded-key histogram must beat a full sort"
        );
    }
}
