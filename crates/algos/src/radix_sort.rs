//! Split radix sort (paper §4.4, Listing 9, Figure 2).
//!
//! Sorts unsigned integers by iterating from the least significant bit to
//! the most significant, each pass stably partitioning by the current bit
//! with the scan-vector-model `split` operation. Built **entirely from
//! primitives** — `get_flags`, `enumerate`, `p_add`, `select`, `permute` —
//! with no knowledge of RVV, which is the paper's whole point.

use scanvec::primitives::{copy, get_flags, split, split_pairs};
use scanvec::ScanResult;
use scanvec::{ScanEnv, SvVector};

/// In-place split radix sort over the low `bits` bits of each element.
/// Returns the total dynamic instruction count of all launched kernels.
///
/// Sorting full `u32` keys means `bits = 32`, exactly as the paper's
/// Listing 9 iterates `for (i = 0; i < 32; i++)`. When keys are known to be
/// bounded, fewer passes sort correctly in proportionally fewer
/// instructions (the `radix_sort` example sweeps this).
pub fn split_radix_sort(env: &mut ScanEnv, v: &SvVector, bits: u32) -> ScanResult<u64> {
    assert!(
        bits <= v.sew().bits(),
        "cannot sort more bits than the element width"
    );
    let n = v.len();
    let mark = env.heap_mark();
    let buffer = env.alloc(v.sew(), n)?;
    let flags = env.alloc(v.sew(), n)?;
    let mut retired = 0;
    // `cur` flips between the caller's vector and the buffer each pass,
    // exactly like the paper's pointer swap.
    let mut cur = v.clone();
    let mut other = buffer.clone();
    for bit in 0..bits {
        retired += env.phase(&format!("radix_pass_{bit}"), |env| -> ScanResult<u64> {
            let mut r = get_flags(env, &cur, bit, &flags)?;
            r += split(env, &cur, &flags, &other)?;
            Ok(r)
        })?;
        std::mem::swap(&mut cur, &mut other);
    }
    // An even number of passes ends back in `v` (the paper relies on
    // 32 being even); for odd `bits`, copy the result home.
    if bits % 2 == 1 {
        retired += copy(env, &cur, v)?;
    }
    env.release_to(mark);
    Ok(retired)
}

/// Key-value split radix sort: sorts `keys` in place over the low `bits`
/// bits and applies the identical permutation to `values` — the classic
/// payload-carrying sort. Returns the total dynamic instruction count.
pub fn split_radix_sort_pairs(
    env: &mut ScanEnv,
    keys: &SvVector,
    values: &SvVector,
    bits: u32,
) -> ScanResult<u64> {
    assert!(
        bits <= keys.sew().bits(),
        "cannot sort more bits than the element width"
    );
    let n = keys.len();
    let mark = env.heap_mark();
    let kbuf = env.alloc(keys.sew(), n)?;
    let vbuf = env.alloc(values.sew(), n)?;
    let flags = env.alloc(keys.sew(), n)?;
    let mut retired = 0;
    let mut ck = keys.clone();
    let mut cv = values.clone();
    let mut ok = kbuf.clone();
    let mut ov = vbuf.clone();
    for bit in 0..bits {
        retired += env.phase(&format!("radix_pass_{bit}"), |env| -> ScanResult<u64> {
            let mut r = get_flags(env, &ck, bit, &flags)?;
            r += split_pairs(env, &ck, &cv, &flags, &ok, &ov)?;
            Ok(r)
        })?;
        std::mem::swap(&mut ck, &mut ok);
        std::mem::swap(&mut cv, &mut ov);
    }
    if bits % 2 == 1 {
        retired += copy(env, &ck, keys)?;
        retired += copy(env, &cv, values)?;
    }
    env.release_to(mark);
    Ok(retired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rvv_isa::{Lmul, Sew};

    fn env(vlen: u32, lmul: Lmul) -> ScanEnv {
        crate::testutil::test_session_lmul(vlen, lmul)
    }

    #[test]
    fn sorts_the_papers_figure_2_example() {
        // Figure 2: [5,7,3,1,4,2,3,1] sorted over 3 bits -> [1,1,2,3,3,4,5,7].
        let data = vec![5u32, 7, 3, 1, 4, 2, 3, 1];
        let mut e = env(128, Lmul::M1);
        let v = e.from_u32(&data).unwrap();
        split_radix_sort(&mut e, &v, 3).unwrap();
        assert_eq!(e.to_u32(&v), vec![1, 1, 2, 3, 3, 4, 5, 7]);
    }

    #[test]
    fn sorts_random_u32_full_width() {
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<u32> = (0..777).map(|_| rng.random()).collect();
        let mut e = env(1024, Lmul::M1);
        let v = e.from_u32(&data).unwrap();
        split_radix_sort(&mut e, &v, 32).unwrap();
        let mut want = data.clone();
        want.sort_unstable();
        assert_eq!(e.to_u32(&v), want);
    }

    #[test]
    fn sorts_across_vlen_and_lmul() {
        let mut rng = StdRng::seed_from_u64(13);
        let data: Vec<u32> = (0..300).map(|_| rng.random_range(0..1 << 12)).collect();
        let mut want = data.clone();
        want.sort_unstable();
        for vlen in [128, 512] {
            for lmul in [Lmul::M1, Lmul::M4, Lmul::M8] {
                let mut e = env(vlen, lmul);
                let v = e.from_u32(&data).unwrap();
                split_radix_sort(&mut e, &v, 12).unwrap();
                assert_eq!(e.to_u32(&v), want, "vlen={vlen} lmul={lmul:?}");
            }
        }
    }

    #[test]
    fn odd_bit_count_lands_in_place() {
        let data = vec![6u32, 1, 4, 7, 0, 3, 2, 5];
        let mut e = env(128, Lmul::M1);
        let v = e.from_u32(&data).unwrap();
        split_radix_sort(&mut e, &v, 3).unwrap();
        assert_eq!(e.to_u32(&v), (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn already_sorted_and_all_equal() {
        let mut e = env(256, Lmul::M1);
        let sorted: Vec<u32> = (0..100).collect();
        let v = e.from_u32(&sorted).unwrap();
        split_radix_sort(&mut e, &v, 8).unwrap();
        assert_eq!(e.to_u32(&v), sorted);
        let equal = vec![42u32; 65];
        let v = e.from_u32(&equal).unwrap();
        split_radix_sort(&mut e, &v, 32).unwrap();
        assert_eq!(e.to_u32(&v), equal);
    }

    #[test]
    fn empty_and_singleton() {
        let mut e = env(128, Lmul::M1);
        let v = e.from_u32(&[]).unwrap();
        split_radix_sort(&mut e, &v, 32).unwrap();
        let v1 = e.from_u32(&[9]).unwrap();
        split_radix_sort(&mut e, &v1, 32).unwrap();
        assert_eq!(e.to_u32(&v1), vec![9]);
    }

    #[test]
    fn pairs_sort_carries_values() {
        let mut rng = StdRng::seed_from_u64(23);
        let keys: Vec<u32> = (0..333).map(|_| rng.random_range(0..1 << 16)).collect();
        // Value = original index, so the sort's permutation is visible.
        let vals: Vec<u32> = (0..333).collect();
        let mut e = env(512, Lmul::M1);
        let k = e.from_u32(&keys).unwrap();
        let v = e.from_u32(&vals).unwrap();
        split_radix_sort_pairs(&mut e, &k, &v, 16).unwrap();
        let got_k = e.to_u32(&k);
        let got_v = e.to_u32(&v);
        // Keys sorted; every value still points at its original key; the
        // permutation is stable (equal keys keep index order).
        let mut want: Vec<(u32, u32)> = keys.iter().copied().zip(vals).collect();
        want.sort_by_key(|&(k, i)| (k, i));
        let want_k: Vec<u32> = want.iter().map(|&(k, _)| k).collect();
        let want_v: Vec<u32> = want.iter().map(|&(_, v)| v).collect();
        assert_eq!(got_k, want_k);
        assert_eq!(
            got_v, want_v,
            "value payload must follow the stable key order"
        );
    }

    #[test]
    fn pairs_cost_is_less_than_two_key_sorts() {
        // One index computation serves both permutes.
        let mut rng = StdRng::seed_from_u64(29);
        let keys: Vec<u32> = (0..500).map(|_| rng.random()).collect();
        let vals: Vec<u32> = (0..500).collect();
        let mut e = env(1024, Lmul::M1);
        let k = e.from_u32(&keys).unwrap();
        let v = e.from_u32(&vals).unwrap();
        let pair_cost = split_radix_sort_pairs(&mut e, &k, &v, 32).unwrap();
        let k2 = e.from_u32(&keys).unwrap();
        let single = split_radix_sort(&mut e, &k2, 32).unwrap();
        assert!(
            pair_cost < 2 * single,
            "pairs {pair_cost} vs single {single}"
        );
    }

    #[test]
    fn e8_keys() {
        let mut rng = StdRng::seed_from_u64(99);
        let data: Vec<u64> = (0..200).map(|_| rng.random_range(0..256)).collect();
        let mut e = env(256, Lmul::M1);
        let v = e.from_elems(Sew::E8, &data).unwrap();
        split_radix_sort(&mut e, &v, 8).unwrap();
        let mut want = data.clone();
        want.sort_unstable();
        assert_eq!(e.to_elems(&v), want);
    }
}
