//! Write-ahead journaling for batch sweeps: every completed job's report
//! is appended to an on-disk journal the moment it finishes, so a sweep
//! killed at *any* point — `kill -9` included — resumes by replaying the
//! journal and running only the jobs that never completed. The resumed
//! batch's [`BatchResult::stable_digest`] is byte-identical to an
//! uninterrupted run's, at any thread count, interrupted any number of
//! times.
//!
//! ## File format
//!
//! The journal rides on `rvv-ckpt`'s record layer: length-prefixed,
//! FNV-1a-checksummed records with a torn-tail-tolerant reader (a record
//! half-written at the kill point is detected and dropped, never half-
//! applied). Record 0 is the **header** — a sealed frame binding the
//! journal to its job list (count + a digest over every job's name,
//! configuration, and weight). Resume refuses a journal whose header does
//! not match the jobs being resumed: a journal is a claim about *one*
//! specific sweep.
//!
//! Every data record carries one completed job: its index, name, attempt
//! bookkeeping, per-class counters, the stable outcome text, and — for
//! successful jobs — the measurement payload itself, encoded via
//! [`JournalPayload`]. Successful jobs therefore replay as real
//! [`JobOutcome::Ok`] values (decoders like table folding keep working on
//! a resumed run); failures replay as [`JobOutcome::Replayed`] carrying
//! their stable text verbatim, so manifests and digests survive the
//! crash/resume boundary byte-for-byte.
//!
//! ## What is deliberately not journaled
//!
//! Trace profiles (host-side structures tied to a tracer attachment;
//! journaled sweeps and traced sweeps are separate experiments — a traced
//! job's *measurement* replays fine, its profile does not survive) and
//! the scheduling fields `worker`/`wall` (replayed reports get worker 0
//! and zero wall — both are quarantined from every stable serialization).

use crate::job::{BatchJob, BatchResult, JobOutcome, JobReport};
use crate::runner::{assemble, BatchRunner};
use rvv_ckpt::{
    fnv1a, open, read_journal, seal, ByteReader, ByteWriter, CodecError, JournalWriter,
};
use rvv_cost::CycleCounters;
use rvv_sim::Counters;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Frame kind for the journal header record.
const HEADER_KIND: &str = "rvv-batch-journal";
/// Bump on any incompatible change to the header or record layout.
/// v2: records carry an optional cycle-estimate block (costed sweeps).
const HEADER_VERSION: u16 = 2;

/// A measurement type that can ride in a journal record. Implementations
/// must round-trip exactly: `decode(encode(x)) == x`, including through
/// the `Debug` form [`JobReport::stable_line`] prints — a decoded payload
/// that renders differently would change the resumed digest.
pub trait JournalPayload: Sized {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut ByteWriter);
    /// Decode a value previously written by [`JournalPayload::encode`].
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;
}

impl JournalPayload for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<u64, CodecError> {
        r.get_u64()
    }
}

/// Options for [`run_journaled`].
#[derive(Debug, Clone, Copy)]
pub struct JournalOptions {
    /// `fsync` the journal after every N data records (0 = never fsync;
    /// the OS page cache still makes records durable against process
    /// death, just not against machine crash). The header record is
    /// always fsynced.
    pub fsync_every: u32,
    /// Resume from an existing journal at the path (replaying completed
    /// records and running the remainder) instead of starting fresh. With
    /// `resume = false` any existing journal is overwritten.
    pub resume: bool,
    /// Crash harness: abort the process (SIGABRT, no unwinding, no
    /// cleanup — the deterministic stand-in for `kill -9`) immediately
    /// after this many data records have been appended *by this process*.
    /// `None` runs to completion.
    pub crash_after: Option<u64>,
}

impl Default for JournalOptions {
    fn default() -> JournalOptions {
        JournalOptions {
            fsync_every: 1,
            resume: false,
            crash_after: None,
        }
    }
}

/// The header payload binding a journal to its job list: resume must be
/// handed the *same* sweep (names, configurations, weights, order).
/// Thread count and fsync granularity are deliberately excluded — a
/// journal written at `--threads 8` resumes fine at `--threads 1`.
fn header_bytes<T>(jobs: &[BatchJob<T>]) -> Vec<u8> {
    let mut digest_src = ByteWriter::new();
    for job in jobs {
        digest_src.put_str(&job.name);
        digest_src.put_str(&format!("{:?}", job.config));
        digest_src.put_u64(job.weight);
    }
    let mut w = ByteWriter::new();
    w.put_u64(jobs.len() as u64);
    w.put_u64(fnv1a(&digest_src.into_bytes()));
    seal(HEADER_KIND, HEADER_VERSION, &w.into_bytes())
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Encode one completed job as a journal record payload.
fn encode_record<T: JournalPayload + fmt::Debug>(index: usize, report: &JobReport<T>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(index as u64);
    w.put_str(&report.name);
    w.put_u32(report.attempts);
    w.put_u32(report.poisoned);
    let counts: Vec<u64> = report.counters.iter().map(|(_, c)| c).collect();
    w.put_u32(counts.len() as u32);
    for c in counts {
        w.put_u64(c);
    }
    // Cycle estimates are not derivable from the counters (the modeled
    // total reflects unit overlap), so costed reports persist the whole
    // block: total plus per-class busy cycles.
    match &report.cycles {
        Some(cy) => {
            w.put_bool(true);
            w.put_u64(cy.total());
            for (_, c) in cy.iter() {
                w.put_u64(c);
            }
        }
        None => w.put_bool(false),
    }
    w.put_str(&report.outcome.stable());
    match report.outcome.output() {
        Some(v) => {
            w.put_bool(true);
            v.encode(&mut w);
        }
        None => w.put_bool(false),
    }
    w.into_bytes()
}

/// One decoded journal record: everything needed to rebuild the report
/// once the job list supplies the configuration.
struct Replayed<T> {
    index: usize,
    name: String,
    attempts: u32,
    poisoned: u32,
    counters: Counters,
    cycles: Option<CycleCounters>,
    stable: String,
    output: Option<T>,
}

fn decode_record<T: JournalPayload>(payload: &[u8]) -> Result<Replayed<T>, CodecError> {
    let mut r = ByteReader::new(payload);
    let index = r.get_u64()? as usize;
    let name = r.get_str()?.to_string();
    let attempts = r.get_u32()?;
    let poisoned = r.get_u32()?;
    let n = r.get_u32()? as usize;
    if n != rvv_isa::InstrClass::ALL.len() {
        return Err(CodecError::BadValue {
            what: "counter class count",
            value: n as u64,
        });
    }
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push(r.get_u64()?);
    }
    let counters = Counters::from_class_counts(&counts);
    let cycles = if r.get_bool()? {
        let total = r.get_u64()?;
        let mut by_class = Vec::with_capacity(rvv_isa::InstrClass::ALL.len());
        for _ in 0..rvv_isa::InstrClass::ALL.len() {
            by_class.push(r.get_u64()?);
        }
        Some(CycleCounters::from_parts(total, &by_class))
    } else {
        None
    };
    let stable = r.get_str()?.to_string();
    let output = if r.get_bool()? {
        Some(T::decode(&mut r)?)
    } else {
        None
    };
    r.finish()?;
    Ok(Replayed {
        index,
        name,
        attempts,
        poisoned,
        counters,
        cycles,
        stable,
        output,
    })
}

impl<T: fmt::Debug> Replayed<T> {
    fn into_report(self, job: &BatchJob<T>) -> io::Result<JobReport<T>> {
        if self.name != job.name {
            return Err(bad(format!(
                "journal record {} names `{}`, job list has `{}`",
                self.index, self.name, job.name
            )));
        }
        let outcome = match self.output {
            Some(v) => {
                let replayed = JobOutcome::Ok(v);
                debug_assert_eq!(
                    replayed.stable(),
                    self.stable,
                    "journaled payload re-renders differently (JournalPayload impl broken?)"
                );
                replayed
            }
            None => JobOutcome::Replayed(self.stable),
        };
        Ok(JobReport {
            name: self.name,
            config: job.config,
            outcome,
            attempts: self.attempts,
            poisoned: self.poisoned,
            retired: self.counters.total(),
            counters: self.counters,
            cycles: self.cycles,
            profile: None,
            worker: 0,
            wall: Duration::ZERO,
            backoff: Duration::ZERO,
        })
    }
}

/// Run `jobs` under a write-ahead journal at `path`.
///
/// Fresh runs (`resume: false`) write the header and then one record per
/// completed job, as jobs complete. Resumed runs (`resume: true`) read
/// the journal back (verifying the header against `jobs` and dropping a
/// torn tail), replay every completed record, and run **only the
/// remainder** — appending new records to the same journal, so a resumed
/// run that crashes again resumes again.
///
/// The returned [`BatchResult`] is in job order and its
/// [`BatchResult::stable_digest`] is byte-identical to an uninterrupted
/// (or never-journaled) run of the same jobs, at any thread count. Only
/// the quarantined fields differ: replayed reports carry no profile,
/// worker 0, zero wall, and `plan_compiles` counts this process only.
pub fn run_journaled<T>(
    runner: &BatchRunner,
    jobs: Vec<BatchJob<T>>,
    path: &Path,
    opts: &JournalOptions,
) -> io::Result<BatchResult<T>>
where
    T: Send + fmt::Debug + JournalPayload,
{
    let started = Instant::now();
    let compiles_before = runner.plan_cache().compiles();
    let header = header_bytes(&jobs);

    // Replay phase: collect completed records and find the journal tail.
    let mut replayed: HashMap<usize, Replayed<T>> = HashMap::new();
    let writer = if opts.resume {
        let journal = read_journal(path)?;
        // Mid-stream corruption is quarantined, not fatal: a lost record
        // held one completed job's report, and that job simply re-runs
        // below (it never lands in `replayed`). Surface the damage so
        // the operator knows the disk misbehaved.
        for entry in &journal.salvage {
            eprintln!("rvv-batch: {}: journal salvage: {entry}", path.display());
        }
        let on_disk = open(HEADER_KIND, HEADER_VERSION, &journal.header)
            .map_err(|e| bad(format!("journal header: {e}")))?;
        let expected = open(HEADER_KIND, HEADER_VERSION, &header).expect("fresh header");
        if on_disk != expected {
            return Err(bad(format!(
                "journal at {} was written for a different job list ({} jobs expected)",
                path.display(),
                jobs.len()
            )));
        }
        for record in &journal.records {
            let rec =
                decode_record::<T>(record).map_err(|e| bad(format!("journal record: {e}")))?;
            if rec.index >= jobs.len() {
                return Err(bad(format!(
                    "journal record index {} out of range",
                    rec.index
                )));
            }
            // Last write wins; duplicates can only arise from resuming a
            // resume that crashed, and both copies are identical anyway.
            replayed.insert(rec.index, rec);
        }
        JournalWriter::resume(path, journal.valid_len, opts.fsync_every)?
    } else {
        JournalWriter::create(path, &header, opts.fsync_every)?
    };

    let remaining: Vec<usize> = (0..jobs.len())
        .filter(|i| !replayed.contains_key(i))
        .collect();

    // Execute the remainder, journaling each completion as it happens.
    // The observer runs on worker threads in completion order; the writer
    // is a single append stream behind a mutex (append order does not
    // matter — records are keyed by job index). A failed append degrades
    // instead of dying: journaling stops (warned once), the sweep itself
    // finishes and returns its full result — the only thing lost is
    // resumability from this point on.
    let writer = Mutex::new(Some(writer));
    let crash_after = opts.crash_after;
    let live = runner.run_subset(&jobs, &remaining, &|index, report| {
        let mut guard = writer.lock().expect("journal writer poisoned");
        let Some(w) = guard.as_mut() else { return };
        match w.append(&encode_record(index, report)) {
            Ok(appended) => {
                if crash_after.is_some_and(|n| appended >= n) {
                    // The deterministic kill -9: no unwinding, no Drop, no
                    // flush beyond what append already wrote.
                    std::process::abort();
                }
            }
            Err(e) => {
                eprintln!(
                    "rvv-batch: {}: journal append failed, journaling disabled \
                     for the rest of this run: {e}",
                    path.display()
                );
                *guard = None;
            }
        }
    });
    drop(writer);

    // Merge replayed and live reports in job order.
    let mut live = live.into_iter().peekable();
    let mut reports = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        if let Some(rec) = replayed.remove(&i) {
            reports.push(rec.into_report(job)?);
        } else {
            let (j, report) = live.next().expect("every job replayed or run");
            debug_assert_eq!(i, j, "live reports out of order");
            reports.push(report);
        }
    }
    Ok(assemble(
        reports,
        runner.threads(),
        runner.plan_cache().compiles() - compiles_before,
        started.elapsed(),
    ))
}
