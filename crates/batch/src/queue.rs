//! Bounded-queue admission control.
//!
//! A long-running service must not let its job queue grow without bound:
//! past some depth, accepting more work only converts memory into latency.
//! [`AdmissionGate`] is the accounting half of load shedding — a
//! thread-safe depth counter with a hard capacity, an all-or-nothing
//! reservation operation, and shed/high-water counters for the stats
//! surface. It holds no jobs itself; the owner pairs it with whatever
//! queue structure it drains (the serve layer pairs it with the durable
//! journal-backed queue and answers `429 Retry-After` on a refused
//! reservation).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Admission accounting for a bounded queue (see the module docs).
#[derive(Debug)]
pub struct AdmissionGate {
    capacity: usize,
    depth: AtomicUsize,
    admitted: AtomicU64,
    shed: AtomicU64,
    high_water: AtomicUsize,
}

impl AdmissionGate {
    /// A gate admitting at most `capacity` queued jobs at once
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> AdmissionGate {
        AdmissionGate {
            capacity: capacity.max(1),
            depth: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            high_water: AtomicUsize::new(0),
        }
    }

    /// Reserve room for `n` jobs, all or nothing: either the whole group
    /// is admitted (a multi-job sweep must never be half-accepted) or the
    /// depth is untouched and the group counts as shed. `n = 0` always
    /// succeeds.
    pub fn try_admit(&self, n: usize) -> bool {
        let mut depth = self.depth.load(Ordering::Relaxed);
        loop {
            if depth + n > self.capacity {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match self.depth.compare_exchange_weak(
                depth,
                depth + n,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.admitted.fetch_add(n as u64, Ordering::Relaxed);
                    self.high_water.fetch_max(depth + n, Ordering::Relaxed);
                    return true;
                }
                Err(now) => depth = now,
            }
        }
    }

    /// Return `n` slots to the gate (jobs completed or abandoned).
    pub fn release(&self, n: usize) {
        let before = self.depth.fetch_sub(n, Ordering::AcqRel);
        debug_assert!(before >= n, "released more than admitted");
    }

    /// The hard depth limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently admitted and not yet released.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// Jobs ever admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Admission groups refused because they would have exceeded capacity.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// The deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_to_capacity_then_sheds() {
        let g = AdmissionGate::new(10);
        assert!(g.try_admit(6));
        assert!(g.try_admit(4));
        assert!(!g.try_admit(1), "full queue sheds");
        assert_eq!(g.depth(), 10);
        assert_eq!(g.shed(), 1);
        assert_eq!(g.high_water(), 10);
        g.release(5);
        assert!(g.try_admit(5));
        assert_eq!(g.admitted(), 15);
    }

    #[test]
    fn group_admission_is_all_or_nothing() {
        let g = AdmissionGate::new(8);
        assert!(g.try_admit(5));
        assert!(!g.try_admit(5), "5 + 5 > 8 refused as a unit");
        assert_eq!(g.depth(), 5, "refused group left no residue");
        assert!(g.try_admit(3));
    }

    #[test]
    fn concurrent_admissions_never_exceed_capacity() {
        let g = AdmissionGate::new(64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        if g.try_admit(2) {
                            assert!(g.depth() <= 64);
                            g.release(2);
                        }
                    }
                });
            }
        });
        assert_eq!(g.depth(), 0);
    }
}
