//! # rvv-batch — the deterministic parallel sweep engine
//!
//! Every experiment in this workspace is a *sweep*: the same measurement
//! repeated over a grid of `(algorithm, n, VLEN, LMUL, spill profile)`
//! points, each point a fully independent simulation. This crate runs such
//! sweeps across OS threads with one hard guarantee: **the output is
//! byte-identical at any thread count**, including `--threads 1`.
//!
//! ## How determinism survives parallelism
//!
//! * **The unit of work is a whole sweep point.** A [`BatchJob`] owns its
//!   closure; nothing inside a simulation is ever split across threads, so
//!   per-point results are trivially the serial results.
//! * **Sharding is computed up front**, before any worker starts:
//!   longest-processing-time assignment over the declared job weights, with
//!   all ties broken by job index. Scheduling jitter cannot move a job
//!   between workers.
//! * **Results are emitted in job order**, not completion order: each
//!   report is placed into its job's slot, and merged [`rvv_sim::Counters`]
//!   / [`rvv_trace::TraceProfiler`] aggregates fold in job order too.
//! * **Workers share one [`Engine`]**, so a kernel configuration is
//!   compiled exactly once per process into its [`PlanCache`] no matter
//!   which worker touches it first — and compiled code is immutable
//!   ([`rvv_sim::CompiledPlan`] is `Send + Sync`), so sharing cannot
//!   perturb execution. The engine also carries the policy defaults every
//!   job inherits: its cost model (unless the job is [`BatchJob::costed`]
//!   itself) and its fuel budget (unless the job sets a
//!   [`BatchJob::watchdog`]).
//! * **Wall-clock timing is quarantined.** [`JobReport`] carries timing for
//!   the speedup tables, but the [`JobReport::stable_line`] /
//!   [`BatchResult::stable_digest`] serialization — what the determinism
//!   tests and the CI serial-vs-parallel comparison hash — excludes it.
//!
//! Each worker keeps a session pool: one [`Session`] per distinct
//! [`EnvConfig`], created from the shared engine and recycled with
//! [`Session::reset`] between jobs, so a 40-point sweep at 4
//! configurations allocates 4 machines, not 40.
//!
//! ## How failure stays contained
//!
//! Every job body runs inside `catch_unwind`: a panicking job becomes
//! [`JobOutcome::Panicked`] in its report (and poisons its pooled
//! environment, which the pool then discards) instead of unwinding the
//! worker. Simulated traps surface as [`JobOutcome::Trapped`], host-side
//! errors as [`JobOutcome::Failed`], and an exhausted
//! [`BatchJob::watchdog`] budget as [`JobOutcome::TimedOut`]. Jobs may be
//! given bounded [`BatchJob::retries`], each retry in a fresh environment;
//! the attempt count is reported but — like `wall` and `worker` —
//! quarantined out of the stable serialization. A batch with failures
//! still completes every job; [`BatchResult::degraded`] summarizes the
//! failures as a deterministic manifest for `--keep-going` style drivers.
//!
//! ## How a sweep survives its process dying
//!
//! [`journal::run_journaled`] wraps a run in a write-ahead journal: every
//! completed job is persisted before the sweep moves on, and a killed
//! process (`kill -9` included) resumes by replaying the journal and
//! running only the remainder — with a stable digest byte-identical to an
//! uninterrupted run's. See the [`journal`] module docs.
//!
//! ```
//! use rvv_batch::{BatchJob, BatchRunner};
//! use scanvec::EnvConfig;
//! use scanvec::primitives::plus_scan;
//!
//! let jobs: Vec<BatchJob<Vec<u32>>> = [100usize, 1000]
//!     .iter()
//!     .map(|&n| {
//!         BatchJob::new(format!("scan/n={n}"), EnvConfig::paper_default(), move |env| {
//!             let v = env.from_u32(&vec![1; n])?;
//!             plus_scan(env, &v)?;
//!             Ok(env.to_u32(&v))
//!         })
//!         .weight(n as u64)
//!     })
//!     .collect();
//! let serial = BatchRunner::new(1).run(jobs);
//! assert_eq!(serial.reports[0].output().unwrap().last(), Some(&100));
//! // One plan registry, every kernel compiled once across the whole sweep.
//! assert!(serial.plan_compiles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backoff;
mod job;
pub mod journal;
mod queue;
mod runner;

pub use backoff::BackoffPolicy;
pub use job::{BatchJob, BatchResult, DegradedSummary, FailedJob, JobOutcome, JobReport};
pub use journal::{run_journaled, JournalOptions, JournalPayload};
pub use queue::AdmissionGate;
pub use runner::{execute_job, BatchRunner, SessionPool};

// Re-exported so bins depending on `rvv-batch` can name the shared pieces
// without importing the crates behind them.
pub use rvv_cost::{CostModel, CycleCounters};
pub use scanvec::{CancelToken, Engine, EngineBuilder, EnvConfig, PlanCache, ScanEnv, Session};
