//! The runner: up-front sharding, scoped workers, in-order emission,
//! panic-isolated and retrying job execution.

use crate::backoff::BackoffPolicy;
use crate::job::{BatchJob, BatchResult, JobOutcome, JobReport};
use rvv_cost::{CostModel, CycleCounters, CycleEstimator};
use rvv_sim::TraceSink;
use rvv_trace::TraceProfiler;
use scanvec::{Engine, EnvConfig, PlanCache, ScanEnv, Session};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runs batches of [`BatchJob`]s across `threads` scoped worker threads
/// (serially on the calling thread for `threads == 1`), all workers
/// creating sessions from one shared [`Engine`].
///
/// The runner is reusable: every [`BatchRunner::run`] call shards its own
/// jobs, but the engine (and its plan registry) persists across calls, so
/// a warm-up batch pays the compiles and later batches launch cached plans
/// only. The engine's policy defaults apply to every job: a job without
/// its own [`BatchJob::costed`] model inherits [`Engine::cost_model`], and
/// one without its own [`BatchJob::watchdog`] inherits
/// [`Engine::default_fuel_budget`].
#[derive(Debug)]
pub struct BatchRunner {
    threads: usize,
    engine: Arc<Engine>,
    backoff: BackoffPolicy,
}

impl BatchRunner {
    /// A runner with `threads` workers (clamped to at least 1) over a
    /// private default [`Engine`] (fresh plan registry, no policy).
    pub fn new(threads: usize) -> BatchRunner {
        BatchRunner::with_engine(threads, Arc::new(Engine::new()))
    }

    /// A runner whose workers create their sessions from an existing
    /// engine — share one `Arc<Engine>` across runners, serial sessions,
    /// and harnesses, and a kernel configuration is compiled once
    /// process-wide while every consumer inherits the same policy
    /// defaults.
    pub fn with_engine(threads: usize, engine: Arc<Engine>) -> BatchRunner {
        BatchRunner {
            threads: threads.max(1),
            engine,
            backoff: BackoffPolicy::default(),
        }
    }

    /// Replace the retry backoff schedule (builder style). The default is
    /// [`BackoffPolicy::default`] — a 2 ms doubling schedule with
    /// seed-0 jitter; [`BackoffPolicy::none`] restores the historical
    /// retry-immediately behavior.
    pub fn backoff(mut self, policy: BackoffPolicy) -> BatchRunner {
        self.backoff = policy;
        self
    }

    /// The retry backoff schedule retries are spaced by.
    pub fn backoff_policy(&self) -> &BackoffPolicy {
        &self.backoff
    }

    /// A runner over a private engine that compiles into an existing
    /// registry. Compatibility shim from before the engine/session split;
    /// prefer [`BatchRunner::with_engine`], which shares policy as well as
    /// plans.
    pub fn with_cache(threads: usize, plans: Arc<PlanCache>) -> BatchRunner {
        BatchRunner::with_engine(
            threads,
            Arc::new(Engine::builder().plan_cache(plans).build()),
        )
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared engine workers create their sessions from.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The shared plan registry (the engine's).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        self.engine.plan_cache()
    }

    /// Run every job and emit reports **in job order**, with merged
    /// counters and (if any job traced) a merged profile. See the crate
    /// docs for the determinism contract; the short version is that
    /// nothing in the output depends on scheduling, only `wall` and
    /// `worker` fields (both excluded from the stable serialization)
    /// reflect the actual execution.
    pub fn run<T: Send + std::fmt::Debug>(&self, jobs: Vec<BatchJob<T>>) -> BatchResult<T> {
        let started = Instant::now();
        let compiles_before = self.plan_cache().compiles();
        let include: Vec<usize> = (0..jobs.len()).collect();
        let reports = self
            .run_subset(&jobs, &include, &|_, _| {})
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assemble(
            reports,
            self.threads,
            self.plan_cache().compiles() - compiles_before,
            started.elapsed(),
        )
    }

    /// Run only the jobs at `include` (job indices, any order; deduplicated
    /// and sorted internally) and return `(index, report)` pairs **in job
    /// order**. `observer` is called once per completed job, from the
    /// worker thread that finished it, *in completion order* — this is the
    /// journaling hook (see [`crate::journal`]): the observer can persist
    /// the report before the batch moves on, so a crash loses at most the
    /// jobs still in flight.
    ///
    /// Determinism: the reports depend only on `(jobs, include)` — the
    /// subset is sharded by the same weight-LPT rule as a full run, and
    /// every report is scheduling-independent apart from the quarantined
    /// `worker`/`wall` fields. Observer *call order* is scheduling-
    /// dependent by nature; anything derived from it must be
    /// order-insensitive (a journal keyed by job index is).
    pub fn run_subset<T: Send + std::fmt::Debug>(
        &self,
        jobs: &[BatchJob<T>],
        include: &[usize],
        observer: &(dyn Fn(usize, &JobReport<T>) + Sync),
    ) -> Vec<(usize, JobReport<T>)> {
        let mut include: Vec<usize> = include.to_vec();
        include.sort_unstable();
        include.dedup();
        assert!(
            include.last().is_none_or(|&i| i < jobs.len()),
            "job index out of range"
        );
        if self.threads == 1 {
            // Serial reference path: caller's thread, job order, one pool.
            let mut pool = SessionPool::new(&self.engine);
            return include
                .into_iter()
                .map(|i| {
                    let report = execute_job(&jobs[i], i as u64, &mut pool, 0, &self.backoff);
                    observer(i, &report);
                    (i, report)
                })
                .collect();
        }
        let shards = shard(jobs, &include, self.threads);
        let mut slots: Vec<Option<JobReport<T>>> = Vec::new();
        slots.resize_with(jobs.len(), || None);
        // (completed reports, panicked workers). Job bodies are panic-
        // isolated inside `run_one`, so a worker thread dying is a bug
        // in the runner itself — but even then the batch must degrade,
        // not abort: the dead worker's unfinished jobs are reported as
        // panicked, naming the worker and job.
        let (completed, dead_workers) = std::thread::scope(|s| {
            let handles: Vec<_> = shards
                .iter()
                .cloned()
                .enumerate()
                .map(|(worker, shard)| {
                    let engine = Arc::clone(&self.engine);
                    let backoff = &self.backoff;
                    s.spawn(move || {
                        let mut pool = SessionPool::new(&engine);
                        shard
                            .into_iter()
                            .map(|i| {
                                let report =
                                    execute_job(&jobs[i], i as u64, &mut pool, worker, backoff);
                                observer(i, &report);
                                (i, report)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut completed = Vec::new();
            let mut dead = Vec::new();
            for (worker, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(pairs) => completed.extend(pairs),
                    Err(payload) => dead.push((worker, panic_text(payload.as_ref()))),
                }
            }
            (completed, dead)
        });
        for (i, report) in completed {
            debug_assert!(slots[i].is_none(), "job {i} ran twice");
            slots[i] = Some(report);
        }
        for (worker, msg) in dead_workers {
            for &i in &shards[worker] {
                if slots[i].is_none() {
                    slots[i] = Some(JobReport {
                        name: jobs[i].name.clone(),
                        config: jobs[i].config,
                        outcome: JobOutcome::Panicked(format!(
                            "worker {worker} died before job {i}: {msg}"
                        )),
                        attempts: 0,
                        poisoned: 0,
                        counters: rvv_sim::Counters::new(),
                        retired: 0,
                        cycles: None,
                        profile: None,
                        worker,
                        wall: Duration::ZERO,
                        backoff: Duration::ZERO,
                    });
                }
            }
        }
        include
            .into_iter()
            .map(|i| (i, slots[i].take().expect("job never ran")))
            .collect()
    }
}

/// Fold in-order reports into a [`BatchResult`] (scheduling-independent
/// merges: counters and profiles fold in job order).
pub(crate) fn assemble<T>(
    reports: Vec<JobReport<T>>,
    threads: usize,
    plan_compiles: u64,
    wall: Duration,
) -> BatchResult<T> {
    let mut counters = rvv_sim::Counters::new();
    let mut cycles: Option<CycleCounters> = None;
    let mut profile: Option<TraceProfiler> = None;
    for r in &reports {
        counters.merge(&r.counters);
        if let Some(c) = &r.cycles {
            cycles.get_or_insert_with(CycleCounters::new).merge(c);
        }
        if let Some(p) = &r.profile {
            match &mut profile {
                Some(merged) => merged.merge(p),
                None => {
                    let mut merged = TraceProfiler::new(p.stack_region());
                    merged.merge(p);
                    profile = Some(merged);
                }
            }
        }
    }
    BatchResult {
        reports,
        counters,
        cycles,
        profile,
        threads,
        plan_compiles,
        wall,
    }
}

/// Per-worker session pool: one reusable [`Session`] per distinct
/// configuration, reset between jobs, all created from the shared
/// [`Engine`]. Public so long-running consumers (the serve layer's
/// workers) can drain jobs through [`execute_job`] with the same pooling,
/// poisoning, and reset discipline the batch runner uses.
pub struct SessionPool<'a> {
    engine: &'a Arc<Engine>,
    sessions: HashMap<EnvConfig, Session>,
}

impl<'a> SessionPool<'a> {
    /// An empty pool over `engine`.
    pub fn new(engine: &'a Arc<Engine>) -> SessionPool<'a> {
        SessionPool {
            engine,
            sessions: HashMap::new(),
        }
    }

    /// The engine sessions are created from.
    pub fn engine(&self) -> &Arc<Engine> {
        self.engine
    }

    /// The pooled session for `cfg`, reset and ready to run a job: reused
    /// when one exists and is healthy, rebuilt when the last job in it
    /// panicked.
    ///
    /// # Panics
    ///
    /// When `cfg` fails [`Engine::validate`] — batch callers construct
    /// jobs from validated configurations; service layers must validate at
    /// admission.
    pub fn session_for(&mut self, cfg: &EnvConfig) -> &mut Session {
        // A poisoned session (a previous job panicked inside it) is
        // discarded, not reset — the unwind may have left host-side state
        // inconsistent in ways reset cannot repair. Checking first keeps
        // the hot hit path a single borrow-keyed lookup: the key is only
        // materialized on a miss or a rebuild.
        if self.sessions.get(cfg).is_none_or(|s| s.is_poisoned()) {
            let fresh = self
                .engine
                .session(*cfg)
                .expect("job config rejected by Engine::validate");
            self.sessions.insert(*cfg, fresh);
        }
        let session = self.sessions.get_mut(cfg).expect("present by construction");
        session.reset();
        session
    }
}

fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one attempt of `job` in `env`, isolating panics: a panicking job
/// body poisons the environment (so the pool rebuilds it) and becomes
/// [`JobOutcome::Panicked`] instead of unwinding the worker.
fn attempt<T>(
    job: &BatchJob<T>,
    env: &mut ScanEnv,
) -> (
    JobOutcome<T>,
    rvv_sim::Counters,
    Option<TraceProfiler>,
    Option<CycleCounters>,
) {
    // The job's own instrumentation wins; absent that, the engine's
    // defaults apply — so one engine configured with a cost model or a
    // fuel policy governs every job of every runner sharing it.
    let cost: Option<CostModel> = job
        .cost
        .clone()
        .or_else(|| env.engine().cost_model().cloned());
    let watchdog = job.watchdog.or_else(|| env.engine().default_fuel_budget());
    // One tracer slot, three instrumented shapes: traced jobs get the
    // profiler (carrying the estimator too when also costed, for
    // per-phase cycle attribution); costed-only jobs get the bare
    // estimator sink, which skips all phase/hotspot bookkeeping.
    match (job.trace, &cost) {
        (true, Some(m)) => {
            env.attach_tracer(Box::new(TraceProfiler::with_cost(
                env.stack_region(),
                m.clone(),
            )));
        }
        (true, None) => {
            env.attach_tracer(Box::new(TraceProfiler::new(env.stack_region())));
        }
        (false, Some(m)) => {
            env.attach_tracer(Box::new(CycleEstimator::new(m.clone(), env.stack_region())));
        }
        (false, None) => {}
    }
    env.set_fuel_budget(watchdog);
    if let Some(token) = &job.cancel {
        env.attach_cancel_token(token.clone());
    }
    let before = env.machine().counters.clone();
    // `&mut ScanEnv` is not unwind-safe by type, which is exactly the
    // point: on panic we poison it and never run a job in it again.
    let result = catch_unwind(AssertUnwindSafe(|| job.execute(env)));
    let outcome = match result {
        Ok(r) => JobOutcome::classify(r, watchdog),
        Err(payload) => {
            env.poison();
            JobOutcome::Panicked(panic_text(payload.as_ref()))
        }
    };
    let counters = env.machine().counters.since(&before);
    env.detach_cancel_token();
    let (profile, cycles) = match env.detach_tracer() {
        Some(sink) => recover(sink),
        None => (None, None),
    };
    (outcome, counters, profile, cycles)
}

/// Recover the concrete sink a job ran under: a profiler (whose estimate,
/// if costed, is extracted alongside) or a bare estimator.
fn recover(sink: Box<dyn TraceSink>) -> (Option<TraceProfiler>, Option<CycleCounters>) {
    let any: Box<dyn std::any::Any> = sink;
    match any.downcast::<TraceProfiler>() {
        Ok(p) => {
            let cycles = p.cycles();
            (Some(*p), cycles)
        }
        Err(any) => match any.downcast::<CycleEstimator>() {
            Ok(e) => (None, Some(e.counters())),
            Err(_) => (None, None),
        },
    }
}

/// Run one job to completion — attempts, retries with backoff, panic
/// isolation — inside `pool`, exactly as a [`BatchRunner`] worker would.
/// Public for long-running consumers (the serve layer) that drain jobs
/// one at a time instead of in sharded batches; `index` keys the backoff
/// jitter (the runner passes the job's batch index, a service its queue
/// ordinal) and `worker` only labels the report.
pub fn execute_job<T>(
    job: &BatchJob<T>,
    index: u64,
    pool: &mut SessionPool<'_>,
    worker: usize,
    backoff: &BackoffPolicy,
) -> JobReport<T> {
    let started = Instant::now();
    let max_attempts = 1 + job.retries;
    let mut attempts = 0;
    let mut poisoned = 0;
    let mut slept = Duration::ZERO;
    let (outcome, counters, profile, cycles) = loop {
        attempts += 1;
        // First try uses the pooled session; retries get a fresh one
        // (the pool discards poisoned sessions, and `session_for` resets
        // between uses, but a *retry* must not trust even a reset session
        // — the failed attempt is evidence something is off).
        let result = if attempts == 1 {
            attempt(job, pool.session_for(&job.config))
        } else {
            let mut env = pool
                .engine
                .session(job.config)
                .expect("job config rejected by Engine::validate");
            attempt(job, &mut env)
        };
        if matches!(result.0, JobOutcome::Panicked(_)) {
            poisoned += 1;
        }
        if result.0.is_terminal() || attempts >= max_attempts {
            break result;
        }
        // A retry is coming: space it out by the deterministic schedule.
        // A cancellable job keeps watching its token while it waits — a
        // supervisor cancelling a job that is between attempts should not
        // have to wait out the backoff.
        let delay = backoff.delay(index, attempts);
        if !delay.is_zero() {
            match &job.cancel {
                Some(token) if token.is_cancelled() => {
                    break (
                        JobOutcome::Cancelled { at: 0 },
                        result.1,
                        result.2,
                        result.3,
                    );
                }
                _ => {
                    slept += delay;
                    std::thread::sleep(delay);
                }
            }
        }
    };
    JobReport {
        name: job.name.clone(),
        config: job.config,
        outcome,
        attempts,
        poisoned,
        retired: counters.total(),
        counters,
        cycles,
        profile,
        worker,
        wall: started.elapsed(),
        backoff: slept,
    }
}

/// Deterministic longest-processing-time sharding over the `include`d job
/// indices: jobs sorted by (weight desc, index asc) are greedily assigned
/// to the least-loaded worker, ties broken by worker index; each worker
/// then runs its shard in job-index order. Depends only on
/// `(weights, include, threads)` — never on execution timing.
fn shard<T>(jobs: &[BatchJob<T>], include: &[usize], threads: usize) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = include.to_vec();
    order.sort_by(|&a, &b| jobs[b].weight.cmp(&jobs[a].weight).then_with(|| a.cmp(&b)));
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); threads];
    let mut load = vec![0u64; threads];
    for i in order {
        let w = (0..threads)
            .min_by_key(|&w| (load[w], w))
            .expect("at least one worker");
        load[w] += jobs[i].weight.max(1);
        shards[w].push(i);
    }
    for s in &mut shards {
        s.sort_unstable();
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(weight: u64) -> BatchJob<u64> {
        BatchJob::new(format!("w{weight}"), EnvConfig::paper_default(), |_| Ok(0)).weight(weight)
    }

    #[test]
    fn sharding_is_balanced_and_deterministic() {
        let jobs: Vec<_> = [8u64, 1, 7, 2, 6, 3, 5, 4].into_iter().map(job).collect();
        let all: Vec<usize> = (0..jobs.len()).collect();
        let a = shard(&jobs, &all, 2);
        let b = shard(&jobs, &all, 2);
        assert_eq!(a, b, "same inputs, same shards");
        // LPT on this grid balances perfectly: 8+1+4+5 vs 7+2+3+6.
        let w = |s: &Vec<usize>| s.iter().map(|&i| jobs[i].weight).sum::<u64>();
        assert_eq!(w(&a[0]), w(&a[1]));
        // Every job appears exactly once, shards in job-index order.
        let mut all: Vec<usize> = a.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..jobs.len()).collect::<Vec<_>>());
        assert!(a.iter().all(|s| s.windows(2).all(|w| w[0] < w[1])));
    }

    #[test]
    fn sharding_handles_more_workers_than_jobs() {
        let jobs: Vec<_> = [5u64, 3].into_iter().map(job).collect();
        let shards = shard(&jobs, &[0, 1], 8);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 2);
        assert_eq!(shards.len(), 8);
    }

    #[test]
    fn zero_weight_jobs_still_round_robin() {
        let jobs: Vec<_> = (0..6).map(|_| job(0)).collect();
        let shards = shard(&jobs, &(0..6).collect::<Vec<_>>(), 3);
        assert!(shards.iter().all(|s| s.len() == 2), "{shards:?}");
    }
}
