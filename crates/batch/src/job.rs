//! Jobs and reports: the units the runner shards and the records it emits.

use rvv_cost::{CostModel, CycleCounters};
use rvv_sim::{Counters, SimError};
use rvv_trace::TraceProfiler;
use scanvec::{CancelToken, EnvConfig, ScanEnv, ScanError, ScanResult};
use std::fmt;
use std::time::Duration;

/// The measurement closure a [`BatchJob`] runs inside its environment.
pub type JobFn<T> = Box<dyn Fn(&mut ScanEnv) -> ScanResult<T> + Send + Sync>;

/// One sweep point: a named, weighted, self-contained measurement to run
/// inside a (pooled, reset) [`ScanEnv`] of the given configuration.
///
/// The closure must derive everything it does from its arguments and the
/// environment — the engine may run it on any worker thread, in any order
/// relative to other jobs, inside a recycled environment. Determinism of
/// the sweep is exactly determinism of the closures.
pub struct BatchJob<T> {
    /// Stable identifier, unique within a batch (e.g. `"table1/bitonic/n=1000"`).
    pub name: String,
    /// Environment configuration the job runs under.
    pub config: EnvConfig,
    /// Relative cost hint for load balancing (e.g. the point's `n`).
    /// Only the *ordering* of weights matters; equal weights degrade to
    /// round-robin by job index. Never affects results, only wall clock.
    pub weight: u64,
    /// Attach a [`TraceProfiler`] for this job's run?
    pub trace: bool,
    /// Estimate cycles for this job's run under a cost model? Composes
    /// with `trace`: a traced+costed job gets per-phase cycle
    /// attribution, a costed-only job a bare estimator sink.
    pub cost: Option<CostModel>,
    /// How many times a failed attempt is retried (0 = run once). Retries
    /// run in a **fresh** environment — not the pooled one — so an attempt
    /// that corrupted its environment cannot contaminate the next.
    pub retries: u32,
    /// Deterministic per-attempt watchdog: abort the attempt once this many
    /// instructions have retired (the fuel-based stand-in for a wall-clock
    /// timeout — fires at the same instruction on every run). Exhausting it
    /// reports [`JobOutcome::TimedOut`].
    pub watchdog: Option<u64>,
    /// Cooperative cancellation: when set, the token is attached to the
    /// session for every attempt, and a launch that observes it cancelled
    /// reports [`JobOutcome::Cancelled`]. Cancellation is terminal — a
    /// cancelled job is never retried (the supervisor asked it to stop;
    /// re-running would defeat the deadline).
    pub cancel: Option<CancelToken>,
    run: JobFn<T>,
}

impl<T> BatchJob<T> {
    /// A job with weight 1 and no tracing.
    pub fn new(
        name: impl Into<String>,
        config: EnvConfig,
        run: impl Fn(&mut ScanEnv) -> ScanResult<T> + Send + Sync + 'static,
    ) -> BatchJob<T> {
        BatchJob {
            name: name.into(),
            config,
            weight: 1,
            trace: false,
            cost: None,
            retries: 0,
            watchdog: None,
            cancel: None,
            run: Box::new(run),
        }
    }

    /// Set the load-balancing weight (builder style).
    pub fn weight(mut self, weight: u64) -> BatchJob<T> {
        self.weight = weight;
        self
    }

    /// Request a per-job trace profile (builder style).
    pub fn traced(mut self, trace: bool) -> BatchJob<T> {
        self.trace = trace;
        self
    }

    /// Estimate cycles for this job under `model` (builder style). The
    /// estimate rides the retire-event stream, so it is deterministic at
    /// any thread count and identical across engines; uncosted jobs pay
    /// nothing.
    pub fn costed(mut self, model: CostModel) -> BatchJob<T> {
        self.cost = Some(model);
        self
    }

    /// Retry a failed job up to `retries` more times, each attempt in a
    /// fresh environment (builder style).
    pub fn retries(mut self, retries: u32) -> BatchJob<T> {
        self.retries = retries;
        self
    }

    /// Arm the deterministic instruction-budget watchdog (builder style).
    pub fn watchdog(mut self, fuel: u64) -> BatchJob<T> {
        self.watchdog = Some(fuel);
        self
    }

    /// Attach a [`CancelToken`] every attempt runs under (builder style).
    /// A supervisor holding a clone can stop the job mid-flight — see
    /// [`JobOutcome::Cancelled`].
    pub fn cancel_token(mut self, token: CancelToken) -> BatchJob<T> {
        self.cancel = Some(token);
        self
    }

    /// Run `setup` on the environment before the job body, every attempt
    /// (builder style). This is how drivers attach per-job instrumentation
    /// the closure itself doesn't know about — e.g. arming a fault plan's
    /// guards and hook for an injection sweep. The environment reset
    /// between jobs clears whatever `setup` installed.
    pub fn with_setup(mut self, setup: impl Fn(&mut ScanEnv) + Send + Sync + 'static) -> BatchJob<T>
    where
        T: 'static,
    {
        let run = self.run;
        self.run = Box::new(move |env| {
            setup(env);
            run(env)
        });
        self
    }

    pub(crate) fn execute(&self, env: &mut ScanEnv) -> ScanResult<T> {
        (self.run)(env)
    }
}

impl<T> fmt::Debug for BatchJob<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchJob")
            .field("name", &self.name)
            .field("config", &self.config)
            .field("weight", &self.weight)
            .field("trace", &self.trace)
            .field("cost", &self.cost.as_ref().map(CostModel::name))
            .finish_non_exhaustive()
    }
}

/// How one [`BatchJob`] ended. Failures are *reported*, never propagated —
/// one failing point must not take down a 100-point sweep — and every
/// failure mode is distinguishable in the report.
#[derive(Debug)]
pub enum JobOutcome<T> {
    /// The closure returned `Ok`.
    Ok(T),
    /// The simulated machine trapped ([`scanvec::ScanError::Sim`]): a guard
    /// hit, an injected fault, out-of-bounds access, an illegal
    /// instruction, …
    Trapped(SimError),
    /// The closure failed on the host side (allocation, validation — any
    /// non-trap [`ScanError`]).
    Failed(ScanError),
    /// The closure panicked; the payload text. The environment it ran in
    /// was poisoned and discarded.
    Panicked(String),
    /// The job's [`BatchJob::watchdog`] instruction budget ran out.
    TimedOut {
        /// The exhausted budget.
        budget: u64,
    },
    /// The job's [`BatchJob::cancel`] token tripped mid-run: a supervisor
    /// (deadline, shutdown, client disconnect) asked it to stop. Terminal —
    /// never retried. For a deterministic trip point
    /// ([`CancelToken::after_checks`]) the boundary ordinal and the
    /// partial counters are identical on every engine tier; wall-clock
    /// cancels are inherently timing-dependent, so digests over
    /// deadline-cancelled sweeps are not replay-comparable.
    Cancelled {
        /// The instruction-boundary ordinal where the token was observed
        /// (1-based within the launch that stopped; 0 when the token was
        /// observed between attempts, before any launch started).
        at: u64,
    },
    /// A failure replayed from a journal (see [`crate::journal`]): the
    /// stored stable form of the original outcome. Successful jobs replay
    /// as real [`JobOutcome::Ok`] values — their payloads are journaled —
    /// but a failure's typed error is not reconstructible from its stable
    /// text, so it replays as this variant, whose stable serialization is
    /// the stored string *verbatim* (keeping manifests and digests
    /// byte-identical across a crash/resume boundary).
    Replayed(String),
}

impl<T> JobOutcome<T> {
    /// Did the job succeed?
    pub fn is_ok(&self) -> bool {
        matches!(self, JobOutcome::Ok(_))
    }

    /// The success value, if any.
    pub fn output(&self) -> Option<&T> {
        match self {
            JobOutcome::Ok(v) => Some(v),
            _ => None,
        }
    }

    /// Classify a closure result against the watchdog that was armed for
    /// the attempt: a fuel trap matching the armed budget is a timeout, any
    /// other sim trap is [`JobOutcome::Trapped`], other errors are
    /// [`JobOutcome::Failed`].
    pub(crate) fn classify(result: ScanResult<T>, watchdog: Option<u64>) -> JobOutcome<T> {
        match result {
            Ok(v) => JobOutcome::Ok(v),
            Err(ScanError::Sim(SimError::FuelExhausted { fuel })) if watchdog == Some(fuel) => {
                JobOutcome::TimedOut { budget: fuel }
            }
            Err(ScanError::Sim(SimError::Cancelled { seq })) => JobOutcome::Cancelled { at: seq },
            Err(ScanError::Sim(e)) => JobOutcome::Trapped(e),
            Err(e) => JobOutcome::Failed(e),
        }
    }

    /// Is this outcome one retries cannot improve? Success needs no retry;
    /// a cancellation must not be retried (the supervisor asked the job to
    /// stop — re-running would defeat the deadline or the shutdown).
    pub(crate) fn is_terminal(&self) -> bool {
        matches!(self, JobOutcome::Ok(_) | JobOutcome::Cancelled { .. })
    }

    /// The stable, scheduling-independent serialization used by
    /// [`JobReport::stable_line`]. `Ok`/`Trapped`/`Failed` match the forms
    /// the previous `ScanResult` field produced (`ok {v:?}` / `err {e}`),
    /// so existing golden digests stay valid.
    pub(crate) fn stable(&self) -> String
    where
        T: fmt::Debug,
    {
        match self {
            JobOutcome::Ok(v) => format!("ok {v:?}"),
            JobOutcome::Trapped(e) => format!("err {}", ScanError::Sim(e.clone())),
            JobOutcome::Failed(e) => format!("err {e}"),
            JobOutcome::Panicked(msg) => {
                // Panic payloads can embed host line numbers etc.; first
                // line only keeps the manifest stable and readable.
                let first = msg.lines().next().unwrap_or("");
                format!("panicked {first}")
            }
            JobOutcome::TimedOut { budget } => format!("timed-out budget={budget}"),
            JobOutcome::Cancelled { at } => format!("cancelled at={at}"),
            JobOutcome::Replayed(stable) => stable.clone(),
        }
    }
}

/// What one [`BatchJob`] produced.
#[derive(Debug)]
pub struct JobReport<T> {
    /// The job's name.
    pub name: String,
    /// The configuration it ran under.
    pub config: EnvConfig,
    /// How the job ended (after retries, if any were configured).
    pub outcome: JobOutcome<T>,
    /// Attempts made (1 = first try succeeded or no retries configured;
    /// 0 = the job never ran because its worker thread died). Quarantined
    /// from [`JobReport::stable_line`] like `wall`/`worker`: retry counts
    /// are deterministic for deterministic jobs, but they are bookkeeping,
    /// not results.
    pub attempts: u32,
    /// How many of this job's attempts panicked and poisoned their
    /// environment — each one costs the pool a rebuild. Deterministic for
    /// deterministic jobs, but bookkeeping like `attempts`: surfaced in
    /// the degraded manifest, quarantined from [`JobReport::stable_line`].
    pub poisoned: u32,
    /// Dynamic instructions this job retired, by class (final attempt).
    pub counters: Counters,
    /// Total dynamic instructions this job retired.
    pub retired: u64,
    /// Estimated cycles (final attempt), when the job was created with
    /// [`BatchJob::costed`]. Part of [`JobReport::stable_line`] — the
    /// estimate is a pure function of the retire stream, so it is as
    /// scheduling-independent as the counters.
    pub cycles: Option<CycleCounters>,
    /// The job's trace profile, when it was created with
    /// [`BatchJob::traced`].
    pub profile: Option<TraceProfiler>,
    /// Which worker ran the job. Deterministic given `(jobs, threads)` —
    /// sharding is computed before execution — but *not* stable across
    /// thread counts, so it is excluded from [`JobReport::stable_line`].
    pub worker: usize,
    /// Host wall-clock time of the closure. Timing only — excluded from
    /// the stable serialization.
    pub wall: Duration,
    /// Total retry backoff this job slept (see
    /// [`crate::BackoffPolicy`]). The *delays* are deterministic for a
    /// fixed policy, but like `attempts` this is bookkeeping, not results —
    /// quarantined from [`JobReport::stable_line`].
    pub backoff: Duration,
}

impl<T> JobReport<T> {
    /// The success value, if the job succeeded.
    pub fn output(&self) -> Option<&T> {
        self.outcome.output()
    }
}

impl<T: fmt::Debug> JobReport<T> {
    /// The determinism-comparable serialization of this report: name,
    /// configuration, retired count, per-class counters, and the outcome.
    /// Everything scheduling-dependent (worker id, wall clock, attempt
    /// count) is excluded, so serial and parallel runs of the same jobs
    /// produce byte-identical lines.
    pub fn stable_line(&self) -> String {
        // The cycles field rides between counters and output, but only
        // for costed jobs — uncosted sweeps keep their recorded digests.
        let cycles = match &self.cycles {
            Some(c) => format!(" cycles={}", c.to_json()),
            None => String::new(),
        };
        format!(
            "{} cfg=vlen{}/{:?}/{:?} retired={} counters={}{cycles} output={}",
            self.name,
            self.config.vlen,
            self.config.lmul,
            self.config.spill_profile,
            self.retired,
            self.counters.to_json(),
            self.outcome.stable()
        )
    }
}

/// Everything a [`crate::BatchRunner::run`] call produced, in job order.
#[derive(Debug)]
pub struct BatchResult<T> {
    /// One report per job, **in job order** regardless of scheduling.
    pub reports: Vec<JobReport<T>>,
    /// All job counters merged (commutative fold, scheduling-independent).
    pub counters: Counters,
    /// All per-job cycle estimates merged (`None` when no job was costed).
    pub cycles: Option<CycleCounters>,
    /// All per-job profiles merged in job order (`None` when no job traced).
    pub profile: Option<TraceProfiler>,
    /// Worker threads the batch ran with.
    pub threads: usize,
    /// Kernel plans compiled into the shared registry during this batch.
    pub plan_compiles: u64,
    /// Wall clock of the whole batch. Timing only — excluded from
    /// [`BatchResult::stable_digest`].
    pub wall: Duration,
}

impl<T: fmt::Debug> BatchResult<T> {
    /// The determinism-comparable serialization of the whole batch: every
    /// report's [`JobReport::stable_line`] in job order, then the merged
    /// counters. Byte-identical across thread counts for deterministic
    /// jobs — the concurrency tests and the CI serial-vs-parallel gate
    /// compare exactly this string.
    pub fn stable_digest(&self) -> String {
        let mut s = String::new();
        for r in &self.reports {
            s.push_str(&r.stable_line());
            s.push('\n');
        }
        s.push_str(&format!("merged={}\n", self.counters.to_json()));
        if let Some(c) = &self.cycles {
            s.push_str(&format!("cycles={}\n", c.to_json()));
        }
        s
    }

    /// Total dynamic instructions retired across all jobs.
    pub fn retired(&self) -> u64 {
        self.counters.total()
    }

    /// Did every job succeed?
    pub fn all_ok(&self) -> bool {
        self.reports.iter().all(|r| r.outcome.is_ok())
    }

    /// `None` when every job succeeded; otherwise a summary of the failed
    /// jobs, suitable for a `--keep-going` failure manifest. The summary's
    /// `Display` is deterministic: job order, stable outcome forms, no
    /// timing or scheduling data.
    pub fn degraded(&self) -> Option<DegradedSummary> {
        let failed: Vec<FailedJob> = self
            .reports
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.outcome.is_ok())
            .map(|(index, r)| FailedJob {
                index,
                name: r.name.clone(),
                outcome: r.outcome.stable(),
                attempts: r.attempts,
            })
            .collect();
        if failed.is_empty() {
            None
        } else {
            Some(DegradedSummary {
                total: self.reports.len(),
                failed,
                retries: self
                    .reports
                    .iter()
                    .map(|r| u64::from(r.attempts.saturating_sub(1)))
                    .sum(),
                poisoned: self.reports.iter().map(|r| u64::from(r.poisoned)).sum(),
            })
        }
    }
}

/// One failed job inside a [`DegradedSummary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedJob {
    /// The job's index in the batch (job order, not schedule order).
    pub index: usize,
    /// The job's name.
    pub name: String,
    /// The stable form of the failure (`err …`, `panicked …`,
    /// `timed-out …`).
    pub outcome: String,
    /// Attempts the job made (1 + retries consumed). Deterministic, but
    /// bookkeeping — shown in the manifest, excluded from stable digests.
    pub attempts: u32,
}

/// A degraded batch: the sweep completed, some jobs failed. Produced by
/// [`BatchResult::degraded`]; its `Display` is the failure manifest
/// `run_all --keep-going` writes (deterministic — byte-identical across
/// thread counts and reruns for deterministic jobs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedSummary {
    /// Jobs in the batch.
    pub total: usize,
    /// The failures, in job order.
    pub failed: Vec<FailedJob>,
    /// Retries consumed across the *whole* batch (every attempt beyond
    /// each job's first, successful jobs included — a flaky-but-recovered
    /// job consumed a retry too).
    pub retries: u64,
    /// Environments poisoned (and so rebuilt by the worker pools) across
    /// the whole batch — one per panicking attempt.
    pub poisoned: u64,
}

impl fmt::Display for DegradedSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} of {} jobs failed", self.failed.len(), self.total)?;
        for j in &self.failed {
            writeln!(
                f,
                "  {:04} {}: {} [attempts={}]",
                j.index, j.name, j.outcome, j.attempts
            )?;
        }
        writeln!(
            f,
            "retries consumed: {}, environments poisoned: {}",
            self.retries, self.poisoned
        )?;
        Ok(())
    }
}
