//! Jobs and reports: the units the runner shards and the records it emits.

use rvv_sim::Counters;
use rvv_trace::TraceProfiler;
use scanvec::{EnvConfig, ScanEnv, ScanResult};
use std::fmt;
use std::time::Duration;

/// The measurement closure a [`BatchJob`] runs inside its environment.
pub type JobFn<T> = Box<dyn Fn(&mut ScanEnv) -> ScanResult<T> + Send + Sync>;

/// One sweep point: a named, weighted, self-contained measurement to run
/// inside a (pooled, reset) [`ScanEnv`] of the given configuration.
///
/// The closure must derive everything it does from its arguments and the
/// environment — the engine may run it on any worker thread, in any order
/// relative to other jobs, inside a recycled environment. Determinism of
/// the sweep is exactly determinism of the closures.
pub struct BatchJob<T> {
    /// Stable identifier, unique within a batch (e.g. `"table1/bitonic/n=1000"`).
    pub name: String,
    /// Environment configuration the job runs under.
    pub config: EnvConfig,
    /// Relative cost hint for load balancing (e.g. the point's `n`).
    /// Only the *ordering* of weights matters; equal weights degrade to
    /// round-robin by job index. Never affects results, only wall clock.
    pub weight: u64,
    /// Attach a [`TraceProfiler`] for this job's run?
    pub trace: bool,
    run: JobFn<T>,
}

impl<T> BatchJob<T> {
    /// A job with weight 1 and no tracing.
    pub fn new(
        name: impl Into<String>,
        config: EnvConfig,
        run: impl Fn(&mut ScanEnv) -> ScanResult<T> + Send + Sync + 'static,
    ) -> BatchJob<T> {
        BatchJob {
            name: name.into(),
            config,
            weight: 1,
            trace: false,
            run: Box::new(run),
        }
    }

    /// Set the load-balancing weight (builder style).
    pub fn weight(mut self, weight: u64) -> BatchJob<T> {
        self.weight = weight;
        self
    }

    /// Request a per-job trace profile (builder style).
    pub fn traced(mut self, trace: bool) -> BatchJob<T> {
        self.trace = trace;
        self
    }

    pub(crate) fn execute(&self, env: &mut ScanEnv) -> ScanResult<T> {
        (self.run)(env)
    }
}

impl<T> fmt::Debug for BatchJob<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchJob")
            .field("name", &self.name)
            .field("config", &self.config)
            .field("weight", &self.weight)
            .field("trace", &self.trace)
            .finish_non_exhaustive()
    }
}

/// What one [`BatchJob`] produced.
#[derive(Debug)]
pub struct JobReport<T> {
    /// The job's name.
    pub name: String,
    /// The configuration it ran under.
    pub config: EnvConfig,
    /// The closure's result (errors are reported, not propagated — one
    /// failing point must not take down a 100-point sweep).
    pub output: ScanResult<T>,
    /// Dynamic instructions this job retired, by class.
    pub counters: Counters,
    /// Total dynamic instructions this job retired.
    pub retired: u64,
    /// The job's trace profile, when it was created with
    /// [`BatchJob::traced`].
    pub profile: Option<TraceProfiler>,
    /// Which worker ran the job. Deterministic given `(jobs, threads)` —
    /// sharding is computed before execution — but *not* stable across
    /// thread counts, so it is excluded from [`JobReport::stable_line`].
    pub worker: usize,
    /// Host wall-clock time of the closure. Timing only — excluded from
    /// the stable serialization.
    pub wall: Duration,
}

impl<T: fmt::Debug> JobReport<T> {
    /// The determinism-comparable serialization of this report: name,
    /// configuration, retired count, per-class counters, and the output's
    /// `Debug` form. Everything scheduling-dependent (worker id, wall
    /// clock) is excluded, so serial and parallel runs of the same jobs
    /// produce byte-identical lines.
    pub fn stable_line(&self) -> String {
        let out = match &self.output {
            Ok(v) => format!("ok {v:?}"),
            Err(e) => format!("err {e}"),
        };
        format!(
            "{} cfg=vlen{}/{:?}/{:?} retired={} counters={} output={}",
            self.name,
            self.config.vlen,
            self.config.lmul,
            self.config.spill_profile,
            self.retired,
            self.counters.to_json(),
            out
        )
    }
}

/// Everything a [`crate::BatchRunner::run`] call produced, in job order.
#[derive(Debug)]
pub struct BatchResult<T> {
    /// One report per job, **in job order** regardless of scheduling.
    pub reports: Vec<JobReport<T>>,
    /// All job counters merged (commutative fold, scheduling-independent).
    pub counters: Counters,
    /// All per-job profiles merged in job order (`None` when no job traced).
    pub profile: Option<TraceProfiler>,
    /// Worker threads the batch ran with.
    pub threads: usize,
    /// Kernel plans compiled into the shared registry during this batch.
    pub plan_compiles: u64,
    /// Wall clock of the whole batch. Timing only — excluded from
    /// [`BatchResult::stable_digest`].
    pub wall: Duration,
}

impl<T: fmt::Debug> BatchResult<T> {
    /// The determinism-comparable serialization of the whole batch: every
    /// report's [`JobReport::stable_line`] in job order, then the merged
    /// counters. Byte-identical across thread counts for deterministic
    /// jobs — the concurrency tests and the CI serial-vs-parallel gate
    /// compare exactly this string.
    pub fn stable_digest(&self) -> String {
        let mut s = String::new();
        for r in &self.reports {
            s.push_str(&r.stable_line());
            s.push('\n');
        }
        s.push_str(&format!("merged={}\n", self.counters.to_json()));
        s
    }

    /// Total dynamic instructions retired across all jobs.
    pub fn retired(&self) -> u64 {
        self.counters.total()
    }

    /// Did every job succeed?
    pub fn all_ok(&self) -> bool {
        self.reports.iter().all(|r| r.output.is_ok())
    }
}
