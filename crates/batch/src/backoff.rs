//! Deterministic retry backoff: exponential delay with seeded jitter.
//!
//! Retries used to re-execute immediately, which turns a transiently
//! overloaded resource into a thundering herd. A [`BackoffPolicy`] spaces
//! attempts out exponentially and jitters each delay with a PRNG keyed by
//! `(seed, job_index, attempt)` — the same keying discipline as
//! `rvv-fault`'s per-job fault plans — so a degraded run's delay schedule
//! is a pure function of the policy, reproducible across reruns and
//! thread counts. The *delays* are deterministic; only whether a given
//! attempt fails (and therefore whether a delay is consumed) depends on
//! the jobs themselves.
//!
//! Delays are bookkeeping, never results: the total slept rides the
//! quarantined [`JobReport::backoff`](crate::JobReport::backoff) field and
//! stays out of every stable digest.

use std::time::Duration;

/// SplitMix64 finalizer — the same mixer `rvv-fault` builds its keyed
/// PRNGs from, inlined here (a dozen lines) rather than importing the
/// crate: `rvv-fault` depends on the algorithm layer, and pulling it into
/// the batch layer would invert the dependency stack.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// How failed attempts are spaced (see the module docs).
///
/// The delay before retry `attempt` (1-based: the delay after the
/// `attempt`th failure) of job `job_index` is
/// `base * factor^(attempt-1)`, capped at `cap`, then jittered into
/// `[½, 1]` of itself by the keyed PRNG. [`BackoffPolicy::none`] keeps
/// the old run-again-immediately behavior for callers that want it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-retry delay.
    pub base: Duration,
    /// Multiplier per further attempt.
    pub factor: u32,
    /// Upper bound any single delay is clamped to.
    pub cap: Duration,
    /// Jitter seed (keyed with the job index and attempt number).
    pub seed: u64,
}

impl BackoffPolicy {
    /// The default schedule: 2 ms base, doubling, capped at 250 ms.
    /// Gentle enough that test sweeps with a couple of retries stay fast,
    /// spread enough that a whole batch of simultaneous failures
    /// de-synchronizes.
    pub fn new(seed: u64) -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_millis(2),
            factor: 2,
            cap: Duration::from_millis(250),
            seed,
        }
    }

    /// No delays at all — every retry runs immediately.
    pub fn none() -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::ZERO,
            factor: 1,
            cap: Duration::ZERO,
            seed: 0,
        }
    }

    /// The delay to sleep after the `attempt`th failure (1-based) of the
    /// job at `job_index`. Pure: same `(policy, job_index, attempt)`,
    /// same delay.
    pub fn delay(&self, job_index: u64, attempt: u32) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let cap = self.cap.as_nanos().max(self.base.as_nanos());
        let exp = u128::from(self.factor.max(1)).saturating_pow(attempt.saturating_sub(1));
        let nanos = self.base.as_nanos().saturating_mul(exp).min(cap);
        // Jitter into [½, 1] of the exponential delay: full jitter keeps
        // herds apart, the ½ floor keeps the schedule recognizably
        // exponential.
        let r = mix64(self.seed ^ mix64(job_index) ^ (u64::from(attempt) << 32));
        let half = nanos / 2;
        let jittered = half + (half * u128::from(r % 1024)) / 1023;
        Duration::from_nanos(u64::try_from(jittered).unwrap_or(u64::MAX))
    }
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_and_keyed() {
        let p = BackoffPolicy::new(7);
        assert_eq!(p.delay(3, 1), p.delay(3, 1));
        // Different jobs and different attempts draw different jitter.
        assert_ne!(p.delay(3, 1), p.delay(4, 1));
        assert_ne!(p.delay(3, 1), p.delay(3, 2));
        // A different seed reshuffles the schedule.
        assert_ne!(BackoffPolicy::new(8).delay(3, 1), p.delay(3, 1));
    }

    #[test]
    fn delays_grow_exponentially_within_jitter_bounds() {
        let p = BackoffPolicy::new(1);
        for attempt in 1..=5u32 {
            let nominal = p.base * p.factor.pow(attempt - 1);
            let d = p.delay(0, attempt);
            assert!(d >= nominal / 2, "attempt {attempt}: {d:?} < {nominal:?}/2");
            assert!(d <= nominal, "attempt {attempt}: {d:?} > {nominal:?}");
        }
    }

    #[test]
    fn cap_bounds_every_delay() {
        let p = BackoffPolicy::new(2);
        for attempt in 1..=40u32 {
            assert!(p.delay(9, attempt) <= p.cap);
        }
    }

    #[test]
    fn none_never_sleeps() {
        let p = BackoffPolicy::none();
        for attempt in 1..=4u32 {
            assert_eq!(p.delay(0, attempt), Duration::ZERO);
        }
    }
}
