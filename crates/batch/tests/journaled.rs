//! Crash/resume determinism for journaled batch runs: a sweep interrupted
//! after any prefix of completions and resumed (any number of times, at
//! any thread count) produces a [`BatchResult::stable_digest`] that is
//! byte-identical to an uninterrupted, never-journaled run.
//!
//! The in-process stand-in for a crash here is *truncating the journal* to
//! a record prefix before resuming — exactly the on-disk state a `kill -9`
//! leaves behind (the real SIGKILL test lives in the bench crate, where a
//! child process can actually be killed). The `crash_after` abort path is
//! also exercised there.

use rvv_batch::journal::{run_journaled, JournalOptions};
use rvv_batch::{BatchJob, BatchResult, BatchRunner, JobOutcome};
use rvv_ckpt::read_journal;
use scanvec::primitives::{plus_scan, seg_plus_scan};
use scanvec::{EnvConfig, HEAP_BASE};
use std::fs;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "rvv-batch-journal-{tag}-{}-{:p}",
        std::process::id(),
        &tag as *const _
    ));
    fs::create_dir_all(&d).unwrap();
    d
}

/// A small mixed sweep: successes (checksum payloads), one sim trap, one
/// host-side failure, one panic with a retry — every outcome class a
/// journal must carry across a crash.
fn cfg() -> EnvConfig {
    EnvConfig {
        mem_bytes: 1 << 22,
        ..EnvConfig::with_vlen(256)
    }
}

fn jobs() -> Vec<BatchJob<u64>> {
    let mut jobs: Vec<BatchJob<u64>> = (1..=6u64)
        .map(|k| {
            BatchJob::new(format!("scan/n={}", 50 * k), cfg(), move |env| {
                let v = env.from_u32(&vec![1; 50 * k as usize])?;
                plus_scan(env, &v)
            })
            .weight(50 * k)
        })
        .collect();
    jobs.push(BatchJob::new("trap/guard", cfg(), |env| {
        env.machine_mut().mem.add_guard(HEAP_BASE..HEAP_BASE + 64);
        let v = env.from_u32(&[1; 100])?;
        plus_scan(env, &v)
    }));
    jobs.push(BatchJob::new("fail/host", cfg(), |env| {
        let v = env.from_u32(&[1; 100])?;
        let f = env.from_u32(&[1; 50])?;
        seg_plus_scan(env, &v, &f) // length mismatch: host-side error
    }));
    jobs.push(
        BatchJob::new("panic/retry", cfg(), |_| -> scanvec::ScanResult<u64> {
            panic!("deliberate panic")
        })
        .retries(1),
    );
    jobs
}

fn digest_of(result: &BatchResult<u64>) -> String {
    result.stable_digest()
}

#[test]
fn journaled_run_matches_plain_run_and_journal_is_replayable() {
    let dir = tmpdir("plain");
    let path = dir.join("sweep.journal");
    let golden = digest_of(&BatchRunner::new(2).run(jobs()));

    // A fresh journaled run produces the same digest...
    let journaled = run_journaled(
        &BatchRunner::new(2),
        jobs(),
        &path,
        &JournalOptions::default(),
    )
    .unwrap();
    assert_eq!(digest_of(&journaled), golden);
    assert!(journaled.degraded().is_some(), "the sweep has failures");

    // ...and left one record per job behind it.
    let journal = read_journal(&path).unwrap();
    assert_eq!(journal.records.len(), jobs().len());

    // Resuming a *complete* journal replays everything and runs nothing;
    // the digest still matches, and failures come back as Replayed.
    let resumed = run_journaled(
        &BatchRunner::new(2),
        jobs(),
        &path,
        &JournalOptions {
            resume: true,
            ..JournalOptions::default()
        },
    )
    .unwrap();
    assert_eq!(digest_of(&resumed), golden);
    assert!(resumed
        .reports
        .iter()
        .filter(|r| !r.outcome.is_ok())
        .all(|r| matches!(r.outcome, JobOutcome::Replayed(_))));
    // Replay preserves the bookkeeping the manifest surfaces.
    let panic_job = resumed
        .reports
        .iter()
        .find(|r| r.name == "panic/retry")
        .unwrap();
    assert_eq!((panic_job.attempts, panic_job.poisoned), (2, 2));

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_truncation_point_resumes_to_the_golden_digest_at_any_thread_count() {
    let dir = tmpdir("truncate");
    let golden = digest_of(&BatchRunner::new(1).run(jobs()));
    let path = dir.join("full.journal");
    run_journaled(
        &BatchRunner::new(1),
        jobs(),
        &path,
        &JournalOptions::default(),
    )
    .unwrap();
    let full = fs::read(&path).unwrap();
    let journal = read_journal(&path).unwrap();

    // Record boundaries in the file: header end, then each record end.
    let mut boundaries = Vec::new();
    let mut pos = 0usize;
    for payload_len in
        std::iter::once(journal.header.len()).chain(journal.records.iter().map(Vec::len))
    {
        pos += 4 + 8 + payload_len;
        boundaries.push(pos);
    }

    for (cut, &end) in boundaries.iter().enumerate() {
        for threads in [1, 2, 4] {
            let p = dir.join(format!("cut{cut}-t{threads}.journal"));
            // Crash simulation: the journal survives only up to this
            // record, plus a torn fragment of the next one.
            let torn = (end + 7).min(full.len());
            fs::write(&p, &full[..torn]).unwrap();
            let resumed = run_journaled(
                &BatchRunner::new(threads),
                jobs(),
                &p,
                &JournalOptions {
                    resume: true,
                    ..JournalOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                digest_of(&resumed),
                golden,
                "cut after record {cut} at {threads} threads"
            );
            // The resumed journal is whole again: resumable once more.
            assert_eq!(read_journal(&p).unwrap().records.len(), jobs().len());
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_refuses_a_journal_for_a_different_sweep() {
    let dir = tmpdir("mismatch");
    let path = dir.join("sweep.journal");
    run_journaled(
        &BatchRunner::new(1),
        jobs(),
        &path,
        &JournalOptions::default(),
    )
    .unwrap();

    // Same path, different job list: refused before anything runs.
    let mut other = jobs();
    other.truncate(3);
    let err = run_journaled(
        &BatchRunner::new(1),
        other,
        &path,
        &JournalOptions {
            resume: true,
            ..JournalOptions::default()
        },
    )
    .unwrap_err();
    assert!(
        err.to_string().contains("different job list"),
        "unexpected error: {err}"
    );

    // Garbage at the path: refused, not misread.
    fs::write(&path, b"not a journal at all").unwrap();
    assert!(run_journaled(
        &BatchRunner::new(1),
        jobs(),
        &path,
        &JournalOptions {
            resume: true,
            ..JournalOptions::default()
        },
    )
    .is_err());
    fs::remove_dir_all(&dir).unwrap();
}
