//! Failure containment: every way a job can end is classified, isolated,
//! and reported deterministically — and a simulator trap's full detail
//! (byte addresses, fuel values) survives the trip through
//! [`ScanError::Sim`] into [`JobReport::stable_line`] and the degraded
//! manifest.

use rvv_batch::{BatchJob, BatchRunner, EnvConfig, JobOutcome, ScanEnv};
use rvv_sim::SimError;
use scanvec::primitives::{plus_scan, seg_plus_scan};
use scanvec::{ScanError, HEAP_BASE};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

// A reset environment's first allocation lands at `HEAP_BASE`, so a guard
// over it fires on the kernel's first access.
fn cfg() -> EnvConfig {
    EnvConfig {
        mem_bytes: 1 << 22,
        ..EnvConfig::with_vlen(256)
    }
}

fn ok_job(name: &str) -> BatchJob<u64> {
    BatchJob::new(name, cfg(), |env: &mut ScanEnv| {
        let v = env.from_u32(&[1; 100])?;
        plus_scan(env, &v)
    })
}

fn trapped_job(name: &str) -> BatchJob<u64> {
    BatchJob::new(name, cfg(), |env: &mut ScanEnv| {
        env.machine_mut().mem.add_guard(HEAP_BASE..HEAP_BASE + 64);
        let v = env.from_u32(&[1; 100])?;
        plus_scan(env, &v)
    })
}

fn host_failed_job(name: &str) -> BatchJob<u64> {
    BatchJob::new(name, cfg(), |env: &mut ScanEnv| {
        let v = env.from_u32(&[1; 100])?;
        let f = env.from_u32(&[1; 50])?;
        seg_plus_scan(env, &v, &f) // length mismatch: host-side error
    })
}

fn panicking_job(name: &str) -> BatchJob<u64> {
    BatchJob::new(name, cfg(), |_: &mut ScanEnv| -> scanvec::ScanResult<u64> {
        panic!("deliberate test panic")
    })
}

fn timed_out_job(name: &str) -> BatchJob<u64> {
    BatchJob::new(name, cfg(), |env: &mut ScanEnv| {
        let v = env.from_u32(&[1; 1000])?;
        plus_scan(env, &v)
    })
    .watchdog(50)
}

fn mixed_jobs() -> Vec<BatchJob<u64>> {
    vec![
        ok_job("ok"),
        trapped_job("trapped"),
        host_failed_job("host-failed"),
        panicking_job("panicking"),
        timed_out_job("timed-out"),
        // A clean job *after* the panic, on the same config: the pool must
        // hand it a non-poisoned environment.
        ok_job("ok-after-panic"),
    ]
}

#[test]
fn every_failure_mode_is_classified() {
    let result = BatchRunner::new(1).run(mixed_jobs());
    assert_eq!(
        result.reports.len(),
        6,
        "failures must not shorten the batch"
    );
    assert!(!result.all_ok());

    let r = &result.reports;
    assert!(matches!(r[0].outcome, JobOutcome::Ok(_)));
    match &r[1].outcome {
        JobOutcome::Trapped(SimError::GuardHit { addr }) => {
            assert_eq!(*addr, HEAP_BASE, "trap detail must survive classification")
        }
        other => panic!("expected a guard trap, got {other:?}"),
    }
    assert!(matches!(
        r[2].outcome,
        JobOutcome::Failed(ScanError::LengthMismatch { .. })
    ));
    match &r[3].outcome {
        JobOutcome::Panicked(msg) => assert!(msg.contains("deliberate test panic")),
        other => panic!("expected a panic, got {other:?}"),
    }
    assert!(matches!(r[4].outcome, JobOutcome::TimedOut { budget: 50 }));
    assert!(
        matches!(r[5].outcome, JobOutcome::Ok(_)),
        "a panic must not contaminate later jobs on the same config"
    );
    for report in r {
        assert_eq!(report.attempts, 1);
    }
}

#[test]
fn stable_lines_carry_full_failure_detail_but_no_scheduling_data() {
    let result = BatchRunner::new(1).run(mixed_jobs());
    let lines: Vec<String> = result.reports.iter().map(|r| r.stable_line()).collect();
    // The trap's Display — byte address included — lands verbatim in the
    // stable serialization, in the same `err …` form ScanResult used.
    assert!(
        lines[1].contains("err simulator trap: guard region hit at 0x1000"),
        "{}",
        lines[1]
    );
    assert!(lines[2].contains("err length mismatch"), "{}", lines[2]);
    assert!(
        lines[3].contains("panicked deliberate test panic"),
        "{}",
        lines[3]
    );
    assert!(lines[4].contains("timed-out budget=50"), "{}", lines[4]);
    for line in &lines {
        assert!(!line.contains("attempts"), "attempt count leaked: {line}");
        assert!(!line.contains("worker"), "worker id leaked: {line}");
    }
}

#[test]
fn degraded_summary_is_thread_count_invariant() {
    let runs: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|t| BatchRunner::new(t).run(mixed_jobs()))
        .collect();
    let reference = runs[0].degraded().expect("mixed batch has failures");
    assert_eq!(reference.total, 6);
    assert_eq!(reference.failed.len(), 4);
    assert_eq!(
        reference.failed.iter().map(|f| f.index).collect::<Vec<_>>(),
        vec![1, 2, 3, 4]
    );
    for run in &runs {
        let summary = run.degraded().expect("same failures at any thread count");
        assert_eq!(summary, reference);
        assert_eq!(summary.to_string(), reference.to_string());
        assert_eq!(run.stable_digest(), runs[0].stable_digest());
    }
    // The manifest names every failure in job order with its stable form.
    let text = reference.to_string();
    assert!(text.starts_with("4 of 6 jobs failed\n"), "{text}");
    assert!(text.contains("0001 trapped: err simulator trap"), "{text}");
    assert!(
        text.contains("0004 timed-out: timed-out budget=50"),
        "{text}"
    );
}

#[test]
fn retries_rerun_failed_attempts_in_a_fresh_environment() {
    // Fails on the first attempt, succeeds on the second — only possible
    // to observe if the retry actually runs.
    let tries = Arc::new(AtomicU32::new(0));
    let t = Arc::clone(&tries);
    let flaky = BatchJob::new("flaky", cfg(), move |env: &mut ScanEnv| {
        if t.fetch_add(1, Ordering::SeqCst) == 0 {
            // Poison the attempt with a guard trap; the retry's fresh
            // environment must not inherit the guard.
            env.machine_mut().mem.add_guard(HEAP_BASE..HEAP_BASE + 64);
        }
        let v = env.from_u32(&[1; 100])?;
        plus_scan(env, &v)
    })
    .retries(2);
    let hopeless = trapped_job("hopeless").retries(2);

    let result = BatchRunner::new(1).run(vec![flaky, hopeless]);
    let r = &result.reports;
    assert!(r[0].outcome.is_ok(), "retry must recover the flaky job");
    assert_eq!(
        r[0].attempts, 2,
        "success on the second attempt stops retrying"
    );
    assert!(matches!(r[1].outcome, JobOutcome::Trapped(_)));
    assert_eq!(
        r[1].attempts, 3,
        "deterministic failures burn the whole budget"
    );

    // Attempt counts are reported but quarantined: the flaky job's stable
    // line equals a never-failing twin's.
    let clean = BatchRunner::new(1).run(vec![ok_job("flaky")]);
    assert_eq!(r[0].stable_line(), clean.reports[0].stable_line());
}

#[test]
fn panicked_jobs_poison_only_their_own_environment() {
    // Panic and clean jobs interleaved on one config across 4 workers:
    // every clean job must still succeed, every panic must be contained.
    let mut jobs = Vec::new();
    for i in 0..12 {
        if i % 3 == 1 {
            jobs.push(panicking_job(&format!("boom/{i}")));
        } else {
            jobs.push(ok_job(&format!("fine/{i}")));
        }
    }
    let result = BatchRunner::new(4).run(jobs);
    for (i, r) in result.reports.iter().enumerate() {
        if i % 3 == 1 {
            assert!(matches!(r.outcome, JobOutcome::Panicked(_)), "{}", r.name);
        } else {
            assert!(r.outcome.is_ok(), "{} was contaminated", r.name);
        }
    }
    let serial = BatchRunner::new(1).run(
        (0..12)
            .map(|i| {
                if i % 3 == 1 {
                    panicking_job(&format!("boom/{i}"))
                } else {
                    ok_job(&format!("fine/{i}"))
                }
            })
            .collect(),
    );
    assert_eq!(result.stable_digest(), serial.stable_digest());
}
