//! Cross-tier cancellation parity: a deterministically-tripped
//! [`CancelToken`] must stop a job at the *same* instruction boundary on
//! every execution tier, reporting `JobOutcome::Cancelled` with identical
//! partial counters — the contract that makes deadline supervision
//! tier-agnostic.

use rvv_batch::{BatchJob, BatchRunner};
use scanvec::primitives::plus_scan;
use scanvec::{CancelToken, Engine, EnvConfig, ExecEngine};
use std::sync::Arc;

fn cancelled_report(exec: ExecEngine, trip_at: u64) -> (String, u64) {
    let engine = Arc::new(Engine::builder().default_exec_engine(exec).build());
    let token = CancelToken::after_checks(trip_at);
    let job = BatchJob::new("cancel-parity", EnvConfig::paper_default(), |env| {
        let v = env.from_u32(&[7u32; 512])?;
        plus_scan(env, &v)
    })
    .cancel_token(token);
    let result = BatchRunner::with_engine(1, engine).run(vec![job]);
    let report = &result.reports[0];
    (report.stable_line(), report.retired)
}

#[test]
fn cancellation_trips_at_the_same_boundary_on_every_tier() {
    let reports: Vec<(String, u64)> = ExecEngine::ALL
        .iter()
        .map(|&exec| cancelled_report(exec, 50))
        .collect();
    let (line, retired) = &reports[0];
    assert!(line.contains("cancelled at=50"), "{line}");
    // 49 boundaries passed the check before the 50th tripped it.
    assert_eq!(*retired, 49, "{line}");
    for (other, _) in &reports[1..] {
        assert_eq!(line, other, "tiers disagree on the cancelled report");
    }
}

#[test]
fn a_pre_cancelled_token_retires_nothing_on_any_tier() {
    for &exec in &ExecEngine::ALL {
        let engine = Arc::new(Engine::builder().default_exec_engine(exec).build());
        let token = CancelToken::new();
        token.cancel();
        let job = BatchJob::new("pre-cancelled", EnvConfig::paper_default(), |env| {
            let v = env.from_u32(&[1u32; 64])?;
            plus_scan(env, &v)
        })
        .cancel_token(token);
        let result = BatchRunner::with_engine(1, engine).run(vec![job]);
        let report = &result.reports[0];
        assert!(
            report.stable_line().contains("cancelled at=1"),
            "{exec:?}: {}",
            report.stable_line()
        );
        assert_eq!(report.retired, 0, "{exec:?} retired work after cancel");
    }
}
