//! Concurrency determinism: the batch engine's core contract, asserted
//! end-to-end with real kernels.
//!
//! The same job list must produce **byte-identical** stable reports and
//! merged counters at any thread count, and a shared plan registry must
//! compile each kernel configuration exactly once no matter how many
//! workers race for it.

use rvv_batch::{BatchJob, BatchRunner, Engine, EnvConfig, PlanCache, ScanEnv};
use rvv_isa::Lmul;
use scanvec::primitives::{p_add, plus_scan, seg_plus_scan};
use std::sync::Arc;

/// A mixed sweep: three experiment families over two LMULs and several
/// sizes, some points traced — enough shape diversity that a scheduling
/// dependence anywhere in the engine would show up as digest drift.
fn jobs() -> Vec<BatchJob<(u64, Vec<u32>)>> {
    let mut jobs = Vec::new();
    for lmul in [Lmul::M1, Lmul::M4] {
        for n in [57usize, 400, 1000] {
            let cfg = EnvConfig {
                lmul,
                mem_bytes: 1 << 24,
                ..EnvConfig::paper_default()
            };
            jobs.push(
                BatchJob::new(
                    format!("scan/m{}/n={n}", lmul.regs()),
                    cfg,
                    move |env: &mut ScanEnv| {
                        let data: Vec<u32> =
                            (0..n as u32).map(|i| i.wrapping_mul(7) % 1000).collect();
                        let v = env.from_u32(&data)?;
                        let retired = plus_scan(env, &v)?;
                        Ok((retired, env.to_u32(&v)))
                    },
                )
                .weight(n as u64),
            );
            jobs.push(
                BatchJob::new(
                    format!("seg_scan/m{}/n={n}", lmul.regs()),
                    cfg,
                    move |env: &mut ScanEnv| {
                        let data: Vec<u32> = (0..n as u32).map(|i| i % 100).collect();
                        let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 37 == 0)).collect();
                        let v = env.from_u32(&data)?;
                        let f = env.from_u32(&flags)?;
                        let retired = seg_plus_scan(env, &v, &f)?;
                        Ok((retired, env.to_u32(&v)))
                    },
                )
                .weight(n as u64)
                .traced(n == 400),
            );
            jobs.push(
                BatchJob::new(
                    format!("p_add/m{}/n={n}", lmul.regs()),
                    cfg,
                    move |env: &mut ScanEnv| {
                        let data: Vec<u32> = (0..n as u32).collect();
                        let v = env.from_u32(&data)?;
                        let retired = p_add(env, &v, 3)?;
                        Ok((retired, env.to_u32(&v)))
                    },
                )
                .weight(n as u64),
            );
        }
    }
    jobs
}

#[test]
fn thread_count_never_changes_the_output() {
    let runs: Vec<_> = [1usize, 2, 8]
        .into_iter()
        .map(|t| BatchRunner::new(t).run(jobs()))
        .collect();
    let reference = runs[0].stable_digest();
    assert!(runs[0].all_ok());
    for run in &runs {
        assert_eq!(run.threads, run.threads.max(1));
        // Byte-identical stable serialization: per-job outputs, retired
        // counts, per-class counters, and the merged totals.
        assert_eq!(
            run.stable_digest(),
            reference,
            "thread count changed the sweep output"
        );
        // Merged counters are equal as values too (not just as text).
        assert_eq!(run.counters, runs[0].counters);
        // Reports come back in job order at any thread count.
        let names: Vec<&str> = run.reports.iter().map(|r| r.name.as_str()).collect();
        let expect: Vec<String> = jobs().iter().map(|j| j.name.clone()).collect();
        assert_eq!(names, expect);
    }
}

#[test]
fn merged_profiles_are_thread_count_invariant() {
    let a = BatchRunner::new(1).run(jobs());
    let b = BatchRunner::new(4).run(jobs());
    let (pa, pb) = (
        a.profile.expect("traced jobs"),
        b.profile.expect("traced jobs"),
    );
    assert_eq!(pa.total_retired(), pb.total_retired());
    assert_eq!(pa.spill().total_ops(), pb.spill().total_ops());
    assert_eq!(pa.hotspots(20), pb.hotspots(20));
    assert_eq!(pa.events(), pb.events(), "merged timelines must match");
    // Per-job profiles exist exactly where requested.
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.profile.is_some(), rb.profile.is_some());
        assert_eq!(
            ra.name.contains("n=400") && ra.name.contains("seg"),
            ra.profile.is_some()
        );
    }
}

/// The same sweep with every job costed (and one point traced+costed):
/// cycle totals must fold into the stable digest byte-identically at
/// threads {1,2,4} — the cost-model half of the determinism contract.
#[test]
fn costed_sweep_digest_is_thread_count_invariant() {
    let costed = || {
        jobs()
            .into_iter()
            .map(|j| j.costed(rvv_cost::CostModel::ara_like()))
            .collect::<Vec<_>>()
    };
    let runs: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|t| BatchRunner::new(t).run(costed()))
        .collect();
    assert!(runs[0].all_ok());
    let reference = runs[0].stable_digest();
    // Costed lines actually carry cycles, and so does the digest tail.
    assert!(reference.contains(" cycles={\"cycles\":"), "{reference}");
    assert!(reference.contains("\ncycles={\"cycles\":"), "{reference}");
    for run in &runs {
        assert_eq!(
            run.stable_digest(),
            reference,
            "thread count changed the costed sweep output"
        );
        assert_eq!(run.cycles, runs[0].cycles);
        for r in &run.reports {
            let c = r.cycles.as_ref().expect("every job was costed");
            assert!(
                c.total() >= r.retired,
                "{}: modeled cycles {} below retired {} under ara-like",
                r.name,
                c.total(),
                r.retired
            );
        }
    }
    // The merged profile (traced+costed points) carries cycles too.
    let p = runs[0].profile.as_ref().expect("traced jobs");
    assert!(p.cycles().expect("costed profile").total() > 0);
    // An uncosted run of the same jobs keeps the original digest shape.
    let plain = BatchRunner::new(2).run(jobs());
    assert!(!plain.stable_digest().contains("cycles="));
    assert!(plain.cycles.is_none());
}

#[test]
fn shared_registry_compiles_each_config_once() {
    let cache = PlanCache::shared();
    let runner = BatchRunner::with_cache(8, Arc::clone(&cache));
    let result = runner.run(jobs());
    assert!(result.all_ok());
    assert!(result.plan_compiles > 0, "sweep must compile kernels");
    assert_eq!(
        result.plan_compiles,
        cache.compiles(),
        "all compiles went through the shared registry"
    );
    assert_eq!(
        cache.compiles(),
        cache.len() as u64,
        "every compile produced a distinct (name, config, profile) entry — \
         no configuration was compiled twice across 8 racing workers"
    );
    // Re-running the same jobs on the same registry compiles nothing new.
    let again = runner.run(jobs());
    assert_eq!(again.plan_compiles, 0, "warm registry must not recompile");
    assert_eq!(again.stable_digest(), result.stable_digest());
}

/// The engine half of the sharing contract, without the batch runner in
/// the loop: `Engine` is `Send + Sync` (checked at compile time), and N
/// threads creating their own sessions from one engine still compile each
/// kernel configuration exactly once.
#[test]
fn threads_sessioning_one_engine_compile_each_config_once() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<Arc<Engine>>();

    let engine = Arc::new(Engine::new());
    let configs = [Lmul::M1, Lmul::M4].map(|lmul| EnvConfig {
        lmul,
        mem_bytes: 1 << 24,
        ..EnvConfig::paper_default()
    });
    std::thread::scope(|scope| {
        for t in 0..8 {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                let cfg = configs[t % configs.len()];
                let mut env = engine.session(cfg).expect("valid test config");
                let data: Vec<u32> = (0..257).collect();
                let v = env.from_u32(&data).expect("alloc");
                plus_scan(&mut env, &v).expect("scan");
            });
        }
    });
    // 8 racing sessions, 2 configurations, 1 kernel: 2 compiles, and both
    // live in the one registry every session shares.
    assert_eq!(engine.plan_cache().compiles(), configs.len() as u64);
    assert_eq!(engine.plan_cache().len(), configs.len());
}

#[test]
fn worker_assignment_is_deterministic_and_scheduling_independent() {
    let a = BatchRunner::new(3).run(jobs());
    let b = BatchRunner::new(3).run(jobs());
    let workers = |r: &rvv_batch::BatchResult<(u64, Vec<u32>)>| {
        r.reports.iter().map(|j| j.worker).collect::<Vec<_>>()
    };
    // Sharding is computed before execution, so even the worker ids are
    // reproducible run-to-run at a fixed thread count.
    assert_eq!(workers(&a), workers(&b));
}
