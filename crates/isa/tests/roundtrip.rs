//! Property tests: `decode(encode(i)) == i` for every encodable instruction,
//! and `encode(decode(w)) == w` for every word that decodes.

use proptest::prelude::*;
use rvv_isa::{
    decode, encode, AluOp, BranchCond, Instr, Lmul, MaskOp, MemWidth, Sew, VAluOp, VCmp, VCsr,
    VRedOp, VReg, VType, XReg,
};

fn xreg() -> impl Strategy<Value = XReg> {
    (0u8..32).prop_map(XReg::new)
}

fn vreg() -> impl Strategy<Value = VReg> {
    (0u8..32).prop_map(VReg::new)
}

fn sew() -> impl Strategy<Value = Sew> {
    prop_oneof![
        Just(Sew::E8),
        Just(Sew::E16),
        Just(Sew::E32),
        Just(Sew::E64)
    ]
}

fn lmul() -> impl Strategy<Value = Lmul> {
    prop_oneof![
        Just(Lmul::M1),
        Just(Lmul::M2),
        Just(Lmul::M4),
        Just(Lmul::M8)
    ]
}

fn vtype() -> impl Strategy<Value = VType> {
    (sew(), lmul(), any::<bool>(), any::<bool>()).prop_map(|(sew, lmul, ta, ma)| VType {
        sew,
        lmul,
        ta,
        ma,
    })
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ]
}

fn valu_op() -> impl Strategy<Value = VAluOp> {
    prop_oneof![
        Just(VAluOp::Add),
        Just(VAluOp::Sub),
        Just(VAluOp::Rsub),
        Just(VAluOp::Minu),
        Just(VAluOp::Min),
        Just(VAluOp::Maxu),
        Just(VAluOp::Max),
        Just(VAluOp::And),
        Just(VAluOp::Or),
        Just(VAluOp::Xor),
        Just(VAluOp::Sll),
        Just(VAluOp::Srl),
        Just(VAluOp::Sra),
        Just(VAluOp::Mul),
        Just(VAluOp::Mulh),
        Just(VAluOp::Mulhu),
        Just(VAluOp::Divu),
        Just(VAluOp::Div),
        Just(VAluOp::Remu),
        Just(VAluOp::Rem),
    ]
}

fn vcmp() -> impl Strategy<Value = VCmp> {
    prop_oneof![
        Just(VCmp::Eq),
        Just(VCmp::Ne),
        Just(VCmp::Ltu),
        Just(VCmp::Lt),
        Just(VCmp::Leu),
        Just(VCmp::Le),
        Just(VCmp::Gtu),
        Just(VCmp::Gt),
    ]
}

fn mask_op() -> impl Strategy<Value = MaskOp> {
    prop_oneof![
        Just(MaskOp::Andn),
        Just(MaskOp::And),
        Just(MaskOp::Or),
        Just(MaskOp::Xor),
        Just(MaskOp::Orn),
        Just(MaskOp::Nand),
        Just(MaskOp::Nor),
        Just(MaskOp::Xnor),
    ]
}

fn red_op() -> impl Strategy<Value = VRedOp> {
    prop_oneof![
        Just(VRedOp::Sum),
        Just(VRedOp::And),
        Just(VRedOp::Or),
        Just(VRedOp::Xor),
        Just(VRedOp::Minu),
        Just(VRedOp::Min),
        Just(VRedOp::Maxu),
        Just(VRedOp::Max),
    ]
}

fn branch_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn mem_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::B),
        Just(MemWidth::H),
        Just(MemWidth::W),
        Just(MemWidth::D)
    ]
}

fn whole_count() -> impl Strategy<Value = u8> {
    prop_oneof![Just(1u8), Just(2), Just(4), Just(8)]
}

/// Generate only instructions the encoder accepts (valid operand forms and
/// in-range immediates).
fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (xreg(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm20)| Instr::Lui { rd, imm20 }),
        (xreg(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm20)| Instr::Auipc { rd, imm20 }),
        (xreg(), (-(1i32 << 19)..(1 << 19)).prop_map(|o| o * 2))
            .prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
        (xreg(), xreg(), -2048i32..=2047).prop_map(|(rd, rs1, offset)| Instr::Jalr {
            rd,
            rs1,
            offset
        }),
        (
            branch_cond(),
            xreg(),
            xreg(),
            (-2048i32..=2047).prop_map(|o| o * 2)
        )
            .prop_map(|(cond, rs1, rs2, offset)| Instr::Branch {
                cond,
                rs1,
                rs2,
                offset
            }),
        (mem_width(), any::<bool>(), xreg(), xreg(), -2048i32..=2047).prop_map(
            |(width, signed, rd, rs1, offset)| Instr::Load {
                width,
                // `ld` has no unsigned variant; normalize like the decoder.
                signed: signed || width == MemWidth::D,
                rd,
                rs1,
                offset
            }
        ),
        (mem_width(), xreg(), xreg(), -2048i32..=2047).prop_map(|(width, rs2, rs1, offset)| {
            Instr::Store {
                width,
                rs2,
                rs1,
                offset,
            }
        }),
        (alu_op(), xreg(), xreg(), -2048i32..=2047).prop_filter_map(
            "imm form must exist",
            |(op, rd, rs1, imm)| {
                if !op.has_imm_form() {
                    return None;
                }
                let imm = if op.is_shift() {
                    imm.rem_euclid(64)
                } else {
                    imm
                };
                Some(Instr::OpImm { op, rd, rs1, imm })
            }
        ),
        (alu_op(), xreg(), xreg(), xreg()).prop_map(|(op, rd, rs1, rs2)| Instr::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        Just(Instr::Ecall),
        Just(Instr::Ebreak),
        (
            xreg(),
            prop_oneof![Just(VCsr::Vl), Just(VCsr::Vtype), Just(VCsr::Vlenb)]
        )
            .prop_map(|(rd, csr)| Instr::Csrr { rd, csr }),
        (xreg(), xreg(), vtype()).prop_map(|(rd, rs1, vtype)| Instr::Vsetvli { rd, rs1, vtype }),
        (xreg(), 0u8..32, vtype()).prop_map(|(rd, uimm, vtype)| Instr::Vsetivli {
            rd,
            uimm,
            vtype
        }),
        (xreg(), xreg(), xreg()).prop_map(|(rd, rs1, rs2)| Instr::Vsetvl { rd, rs1, rs2 }),
        (sew(), vreg(), xreg(), any::<bool>()).prop_map(|(eew, vd, rs1, vm)| Instr::VLoad {
            eew,
            vd,
            rs1,
            vm
        }),
        (sew(), vreg(), xreg(), any::<bool>()).prop_map(|(eew, vs3, rs1, vm)| Instr::VStore {
            eew,
            vs3,
            rs1,
            vm
        }),
        (sew(), vreg(), xreg(), xreg(), any::<bool>()).prop_map(|(eew, vd, rs1, rs2, vm)| {
            Instr::VLoadStrided {
                eew,
                vd,
                rs1,
                rs2,
                vm,
            }
        }),
        (sew(), vreg(), xreg(), xreg(), any::<bool>()).prop_map(|(eew, vs3, rs1, rs2, vm)| {
            Instr::VStoreStrided {
                eew,
                vs3,
                rs1,
                rs2,
                vm,
            }
        }),
        (sew(), any::<bool>(), vreg(), xreg(), vreg(), any::<bool>()).prop_map(
            |(eew, ordered, vd, rs1, vs2, vm)| Instr::VLoadIndexed {
                eew,
                ordered,
                vd,
                rs1,
                vs2,
                vm
            }
        ),
        (sew(), any::<bool>(), vreg(), xreg(), vreg(), any::<bool>()).prop_map(
            |(eew, ordered, vs3, rs1, vs2, vm)| Instr::VStoreIndexed {
                eew,
                ordered,
                vs3,
                rs1,
                vs2,
                vm
            }
        ),
        (whole_count(), vreg(), xreg()).prop_map(|(nregs, vd, rs1)| Instr::VLoadWhole {
            nregs,
            vd,
            rs1
        }),
        (whole_count(), vreg(), xreg()).prop_map(|(nregs, vs3, rs1)| Instr::VStoreWhole {
            nregs,
            vs3,
            rs1
        }),
        (vreg(), xreg()).prop_map(|(vd, rs1)| Instr::VLoadMask { vd, rs1 }),
        (vreg(), xreg()).prop_map(|(vs3, rs1)| Instr::VStoreMask { vs3, rs1 }),
        (valu_op(), vreg(), vreg(), vreg(), any::<bool>()).prop_filter_map(
            ".vv must exist",
            |(op, vd, vs2, vs1, vm)| op.has_vv().then_some(Instr::VOpVV {
                op,
                vd,
                vs2,
                vs1,
                vm
            })
        ),
        (valu_op(), vreg(), vreg(), xreg(), any::<bool>()).prop_map(|(op, vd, vs2, rs1, vm)| {
            Instr::VOpVX {
                op,
                vd,
                vs2,
                rs1,
                vm,
            }
        }),
        (valu_op(), vreg(), vreg(), -16i8..=15, any::<bool>()).prop_filter_map(
            ".vi must exist",
            |(op, vd, vs2, imm, vm)| {
                if !op.has_vi() {
                    return None;
                }
                let imm = if op.imm_is_unsigned() {
                    imm & 0x1f
                } else {
                    imm
                };
                Some(Instr::VOpVI {
                    op,
                    vd,
                    vs2,
                    imm,
                    vm,
                })
            }
        ),
        (vcmp(), vreg(), vreg(), vreg(), any::<bool>()).prop_filter_map(
            "compare .vv must exist",
            |(cond, vd, vs2, vs1, vm)| cond.has_vv().then_some(Instr::VCmpVV {
                cond,
                vd,
                vs2,
                vs1,
                vm
            })
        ),
        (vcmp(), vreg(), vreg(), xreg(), any::<bool>()).prop_map(|(cond, vd, vs2, rs1, vm)| {
            Instr::VCmpVX {
                cond,
                vd,
                vs2,
                rs1,
                vm,
            }
        }),
        (vcmp(), vreg(), vreg(), -16i8..=15, any::<bool>()).prop_filter_map(
            "compare .vi must exist",
            |(cond, vd, vs2, imm, vm)| cond.has_vi().then_some(Instr::VCmpVI {
                cond,
                vd,
                vs2,
                imm,
                vm
            })
        ),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs2, vs1)| Instr::VMergeVVM { vd, vs2, vs1 }),
        (vreg(), vreg(), xreg()).prop_map(|(vd, vs2, rs1)| Instr::VMergeVXM { vd, vs2, rs1 }),
        (vreg(), vreg(), -16i8..=15).prop_map(|(vd, vs2, imm)| Instr::VMergeVIM { vd, vs2, imm }),
        (vreg(), vreg()).prop_map(|(vd, vs1)| Instr::VMvVV { vd, vs1 }),
        (vreg(), xreg()).prop_map(|(vd, rs1)| Instr::VMvVX { vd, rs1 }),
        (vreg(), -16i8..=15).prop_map(|(vd, imm)| Instr::VMvVI { vd, imm }),
        (vreg(), xreg()).prop_map(|(vd, rs1)| Instr::VMvSX { vd, rs1 }),
        (xreg(), vreg()).prop_map(|(rd, vs2)| Instr::VMvXS { rd, vs2 }),
        (vreg(), vreg(), xreg(), any::<bool>()).prop_map(|(vd, vs2, rs1, vm)| Instr::VSlideUpVX {
            vd,
            vs2,
            rs1,
            vm
        }),
        (vreg(), vreg(), 0u8..32, any::<bool>())
            .prop_map(|(vd, vs2, uimm, vm)| Instr::VSlideUpVI { vd, vs2, uimm, vm }),
        (vreg(), vreg(), xreg(), any::<bool>())
            .prop_map(|(vd, vs2, rs1, vm)| Instr::VSlideDownVX { vd, vs2, rs1, vm }),
        (vreg(), vreg(), 0u8..32, any::<bool>())
            .prop_map(|(vd, vs2, uimm, vm)| Instr::VSlideDownVI { vd, vs2, uimm, vm }),
        (vreg(), vreg(), xreg(), any::<bool>()).prop_map(|(vd, vs2, rs1, vm)| Instr::VSlide1Up {
            vd,
            vs2,
            rs1,
            vm
        }),
        (vreg(), vreg(), xreg(), any::<bool>()).prop_map(|(vd, vs2, rs1, vm)| Instr::VSlide1Down {
            vd,
            vs2,
            rs1,
            vm
        }),
        (vreg(), vreg(), vreg(), any::<bool>()).prop_map(|(vd, vs2, vs1, vm)| Instr::VRGatherVV {
            vd,
            vs2,
            vs1,
            vm
        }),
        (vreg(), vreg(), xreg(), any::<bool>()).prop_map(|(vd, vs2, rs1, vm)| Instr::VRGatherVX {
            vd,
            vs2,
            rs1,
            vm
        }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs2, vs1)| Instr::VCompress { vd, vs2, vs1 }),
        (mask_op(), vreg(), vreg(), vreg()).prop_map(|(op, vd, vs2, vs1)| Instr::VMaskLogic {
            op,
            vd,
            vs2,
            vs1
        }),
        (vreg(), vreg(), any::<bool>()).prop_map(|(vd, vs2, vm)| Instr::VIota { vd, vs2, vm }),
        (vreg(), any::<bool>()).prop_map(|(vd, vm)| Instr::VId { vd, vm }),
        (xreg(), vreg(), any::<bool>()).prop_map(|(rd, vs2, vm)| Instr::VCpop { rd, vs2, vm }),
        (xreg(), vreg(), any::<bool>()).prop_map(|(rd, vs2, vm)| Instr::VFirst { rd, vs2, vm }),
        (vreg(), vreg(), any::<bool>()).prop_map(|(vd, vs2, vm)| Instr::VMsbf { vd, vs2, vm }),
        (vreg(), vreg(), any::<bool>()).prop_map(|(vd, vs2, vm)| Instr::VMsif { vd, vs2, vm }),
        (vreg(), vreg(), any::<bool>()).prop_map(|(vd, vs2, vm)| Instr::VMsof { vd, vs2, vm }),
        (red_op(), vreg(), vreg(), vreg(), any::<bool>()).prop_map(|(op, vd, vs2, vs1, vm)| {
            Instr::VRed {
                op,
                vd,
                vs2,
                vs1,
                vm,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn encode_decode_roundtrip(i in instr()) {
        let word = encode(&i).expect("generator only produces encodable instructions");
        let back = decode(word).expect("encoded word must decode");
        prop_assert_eq!(back, i);
    }

    #[test]
    fn decode_encode_roundtrip(word in any::<u32>()) {
        // Most random words don't decode; those that do must re-encode
        // to the same bits (the encoding has no don't-care bits we model).
        if let Ok(i) = decode(word) {
            let re = encode(&i).expect("decoded instruction must re-encode");
            prop_assert_eq!(re, word, "decode({:#010x}) = {} re-encoded differently", word, i);
        }
    }

    #[test]
    fn display_never_panics(i in instr()) {
        let _ = i.to_string();
    }
}
