//! # rvv-isa — ISA data model for the scan-vector-model reproduction
//!
//! This crate defines the instruction-set architecture layer that the rest of
//! the workspace builds on: a typed model of the **RV64IM scalar subset** and
//! the **RISC-V Vector extension (RVV 1.0) subset** needed to implement
//! Blelloch's scan vector model the way the paper does (strip-mined kernels
//! using `vsetvli`, unit-stride and indexed vector memory operations, slides,
//! mask manipulation including `viota`/`vcpop`/`vmsbf`, and integer
//! arithmetic with masking).
//!
//! The crate deliberately contains **no execution semantics** — those live in
//! [`rvv-sim`](../rvv_sim/index.html). What lives here:
//!
//! * [`Sew`], [`Lmul`], [`VType`] — the vector configuration state model,
//!   including the `vtype` CSR bit layout.
//! * [`XReg`], [`VReg`] — checked register newtypes.
//! * [`Instr`] and its operand enums — one variant per instruction *family*
//!   (e.g. all of `vadd.vv`/`vsub.vv`/… are `Instr::VOpVV` with a
//!   [`VAluOp`]), which keeps the simulator's dispatch compact while still
//!   modelling every instruction the kernels emit.
//! * [`encode`]/[`decode`] — the 32-bit binary instruction encoding for the
//!   whole subset, round-trip tested. The simulator executes the typed form,
//!   but the encoder exists so that generated kernels are *real* RISC-V
//!   machine code, byte for byte, and so tests can assert against
//!   hand-assembled reference encodings from the specifications.
//! * [`InstrClass`] — the classification used by the simulator's dynamic
//!   instruction histogram (the paper's metric is Spike's dynamic instruction
//!   count; the histogram lets the benches break that count down).
//!
//! ## Scope of the subset
//!
//! Scalar: `RV64I` ALU/branch/load/store/jal/jalr plus `M` multiply/divide.
//! Vector: integer OPIVV/OPIVX/OPIVI arithmetic, compares-to-mask, merges and
//! moves, slides, gather/compress, the mask-register instruction group, the
//! single-width reductions, unit-stride/strided/indexed loads and stores, and
//! whole-register loads/stores (used by spill code). Fixed-point, floating
//! point, widening/narrowing and segment memory ops are out of scope: the
//! paper's kernels never touch them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
mod config;
mod decode;
mod encode;
mod instr;
mod reg;

pub use class::InstrClass;
pub use config::{KernelConfig, Lmul, Sew, VType};
pub use decode::{decode, DecodeError};
pub use encode::{encode, EncodeError};
pub use instr::{AluOp, BranchCond, Instr, MaskOp, MemWidth, VAluOp, VCmp, VCsr, VRedOp};
pub use reg::{VReg, XReg};

/// Convenience result alias for encoding.
pub type EncodeResult = Result<u32, EncodeError>;
