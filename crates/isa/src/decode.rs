//! 32-bit binary instruction decoding — the inverse of [`crate::encode`].
//!
//! `decode(encode(i)) == i` for every encodable instruction `i` (with the
//! single normalization that `ld` is always decoded with `signed = true`);
//! this is property-tested in `tests/roundtrip.rs`.

use crate::instr::{AluOp, BranchCond, Instr, MaskOp, MemWidth, VAluOp, VCmp, VRedOp};
use crate::{Sew, VReg, VType, XReg};
use core::fmt;

/// Error produced when a 32-bit word is not a recognizable instruction of
/// the modelled subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#010x}: {}", self.word, self.reason)
    }
}

impl std::error::Error for DecodeError {}

fn err(word: u32, reason: &'static str) -> DecodeError {
    DecodeError { word, reason }
}

fn rd(w: u32) -> XReg {
    XReg::new(((w >> 7) & 0x1f) as u8)
}
fn rs1(w: u32) -> XReg {
    XReg::new(((w >> 15) & 0x1f) as u8)
}
fn rs2(w: u32) -> XReg {
    XReg::new(((w >> 20) & 0x1f) as u8)
}
fn vd(w: u32) -> VReg {
    VReg::new(((w >> 7) & 0x1f) as u8)
}
fn vs1(w: u32) -> VReg {
    VReg::new(((w >> 15) & 0x1f) as u8)
}
fn vs2(w: u32) -> VReg {
    VReg::new(((w >> 20) & 0x1f) as u8)
}
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
fn funct7(w: u32) -> u32 {
    w >> 25
}
fn funct6(w: u32) -> u32 {
    w >> 26
}
fn vm_bit(w: u32) -> bool {
    (w >> 25) & 1 == 1
}

fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}

fn imm_s(w: u32) -> i32 {
    (((w as i32) >> 25) << 5) | (((w >> 7) & 0x1f) as i32)
}

fn imm_b(w: u32) -> i32 {
    let imm12 = (w >> 31) & 1;
    let imm11 = (w >> 7) & 1;
    let imm10_5 = (w >> 25) & 0x3f;
    let imm4_1 = (w >> 8) & 0xf;
    let v = (imm12 << 12) | (imm11 << 11) | (imm10_5 << 5) | (imm4_1 << 1);
    ((v << 19) as i32) >> 19
}

fn imm_j(w: u32) -> i32 {
    let imm20 = (w >> 31) & 1;
    let imm19_12 = (w >> 12) & 0xff;
    let imm11 = (w >> 20) & 1;
    let imm10_1 = (w >> 21) & 0x3ff;
    let v = (imm20 << 20) | (imm19_12 << 12) | (imm11 << 11) | (imm10_1 << 1);
    ((v << 11) as i32) >> 11
}

fn simm5(w: u32) -> i8 {
    let v = ((w >> 15) & 0x1f) as i8;
    (v << 3) >> 3
}

fn uimm5(w: u32) -> u8 {
    ((w >> 15) & 0x1f) as u8
}

fn opi_alu_from_funct6(f6: u32) -> Option<VAluOp> {
    Some(match f6 {
        0b000000 => VAluOp::Add,
        0b000010 => VAluOp::Sub,
        0b000011 => VAluOp::Rsub,
        0b000100 => VAluOp::Minu,
        0b000101 => VAluOp::Min,
        0b000110 => VAluOp::Maxu,
        0b000111 => VAluOp::Max,
        0b001001 => VAluOp::And,
        0b001010 => VAluOp::Or,
        0b001011 => VAluOp::Xor,
        0b100101 => VAluOp::Sll,
        0b101000 => VAluOp::Srl,
        0b101001 => VAluOp::Sra,
        _ => return None,
    })
}

fn opm_alu_from_funct6(f6: u32) -> Option<VAluOp> {
    Some(match f6 {
        0b100000 => VAluOp::Divu,
        0b100001 => VAluOp::Div,
        0b100010 => VAluOp::Remu,
        0b100011 => VAluOp::Rem,
        0b100100 => VAluOp::Mulhu,
        0b100101 => VAluOp::Mul,
        0b100111 => VAluOp::Mulh,
        _ => return None,
    })
}

fn cmp_from_funct6(f6: u32) -> Option<VCmp> {
    Some(match f6 {
        0b011000 => VCmp::Eq,
        0b011001 => VCmp::Ne,
        0b011010 => VCmp::Ltu,
        0b011011 => VCmp::Lt,
        0b011100 => VCmp::Leu,
        0b011101 => VCmp::Le,
        0b011110 => VCmp::Gtu,
        0b011111 => VCmp::Gt,
        _ => return None,
    })
}

fn mask_from_funct6(f6: u32) -> Option<MaskOp> {
    Some(match f6 {
        0b011000 => MaskOp::Andn,
        0b011001 => MaskOp::And,
        0b011010 => MaskOp::Or,
        0b011011 => MaskOp::Xor,
        0b011100 => MaskOp::Orn,
        0b011101 => MaskOp::Nand,
        0b011110 => MaskOp::Nor,
        0b011111 => MaskOp::Xnor,
        _ => return None,
    })
}

fn red_from_funct6(f6: u32) -> Option<VRedOp> {
    Some(match f6 {
        0b000000 => VRedOp::Sum,
        0b000001 => VRedOp::And,
        0b000010 => VRedOp::Or,
        0b000011 => VRedOp::Xor,
        0b000100 => VRedOp::Minu,
        0b000101 => VRedOp::Min,
        0b000110 => VRedOp::Maxu,
        0b000111 => VRedOp::Max,
        _ => return None,
    })
}

fn decode_op(w: u32) -> Result<Instr, DecodeError> {
    let f3 = funct3(w);
    let f7 = funct7(w);
    let op = match (f7, f3) {
        (0b0000000, 0b000) => AluOp::Add,
        (0b0100000, 0b000) => AluOp::Sub,
        (0b0000000, 0b001) => AluOp::Sll,
        (0b0000000, 0b010) => AluOp::Slt,
        (0b0000000, 0b011) => AluOp::Sltu,
        (0b0000000, 0b100) => AluOp::Xor,
        (0b0000000, 0b101) => AluOp::Srl,
        (0b0100000, 0b101) => AluOp::Sra,
        (0b0000000, 0b110) => AluOp::Or,
        (0b0000000, 0b111) => AluOp::And,
        (0b0000001, 0b000) => AluOp::Mul,
        (0b0000001, 0b001) => AluOp::Mulh,
        (0b0000001, 0b011) => AluOp::Mulhu,
        (0b0000001, 0b100) => AluOp::Div,
        (0b0000001, 0b101) => AluOp::Divu,
        (0b0000001, 0b110) => AluOp::Rem,
        (0b0000001, 0b111) => AluOp::Remu,
        _ => return Err(err(w, "unknown OP funct7/funct3")),
    };
    Ok(Instr::Op {
        op,
        rd: rd(w),
        rs1: rs1(w),
        rs2: rs2(w),
    })
}

fn decode_op_imm(w: u32) -> Result<Instr, DecodeError> {
    let f3 = funct3(w);
    match f3 {
        0b000 => Ok(Instr::OpImm {
            op: AluOp::Add,
            rd: rd(w),
            rs1: rs1(w),
            imm: imm_i(w),
        }),
        0b010 => Ok(Instr::OpImm {
            op: AluOp::Slt,
            rd: rd(w),
            rs1: rs1(w),
            imm: imm_i(w),
        }),
        0b011 => Ok(Instr::OpImm {
            op: AluOp::Sltu,
            rd: rd(w),
            rs1: rs1(w),
            imm: imm_i(w),
        }),
        0b100 => Ok(Instr::OpImm {
            op: AluOp::Xor,
            rd: rd(w),
            rs1: rs1(w),
            imm: imm_i(w),
        }),
        0b110 => Ok(Instr::OpImm {
            op: AluOp::Or,
            rd: rd(w),
            rs1: rs1(w),
            imm: imm_i(w),
        }),
        0b111 => Ok(Instr::OpImm {
            op: AluOp::And,
            rd: rd(w),
            rs1: rs1(w),
            imm: imm_i(w),
        }),
        0b001 => {
            if w >> 26 != 0 {
                return Err(err(w, "bad slli funct6"));
            }
            let shamt = ((w >> 20) & 0x3f) as i32;
            Ok(Instr::OpImm {
                op: AluOp::Sll,
                rd: rd(w),
                rs1: rs1(w),
                imm: shamt,
            })
        }
        0b101 => {
            let shamt = ((w >> 20) & 0x3f) as i32;
            match w >> 26 {
                0b000000 => Ok(Instr::OpImm {
                    op: AluOp::Srl,
                    rd: rd(w),
                    rs1: rs1(w),
                    imm: shamt,
                }),
                0b010000 => Ok(Instr::OpImm {
                    op: AluOp::Sra,
                    rd: rd(w),
                    rs1: rs1(w),
                    imm: shamt,
                }),
                _ => Err(err(w, "bad srli/srai funct6")),
            }
        }
        _ => Err(err(w, "unknown OP-IMM funct3")),
    }
}

fn decode_load(w: u32) -> Result<Instr, DecodeError> {
    let (width, signed) = match funct3(w) {
        0b000 => (MemWidth::B, true),
        0b001 => (MemWidth::H, true),
        0b010 => (MemWidth::W, true),
        0b011 => (MemWidth::D, true),
        0b100 => (MemWidth::B, false),
        0b101 => (MemWidth::H, false),
        0b110 => (MemWidth::W, false),
        _ => return Err(err(w, "unknown LOAD funct3")),
    };
    Ok(Instr::Load {
        width,
        signed,
        rd: rd(w),
        rs1: rs1(w),
        offset: imm_i(w),
    })
}

fn decode_store(w: u32) -> Result<Instr, DecodeError> {
    let width = match funct3(w) {
        0b000 => MemWidth::B,
        0b001 => MemWidth::H,
        0b010 => MemWidth::W,
        0b011 => MemWidth::D,
        _ => return Err(err(w, "unknown STORE funct3")),
    };
    Ok(Instr::Store {
        width,
        rs2: rs2(w),
        rs1: rs1(w),
        offset: imm_s(w),
    })
}

fn decode_branch(w: u32) -> Result<Instr, DecodeError> {
    let cond = match funct3(w) {
        0b000 => BranchCond::Eq,
        0b001 => BranchCond::Ne,
        0b100 => BranchCond::Lt,
        0b101 => BranchCond::Ge,
        0b110 => BranchCond::Ltu,
        0b111 => BranchCond::Geu,
        _ => return Err(err(w, "unknown BRANCH funct3")),
    };
    Ok(Instr::Branch {
        cond,
        rs1: rs1(w),
        rs2: rs2(w),
        offset: imm_b(w),
    })
}

fn decode_vmem(w: u32, is_store: bool) -> Result<Instr, DecodeError> {
    let nf = w >> 29;
    let mew = (w >> 28) & 1;
    let mop = (w >> 26) & 0b11;
    let vm = vm_bit(w);
    let field = (w >> 20) & 0x1f;
    let width = funct3(w);
    if mew != 0 {
        return Err(err(w, "mew=1 (EEW>64) unsupported"));
    }
    // nf != 0 outside whole-register ops means a segment load/store, which
    // the model does not support.
    if nf != 0 && !(mop == 0b00 && field == 0b01000) {
        return Err(err(w, "segment loads/stores unsupported"));
    }
    let eew = Sew::from_mem_width_bits(width).ok_or(err(w, "unsupported vector mem width"))?;
    match mop {
        0b00 => match field {
            0b00000 => Ok(if is_store {
                Instr::VStore {
                    eew,
                    vs3: vd(w),
                    rs1: rs1(w),
                    vm,
                }
            } else {
                Instr::VLoad {
                    eew,
                    vd: vd(w),
                    rs1: rs1(w),
                    vm,
                }
            }),
            0b01000 => {
                if !vm {
                    return Err(err(w, "whole-register ops must have vm=1"));
                }
                let nregs = match nf {
                    0 => 1,
                    1 => 2,
                    3 => 4,
                    7 => 8,
                    _ => return Err(err(w, "bad whole-register nf")),
                };
                if eew != Sew::E8 {
                    return Err(err(w, "whole-register ops modelled at EEW=8 only"));
                }
                Ok(if is_store {
                    Instr::VStoreWhole {
                        nregs,
                        vs3: vd(w),
                        rs1: rs1(w),
                    }
                } else {
                    Instr::VLoadWhole {
                        nregs,
                        vd: vd(w),
                        rs1: rs1(w),
                    }
                })
            }
            0b01011 => {
                if !vm {
                    return Err(err(w, "vlm/vsm must have vm=1"));
                }
                if eew != Sew::E8 {
                    return Err(err(w, "vlm/vsm must have width e8"));
                }
                Ok(if is_store {
                    Instr::VStoreMask {
                        vs3: vd(w),
                        rs1: rs1(w),
                    }
                } else {
                    Instr::VLoadMask {
                        vd: vd(w),
                        rs1: rs1(w),
                    }
                })
            }
            _ => Err(err(w, "unsupported lumop/sumop")),
        },
        0b10 => Ok(if is_store {
            Instr::VStoreStrided {
                eew,
                vs3: vd(w),
                rs1: rs1(w),
                rs2: rs2(w),
                vm,
            }
        } else {
            Instr::VLoadStrided {
                eew,
                vd: vd(w),
                rs1: rs1(w),
                rs2: rs2(w),
                vm,
            }
        }),
        0b01 | 0b11 => {
            let ordered = mop == 0b11;
            Ok(if is_store {
                Instr::VStoreIndexed {
                    eew,
                    ordered,
                    vs3: vd(w),
                    rs1: rs1(w),
                    vs2: vs2(w),
                    vm,
                }
            } else {
                Instr::VLoadIndexed {
                    eew,
                    ordered,
                    vd: vd(w),
                    rs1: rs1(w),
                    vs2: vs2(w),
                    vm,
                }
            })
        }
        _ => unreachable!(),
    }
}

fn decode_vsetvl(w: u32) -> Result<Instr, DecodeError> {
    if (w >> 30) & 0b11 == 0b11 {
        let zimm = ((w >> 20) & 0x3ff) as u64;
        let vtype = VType::from_bits(zimm).ok_or(err(w, "vill vtype in vsetivli"))?;
        return Ok(Instr::Vsetivli {
            rd: rd(w),
            uimm: uimm5(w),
            vtype,
        });
    }
    if w >> 31 == 1 {
        if (w >> 25) & 0x3f != 0 {
            return Err(err(w, "bad vsetvl funct7"));
        }
        return Ok(Instr::Vsetvl {
            rd: rd(w),
            rs1: rs1(w),
            rs2: rs2(w),
        });
    }
    let zimm = ((w >> 20) & 0x7ff) as u64;
    let vtype = VType::from_bits(zimm).ok_or(err(w, "vill vtype in vsetvli"))?;
    Ok(Instr::Vsetvli {
        rd: rd(w),
        rs1: rs1(w),
        vtype,
    })
}

fn decode_op_v(w: u32) -> Result<Instr, DecodeError> {
    let f3 = funct3(w);
    let f6 = funct6(w);
    let vm = vm_bit(w);
    match f3 {
        0b111 => decode_vsetvl(w),
        0b000 => {
            // OPIVV
            if let Some(op) = opi_alu_from_funct6(f6) {
                if !op.has_vv() {
                    return Err(err(w, "nonexistent .vv form"));
                }
                return Ok(Instr::VOpVV {
                    op,
                    vd: vd(w),
                    vs2: vs2(w),
                    vs1: vs1(w),
                    vm,
                });
            }
            if let Some(cond) = cmp_from_funct6(f6) {
                if !cond.has_vv() {
                    return Err(err(w, "nonexistent compare .vv form"));
                }
                return Ok(Instr::VCmpVV {
                    cond,
                    vd: vd(w),
                    vs2: vs2(w),
                    vs1: vs1(w),
                    vm,
                });
            }
            match f6 {
                0b001100 => Ok(Instr::VRGatherVV {
                    vd: vd(w),
                    vs2: vs2(w),
                    vs1: vs1(w),
                    vm,
                }),
                0b010111 => {
                    if vm {
                        if vs2(w).num() != 0 {
                            return Err(err(w, "vmv.v.v requires vs2=0"));
                        }
                        Ok(Instr::VMvVV {
                            vd: vd(w),
                            vs1: vs1(w),
                        })
                    } else {
                        Ok(Instr::VMergeVVM {
                            vd: vd(w),
                            vs2: vs2(w),
                            vs1: vs1(w),
                        })
                    }
                }
                _ => Err(err(w, "unknown OPIVV funct6")),
            }
        }
        0b100 => {
            // OPIVX
            if let Some(op) = opi_alu_from_funct6(f6) {
                return Ok(Instr::VOpVX {
                    op,
                    vd: vd(w),
                    vs2: vs2(w),
                    rs1: rs1(w),
                    vm,
                });
            }
            if let Some(cond) = cmp_from_funct6(f6) {
                return Ok(Instr::VCmpVX {
                    cond,
                    vd: vd(w),
                    vs2: vs2(w),
                    rs1: rs1(w),
                    vm,
                });
            }
            match f6 {
                0b001100 => Ok(Instr::VRGatherVX {
                    vd: vd(w),
                    vs2: vs2(w),
                    rs1: rs1(w),
                    vm,
                }),
                0b001110 => Ok(Instr::VSlideUpVX {
                    vd: vd(w),
                    vs2: vs2(w),
                    rs1: rs1(w),
                    vm,
                }),
                0b001111 => Ok(Instr::VSlideDownVX {
                    vd: vd(w),
                    vs2: vs2(w),
                    rs1: rs1(w),
                    vm,
                }),
                0b010111 => {
                    if vm {
                        if vs2(w).num() != 0 {
                            return Err(err(w, "vmv.v.x requires vs2=0"));
                        }
                        Ok(Instr::VMvVX {
                            vd: vd(w),
                            rs1: rs1(w),
                        })
                    } else {
                        Ok(Instr::VMergeVXM {
                            vd: vd(w),
                            vs2: vs2(w),
                            rs1: rs1(w),
                        })
                    }
                }
                _ => Err(err(w, "unknown OPIVX funct6")),
            }
        }
        0b011 => {
            // OPIVI
            if let Some(op) = opi_alu_from_funct6(f6) {
                if !op.has_vi() {
                    return Err(err(w, "nonexistent .vi form"));
                }
                let imm = if op.imm_is_unsigned() {
                    uimm5(w) as i8
                } else {
                    simm5(w)
                };
                return Ok(Instr::VOpVI {
                    op,
                    vd: vd(w),
                    vs2: vs2(w),
                    imm,
                    vm,
                });
            }
            if let Some(cond) = cmp_from_funct6(f6) {
                if !cond.has_vi() {
                    return Err(err(w, "nonexistent compare .vi form"));
                }
                return Ok(Instr::VCmpVI {
                    cond,
                    vd: vd(w),
                    vs2: vs2(w),
                    imm: simm5(w),
                    vm,
                });
            }
            match f6 {
                0b001110 => Ok(Instr::VSlideUpVI {
                    vd: vd(w),
                    vs2: vs2(w),
                    uimm: uimm5(w),
                    vm,
                }),
                0b001111 => Ok(Instr::VSlideDownVI {
                    vd: vd(w),
                    vs2: vs2(w),
                    uimm: uimm5(w),
                    vm,
                }),
                0b010111 => {
                    if vm {
                        if vs2(w).num() != 0 {
                            return Err(err(w, "vmv.v.i requires vs2=0"));
                        }
                        Ok(Instr::VMvVI {
                            vd: vd(w),
                            imm: simm5(w),
                        })
                    } else {
                        Ok(Instr::VMergeVIM {
                            vd: vd(w),
                            vs2: vs2(w),
                            imm: simm5(w),
                        })
                    }
                }
                _ => Err(err(w, "unknown OPIVI funct6")),
            }
        }
        0b010 => {
            // OPMVV
            if let Some(op) = red_from_funct6(f6) {
                return Ok(Instr::VRed {
                    op,
                    vd: vd(w),
                    vs2: vs2(w),
                    vs1: vs1(w),
                    vm,
                });
            }
            if let Some(op) = opm_alu_from_funct6(f6) {
                return Ok(Instr::VOpVV {
                    op,
                    vd: vd(w),
                    vs2: vs2(w),
                    vs1: vs1(w),
                    vm,
                });
            }
            match f6 {
                0b010000 => match (w >> 15) & 0x1f {
                    0b00000 => {
                        if !vm {
                            return Err(err(w, "vmv.x.s must be unmasked"));
                        }
                        Ok(Instr::VMvXS {
                            rd: rd(w),
                            vs2: vs2(w),
                        })
                    }
                    0b10000 => Ok(Instr::VCpop {
                        rd: rd(w),
                        vs2: vs2(w),
                        vm,
                    }),
                    0b10001 => Ok(Instr::VFirst {
                        rd: rd(w),
                        vs2: vs2(w),
                        vm,
                    }),
                    _ => Err(err(w, "unknown VWXUNARY0 vs1")),
                },
                0b010100 => match (w >> 15) & 0x1f {
                    0b00001 => Ok(Instr::VMsbf {
                        vd: vd(w),
                        vs2: vs2(w),
                        vm,
                    }),
                    0b00010 => Ok(Instr::VMsof {
                        vd: vd(w),
                        vs2: vs2(w),
                        vm,
                    }),
                    0b00011 => Ok(Instr::VMsif {
                        vd: vd(w),
                        vs2: vs2(w),
                        vm,
                    }),
                    0b10000 => Ok(Instr::VIota {
                        vd: vd(w),
                        vs2: vs2(w),
                        vm,
                    }),
                    0b10001 => Ok(Instr::VId { vd: vd(w), vm }),
                    _ => Err(err(w, "unknown VMUNARY0 vs1")),
                },
                0b010111 => {
                    if !vm {
                        return Err(err(w, "vcompress must be unmasked"));
                    }
                    Ok(Instr::VCompress {
                        vd: vd(w),
                        vs2: vs2(w),
                        vs1: vs1(w),
                    })
                }
                _ => {
                    if let Some(op) = mask_from_funct6(f6) {
                        if !vm {
                            return Err(err(w, "mask logical must be unmasked"));
                        }
                        Ok(Instr::VMaskLogic {
                            op,
                            vd: vd(w),
                            vs2: vs2(w),
                            vs1: vs1(w),
                        })
                    } else {
                        Err(err(w, "unknown OPMVV funct6"))
                    }
                }
            }
        }
        0b110 => {
            // OPMVX
            if let Some(op) = opm_alu_from_funct6(f6) {
                return Ok(Instr::VOpVX {
                    op,
                    vd: vd(w),
                    vs2: vs2(w),
                    rs1: rs1(w),
                    vm,
                });
            }
            match f6 {
                0b001110 => Ok(Instr::VSlide1Up {
                    vd: vd(w),
                    vs2: vs2(w),
                    rs1: rs1(w),
                    vm,
                }),
                0b001111 => Ok(Instr::VSlide1Down {
                    vd: vd(w),
                    vs2: vs2(w),
                    rs1: rs1(w),
                    vm,
                }),
                0b010000 => {
                    if vs2(w).num() != 0 {
                        return Err(err(w, "vmv.s.x requires vs2=0"));
                    }
                    if !vm {
                        return Err(err(w, "vmv.s.x must be unmasked"));
                    }
                    Ok(Instr::VMvSX {
                        vd: vd(w),
                        rs1: rs1(w),
                    })
                }
                _ => Err(err(w, "unknown OPMVX funct6")),
            }
        }
        _ => Err(err(w, "unsupported OP-V funct3 (FP space)")),
    }
}

/// Decode a 32-bit word into an [`Instr`].
///
/// # Errors
/// Returns a [`DecodeError`] naming the first field that failed to match the
/// modelled subset.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    // Note on mask-logic vs compares: funct6 0b011xxx appears in both the
    // OPIVV compare space and the OPMVV mask-logic space; funct3
    // disambiguates, handled inside decode_op_v.
    match word & 0x7f {
        0b0110111 => Ok(Instr::Lui {
            rd: rd(word),
            imm20: ((word as i32) >> 12),
        }),
        0b0010111 => Ok(Instr::Auipc {
            rd: rd(word),
            imm20: ((word as i32) >> 12),
        }),
        0b1101111 => Ok(Instr::Jal {
            rd: rd(word),
            offset: imm_j(word),
        }),
        0b1100111 => {
            if funct3(word) != 0 {
                return Err(err(word, "bad jalr funct3"));
            }
            Ok(Instr::Jalr {
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            })
        }
        0b1100011 => decode_branch(word),
        0b0000011 => decode_load(word),
        0b0100011 => decode_store(word),
        0b0010011 => decode_op_imm(word),
        0b0110011 => decode_op(word),
        0b1110011 => match word >> 7 {
            0 => Ok(Instr::Ecall),
            x if x == (1 << 13) => Ok(Instr::Ebreak),
            _ => {
                // csrrs rd, csr, x0 == csrr rd, csr.
                if funct3(word) == 0b010 && rs1(word).is_zero() {
                    if let Some(csr) = crate::instr::VCsr::from_addr(word >> 20) {
                        return Ok(Instr::Csrr { rd: rd(word), csr });
                    }
                }
                Err(err(word, "unsupported SYSTEM instruction"))
            }
        },
        0b1010111 => decode_op_v(word),
        0b0000111 => decode_vmem(word, false),
        0b0100111 => decode_vmem(word, true),
        _ => Err(err(word, "unknown opcode")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    #[test]
    fn decode_known_words() {
        assert_eq!(
            decode(0x0000_0013).unwrap(),
            Instr::OpImm {
                op: AluOp::Add,
                rd: XReg::ZERO,
                rs1: XReg::ZERO,
                imm: 0
            }
        );
        assert_eq!(decode(0x0000_0073).unwrap(), Instr::Ecall);
        assert_eq!(decode(0x0010_0073).unwrap(), Instr::Ebreak);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0x0000_0000).is_err()); // all-zero is not a valid instruction
    }

    #[test]
    fn roundtrip_spot_checks() {
        use crate::{Lmul, Sew, VType};
        let samples = [
            Instr::VMsbf {
                vd: VReg::new(3),
                vs2: VReg::new(5),
                vm: true,
            },
            Instr::VCpop {
                rd: XReg::new(9),
                vs2: VReg::V0,
                vm: true,
            },
            Instr::VCompress {
                vd: VReg::new(8),
                vs2: VReg::new(16),
                vs1: VReg::new(1),
            },
            Instr::VMergeVIM {
                vd: VReg::new(2),
                vs2: VReg::new(4),
                imm: -8,
            },
            Instr::VMvVI {
                vd: VReg::new(2),
                imm: -1,
            },
            Instr::Vsetivli {
                rd: XReg::new(1),
                uimm: 16,
                vtype: VType {
                    sew: Sew::E64,
                    lmul: Lmul::M2,
                    ta: false,
                    ma: true,
                },
            },
            Instr::VLoadWhole {
                nregs: 8,
                vd: VReg::new(8),
                rs1: XReg::new(2),
            },
            Instr::VStoreMask {
                vs3: VReg::new(7),
                rs1: XReg::new(4),
            },
            Instr::VOpVI {
                op: VAluOp::Srl,
                vd: VReg::new(1),
                vs2: VReg::new(2),
                imm: 31,
                vm: false,
            },
            Instr::VOpVV {
                op: VAluOp::Mul,
                vd: VReg::new(4),
                vs2: VReg::new(6),
                vs1: VReg::new(8),
                vm: true,
            },
            Instr::VSlide1Down {
                vd: VReg::new(1),
                vs2: VReg::new(2),
                rs1: XReg::new(3),
                vm: true,
            },
            Instr::Lui {
                rd: XReg::new(7),
                imm20: -1,
            },
            Instr::Jalr {
                rd: XReg::RA,
                rs1: XReg::new(5),
                offset: -2048,
            },
        ];
        for s in samples {
            let w = encode(&s).unwrap();
            assert_eq!(decode(w).unwrap(), s, "roundtrip failed for {s}");
        }
    }
}
