//! The typed instruction set: one enum variant per instruction *family*.
//!
//! Every instruction the workspace's kernels can emit is representable here.
//! Families group instructions that share an encoding shape and an execution
//! loop (e.g. every integer `OPIVV` arithmetic instruction is
//! [`Instr::VOpVV`] with a [`VAluOp`]); the concrete mnemonic is recovered by
//! the `Display` implementation, which renders standard assembly syntax.

use crate::{Sew, VReg, VType, XReg};
use core::fmt;

/// Scalar ALU operation selector, shared by register-register
/// ([`Instr::Op`]) and, for the subset that exists, immediate
/// ([`Instr::OpImm`]) forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add`/`addi`).
    Add,
    /// Subtraction (`sub`; no immediate form — use `addi` with negated imm).
    Sub,
    /// Logical left shift (`sll`/`slli`).
    Sll,
    /// Set-if-less-than, signed (`slt`/`slti`).
    Slt,
    /// Set-if-less-than, unsigned (`sltu`/`sltiu`).
    Sltu,
    /// Bitwise exclusive or (`xor`/`xori`).
    Xor,
    /// Logical right shift (`srl`/`srli`).
    Srl,
    /// Arithmetic right shift (`sra`/`srai`).
    Sra,
    /// Bitwise or (`or`/`ori`).
    Or,
    /// Bitwise and (`and`/`andi`).
    And,
    /// Multiplication, low 64 bits (`mul`; RV64M).
    Mul,
    /// Multiplication, high 64 bits signed×signed (`mulh`).
    Mulh,
    /// Multiplication, high 64 bits unsigned×unsigned (`mulhu`).
    Mulhu,
    /// Signed division (`div`).
    Div,
    /// Unsigned division (`divu`).
    Divu,
    /// Signed remainder (`rem`).
    Rem,
    /// Unsigned remainder (`remu`).
    Remu,
}

impl AluOp {
    /// Does an `OP-IMM` (`*i`) form of this operation exist in RV64I?
    pub const fn has_imm_form(self) -> bool {
        matches!(
            self,
            AluOp::Add
                | AluOp::Sll
                | AluOp::Slt
                | AluOp::Sltu
                | AluOp::Xor
                | AluOp::Srl
                | AluOp::Sra
                | AluOp::Or
                | AluOp::And
        )
    }

    /// Is this a shift (immediate operand is a 6-bit shamt on RV64)?
    pub const fn is_shift(self) -> bool {
        matches!(self, AluOp::Sll | AluOp::Srl | AluOp::Sra)
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Mulhu => "mulhu",
            AluOp::Div => "div",
            AluOp::Divu => "divu",
            AluOp::Rem => "rem",
            AluOp::Remu => "remu",
        }
    }
}

/// Branch comparison condition ([`Instr::Branch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `beq` — equal.
    Eq,
    /// `bne` — not equal.
    Ne,
    /// `blt` — signed less-than.
    Lt,
    /// `bge` — signed greater-or-equal.
    Ge,
    /// `bltu` — unsigned less-than.
    Ltu,
    /// `bgeu` — unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }
}

/// Vector-state CSRs readable with `csrr` (the Zicsr subset kernels use:
/// all three are read-only views of the vector configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VCsr {
    /// `vl` (0xC20).
    Vl,
    /// `vtype` (0xC21; bit 63 is `vill`).
    Vtype,
    /// `vlenb` (0xC22): VLEN/8.
    Vlenb,
}

impl VCsr {
    /// CSR address.
    pub const fn addr(self) -> u32 {
        match self {
            VCsr::Vl => 0xC20,
            VCsr::Vtype => 0xC21,
            VCsr::Vlenb => 0xC22,
        }
    }

    /// Decode from a CSR address.
    pub const fn from_addr(a: u32) -> Option<VCsr> {
        match a {
            0xC20 => Some(VCsr::Vl),
            0xC21 => Some(VCsr::Vtype),
            0xC22 => Some(VCsr::Vlenb),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            VCsr::Vl => "vl",
            VCsr::Vtype => "vtype",
            VCsr::Vlenb => "vlenb",
        }
    }
}

/// Scalar memory access width ([`Instr::Load`]/[`Instr::Store`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte (`lb`/`lbu`/`sb`).
    B,
    /// 2 bytes (`lh`/`lhu`/`sh`).
    H,
    /// 4 bytes (`lw`/`lwu`/`sw`).
    W,
    /// 8 bytes (`ld`/`sd`).
    D,
}

impl MemWidth {
    /// Access width in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }
}

/// Vector integer ALU operation selector for the `OPIVV`/`OPIVX`/`OPIVI` and
/// `OPMVV`/`OPMVX` arithmetic families.
///
/// Which operand forms exist follows the RVV 1.0 instruction listings; the
/// encoder rejects nonexistent combinations (e.g. `vsub.vi`,
/// `vmul.vi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VAluOp {
    /// `vadd` (vv, vx, vi).
    Add,
    /// `vsub` (vv, vx).
    Sub,
    /// `vrsub` — reverse subtract, `vd = rs1 - vs2` (vx, vi).
    Rsub,
    /// `vminu` — unsigned minimum (vv, vx).
    Minu,
    /// `vmin` — signed minimum (vv, vx).
    Min,
    /// `vmaxu` — unsigned maximum (vv, vx).
    Maxu,
    /// `vmax` — signed maximum (vv, vx).
    Max,
    /// `vand` (vv, vx, vi).
    And,
    /// `vor` (vv, vx, vi).
    Or,
    /// `vxor` (vv, vx, vi).
    Xor,
    /// `vsll` — logical left shift (vv, vx, vi\[uimm\]).
    Sll,
    /// `vsrl` — logical right shift (vv, vx, vi\[uimm\]).
    Srl,
    /// `vsra` — arithmetic right shift (vv, vx, vi\[uimm\]).
    Sra,
    /// `vmul` — low SEW bits of product (vv, vx; OPM funct3).
    Mul,
    /// `vmulh` — high SEW bits, signed×signed (vv, vx).
    Mulh,
    /// `vmulhu` — high SEW bits, unsigned×unsigned (vv, vx).
    Mulhu,
    /// `vdivu` — unsigned division (vv, vx).
    Divu,
    /// `vdiv` — signed division (vv, vx).
    Div,
    /// `vremu` — unsigned remainder (vv, vx).
    Remu,
    /// `vrem` — signed remainder (vv, vx).
    Rem,
}

impl VAluOp {
    /// Operations encoded under the `OPM*` funct3 space (multiply/divide).
    pub const fn is_opm(self) -> bool {
        matches!(
            self,
            VAluOp::Mul
                | VAluOp::Mulh
                | VAluOp::Mulhu
                | VAluOp::Divu
                | VAluOp::Div
                | VAluOp::Remu
                | VAluOp::Rem
        )
    }

    /// Does a `.vv` form exist?
    pub const fn has_vv(self) -> bool {
        !matches!(self, VAluOp::Rsub)
    }

    /// Does a `.vx` form exist? (All of this subset do.)
    pub const fn has_vx(self) -> bool {
        true
    }

    /// Does a `.vi` form exist?
    pub const fn has_vi(self) -> bool {
        matches!(
            self,
            VAluOp::Add
                | VAluOp::Rsub
                | VAluOp::And
                | VAluOp::Or
                | VAluOp::Xor
                | VAluOp::Sll
                | VAluOp::Srl
                | VAluOp::Sra
        )
    }

    /// Do the shift-style instructions interpret the immediate as unsigned?
    pub const fn imm_is_unsigned(self) -> bool {
        matches!(self, VAluOp::Sll | VAluOp::Srl | VAluOp::Sra)
    }

    fn mnemonic(self) -> &'static str {
        match self {
            VAluOp::Add => "vadd",
            VAluOp::Sub => "vsub",
            VAluOp::Rsub => "vrsub",
            VAluOp::Minu => "vminu",
            VAluOp::Min => "vmin",
            VAluOp::Maxu => "vmaxu",
            VAluOp::Max => "vmax",
            VAluOp::And => "vand",
            VAluOp::Or => "vor",
            VAluOp::Xor => "vxor",
            VAluOp::Sll => "vsll",
            VAluOp::Srl => "vsrl",
            VAluOp::Sra => "vsra",
            VAluOp::Mul => "vmul",
            VAluOp::Mulh => "vmulh",
            VAluOp::Mulhu => "vmulhu",
            VAluOp::Divu => "vdivu",
            VAluOp::Div => "vdiv",
            VAluOp::Remu => "vremu",
            VAluOp::Rem => "vrem",
        }
    }
}

/// Vector integer compare condition — these produce a *mask* in `vd`
/// (`vmseq` etc.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VCmp {
    /// `vmseq` (vv, vx, vi).
    Eq,
    /// `vmsne` (vv, vx, vi).
    Ne,
    /// `vmsltu` (vv, vx).
    Ltu,
    /// `vmslt` (vv, vx).
    Lt,
    /// `vmsleu` (vv, vx, vi).
    Leu,
    /// `vmsle` (vv, vx, vi).
    Le,
    /// `vmsgtu` (vx, vi).
    Gtu,
    /// `vmsgt` (vx, vi).
    Gt,
}

impl VCmp {
    /// Does a `.vv` form exist?
    pub const fn has_vv(self) -> bool {
        !matches!(self, VCmp::Gtu | VCmp::Gt)
    }

    /// Does a `.vi` form exist?
    pub const fn has_vi(self) -> bool {
        !matches!(self, VCmp::Ltu | VCmp::Lt)
    }

    fn mnemonic(self) -> &'static str {
        match self {
            VCmp::Eq => "vmseq",
            VCmp::Ne => "vmsne",
            VCmp::Ltu => "vmsltu",
            VCmp::Lt => "vmslt",
            VCmp::Leu => "vmsleu",
            VCmp::Le => "vmsle",
            VCmp::Gtu => "vmsgtu",
            VCmp::Gt => "vmsgt",
        }
    }
}

/// Mask-register logical operation (`vm<op>.mm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaskOp {
    /// `vmandn.mm` — `vs2 & !vs1`.
    Andn,
    /// `vmand.mm`.
    And,
    /// `vmor.mm`.
    Or,
    /// `vmxor.mm`.
    Xor,
    /// `vmorn.mm` — `vs2 | !vs1`.
    Orn,
    /// `vmnand.mm`.
    Nand,
    /// `vmnor.mm`.
    Nor,
    /// `vmxnor.mm`.
    Xnor,
}

impl MaskOp {
    fn mnemonic(self) -> &'static str {
        match self {
            MaskOp::Andn => "vmandn.mm",
            MaskOp::And => "vmand.mm",
            MaskOp::Or => "vmor.mm",
            MaskOp::Xor => "vmxor.mm",
            MaskOp::Orn => "vmorn.mm",
            MaskOp::Nand => "vmnand.mm",
            MaskOp::Nor => "vmnor.mm",
            MaskOp::Xnor => "vmxnor.mm",
        }
    }
}

/// Single-width integer reduction operation (`vred<op>.vs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VRedOp {
    /// `vredsum.vs`.
    Sum,
    /// `vredand.vs`.
    And,
    /// `vredor.vs`.
    Or,
    /// `vredxor.vs`.
    Xor,
    /// `vredminu.vs`.
    Minu,
    /// `vredmin.vs`.
    Min,
    /// `vredmaxu.vs`.
    Maxu,
    /// `vredmax.vs`.
    Max,
}

impl VRedOp {
    fn mnemonic(self) -> &'static str {
        match self {
            VRedOp::Sum => "vredsum.vs",
            VRedOp::And => "vredand.vs",
            VRedOp::Or => "vredor.vs",
            VRedOp::Xor => "vredxor.vs",
            VRedOp::Minu => "vredminu.vs",
            VRedOp::Min => "vredmin.vs",
            VRedOp::Maxu => "vredmaxu.vs",
            VRedOp::Max => "vredmax.vs",
        }
    }
}

/// One instruction of the modelled RV64IM + RVV subset.
///
/// Branch and jump offsets are **byte offsets relative to the instruction's
/// own PC**, exactly as in the binary encoding; the assembler layer
/// (`rvv-asm`) resolves labels to these offsets. All instructions are 4 bytes.
///
/// The `vm` field on vector instructions is the standard RVV polarity:
/// `vm == true` means *unmasked*; `vm == false` means "execute where mask
/// register `v0` has bit set".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field meanings follow the RISC-V specifications
pub enum Instr {
    // ------------------------------------------------------------- scalar --
    /// `lui rd, imm20` — load upper immediate (`rd = imm20 << 12`).
    Lui { rd: XReg, imm20: i32 },
    /// `auipc rd, imm20` — add upper immediate to PC.
    Auipc { rd: XReg, imm20: i32 },
    /// `jal rd, offset` — jump and link.
    Jal { rd: XReg, offset: i32 },
    /// `jalr rd, offset(rs1)` — indirect jump and link.
    Jalr { rd: XReg, rs1: XReg, offset: i32 },
    /// Conditional branch.
    Branch {
        cond: BranchCond,
        rs1: XReg,
        rs2: XReg,
        offset: i32,
    },
    /// Scalar load. `signed` selects sign- vs zero-extension (`ld` is always
    /// `signed = true` by convention; width D ignores the flag).
    Load {
        width: MemWidth,
        signed: bool,
        rd: XReg,
        rs1: XReg,
        offset: i32,
    },
    /// Scalar store.
    Store {
        width: MemWidth,
        rs2: XReg,
        rs1: XReg,
        offset: i32,
    },
    /// Register-immediate ALU operation (`addi`, `slli`, …).
    OpImm {
        op: AluOp,
        rd: XReg,
        rs1: XReg,
        imm: i32,
    },
    /// Register-register ALU operation (`add`, `mul`, …).
    Op {
        op: AluOp,
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
    /// `csrr rd, csr` — read a vector-state CSR (`csrrs rd, csr, x0`).
    Csrr { rd: XReg, csr: VCsr },
    /// `ecall` — the runner treats this as *halt*.
    Ecall,
    /// `ebreak` — the runner treats this as a trap (test/failure hook).
    Ebreak,

    // ------------------------------------------------------ configuration --
    /// `vsetvli rd, rs1, vtype`.
    Vsetvli { rd: XReg, rs1: XReg, vtype: VType },
    /// `vsetivli rd, uimm, vtype` (5-bit immediate AVL).
    Vsetivli { rd: XReg, uimm: u8, vtype: VType },
    /// `vsetvl rd, rs1, rs2` (vtype from `rs2`).
    Vsetvl { rd: XReg, rs1: XReg, rs2: XReg },

    // ------------------------------------------------------ vector memory --
    /// Unit-stride load `vle<eew>.v vd, (rs1)`.
    VLoad {
        eew: Sew,
        vd: VReg,
        rs1: XReg,
        vm: bool,
    },
    /// Unit-stride store `vse<eew>.v vs3, (rs1)`.
    VStore {
        eew: Sew,
        vs3: VReg,
        rs1: XReg,
        vm: bool,
    },
    /// Strided load `vlse<eew>.v vd, (rs1), rs2`.
    VLoadStrided {
        eew: Sew,
        vd: VReg,
        rs1: XReg,
        rs2: XReg,
        vm: bool,
    },
    /// Strided store `vsse<eew>.v vs3, (rs1), rs2`.
    VStoreStrided {
        eew: Sew,
        vs3: VReg,
        rs1: XReg,
        rs2: XReg,
        vm: bool,
    },
    /// Indexed load `vlux/vloxei<eew>.v vd, (rs1), vs2` — `vs2` holds *byte*
    /// offsets.
    VLoadIndexed {
        eew: Sew,
        ordered: bool,
        vd: VReg,
        rs1: XReg,
        vs2: VReg,
        vm: bool,
    },
    /// Indexed store `vsux/vsoxei<eew>.v vs3, (rs1), vs2` — the paper's
    /// `VSUXEI` permutation workhorse.
    VStoreIndexed {
        eew: Sew,
        ordered: bool,
        vs3: VReg,
        rs1: XReg,
        vs2: VReg,
        vm: bool,
    },
    /// Whole-register load `vl<nregs>re8.v vd, (rs1)`; `nregs ∈ {1,2,4,8}`.
    /// Used by spill code.
    VLoadWhole { nregs: u8, vd: VReg, rs1: XReg },
    /// Whole-register store `vs<nregs>r.v vs3, (rs1)`.
    VStoreWhole { nregs: u8, vs3: VReg, rs1: XReg },
    /// Mask load `vlm.v vd, (rs1)` (EEW=8, ceil(vl/8) bytes).
    VLoadMask { vd: VReg, rs1: XReg },
    /// Mask store `vsm.v vs3, (rs1)`.
    VStoreMask { vs3: VReg, rs1: XReg },

    // -------------------------------------------------- vector arithmetic --
    /// Integer ALU, vector-vector.
    VOpVV {
        op: VAluOp,
        vd: VReg,
        vs2: VReg,
        vs1: VReg,
        vm: bool,
    },
    /// Integer ALU, vector-scalar.
    VOpVX {
        op: VAluOp,
        vd: VReg,
        vs2: VReg,
        rs1: XReg,
        vm: bool,
    },
    /// Integer ALU, vector-immediate (5-bit, sign- or zero-extended per op).
    VOpVI {
        op: VAluOp,
        vd: VReg,
        vs2: VReg,
        imm: i8,
        vm: bool,
    },
    /// Integer compare to mask, vector-vector.
    VCmpVV {
        cond: VCmp,
        vd: VReg,
        vs2: VReg,
        vs1: VReg,
        vm: bool,
    },
    /// Integer compare to mask, vector-scalar.
    VCmpVX {
        cond: VCmp,
        vd: VReg,
        vs2: VReg,
        rs1: XReg,
        vm: bool,
    },
    /// Integer compare to mask, vector-immediate.
    VCmpVI {
        cond: VCmp,
        vd: VReg,
        vs2: VReg,
        imm: i8,
        vm: bool,
    },
    /// `vmerge.vvm vd, vs2, vs1, v0` — `vd[i] = v0.mask[i] ? vs1[i] : vs2[i]`.
    VMergeVVM { vd: VReg, vs2: VReg, vs1: VReg },
    /// `vmerge.vxm vd, vs2, rs1, v0`.
    VMergeVXM { vd: VReg, vs2: VReg, rs1: XReg },
    /// `vmerge.vim vd, vs2, imm, v0`.
    VMergeVIM { vd: VReg, vs2: VReg, imm: i8 },
    /// `vmv.v.v vd, vs1`.
    VMvVV { vd: VReg, vs1: VReg },
    /// `vmv.v.x vd, rs1` — broadcast scalar.
    VMvVX { vd: VReg, rs1: XReg },
    /// `vmv.v.i vd, imm` — broadcast immediate.
    VMvVI { vd: VReg, imm: i8 },
    /// `vmv.s.x vd, rs1` — write element 0 only.
    VMvSX { vd: VReg, rs1: XReg },
    /// `vmv.x.s rd, vs2` — read element 0.
    VMvXS { rd: XReg, vs2: VReg },

    // ------------------------------------------------- vector permutation --
    /// `vslideup.vx vd, vs2, rs1`.
    VSlideUpVX {
        vd: VReg,
        vs2: VReg,
        rs1: XReg,
        vm: bool,
    },
    /// `vslideup.vi vd, vs2, uimm`.
    VSlideUpVI {
        vd: VReg,
        vs2: VReg,
        uimm: u8,
        vm: bool,
    },
    /// `vslidedown.vx vd, vs2, rs1`.
    VSlideDownVX {
        vd: VReg,
        vs2: VReg,
        rs1: XReg,
        vm: bool,
    },
    /// `vslidedown.vi vd, vs2, uimm`.
    VSlideDownVI {
        vd: VReg,
        vs2: VReg,
        uimm: u8,
        vm: bool,
    },
    /// `vslide1up.vx vd, vs2, rs1` — slide up one, insert scalar at 0.
    VSlide1Up {
        vd: VReg,
        vs2: VReg,
        rs1: XReg,
        vm: bool,
    },
    /// `vslide1down.vx vd, vs2, rs1`.
    VSlide1Down {
        vd: VReg,
        vs2: VReg,
        rs1: XReg,
        vm: bool,
    },
    /// `vrgather.vv vd, vs2, vs1` — `vd[i] = vs1[i] < VLMAX ? vs2[vs1[i]] : 0`.
    VRGatherVV {
        vd: VReg,
        vs2: VReg,
        vs1: VReg,
        vm: bool,
    },
    /// `vrgather.vx vd, vs2, rs1` — broadcast `vs2[rs1]`.
    VRGatherVX {
        vd: VReg,
        vs2: VReg,
        rs1: XReg,
        vm: bool,
    },
    /// `vcompress.vm vd, vs2, vs1` — pack elements selected by mask `vs1`.
    VCompress { vd: VReg, vs2: VReg, vs1: VReg },

    // ------------------------------------------------------- vector masks --
    /// Mask-register logical (`vmand.mm` etc.).
    VMaskLogic {
        op: MaskOp,
        vd: VReg,
        vs2: VReg,
        vs1: VReg,
    },
    /// `viota.m vd, vs2` — exclusive prefix popcount of mask `vs2` (the
    /// paper's in-register `enumerate`).
    VIota { vd: VReg, vs2: VReg, vm: bool },
    /// `vid.v vd` — element indices.
    VId { vd: VReg, vm: bool },
    /// `vcpop.m rd, vs2` — population count of mask into scalar.
    VCpop { rd: XReg, vs2: VReg, vm: bool },
    /// `vfirst.m rd, vs2` — index of first set mask bit, or -1.
    VFirst { rd: XReg, vs2: VReg, vm: bool },
    /// `vmsbf.m vd, vs2` — set-before-first (the paper's carry-mask trick).
    VMsbf { vd: VReg, vs2: VReg, vm: bool },
    /// `vmsif.m vd, vs2` — set-including-first.
    VMsif { vd: VReg, vs2: VReg, vm: bool },
    /// `vmsof.m vd, vs2` — set-only-first.
    VMsof { vd: VReg, vs2: VReg, vm: bool },

    // -------------------------------------------------- vector reductions --
    /// `vred<op>.vs vd, vs2, vs1` — `vd[0] = op(vs1[0], vs2[0..vl])`.
    VRed {
        op: VRedOp,
        vd: VReg,
        vs2: VReg,
        vs1: VReg,
        vm: bool,
    },
}

impl Instr {
    /// Is this instruction a member of the vector extension (as opposed to
    /// the scalar base ISA)?
    pub const fn is_vector(&self) -> bool {
        !matches!(
            self,
            Instr::Lui { .. }
                | Instr::Auipc { .. }
                | Instr::Jal { .. }
                | Instr::Jalr { .. }
                | Instr::Branch { .. }
                | Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::OpImm { .. }
                | Instr::Op { .. }
                | Instr::Csrr { .. }
                | Instr::Ecall
                | Instr::Ebreak
        )
    }
}

fn vm_suffix(vm: bool) -> &'static str {
    if vm {
        ""
    } else {
        ", v0.t"
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Lui { rd, imm20 } => write!(f, "lui {rd}, {imm20:#x}"),
            Auipc { rd, imm20 } => write!(f, "auipc {rd}, {imm20:#x}"),
            Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                write!(f, "{} {rs1}, {rs2}, {offset}", cond.mnemonic())
            }
            Load {
                width,
                signed,
                rd,
                rs1,
                offset,
            } => {
                let m = match (width, signed) {
                    (MemWidth::B, true) => "lb",
                    (MemWidth::B, false) => "lbu",
                    (MemWidth::H, true) => "lh",
                    (MemWidth::H, false) => "lhu",
                    (MemWidth::W, true) => "lw",
                    (MemWidth::W, false) => "lwu",
                    (MemWidth::D, _) => "ld",
                };
                write!(f, "{m} {rd}, {offset}({rs1})")
            }
            Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let m = match width {
                    MemWidth::B => "sb",
                    MemWidth::H => "sh",
                    MemWidth::W => "sw",
                    MemWidth::D => "sd",
                };
                write!(f, "{m} {rs2}, {offset}({rs1})")
            }
            OpImm { op, rd, rs1, imm } => write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic()),
            Op { op, rd, rs1, rs2 } => write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic()),
            Csrr { rd, csr } => write!(f, "csrr {rd}, {}", csr.name()),
            Ecall => write!(f, "ecall"),
            Ebreak => write!(f, "ebreak"),
            Vsetvli { rd, rs1, vtype } => write!(f, "vsetvli {rd}, {rs1}, {vtype}"),
            Vsetivli { rd, uimm, vtype } => write!(f, "vsetivli {rd}, {uimm}, {vtype}"),
            Vsetvl { rd, rs1, rs2 } => write!(f, "vsetvl {rd}, {rs1}, {rs2}"),
            VLoad { eew, vd, rs1, vm } => {
                write!(f, "vle{}.v {vd}, ({rs1}){}", eew.bits(), vm_suffix(vm))
            }
            VStore { eew, vs3, rs1, vm } => {
                write!(f, "vse{}.v {vs3}, ({rs1}){}", eew.bits(), vm_suffix(vm))
            }
            VLoadStrided {
                eew,
                vd,
                rs1,
                rs2,
                vm,
            } => {
                write!(
                    f,
                    "vlse{}.v {vd}, ({rs1}), {rs2}{}",
                    eew.bits(),
                    vm_suffix(vm)
                )
            }
            VStoreStrided {
                eew,
                vs3,
                rs1,
                rs2,
                vm,
            } => {
                write!(
                    f,
                    "vsse{}.v {vs3}, ({rs1}), {rs2}{}",
                    eew.bits(),
                    vm_suffix(vm)
                )
            }
            VLoadIndexed {
                eew,
                ordered,
                vd,
                rs1,
                vs2,
                vm,
            } => {
                let o = if ordered { "o" } else { "u" };
                write!(
                    f,
                    "vl{o}xei{}.v {vd}, ({rs1}), {vs2}{}",
                    eew.bits(),
                    vm_suffix(vm)
                )
            }
            VStoreIndexed {
                eew,
                ordered,
                vs3,
                rs1,
                vs2,
                vm,
            } => {
                let o = if ordered { "o" } else { "u" };
                write!(
                    f,
                    "vs{o}xei{}.v {vs3}, ({rs1}), {vs2}{}",
                    eew.bits(),
                    vm_suffix(vm)
                )
            }
            VLoadWhole { nregs, vd, rs1 } => write!(f, "vl{nregs}re8.v {vd}, ({rs1})"),
            VStoreWhole { nregs, vs3, rs1 } => write!(f, "vs{nregs}r.v {vs3}, ({rs1})"),
            VLoadMask { vd, rs1 } => write!(f, "vlm.v {vd}, ({rs1})"),
            VStoreMask { vs3, rs1 } => write!(f, "vsm.v {vs3}, ({rs1})"),
            VOpVV {
                op,
                vd,
                vs2,
                vs1,
                vm,
            } => {
                write!(
                    f,
                    "{}.vv {vd}, {vs2}, {vs1}{}",
                    op.mnemonic(),
                    vm_suffix(vm)
                )
            }
            VOpVX {
                op,
                vd,
                vs2,
                rs1,
                vm,
            } => {
                write!(
                    f,
                    "{}.vx {vd}, {vs2}, {rs1}{}",
                    op.mnemonic(),
                    vm_suffix(vm)
                )
            }
            VOpVI {
                op,
                vd,
                vs2,
                imm,
                vm,
            } => {
                write!(
                    f,
                    "{}.vi {vd}, {vs2}, {imm}{}",
                    op.mnemonic(),
                    vm_suffix(vm)
                )
            }
            VCmpVV {
                cond,
                vd,
                vs2,
                vs1,
                vm,
            } => {
                write!(
                    f,
                    "{}.vv {vd}, {vs2}, {vs1}{}",
                    cond.mnemonic(),
                    vm_suffix(vm)
                )
            }
            VCmpVX {
                cond,
                vd,
                vs2,
                rs1,
                vm,
            } => {
                write!(
                    f,
                    "{}.vx {vd}, {vs2}, {rs1}{}",
                    cond.mnemonic(),
                    vm_suffix(vm)
                )
            }
            VCmpVI {
                cond,
                vd,
                vs2,
                imm,
                vm,
            } => {
                write!(
                    f,
                    "{}.vi {vd}, {vs2}, {imm}{}",
                    cond.mnemonic(),
                    vm_suffix(vm)
                )
            }
            VMergeVVM { vd, vs2, vs1 } => write!(f, "vmerge.vvm {vd}, {vs2}, {vs1}, v0"),
            VMergeVXM { vd, vs2, rs1 } => write!(f, "vmerge.vxm {vd}, {vs2}, {rs1}, v0"),
            VMergeVIM { vd, vs2, imm } => write!(f, "vmerge.vim {vd}, {vs2}, {imm}, v0"),
            VMvVV { vd, vs1 } => write!(f, "vmv.v.v {vd}, {vs1}"),
            VMvVX { vd, rs1 } => write!(f, "vmv.v.x {vd}, {rs1}"),
            VMvVI { vd, imm } => write!(f, "vmv.v.i {vd}, {imm}"),
            VMvSX { vd, rs1 } => write!(f, "vmv.s.x {vd}, {rs1}"),
            VMvXS { rd, vs2 } => write!(f, "vmv.x.s {rd}, {vs2}"),
            VSlideUpVX { vd, vs2, rs1, vm } => {
                write!(f, "vslideup.vx {vd}, {vs2}, {rs1}{}", vm_suffix(vm))
            }
            VSlideUpVI { vd, vs2, uimm, vm } => {
                write!(f, "vslideup.vi {vd}, {vs2}, {uimm}{}", vm_suffix(vm))
            }
            VSlideDownVX { vd, vs2, rs1, vm } => {
                write!(f, "vslidedown.vx {vd}, {vs2}, {rs1}{}", vm_suffix(vm))
            }
            VSlideDownVI { vd, vs2, uimm, vm } => {
                write!(f, "vslidedown.vi {vd}, {vs2}, {uimm}{}", vm_suffix(vm))
            }
            VSlide1Up { vd, vs2, rs1, vm } => {
                write!(f, "vslide1up.vx {vd}, {vs2}, {rs1}{}", vm_suffix(vm))
            }
            VSlide1Down { vd, vs2, rs1, vm } => {
                write!(f, "vslide1down.vx {vd}, {vs2}, {rs1}{}", vm_suffix(vm))
            }
            VRGatherVV { vd, vs2, vs1, vm } => {
                write!(f, "vrgather.vv {vd}, {vs2}, {vs1}{}", vm_suffix(vm))
            }
            VRGatherVX { vd, vs2, rs1, vm } => {
                write!(f, "vrgather.vx {vd}, {vs2}, {rs1}{}", vm_suffix(vm))
            }
            VCompress { vd, vs2, vs1 } => write!(f, "vcompress.vm {vd}, {vs2}, {vs1}"),
            VMaskLogic { op, vd, vs2, vs1 } => {
                write!(f, "{} {vd}, {vs2}, {vs1}", op.mnemonic())
            }
            VIota { vd, vs2, vm } => write!(f, "viota.m {vd}, {vs2}{}", vm_suffix(vm)),
            VId { vd, vm } => write!(f, "vid.v {vd}{}", vm_suffix(vm)),
            VCpop { rd, vs2, vm } => write!(f, "vcpop.m {rd}, {vs2}{}", vm_suffix(vm)),
            VFirst { rd, vs2, vm } => write!(f, "vfirst.m {rd}, {vs2}{}", vm_suffix(vm)),
            VMsbf { vd, vs2, vm } => write!(f, "vmsbf.m {vd}, {vs2}{}", vm_suffix(vm)),
            VMsif { vd, vs2, vm } => write!(f, "vmsif.m {vd}, {vs2}{}", vm_suffix(vm)),
            VMsof { vd, vs2, vm } => write!(f, "vmsof.m {vd}, {vs2}{}", vm_suffix(vm)),
            VRed {
                op,
                vd,
                vs2,
                vs1,
                vm,
            } => {
                write!(f, "{} {vd}, {vs2}, {vs1}{}", op.mnemonic(), vm_suffix(vm))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lmul, VType};

    #[test]
    fn display_scalar() {
        let i = Instr::OpImm {
            op: AluOp::Add,
            rd: XReg::new(10),
            rs1: XReg::new(10),
            imm: -4,
        };
        assert_eq!(i.to_string(), "addi x10, x10, -4");
        let i = Instr::Branch {
            cond: BranchCond::Ne,
            rs1: XReg::new(10),
            rs2: XReg::ZERO,
            offset: -32,
        };
        assert_eq!(i.to_string(), "bne x10, x0, -32");
        let i = Instr::Load {
            width: MemWidth::W,
            signed: false,
            rd: XReg::new(5),
            rs1: XReg::new(11),
            offset: 8,
        };
        assert_eq!(i.to_string(), "lwu x5, 8(x11)");
    }

    #[test]
    fn display_vector() {
        let i = Instr::Vsetvli {
            rd: XReg::new(13),
            rs1: XReg::new(10),
            vtype: VType::new(Sew::E32, Lmul::M1),
        };
        assert_eq!(i.to_string(), "vsetvli x13, x10, e32, m1, ta, mu");
        let i = Instr::VOpVV {
            op: VAluOp::Add,
            vd: VReg::new(8),
            vs2: VReg::new(8),
            vs1: VReg::new(9),
            vm: false,
        };
        assert_eq!(i.to_string(), "vadd.vv v8, v8, v9, v0.t");
        let i = Instr::VIota {
            vd: VReg::new(4),
            vs2: VReg::V0,
            vm: true,
        };
        assert_eq!(i.to_string(), "viota.m v4, v0");
    }

    #[test]
    fn vector_classification() {
        assert!(!Instr::Ecall.is_vector());
        assert!(Instr::VId {
            vd: VReg::V0,
            vm: true
        }
        .is_vector());
        assert!(Instr::Vsetvl {
            rd: XReg::ZERO,
            rs1: XReg::ZERO,
            rs2: XReg::ZERO
        }
        .is_vector());
    }

    #[test]
    fn form_availability() {
        assert!(!VAluOp::Rsub.has_vv());
        assert!(VAluOp::Rsub.has_vi());
        assert!(!VAluOp::Sub.has_vi());
        assert!(!VAluOp::Mul.has_vi());
        assert!(VAluOp::Mul.is_opm());
        assert!(!VAluOp::Add.is_opm());
        assert!(!VCmp::Gt.has_vv());
        assert!(!VCmp::Lt.has_vi());
        assert!(AluOp::Add.has_imm_form());
        assert!(!AluOp::Sub.has_imm_form());
        assert!(AluOp::Srl.is_shift());
    }
}
