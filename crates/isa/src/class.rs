//! Instruction classification for the simulator's dynamic-instruction
//! histogram.
//!
//! The paper's metric is Spike's total dynamic instruction count; the
//! per-class breakdown lets the benches report *where* instructions go
//! (e.g. how much of an LMUL=8 run is spill memory traffic).

use crate::Instr;
use core::fmt;

/// Coarse instruction class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstrClass {
    /// Scalar ALU (including `lui`/`auipc`).
    ScalarAlu,
    /// Scalar loads and stores.
    ScalarMem,
    /// Branches, jumps, and system instructions.
    ScalarCtrl,
    /// `vsetvli`/`vsetivli`/`vsetvl`.
    VectorCfg,
    /// Vector integer arithmetic, moves, and merges.
    VectorAlu,
    /// Vector loads and stores (including whole-register spill traffic).
    VectorMem,
    /// Mask manipulation (`viota`, `vcpop`, `vmsbf`, compares, `vm*.mm`, …).
    VectorMask,
    /// Permutation (slides, gather, compress).
    VectorPerm,
    /// Reductions.
    VectorRed,
}

impl InstrClass {
    /// Every class, in display order.
    pub const ALL: [InstrClass; 9] = [
        InstrClass::ScalarAlu,
        InstrClass::ScalarMem,
        InstrClass::ScalarCtrl,
        InstrClass::VectorCfg,
        InstrClass::VectorAlu,
        InstrClass::VectorMem,
        InstrClass::VectorMask,
        InstrClass::VectorPerm,
        InstrClass::VectorRed,
    ];

    /// Classify an instruction.
    pub const fn of(instr: &Instr) -> InstrClass {
        use Instr::*;
        match instr {
            Lui { .. } | Auipc { .. } | OpImm { .. } | Op { .. } => InstrClass::ScalarAlu,
            Load { .. } | Store { .. } => InstrClass::ScalarMem,
            Jal { .. } | Jalr { .. } | Branch { .. } | Ecall | Ebreak => InstrClass::ScalarCtrl,
            Vsetvli { .. } | Vsetivli { .. } | Vsetvl { .. } | Csrr { .. } => InstrClass::VectorCfg,
            VLoad { .. }
            | VStore { .. }
            | VLoadStrided { .. }
            | VStoreStrided { .. }
            | VLoadIndexed { .. }
            | VStoreIndexed { .. }
            | VLoadWhole { .. }
            | VStoreWhole { .. }
            | VLoadMask { .. }
            | VStoreMask { .. } => InstrClass::VectorMem,
            VOpVV { .. }
            | VOpVX { .. }
            | VOpVI { .. }
            | VMergeVVM { .. }
            | VMergeVXM { .. }
            | VMergeVIM { .. }
            | VMvVV { .. }
            | VMvVX { .. }
            | VMvVI { .. }
            | VMvSX { .. }
            | VMvXS { .. } => InstrClass::VectorAlu,
            VCmpVV { .. }
            | VCmpVX { .. }
            | VCmpVI { .. }
            | VMaskLogic { .. }
            | VIota { .. }
            | VId { .. }
            | VCpop { .. }
            | VFirst { .. }
            | VMsbf { .. }
            | VMsif { .. }
            | VMsof { .. } => InstrClass::VectorMask,
            VSlideUpVX { .. }
            | VSlideUpVI { .. }
            | VSlideDownVX { .. }
            | VSlideDownVI { .. }
            | VSlide1Up { .. }
            | VSlide1Down { .. }
            | VRGatherVV { .. }
            | VRGatherVX { .. }
            | VCompress { .. } => InstrClass::VectorPerm,
            VRed { .. } => InstrClass::VectorRed,
        }
    }

    /// Stable index into [`InstrClass::ALL`] (for histogram arrays).
    pub const fn index(self) -> usize {
        match self {
            InstrClass::ScalarAlu => 0,
            InstrClass::ScalarMem => 1,
            InstrClass::ScalarCtrl => 2,
            InstrClass::VectorCfg => 3,
            InstrClass::VectorAlu => 4,
            InstrClass::VectorMem => 5,
            InstrClass::VectorMask => 6,
            InstrClass::VectorPerm => 7,
            InstrClass::VectorRed => 8,
        }
    }

    /// Short label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            InstrClass::ScalarAlu => "scalar-alu",
            InstrClass::ScalarMem => "scalar-mem",
            InstrClass::ScalarCtrl => "scalar-ctrl",
            InstrClass::VectorCfg => "vector-cfg",
            InstrClass::VectorAlu => "vector-alu",
            InstrClass::VectorMem => "vector-mem",
            InstrClass::VectorMask => "vector-mask",
            InstrClass::VectorPerm => "vector-perm",
            InstrClass::VectorRed => "vector-red",
        }
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Sew, VAluOp, VReg, XReg};

    #[test]
    fn indices_are_consistent() {
        for (i, c) in InstrClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn classify_samples() {
        let add = Instr::Op {
            op: AluOp::Add,
            rd: XReg::new(1),
            rs1: XReg::new(2),
            rs2: XReg::new(3),
        };
        assert_eq!(InstrClass::of(&add), InstrClass::ScalarAlu);
        let vle = Instr::VLoad {
            eew: Sew::E32,
            vd: VReg::new(8),
            rs1: XReg::new(10),
            vm: true,
        };
        assert_eq!(InstrClass::of(&vle), InstrClass::VectorMem);
        let viota = Instr::VIota {
            vd: VReg::new(4),
            vs2: VReg::V0,
            vm: true,
        };
        assert_eq!(InstrClass::of(&viota), InstrClass::VectorMask);
        let slide = Instr::VSlideUpVX {
            vd: VReg::new(8),
            vs2: VReg::new(16),
            rs1: XReg::new(5),
            vm: true,
        };
        assert_eq!(InstrClass::of(&slide), InstrClass::VectorPerm);
        let vadd = Instr::VOpVV {
            op: VAluOp::Add,
            vd: VReg::new(8),
            vs2: VReg::new(9),
            vs1: VReg::new(10),
            vm: true,
        };
        assert_eq!(InstrClass::of(&vadd), InstrClass::VectorAlu);
        assert_eq!(InstrClass::of(&Instr::Ecall), InstrClass::ScalarCtrl);
    }
}
