//! Vector configuration state: selected element width, length multiplier and
//! the `vtype` CSR model.

use core::fmt;

/// Selected element width (SEW).
///
/// RVV operates on vectors of elements whose width is configured dynamically
/// through `vsetvli`. The paper's kernels are mostly `e32` (the scan vector
/// model's `unsigned int` vectors), but the library supports all four integer
/// widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sew {
    /// 8-bit elements.
    E8,
    /// 16-bit elements.
    E16,
    /// 32-bit elements.
    E32,
    /// 64-bit elements.
    E64,
}

impl Sew {
    /// All supported widths, narrowest first.
    pub const ALL: [Sew; 4] = [Sew::E8, Sew::E16, Sew::E32, Sew::E64];

    /// Element width in bits.
    #[inline]
    pub const fn bits(self) -> u32 {
        match self {
            Sew::E8 => 8,
            Sew::E16 => 16,
            Sew::E32 => 32,
            Sew::E64 => 64,
        }
    }

    /// Element width in bytes.
    #[inline]
    pub const fn bytes(self) -> u32 {
        self.bits() / 8
    }

    /// The `vsew[2:0]` encoding used inside `vtype`.
    #[inline]
    pub const fn vtype_bits(self) -> u64 {
        match self {
            Sew::E8 => 0b000,
            Sew::E16 => 0b001,
            Sew::E32 => 0b010,
            Sew::E64 => 0b011,
        }
    }

    /// Decode from the `vsew[2:0]` field. Reserved encodings yield `None`.
    pub const fn from_vtype_bits(bits: u64) -> Option<Sew> {
        match bits {
            0b000 => Some(Sew::E8),
            0b001 => Some(Sew::E16),
            0b010 => Some(Sew::E32),
            0b011 => Some(Sew::E64),
            _ => None,
        }
    }

    /// The `width` field encoding used by vector loads/stores
    /// (`vle8`→0b000, `vle16`→0b101, `vle32`→0b110, `vle64`→0b111).
    #[inline]
    pub const fn mem_width_bits(self) -> u32 {
        match self {
            Sew::E8 => 0b000,
            Sew::E16 => 0b101,
            Sew::E32 => 0b110,
            Sew::E64 => 0b111,
        }
    }

    /// Decode the vector memory `width` field.
    pub const fn from_mem_width_bits(bits: u32) -> Option<Sew> {
        match bits {
            0b000 => Some(Sew::E8),
            0b101 => Some(Sew::E16),
            0b110 => Some(Sew::E32),
            0b111 => Some(Sew::E64),
            _ => None,
        }
    }

    /// Maximum value representable in an element of this width.
    #[inline]
    pub const fn max_value(self) -> u64 {
        match self {
            Sew::E8 => u8::MAX as u64,
            Sew::E16 => u16::MAX as u64,
            Sew::E32 => u32::MAX as u64,
            Sew::E64 => u64::MAX,
        }
    }

    /// Truncate a 64-bit value to this element width.
    #[inline]
    pub const fn truncate(self, v: u64) -> u64 {
        v & self.max_value()
    }

    /// Sign-extend the low `bits()` bits of `v` to 64 bits (as `i64`).
    #[inline]
    pub const fn sign_extend(self, v: u64) -> i64 {
        match self {
            Sew::E8 => v as u8 as i8 as i64,
            Sew::E16 => v as u16 as i16 as i64,
            Sew::E32 => v as u32 as i32 as i64,
            Sew::E64 => v as i64,
        }
    }
}

impl fmt::Display for Sew {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.bits())
    }
}

/// Vector register group length multiplier (LMUL).
///
/// Integer `LMUL > 1` groups consecutive vector registers so a single
/// instruction operates on `LMUL × VLEN` bits; the group's base register
/// number must be a multiple of LMUL. Fractional LMUL (`mf2`/`mf4`/`mf8`)
/// uses a *fraction* of one register — any register number is a legal base
/// and the group still occupies one register. The paper's experiments use
/// the integer settings ([`Lmul::ALL`]); the fractional ones are modelled
/// for RVV 1.0 completeness ([`Lmul::ALL_WITH_FRACTIONAL`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lmul {
    /// One eighth of a register.
    F8,
    /// One quarter of a register.
    F4,
    /// Half a register.
    F2,
    /// One register per group.
    M1,
    /// Two registers per group.
    M2,
    /// Four registers per group.
    M4,
    /// Eight registers per group.
    M8,
}

impl Lmul {
    /// The integer multipliers every implementation must support — the
    /// paper's sweep. (Kept integer-only so the Table 5/6 experiments
    /// iterate exactly the paper's settings.)
    pub const ALL: [Lmul; 4] = [Lmul::M1, Lmul::M2, Lmul::M4, Lmul::M8];

    /// Every multiplier including the fractional ones, smallest first.
    pub const ALL_WITH_FRACTIONAL: [Lmul; 7] = [
        Lmul::F8,
        Lmul::F4,
        Lmul::F2,
        Lmul::M1,
        Lmul::M2,
        Lmul::M4,
        Lmul::M8,
    ];

    /// The multiplier as a fraction `(numerator, denominator)`.
    #[inline]
    pub const fn fraction(self) -> (u32, u32) {
        match self {
            Lmul::F8 => (1, 8),
            Lmul::F4 => (1, 4),
            Lmul::F2 => (1, 2),
            Lmul::M1 => (1, 1),
            Lmul::M2 => (2, 1),
            Lmul::M4 => (4, 1),
            Lmul::M8 => (8, 1),
        }
    }

    /// Is this a fractional multiplier?
    #[inline]
    pub const fn is_fractional(self) -> bool {
        matches!(self, Lmul::F8 | Lmul::F4 | Lmul::F2)
    }

    /// Number of registers a group occupies (fractional groups still take
    /// one architectural register).
    #[inline]
    pub const fn regs(self) -> u32 {
        match self {
            Lmul::F8 | Lmul::F4 | Lmul::F2 | Lmul::M1 => 1,
            Lmul::M2 => 2,
            Lmul::M4 => 4,
            Lmul::M8 => 8,
        }
    }

    /// The `vlmul[2:0]` encoding used inside `vtype`.
    #[inline]
    pub const fn vtype_bits(self) -> u64 {
        match self {
            Lmul::M1 => 0b000,
            Lmul::M2 => 0b001,
            Lmul::M4 => 0b010,
            Lmul::M8 => 0b011,
            Lmul::F8 => 0b101,
            Lmul::F4 => 0b110,
            Lmul::F2 => 0b111,
        }
    }

    /// Decode from the `vlmul[2:0]` field. The reserved encoding `0b100`
    /// yields `None`.
    pub const fn from_vtype_bits(bits: u64) -> Option<Lmul> {
        match bits {
            0b000 => Some(Lmul::M1),
            0b001 => Some(Lmul::M2),
            0b010 => Some(Lmul::M4),
            0b011 => Some(Lmul::M8),
            0b101 => Some(Lmul::F8),
            0b110 => Some(Lmul::F4),
            0b111 => Some(Lmul::F2),
            _ => None,
        }
    }

    /// Is `reg` a legal base register for a group of this multiplier?
    /// (Fractional groups may start anywhere.)
    #[inline]
    pub const fn aligned(self, reg: u8) -> bool {
        (reg as u32).is_multiple_of(self.regs())
    }
}

impl fmt::Display for Lmul {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fractional() {
            write!(f, "mf{}", self.fraction().1)
        } else {
            write!(f, "m{}", self.regs())
        }
    }
}

/// The dynamic vector type configuration: the decoded form of the `vtype`
/// CSR written by `vsetvli`/`vsetivli`/`vsetvl`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VType {
    /// Selected element width.
    pub sew: Sew,
    /// Register group length multiplier.
    pub lmul: Lmul,
    /// Tail agnostic (`ta`) — if false, tail elements are undisturbed.
    pub ta: bool,
    /// Mask agnostic (`ma`) — if false, masked-off elements are undisturbed.
    pub ma: bool,
}

impl VType {
    /// Construct a `vtype` with the paper's usual policy (`ta`, `mu`):
    /// tail agnostic, mask undisturbed — matching the `vsetvli … ta, mu`
    /// in the paper's Listing 2.
    pub const fn new(sew: Sew, lmul: Lmul) -> VType {
        VType {
            sew,
            lmul,
            ta: true,
            ma: false,
        }
    }

    /// `VLMAX` for this configuration on an implementation with `vlen` bits
    /// per vector register: `LMUL × VLEN / SEW`. A result of 0 means the
    /// configuration is illegal on that implementation (e.g. `e64, mf8` at
    /// VLEN=128) and `vsetvli` sets `vill`.
    #[inline]
    pub const fn vlmax(self, vlen: u32) -> u32 {
        let (num, den) = self.lmul.fraction();
        num * vlen / (den * self.sew.bits())
    }

    /// Encode into the `vtype` CSR bit layout
    /// (`vlmul[2:0]`, `vsew[5:3]`, `vta[6]`, `vma[7]`).
    pub const fn to_bits(self) -> u64 {
        self.lmul.vtype_bits()
            | (self.sew.vtype_bits() << 3)
            | ((self.ta as u64) << 6)
            | ((self.ma as u64) << 7)
    }

    /// Decode from the `vtype` CSR bit layout. Reserved SEW/LMUL encodings
    /// (including fractional LMUL, which this model does not support) yield
    /// `None`, which executors surface as the `vill` condition.
    pub const fn from_bits(bits: u64) -> Option<VType> {
        // Bits 8.. must be zero in a legal non-vill vtype.
        if bits >> 8 != 0 {
            return None;
        }
        let lmul = match Lmul::from_vtype_bits(bits & 0b111) {
            Some(l) => l,
            None => return None,
        };
        let sew = match Sew::from_vtype_bits((bits >> 3) & 0b111) {
            Some(s) => s,
            None => return None,
        };
        Some(VType {
            sew,
            lmul,
            ta: bits & (1 << 6) != 0,
            ma: bits & (1 << 7) != 0,
        })
    }
}

/// A kernel compilation configuration: the architectural parameters a
/// generated kernel is specialized for. This is the shared plan registry's
/// cache key (together with the kernel name and spill profile): two
/// environments agree on a compiled kernel exactly when they agree on a
/// `KernelConfig`.
///
/// Hashes cheaply and stably: [`KernelConfig::to_bits`] packs the whole
/// configuration into one `u64` (VLEN is a power of two in `[64, 65536]`,
/// so its log2 fits in 5 bits; SEW and LMUL reuse their `vtype` field
/// encodings), and the `Hash` impl hashes exactly that word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct KernelConfig {
    /// Vector register length in bits.
    pub vlen: u32,
    /// Selected element width the kernel was generated for.
    pub sew: Sew,
    /// Register-group multiplier the kernel was generated for.
    pub lmul: Lmul,
}

impl KernelConfig {
    /// Pack into a single word: `log2(vlen)` in bits 6.., the `vsew` field
    /// in bits 3..6, the `vlmul` field in bits 0..3. Distinct
    /// configurations map to distinct words.
    #[inline]
    pub const fn to_bits(self) -> u64 {
        ((self.vlen.trailing_zeros() as u64) << 6)
            | (self.sew.vtype_bits() << 3)
            | self.lmul.vtype_bits()
    }

    /// `VLMAX` for this configuration (0 = illegal, see [`VType::vlmax`]).
    #[inline]
    pub const fn vlmax(self) -> u32 {
        VType::new(self.sew, self.lmul).vlmax(self.vlen)
    }
}

impl std::hash::Hash for KernelConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.to_bits().hash(state);
    }
}

impl fmt::Display for KernelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vlen{}/{}/{}", self.vlen, self.sew, self.lmul)
    }
}

impl fmt::Display for VType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}, {}, {}, {}",
            self.sew,
            self.lmul,
            if self.ta { "ta" } else { "tu" },
            if self.ma { "ma" } else { "mu" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sew_widths() {
        assert_eq!(Sew::E8.bits(), 8);
        assert_eq!(Sew::E64.bytes(), 8);
        assert_eq!(Sew::E32.max_value(), 0xffff_ffff);
    }

    #[test]
    fn sew_truncate_and_extend() {
        assert_eq!(Sew::E8.truncate(0x1ff), 0xff);
        assert_eq!(Sew::E16.sign_extend(0x8000), -32768);
        assert_eq!(Sew::E32.sign_extend(0x7fff_ffff), 0x7fff_ffff);
        assert_eq!(Sew::E64.sign_extend(u64::MAX), -1);
    }

    #[test]
    fn lmul_alignment() {
        assert!(Lmul::M4.aligned(8));
        assert!(!Lmul::M4.aligned(6));
        assert!(Lmul::M1.aligned(31));
        assert!(Lmul::M8.aligned(0));
        assert!(!Lmul::M8.aligned(4));
    }

    #[test]
    fn vtype_roundtrip_all() {
        for &sew in &Sew::ALL {
            for &lmul in &Lmul::ALL_WITH_FRACTIONAL {
                for ta in [false, true] {
                    for ma in [false, true] {
                        let vt = VType { sew, lmul, ta, ma };
                        assert_eq!(VType::from_bits(vt.to_bits()), Some(vt));
                    }
                }
            }
        }
    }

    #[test]
    fn vtype_known_encoding() {
        // e32, m1, ta, mu == vsew=010, vlmul=000, vta=1, vma=0 -> 0b0101_0000.
        let vt = VType::new(Sew::E32, Lmul::M1);
        assert_eq!(vt.to_bits(), 0b0101_0000);
        // e64, m8, ta, ma -> vlmul=011, vsew=011, vta=1, vma=1.
        let vt = VType {
            sew: Sew::E64,
            lmul: Lmul::M8,
            ta: true,
            ma: true,
        };
        assert_eq!(vt.to_bits(), 0b1101_1011);
    }

    #[test]
    fn vtype_rejects_reserved() {
        assert_eq!(VType::from_bits(0b100), None); // reserved vlmul
        assert_eq!(VType::from_bits(0b111 << 3), None); // reserved vsew
        assert_eq!(VType::from_bits(1 << 8), None); // high bits set
                                                    // Fractional encodings parse.
        assert_eq!(VType::from_bits(0b101).map(|t| t.lmul), Some(Lmul::F8));
        assert_eq!(VType::from_bits(0b111).map(|t| t.lmul), Some(Lmul::F2));
    }

    #[test]
    fn vlmax_matches_paper_configs() {
        // The paper's headline config: VLEN=1024, e32, m1 -> 32 elements.
        assert_eq!(VType::new(Sew::E32, Lmul::M1).vlmax(1024), 32);
        // LMUL=8 at VLEN=1024 -> 256 elements.
        assert_eq!(VType::new(Sew::E32, Lmul::M8).vlmax(1024), 256);
        // VLEN=128, e32, m1 -> 4 elements.
        assert_eq!(VType::new(Sew::E32, Lmul::M1).vlmax(128), 4);
        assert_eq!(VType::new(Sew::E64, Lmul::M2).vlmax(256), 8);
        assert_eq!(VType::new(Sew::E8, Lmul::M1).vlmax(128), 16);
    }

    #[test]
    fn kernel_config_bits_are_injective() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for vlen in [64u32, 128, 256, 512, 1024, 65536] {
            for &sew in &Sew::ALL {
                for &lmul in &Lmul::ALL_WITH_FRACTIONAL {
                    let k = KernelConfig { vlen, sew, lmul };
                    assert!(seen.insert(k.to_bits()), "collision at {k}");
                }
            }
        }
        let k = KernelConfig {
            vlen: 1024,
            sew: Sew::E32,
            lmul: Lmul::M1,
        };
        assert_eq!(k.vlmax(), 32);
        assert_eq!(format!("{k}"), "vlen1024/e32/m1");
    }

    #[test]
    fn fractional_lmul_vlmax_and_legality() {
        // mf2 at VLEN=1024, e32: half a register = 16 elements.
        assert_eq!(VType::new(Sew::E32, Lmul::F2).vlmax(1024), 16);
        assert_eq!(VType::new(Sew::E8, Lmul::F8).vlmax(128), 2);
        // Illegal: SEW too wide for the fraction -> VLMAX 0 (vill).
        assert_eq!(VType::new(Sew::E64, Lmul::F8).vlmax(128), 0);
        assert_eq!(VType::new(Sew::E64, Lmul::F2).vlmax(128), 1);
        // Fractional groups start anywhere and occupy one register.
        assert!(Lmul::F4.aligned(3));
        assert_eq!(Lmul::F2.regs(), 1);
        assert!(Lmul::F2.is_fractional() && !Lmul::M2.is_fractional());
        assert_eq!(format!("{}", Lmul::F4), "mf4");
    }
}
