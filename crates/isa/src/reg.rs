//! Checked register newtypes for the scalar (`x0..x31`) and vector
//! (`v0..v31`) register files.

use core::fmt;

/// A scalar (integer) register, `x0` through `x31`.
///
/// `x0` is hard-wired to zero; writes to it are discarded by the simulator.
/// Construction is checked so an out-of-range register number can never reach
/// the encoder or the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XReg(u8);

impl XReg {
    /// The hard-wired zero register.
    pub const ZERO: XReg = XReg(0);
    /// Return address (`ra` = `x1`).
    pub const RA: XReg = XReg(1);
    /// Stack pointer (`sp` = `x2`).
    pub const SP: XReg = XReg(2);

    /// Construct from a register number.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn new(n: u8) -> XReg {
        assert!(n < 32, "scalar register number out of range");
        XReg(n)
    }

    /// Construct checked; `None` if `n >= 32`.
    #[inline]
    pub const fn try_new(n: u8) -> Option<XReg> {
        if n < 32 {
            Some(XReg(n))
        } else {
            None
        }
    }

    /// Argument register `a0..a7` (`x10..x17`), the calling convention the
    /// kernel runner uses to pass buffer addresses and lengths.
    ///
    /// # Panics
    /// Panics if `i >= 8`.
    #[inline]
    pub const fn arg(i: u8) -> XReg {
        assert!(i < 8, "argument register index out of range");
        XReg(10 + i)
    }

    /// Temporary registers usable without saving: `t0..t6`
    /// (`x5..x7`, `x28..x31`).
    ///
    /// # Panics
    /// Panics if `i >= 7`.
    #[inline]
    pub const fn temp(i: u8) -> XReg {
        assert!(i < 7, "temporary register index out of range");
        match i {
            0..=2 => XReg(5 + i),
            _ => XReg(28 + (i - 3)),
        }
    }

    /// The register number, `0..32`.
    #[inline]
    pub const fn num(self) -> u8 {
        self.0
    }

    /// Is this the hard-wired zero register?
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for XReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A vector register, `v0` through `v31`.
///
/// With `LMUL > 1` a `VReg` names the *base* of a register group and must be
/// LMUL-aligned; that constraint is validated by the simulator per
/// instruction (it depends on the dynamic `vtype`), not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(u8);

impl VReg {
    /// `v0`, the implicit mask register for masked instructions.
    pub const V0: VReg = VReg(0);

    /// Construct from a register number.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn new(n: u8) -> VReg {
        assert!(n < 32, "vector register number out of range");
        VReg(n)
    }

    /// Construct checked; `None` if `n >= 32`.
    #[inline]
    pub const fn try_new(n: u8) -> Option<VReg> {
        if n < 32 {
            Some(VReg(n))
        } else {
            None
        }
    }

    /// The register number, `0..32`.
    #[inline]
    pub const fn num(self) -> u8 {
        self.0
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xreg_basics() {
        assert_eq!(XReg::ZERO.num(), 0);
        assert!(XReg::ZERO.is_zero());
        assert_eq!(XReg::SP.num(), 2);
        assert_eq!(XReg::arg(0).num(), 10);
        assert_eq!(XReg::arg(7).num(), 17);
        assert_eq!(XReg::temp(0).num(), 5);
        assert_eq!(XReg::temp(2).num(), 7);
        assert_eq!(XReg::temp(3).num(), 28);
        assert_eq!(XReg::temp(6).num(), 31);
        assert_eq!(XReg::try_new(31), Some(XReg::new(31)));
        assert_eq!(XReg::try_new(32), None);
    }

    #[test]
    #[should_panic]
    fn xreg_out_of_range_panics() {
        let _ = XReg::new(32);
    }

    #[test]
    fn vreg_basics() {
        assert_eq!(VReg::V0.num(), 0);
        assert_eq!(VReg::new(31).num(), 31);
        assert_eq!(VReg::try_new(32), None);
        assert_eq!(format!("{}", VReg::new(8)), "v8");
        assert_eq!(format!("{}", XReg::new(10)), "x10");
    }

    #[test]
    #[should_panic]
    fn vreg_out_of_range_panics() {
        let _ = VReg::new(40);
    }
}
