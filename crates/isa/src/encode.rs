//! 32-bit binary instruction encoding.
//!
//! Follows the RISC-V unprivileged specification (RV64IM) and the RVV 1.0
//! specification. Field layouts:
//!
//! * Vector arithmetic (`OP-V`, opcode `1010111`):
//!   `funct6[31:26] vm[25] vs2[24:20] vs1/rs1/imm[19:15] funct3[14:12]
//!   vd[11:7]`.
//! * Vector loads (`LOAD-FP`, opcode `0000111`) and stores (`STORE-FP`,
//!   `0100111`): `nf[31:29] mew[28] mop[27:26] vm[25] lumop/rs2/vs2[24:20]
//!   rs1[19:15] width[14:12] vd/vs3[11:7]`.
//!
//! [`encode`] validates operand forms (e.g. there is no `vsub.vi`) and
//! immediate ranges, so a successful encoding is a well-formed instruction.

use crate::instr::{AluOp, BranchCond, Instr, MaskOp, MemWidth, VAluOp, VCmp, VRedOp};
use crate::{Sew, VReg, XReg};
use core::fmt;

/// Error produced when an [`Instr`] cannot be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate operand does not fit its field.
    ImmOutOfRange {
        /// Which field overflowed.
        field: &'static str,
        /// The offending value.
        value: i64,
    },
    /// A branch/jump offset is not a multiple of 2 (all our instructions are
    /// 4-byte, so in practice offsets are multiples of 4).
    MisalignedOffset(i64),
    /// The requested operand form does not exist (e.g. `vsub.vi`).
    InvalidForm(&'static str),
    /// Whole-register move count must be 1, 2, 4, or 8.
    InvalidWholeRegCount(u8),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { field, value } => {
                write!(f, "immediate {value} does not fit field {field}")
            }
            EncodeError::MisalignedOffset(v) => write!(f, "misaligned control-flow offset {v}"),
            EncodeError::InvalidForm(m) => write!(f, "instruction form does not exist: {m}"),
            EncodeError::InvalidWholeRegCount(n) => {
                write!(f, "whole-register count must be 1/2/4/8, got {n}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

const OPC_LUI: u32 = 0b0110111;
const OPC_AUIPC: u32 = 0b0010111;
const OPC_JAL: u32 = 0b1101111;
const OPC_JALR: u32 = 0b1100111;
const OPC_BRANCH: u32 = 0b1100011;
const OPC_LOAD: u32 = 0b0000011;
const OPC_STORE: u32 = 0b0100011;
const OPC_OP_IMM: u32 = 0b0010011;
const OPC_OP: u32 = 0b0110011;
const OPC_SYSTEM: u32 = 0b1110011;
const OPC_OP_V: u32 = 0b1010111;
const OPC_LOAD_FP: u32 = 0b0000111;
const OPC_STORE_FP: u32 = 0b0100111;

const F3_OPIVV: u32 = 0b000;
const F3_OPIVI: u32 = 0b011;
const F3_OPIVX: u32 = 0b100;
const F3_OPMVV: u32 = 0b010;
const F3_OPMVX: u32 = 0b110;
const F3_VSETVL: u32 = 0b111;

fn x(r: XReg) -> u32 {
    r.num() as u32
}
fn v(r: VReg) -> u32 {
    r.num() as u32
}

fn check_i12(field: &'static str, imm: i32) -> Result<u32, EncodeError> {
    if (-2048..=2047).contains(&imm) {
        Ok((imm as u32) & 0xfff)
    } else {
        Err(EncodeError::ImmOutOfRange {
            field,
            value: imm as i64,
        })
    }
}

fn check_imm20(field: &'static str, imm: i32) -> Result<u32, EncodeError> {
    if (-(1 << 19)..(1 << 19)).contains(&imm) {
        Ok((imm as u32) & 0xfffff)
    } else {
        Err(EncodeError::ImmOutOfRange {
            field,
            value: imm as i64,
        })
    }
}

fn r_type(opcode: u32, rd: u32, funct3: u32, rs1: u32, rs2: u32, funct7: u32) -> u32 {
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (rs2 << 20) | (funct7 << 25)
}

fn i_type(opcode: u32, rd: u32, funct3: u32, rs1: u32, imm12: u32) -> u32 {
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (imm12 << 20)
}

fn s_type(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm12: u32) -> u32 {
    opcode
        | ((imm12 & 0x1f) << 7)
        | (funct3 << 12)
        | (rs1 << 15)
        | (rs2 << 20)
        | ((imm12 >> 5) << 25)
}

fn b_type(opcode: u32, funct3: u32, rs1: u32, rs2: u32, offset: i32) -> Result<u32, EncodeError> {
    if offset % 2 != 0 {
        return Err(EncodeError::MisalignedOffset(offset as i64));
    }
    if !(-4096..=4094).contains(&offset) {
        return Err(EncodeError::ImmOutOfRange {
            field: "branch offset",
            value: offset as i64,
        });
    }
    let imm = offset as u32;
    Ok(opcode
        | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xf) << 8)
        | (funct3 << 12)
        | (rs1 << 15)
        | (rs2 << 20)
        | (((imm >> 5) & 0x3f) << 25)
        | (((imm >> 12) & 1) << 31))
}

fn j_type(opcode: u32, rd: u32, offset: i32) -> Result<u32, EncodeError> {
    if offset % 2 != 0 {
        return Err(EncodeError::MisalignedOffset(offset as i64));
    }
    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
        return Err(EncodeError::ImmOutOfRange {
            field: "jal offset",
            value: offset as i64,
        });
    }
    let imm = offset as u32;
    Ok(opcode
        | (rd << 7)
        | (((imm >> 12) & 0xff) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 20) & 1) << 31))
}

/// Vector arithmetic format (`OP-V`).
fn v_type(funct6: u32, vm: bool, vs2: u32, vs1: u32, funct3: u32, vd: u32) -> u32 {
    OPC_OP_V
        | (vd << 7)
        | (funct3 << 12)
        | (vs1 << 15)
        | (vs2 << 20)
        | ((vm as u32) << 25)
        | (funct6 << 26)
}

fn check_vi_simm5(imm: i8) -> Result<u32, EncodeError> {
    if (-16..=15).contains(&imm) {
        Ok((imm as u32) & 0x1f)
    } else {
        Err(EncodeError::ImmOutOfRange {
            field: "vector simm5",
            value: imm as i64,
        })
    }
}

fn check_vi_uimm5(imm: i64, field: &'static str) -> Result<u32, EncodeError> {
    if (0..=31).contains(&imm) {
        Ok(imm as u32)
    } else {
        Err(EncodeError::ImmOutOfRange { field, value: imm })
    }
}

/// funct6 values for `OPI*`-space ALU ops (RVV 1.0 §"Vector Integer
/// Arithmetic Instructions").
fn opi_funct6(op: VAluOp) -> Option<u32> {
    Some(match op {
        VAluOp::Add => 0b000000,
        VAluOp::Sub => 0b000010,
        VAluOp::Rsub => 0b000011,
        VAluOp::Minu => 0b000100,
        VAluOp::Min => 0b000101,
        VAluOp::Maxu => 0b000110,
        VAluOp::Max => 0b000111,
        VAluOp::And => 0b001001,
        VAluOp::Or => 0b001010,
        VAluOp::Xor => 0b001011,
        VAluOp::Sll => 0b100101,
        VAluOp::Srl => 0b101000,
        VAluOp::Sra => 0b101001,
        _ => return None,
    })
}

/// funct6 values for `OPM*`-space ALU ops (multiply/divide).
fn opm_funct6(op: VAluOp) -> Option<u32> {
    Some(match op {
        VAluOp::Divu => 0b100000,
        VAluOp::Div => 0b100001,
        VAluOp::Remu => 0b100010,
        VAluOp::Rem => 0b100011,
        VAluOp::Mulhu => 0b100100,
        VAluOp::Mul => 0b100101,
        VAluOp::Mulh => 0b100111,
        _ => return None,
    })
}

fn cmp_funct6(cond: VCmp) -> u32 {
    match cond {
        VCmp::Eq => 0b011000,
        VCmp::Ne => 0b011001,
        VCmp::Ltu => 0b011010,
        VCmp::Lt => 0b011011,
        VCmp::Leu => 0b011100,
        VCmp::Le => 0b011101,
        VCmp::Gtu => 0b011110,
        VCmp::Gt => 0b011111,
    }
}

fn mask_funct6(op: MaskOp) -> u32 {
    match op {
        MaskOp::Andn => 0b011000,
        MaskOp::And => 0b011001,
        MaskOp::Or => 0b011010,
        MaskOp::Xor => 0b011011,
        MaskOp::Orn => 0b011100,
        MaskOp::Nand => 0b011101,
        MaskOp::Nor => 0b011110,
        MaskOp::Xnor => 0b011111,
    }
}

fn red_funct6(op: VRedOp) -> u32 {
    match op {
        VRedOp::Sum => 0b000000,
        VRedOp::And => 0b000001,
        VRedOp::Or => 0b000010,
        VRedOp::Xor => 0b000011,
        VRedOp::Minu => 0b000100,
        VRedOp::Min => 0b000101,
        VRedOp::Maxu => 0b000110,
        VRedOp::Max => 0b000111,
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the instruction format fields
/// Vector memory format. `mop`: 00 unit-stride, 01 indexed-unordered,
/// 10 strided, 11 indexed-ordered. `field_24_20` holds lumop/sumop, rs2, or
/// vs2 depending on `mop`.
fn vmem(
    opcode: u32,
    nf: u32,
    mop: u32,
    vm: bool,
    field_24_20: u32,
    rs1: u32,
    width: u32,
    vd: u32,
) -> u32 {
    opcode
        | (vd << 7)
        | (width << 12)
        | (rs1 << 15)
        | (field_24_20 << 20)
        | ((vm as u32) << 25)
        | (mop << 26)
        | (nf << 29)
}

const LUMOP_UNIT: u32 = 0b00000;
const LUMOP_WHOLE: u32 = 0b01000;
const LUMOP_MASK: u32 = 0b01011;

fn whole_nf(nregs: u8) -> Result<u32, EncodeError> {
    match nregs {
        1 | 2 | 4 | 8 => Ok(nregs as u32 - 1),
        _ => Err(EncodeError::InvalidWholeRegCount(nregs)),
    }
}

fn scalar_load_funct3(width: MemWidth, signed: bool) -> u32 {
    match (width, signed) {
        (MemWidth::B, true) => 0b000,
        (MemWidth::H, true) => 0b001,
        (MemWidth::W, true) => 0b010,
        (MemWidth::D, _) => 0b011,
        (MemWidth::B, false) => 0b100,
        (MemWidth::H, false) => 0b101,
        (MemWidth::W, false) => 0b110,
    }
}

fn store_funct3(width: MemWidth) -> u32 {
    match width {
        MemWidth::B => 0b000,
        MemWidth::H => 0b001,
        MemWidth::W => 0b010,
        MemWidth::D => 0b011,
    }
}

fn branch_funct3(cond: BranchCond) -> u32 {
    match cond {
        BranchCond::Eq => 0b000,
        BranchCond::Ne => 0b001,
        BranchCond::Lt => 0b100,
        BranchCond::Ge => 0b101,
        BranchCond::Ltu => 0b110,
        BranchCond::Geu => 0b111,
    }
}

fn alu_funct3(op: AluOp) -> u32 {
    match op {
        AluOp::Add | AluOp::Sub => 0b000,
        AluOp::Sll => 0b001,
        AluOp::Slt => 0b010,
        AluOp::Sltu => 0b011,
        AluOp::Xor => 0b100,
        AluOp::Srl | AluOp::Sra => 0b101,
        AluOp::Or => 0b110,
        AluOp::And => 0b111,
        AluOp::Mul => 0b000,
        AluOp::Mulh => 0b001,
        AluOp::Mulhu => 0b011,
        AluOp::Div => 0b100,
        AluOp::Divu => 0b101,
        AluOp::Rem => 0b110,
        AluOp::Remu => 0b111,
    }
}

fn is_m_ext(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::Mul
            | AluOp::Mulh
            | AluOp::Mulhu
            | AluOp::Div
            | AluOp::Divu
            | AluOp::Rem
            | AluOp::Remu
    )
}

/// Encode one instruction to its 32-bit binary form.
///
/// # Errors
/// Returns an error for out-of-range immediates, misaligned control-flow
/// offsets, and operand forms that do not exist in the ISA.
pub fn encode(instr: &Instr) -> Result<u32, EncodeError> {
    use Instr::*;
    Ok(match *instr {
        Lui { rd, imm20 } => OPC_LUI | (x(rd) << 7) | (check_imm20("lui imm", imm20)? << 12),
        Auipc { rd, imm20 } => OPC_AUIPC | (x(rd) << 7) | (check_imm20("auipc imm", imm20)? << 12),
        Jal { rd, offset } => j_type(OPC_JAL, x(rd), offset)?,
        Jalr { rd, rs1, offset } => i_type(
            OPC_JALR,
            x(rd),
            0b000,
            x(rs1),
            check_i12("jalr offset", offset)?,
        ),
        Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => b_type(OPC_BRANCH, branch_funct3(cond), x(rs1), x(rs2), offset)?,
        Load {
            width,
            signed,
            rd,
            rs1,
            offset,
        } => i_type(
            OPC_LOAD,
            x(rd),
            scalar_load_funct3(width, signed),
            x(rs1),
            check_i12("load offset", offset)?,
        ),
        Store {
            width,
            rs2,
            rs1,
            offset,
        } => s_type(
            OPC_STORE,
            store_funct3(width),
            x(rs1),
            x(rs2),
            check_i12("store offset", offset)?,
        ),
        OpImm { op, rd, rs1, imm } => {
            if !op.has_imm_form() {
                return Err(EncodeError::InvalidForm("no OP-IMM form for this ALU op"));
            }
            if op.is_shift() {
                let shamt = check_vi_uimm5(imm as i64, "shamt").or_else(|_| {
                    if (0..=63).contains(&imm) {
                        Ok(imm as u32)
                    } else {
                        Err(EncodeError::ImmOutOfRange {
                            field: "shamt",
                            value: imm as i64,
                        })
                    }
                })?;
                let hi = if matches!(op, AluOp::Sra) {
                    0b010000u32 << 6
                } else {
                    0
                };
                i_type(OPC_OP_IMM, x(rd), alu_funct3(op), x(rs1), hi | shamt)
            } else {
                i_type(
                    OPC_OP_IMM,
                    x(rd),
                    alu_funct3(op),
                    x(rs1),
                    check_i12("op imm", imm)?,
                )
            }
        }
        Op { op, rd, rs1, rs2 } => {
            let funct7 = if is_m_ext(op) {
                0b0000001
            } else if matches!(op, AluOp::Sub | AluOp::Sra) {
                0b0100000
            } else {
                0
            };
            r_type(OPC_OP, x(rd), alu_funct3(op), x(rs1), x(rs2), funct7)
        }
        Csrr { rd, csr } => i_type(OPC_SYSTEM, x(rd), 0b010, 0, csr.addr()),
        Ecall => OPC_SYSTEM,
        Ebreak => OPC_SYSTEM | (1 << 20),

        Vsetvli { rd, rs1, vtype } => {
            let zimm = vtype.to_bits() as u32; // fits 8 bits; field is 11
            i_type(OPC_OP_V, x(rd), F3_VSETVL, x(rs1), zimm)
        }
        Vsetivli { rd, uimm, vtype } => {
            let u = check_vi_uimm5(uimm as i64, "vsetivli uimm")?;
            let zimm = vtype.to_bits() as u32;
            i_type(OPC_OP_V, x(rd), F3_VSETVL, u, zimm | (0b11 << 10))
        }
        Vsetvl { rd, rs1, rs2 } => i_type(OPC_OP_V, x(rd), F3_VSETVL, x(rs1), x(rs2) | (1 << 11)),

        VLoad { eew, vd, rs1, vm } => vmem(
            OPC_LOAD_FP,
            0,
            0b00,
            vm,
            LUMOP_UNIT,
            x(rs1),
            eew.mem_width_bits(),
            v(vd),
        ),
        VStore { eew, vs3, rs1, vm } => vmem(
            OPC_STORE_FP,
            0,
            0b00,
            vm,
            LUMOP_UNIT,
            x(rs1),
            eew.mem_width_bits(),
            v(vs3),
        ),
        VLoadStrided {
            eew,
            vd,
            rs1,
            rs2,
            vm,
        } => vmem(
            OPC_LOAD_FP,
            0,
            0b10,
            vm,
            x(rs2),
            x(rs1),
            eew.mem_width_bits(),
            v(vd),
        ),
        VStoreStrided {
            eew,
            vs3,
            rs1,
            rs2,
            vm,
        } => vmem(
            OPC_STORE_FP,
            0,
            0b10,
            vm,
            x(rs2),
            x(rs1),
            eew.mem_width_bits(),
            v(vs3),
        ),
        VLoadIndexed {
            eew,
            ordered,
            vd,
            rs1,
            vs2,
            vm,
        } => {
            let mop = if ordered { 0b11 } else { 0b01 };
            vmem(
                OPC_LOAD_FP,
                0,
                mop,
                vm,
                v(vs2),
                x(rs1),
                eew.mem_width_bits(),
                v(vd),
            )
        }
        VStoreIndexed {
            eew,
            ordered,
            vs3,
            rs1,
            vs2,
            vm,
        } => {
            let mop = if ordered { 0b11 } else { 0b01 };
            vmem(
                OPC_STORE_FP,
                0,
                mop,
                vm,
                v(vs2),
                x(rs1),
                eew.mem_width_bits(),
                v(vs3),
            )
        }
        VLoadWhole { nregs, vd, rs1 } => vmem(
            OPC_LOAD_FP,
            whole_nf(nregs)?,
            0b00,
            true,
            LUMOP_WHOLE,
            x(rs1),
            Sew::E8.mem_width_bits(),
            v(vd),
        ),
        VStoreWhole { nregs, vs3, rs1 } => vmem(
            OPC_STORE_FP,
            whole_nf(nregs)?,
            0b00,
            true,
            LUMOP_WHOLE,
            x(rs1),
            Sew::E8.mem_width_bits(),
            v(vs3),
        ),
        VLoadMask { vd, rs1 } => vmem(
            OPC_LOAD_FP,
            0,
            0b00,
            true,
            LUMOP_MASK,
            x(rs1),
            Sew::E8.mem_width_bits(),
            v(vd),
        ),
        VStoreMask { vs3, rs1 } => vmem(
            OPC_STORE_FP,
            0,
            0b00,
            true,
            LUMOP_MASK,
            x(rs1),
            Sew::E8.mem_width_bits(),
            v(vs3),
        ),

        VOpVV {
            op,
            vd,
            vs2,
            vs1,
            vm,
        } => {
            if !op.has_vv() {
                return Err(EncodeError::InvalidForm("no .vv form"));
            }
            if let Some(f6) = opi_funct6(op) {
                v_type(f6, vm, v(vs2), v(vs1), F3_OPIVV, v(vd))
            } else {
                let f6 = opm_funct6(op).expect("op must be OPI or OPM");
                v_type(f6, vm, v(vs2), v(vs1), F3_OPMVV, v(vd))
            }
        }
        VOpVX {
            op,
            vd,
            vs2,
            rs1,
            vm,
        } => {
            if let Some(f6) = opi_funct6(op) {
                v_type(f6, vm, v(vs2), x(rs1), F3_OPIVX, v(vd))
            } else {
                let f6 = opm_funct6(op).expect("op must be OPI or OPM");
                v_type(f6, vm, v(vs2), x(rs1), F3_OPMVX, v(vd))
            }
        }
        VOpVI {
            op,
            vd,
            vs2,
            imm,
            vm,
        } => {
            if !op.has_vi() {
                return Err(EncodeError::InvalidForm("no .vi form"));
            }
            let f6 = opi_funct6(op).expect("all .vi ops are OPI");
            let field = if op.imm_is_unsigned() {
                check_vi_uimm5(imm as i64, "vector uimm5")?
            } else {
                check_vi_simm5(imm)?
            };
            v_type(f6, vm, v(vs2), field, F3_OPIVI, v(vd))
        }
        VCmpVV {
            cond,
            vd,
            vs2,
            vs1,
            vm,
        } => {
            if !cond.has_vv() {
                return Err(EncodeError::InvalidForm("no .vv form for this compare"));
            }
            v_type(cmp_funct6(cond), vm, v(vs2), v(vs1), F3_OPIVV, v(vd))
        }
        VCmpVX {
            cond,
            vd,
            vs2,
            rs1,
            vm,
        } => v_type(cmp_funct6(cond), vm, v(vs2), x(rs1), F3_OPIVX, v(vd)),
        VCmpVI {
            cond,
            vd,
            vs2,
            imm,
            vm,
        } => {
            if !cond.has_vi() {
                return Err(EncodeError::InvalidForm("no .vi form for this compare"));
            }
            v_type(
                cmp_funct6(cond),
                vm,
                v(vs2),
                check_vi_simm5(imm)?,
                F3_OPIVI,
                v(vd),
            )
        }
        VMergeVVM { vd, vs2, vs1 } => v_type(0b010111, false, v(vs2), v(vs1), F3_OPIVV, v(vd)),
        VMergeVXM { vd, vs2, rs1 } => v_type(0b010111, false, v(vs2), x(rs1), F3_OPIVX, v(vd)),
        VMergeVIM { vd, vs2, imm } => v_type(
            0b010111,
            false,
            v(vs2),
            check_vi_simm5(imm)?,
            F3_OPIVI,
            v(vd),
        ),
        VMvVV { vd, vs1 } => v_type(0b010111, true, 0, v(vs1), F3_OPIVV, v(vd)),
        VMvVX { vd, rs1 } => v_type(0b010111, true, 0, x(rs1), F3_OPIVX, v(vd)),
        VMvVI { vd, imm } => v_type(0b010111, true, 0, check_vi_simm5(imm)?, F3_OPIVI, v(vd)),
        VMvSX { vd, rs1 } => v_type(0b010000, true, 0, x(rs1), F3_OPMVX, v(vd)),
        VMvXS { rd, vs2 } => v_type(0b010000, true, v(vs2), 0, F3_OPMVV, x(rd)),

        VSlideUpVX { vd, vs2, rs1, vm } => v_type(0b001110, vm, v(vs2), x(rs1), F3_OPIVX, v(vd)),
        VSlideUpVI { vd, vs2, uimm, vm } => v_type(
            0b001110,
            vm,
            v(vs2),
            check_vi_uimm5(uimm as i64, "slide uimm")?,
            F3_OPIVI,
            v(vd),
        ),
        VSlideDownVX { vd, vs2, rs1, vm } => v_type(0b001111, vm, v(vs2), x(rs1), F3_OPIVX, v(vd)),
        VSlideDownVI { vd, vs2, uimm, vm } => v_type(
            0b001111,
            vm,
            v(vs2),
            check_vi_uimm5(uimm as i64, "slide uimm")?,
            F3_OPIVI,
            v(vd),
        ),
        VSlide1Up { vd, vs2, rs1, vm } => v_type(0b001110, vm, v(vs2), x(rs1), F3_OPMVX, v(vd)),
        VSlide1Down { vd, vs2, rs1, vm } => v_type(0b001111, vm, v(vs2), x(rs1), F3_OPMVX, v(vd)),
        VRGatherVV { vd, vs2, vs1, vm } => v_type(0b001100, vm, v(vs2), v(vs1), F3_OPIVV, v(vd)),
        VRGatherVX { vd, vs2, rs1, vm } => v_type(0b001100, vm, v(vs2), x(rs1), F3_OPIVX, v(vd)),
        VCompress { vd, vs2, vs1 } => v_type(0b010111, true, v(vs2), v(vs1), F3_OPMVV, v(vd)),

        VMaskLogic { op, vd, vs2, vs1 } => {
            v_type(mask_funct6(op), true, v(vs2), v(vs1), F3_OPMVV, v(vd))
        }
        VIota { vd, vs2, vm } => v_type(0b010100, vm, v(vs2), 0b10000, F3_OPMVV, v(vd)),
        VId { vd, vm } => v_type(0b010100, vm, 0, 0b10001, F3_OPMVV, v(vd)),
        VCpop { rd, vs2, vm } => v_type(0b010000, vm, v(vs2), 0b10000, F3_OPMVV, x(rd)),
        VFirst { rd, vs2, vm } => v_type(0b010000, vm, v(vs2), 0b10001, F3_OPMVV, x(rd)),
        VMsbf { vd, vs2, vm } => v_type(0b010100, vm, v(vs2), 0b00001, F3_OPMVV, v(vd)),
        VMsof { vd, vs2, vm } => v_type(0b010100, vm, v(vs2), 0b00010, F3_OPMVV, v(vd)),
        VMsif { vd, vs2, vm } => v_type(0b010100, vm, v(vs2), 0b00011, F3_OPMVV, v(vd)),

        VRed {
            op,
            vd,
            vs2,
            vs1,
            vm,
        } => v_type(red_funct6(op), vm, v(vs2), v(vs1), F3_OPMVV, v(vd)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lmul, VType};

    /// Reference encodings cross-checked by hand against the RISC-V
    /// unprivileged spec / standard assembler output.
    #[test]
    fn known_scalar_encodings() {
        // addi x0, x0, 0 == canonical NOP == 0x00000013.
        let nop = Instr::OpImm {
            op: AluOp::Add,
            rd: XReg::ZERO,
            rs1: XReg::ZERO,
            imm: 0,
        };
        assert_eq!(encode(&nop).unwrap(), 0x0000_0013);
        // add x1, x2, x3 -> 0x003100b3.
        let add = Instr::Op {
            op: AluOp::Add,
            rd: XReg::new(1),
            rs1: XReg::new(2),
            rs2: XReg::new(3),
        };
        assert_eq!(encode(&add).unwrap(), 0x0031_00b3);
        // sub x5, x6, x7 -> 0x407302b3.
        let sub = Instr::Op {
            op: AluOp::Sub,
            rd: XReg::new(5),
            rs1: XReg::new(6),
            rs2: XReg::new(7),
        };
        assert_eq!(encode(&sub).unwrap(), 0x4073_02b3);
        // ld x10, 8(x2) -> 0x00813503.
        let ld = Instr::Load {
            width: MemWidth::D,
            signed: true,
            rd: XReg::new(10),
            rs1: XReg::SP,
            offset: 8,
        };
        assert_eq!(encode(&ld).unwrap(), 0x0081_3503);
        // sw x11, -4(x2) -> 0xfeb12e23.
        let sw = Instr::Store {
            width: MemWidth::W,
            rs2: XReg::new(11),
            rs1: XReg::SP,
            offset: -4,
        };
        assert_eq!(encode(&sw).unwrap(), 0xfeb1_2e23);
        // ecall -> 0x00000073, ebreak -> 0x00100073.
        assert_eq!(encode(&Instr::Ecall).unwrap(), 0x0000_0073);
        assert_eq!(encode(&Instr::Ebreak).unwrap(), 0x0010_0073);
        // beq x0, x0, -4 -> 0xfe000ee3.
        let b = Instr::Branch {
            cond: BranchCond::Eq,
            rs1: XReg::ZERO,
            rs2: XReg::ZERO,
            offset: -4,
        };
        assert_eq!(encode(&b).unwrap(), 0xfe00_0ee3);
        // jal x0, 8 -> 0x0080006f.
        let j = Instr::Jal {
            rd: XReg::ZERO,
            offset: 8,
        };
        assert_eq!(encode(&j).unwrap(), 0x0080_006f);
    }

    #[test]
    #[allow(clippy::unusual_byte_groupings)] // literals grouped by instruction field
    fn known_vector_encodings() {
        // vsetvli x13, x10, e32, m1, ta, mu
        // zimm = 0b0_1101_0000 = 0xd0 -> insn 0x0d057697... let's verify by fields:
        // imm[30:20]=0x0d0, rs1=10 (0b01010), funct3=111, rd=13 (0b01101), opc=1010111.
        let i = Instr::Vsetvli {
            rd: XReg::new(13),
            rs1: XReg::new(10),
            vtype: VType::new(Sew::E32, Lmul::M1),
        };
        let w = encode(&i).unwrap();
        assert_eq!(w & 0x7f, 0b1010111);
        assert_eq!((w >> 7) & 0x1f, 13);
        assert_eq!((w >> 12) & 0x7, 0b111);
        assert_eq!((w >> 15) & 0x1f, 10);
        assert_eq!(w >> 20, 0b101_0000); // vtype bits, top bit 31 clear
                                         // vadd.vv v8, v8, v9 (unmasked): funct6=0, vm=1, vs2=8, vs1=9, f3=000, vd=8.
        let i = Instr::VOpVV {
            op: VAluOp::Add,
            vd: VReg::new(8),
            vs2: VReg::new(8),
            vs1: VReg::new(9),
            vm: true,
        };
        let w = encode(&i).unwrap();
        assert_eq!(w, 0b000000_1_01000_01001_000_01000_1010111);
        // vle32.v v8, (x11): nf=0,mew=0,mop=00,vm=1,lumop=0,rs1=11,width=110,vd=8,opc=0000111.
        let i = Instr::VLoad {
            eew: Sew::E32,
            vd: VReg::new(8),
            rs1: XReg::new(11),
            vm: true,
        };
        let w = encode(&i).unwrap();
        assert_eq!(w, 0b000_0_00_1_00000_01011_110_01000_0000111);
        // viota.m v4, v0 unmasked: funct6=010100, vm=1, vs2=0, vs1=10000, f3=010, vd=4.
        let i = Instr::VIota {
            vd: VReg::new(4),
            vs2: VReg::V0,
            vm: true,
        };
        let w = encode(&i).unwrap();
        assert_eq!(w, 0b010100_1_00000_10000_010_00100_1010111);
    }

    #[test]
    fn invalid_forms_are_rejected() {
        let bad = Instr::VOpVI {
            op: VAluOp::Sub,
            vd: VReg::new(1),
            vs2: VReg::new(2),
            imm: 1,
            vm: true,
        };
        assert!(matches!(encode(&bad), Err(EncodeError::InvalidForm(_))));
        let bad = Instr::VOpVV {
            op: VAluOp::Rsub,
            vd: VReg::new(1),
            vs2: VReg::new(2),
            vs1: VReg::new(3),
            vm: true,
        };
        assert!(matches!(encode(&bad), Err(EncodeError::InvalidForm(_))));
        let bad = Instr::VCmpVV {
            cond: VCmp::Gt,
            vd: VReg::new(1),
            vs2: VReg::new(2),
            vs1: VReg::new(3),
            vm: true,
        };
        assert!(matches!(encode(&bad), Err(EncodeError::InvalidForm(_))));
        let bad = Instr::OpImm {
            op: AluOp::Sub,
            rd: XReg::new(1),
            rs1: XReg::new(1),
            imm: 1,
        };
        assert!(matches!(encode(&bad), Err(EncodeError::InvalidForm(_))));
    }

    #[test]
    fn range_checks() {
        let bad = Instr::OpImm {
            op: AluOp::Add,
            rd: XReg::new(1),
            rs1: XReg::new(1),
            imm: 4096,
        };
        assert!(matches!(
            encode(&bad),
            Err(EncodeError::ImmOutOfRange { .. })
        ));
        let bad = Instr::VOpVI {
            op: VAluOp::Add,
            vd: VReg::new(1),
            vs2: VReg::new(2),
            imm: 16,
            vm: true,
        };
        assert!(matches!(
            encode(&bad),
            Err(EncodeError::ImmOutOfRange { .. })
        ));
        let ok = Instr::VOpVI {
            op: VAluOp::Srl,
            vd: VReg::new(1),
            vs2: VReg::new(2),
            imm: 31,
            vm: true,
        };
        assert!(encode(&ok).is_ok());
        let bad = Instr::Branch {
            cond: BranchCond::Eq,
            rs1: XReg::ZERO,
            rs2: XReg::ZERO,
            offset: 3,
        };
        assert!(matches!(
            encode(&bad),
            Err(EncodeError::MisalignedOffset(_))
        ));
        let bad = Instr::VLoadWhole {
            nregs: 3,
            vd: VReg::new(8),
            rs1: XReg::new(1),
        };
        assert!(matches!(
            encode(&bad),
            Err(EncodeError::InvalidWholeRegCount(_))
        ));
    }
}
