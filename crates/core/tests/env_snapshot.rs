//! Environment-level checkpointing: snapshots round-trip through bytes,
//! restore reproduces observable state exactly (in-process and across a
//! "process boundary" simulated by a fresh environment), corruption is
//! always detected, and `run_atomic` rolls a trapped launch back to the
//! pre-launch state.

use rvv_asm::SpillProfile;
use rvv_isa::{Lmul, Sew};
use scanvec::primitives::{p_add, plus_scan};
use scanvec::{EnvConfig, ScanEnv};
use scanvec::{EnvSnapshot, ExecEngine, ScanError};

fn small_cfg() -> EnvConfig {
    EnvConfig {
        vlen: 256,
        lmul: Lmul::M1,
        spill_profile: SpillProfile::llvm14(),
        mem_bytes: 8 << 20,
    }
}

/// Everything observable about an environment that a snapshot must carry.
fn observe(env: &ScanEnv, v: &scanvec::SvVector) -> (Vec<u32>, u64, u64, bool, ExecEngine) {
    (
        env.to_u32(v),
        env.retired(),
        env.snapshot().heap,
        env.is_poisoned(),
        env.exec_engine(),
    )
}

#[test]
fn snapshot_roundtrips_through_bytes_and_restores_into_a_fresh_env() {
    let mut env = ScanEnv::new(small_cfg());
    env.set_exec_engine(ExecEngine::Legacy);
    let data: Vec<u32> = (0..200).map(|i| i * 7 + 3).collect();
    let v = env.from_u32(&data).unwrap();
    p_add(&mut env, &v, 11).unwrap();
    plus_scan(&mut env, &v).unwrap();

    let snap = env.snapshot();
    assert!(
        !snap.plan_keys.is_empty(),
        "snapshot records the compiled-kernel inventory"
    );
    assert!(snap.plan_keys.iter().all(|k| k.contains("@vlen256")));

    // Serialize, decode, and confirm nothing was lost.
    let bytes = snap.to_bytes();
    let decoded = EnvSnapshot::from_bytes(&bytes).unwrap();
    assert_eq!(decoded, snap);

    // Restore into a *fresh* environment (fresh process stand-in: empty
    // plan cache, untouched machine) and compare every observable.
    let mut fresh = ScanEnv::new(small_cfg());
    fresh.restore(&decoded).unwrap();
    assert_eq!(observe(&fresh, &v), observe(&env, &v));

    // The resumed environment keeps working — and keeps agreeing with the
    // original — on further launches.
    p_add(&mut env, &v, 5).unwrap();
    p_add(&mut fresh, &v, 5).unwrap();
    assert_eq!(observe(&fresh, &v), observe(&env, &v));
}

#[test]
fn every_engine_tier_roundtrips_through_the_snapshot_wire_format() {
    // The selected engine travels as a wire byte; each tier (including the
    // fused one, encoded as 2) must decode back to itself.
    for engine in [ExecEngine::Plan, ExecEngine::Legacy, ExecEngine::Fused] {
        let mut env = ScanEnv::new(small_cfg());
        env.set_exec_engine(engine);
        let snap = EnvSnapshot::from_bytes(&env.snapshot().to_bytes()).unwrap();
        let mut fresh = ScanEnv::new(small_cfg());
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.exec_engine(), engine, "{engine:?} lost in transit");
    }
}

#[test]
fn corrupt_or_mismatched_snapshots_are_refused() {
    let mut env = ScanEnv::new(small_cfg());
    let v = env.from_u32(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
    p_add(&mut env, &v, 1).unwrap();
    let bytes = env.snapshot().to_bytes();

    // Every kind of byte damage is detected: flipped bytes anywhere in
    // the frame (header, digest, payload, nested machine frame) and
    // truncation.
    for i in (0..bytes.len()).step_by(11) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x10;
        assert!(
            matches!(EnvSnapshot::from_bytes(&bad), Err(ScanError::Snapshot(_))),
            "corruption at byte {i} must be detected"
        );
    }
    assert!(EnvSnapshot::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    assert!(EnvSnapshot::from_bytes(b"not a snapshot").is_err());

    // A snapshot from one configuration cannot be applied to another.
    let snap = EnvSnapshot::from_bytes(&bytes).unwrap();
    let mut other = ScanEnv::new(EnvConfig {
        vlen: 512,
        ..small_cfg()
    });
    let err = other.restore(&snap).unwrap_err();
    assert!(matches!(err, ScanError::Snapshot(_)));
    assert!(err.to_string().contains("config mismatch"), "{err}");
}

#[test]
fn poison_survives_a_checkpoint() {
    let mut env = ScanEnv::new(small_cfg());
    env.poison();
    let snap = EnvSnapshot::from_bytes(&env.snapshot().to_bytes()).unwrap();
    let mut fresh = ScanEnv::new(small_cfg());
    assert!(!fresh.is_poisoned());
    fresh.restore(&snap).unwrap();
    assert!(
        fresh.is_poisoned(),
        "a poisoned snapshot must restore poisoned"
    );
}

#[test]
fn run_atomic_rolls_back_a_trapped_launch() {
    let mut env = ScanEnv::new(small_cfg());
    let (v, _g1, _g2) = env.alloc_guarded(Sew::E32, 10).unwrap();
    env.write_u32(&v, &[9, 9, 9, 9, 9, 9, 9, 9, 9, 9]).unwrap();
    p_add(&mut env, &v, 1).unwrap(); // compile the kernel
    let plan = env
        .kernel("elem_vx_Add", Sew::E32, |_, _| unreachable!("cached"))
        .unwrap();

    let before = env.snapshot();

    // Lying about the length overruns into the high guard: `run` would
    // leave half the buffer incremented and vl/vtype dirty; `run_atomic`
    // must leave *nothing*.
    let err = env.run_atomic(&plan, &[40, v.addr(), 1]).unwrap_err();
    assert!(matches!(
        err,
        ScanError::Sim(rvv_sim::SimError::GuardHit { .. })
    ));
    assert_eq!(
        env.snapshot(),
        before,
        "trapped launch must be fully rolled back (registers, memory, counters, heap)"
    );
    assert_eq!(env.to_u32(&v), vec![10; 10], "inputs keep their values");

    // The environment is immediately usable — no reset needed.
    let (report, _) = env.run_atomic(&plan, &[10, v.addr(), 2]).unwrap();
    assert!(report.retired > 0);
    assert_eq!(env.to_u32(&v), vec![12; 10]);
}

#[test]
fn run_atomic_matches_run_on_success() {
    let data: Vec<u32> = (0..97).map(|i| i ^ 0x55).collect();

    let mut a = ScanEnv::new(small_cfg());
    let va = a.from_u32(&data).unwrap();
    p_add(&mut a, &va, 11).unwrap();
    let plan = a
        .kernel("elem_vx_Add", Sew::E32, |_, _| unreachable!("cached"))
        .unwrap();
    let (ra, xa) = a.run(&plan, &[va.len() as u64, va.addr(), 4]).unwrap();

    let mut b = ScanEnv::new(small_cfg());
    let vb = b.from_u32(&data).unwrap();
    p_add(&mut b, &vb, 11).unwrap();
    let (rb, xb) = b
        .run_atomic(&plan, &[vb.len() as u64, vb.addr(), 4])
        .unwrap();

    assert_eq!((ra.retired, ra.halt_pc, xa), (rb.retired, rb.halt_pc, xb));
    assert_eq!(a.to_u32(&va), b.to_u32(&vb));
    assert_eq!(a.retired(), b.retired());
}
