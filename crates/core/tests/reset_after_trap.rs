//! Regression: [`ScanEnv::reset`] after a simulator trap must restore the
//! environment to a state that reproduces an unfaulted run **exactly** —
//! same output bytes, same retired count, same per-class counters. A trap
//! that leaks `vl`/`vtype`, guard regions, a fuel budget, or allocator
//! state into the next run would show up here as a count or output drift.

use rvv_sim::SimError;
use scanvec::primitives::{plus_scan, seg_plus_scan};
use scanvec::{EnvConfig, ExecEngine, ScanEnv, ScanError, HEAP_BASE};

const N: usize = 777;

/// One full measurement from a clean (fresh or reset) environment: scan a
/// fixed workload, return the scanned bytes and the complete counter
/// state. Two equal `Golden`s mean the two runs were indistinguishable.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    scanned: Vec<u32>,
    seg_scanned: Vec<u32>,
    counters: rvv_sim::Counters,
}

fn golden(env: &mut ScanEnv) -> Golden {
    let data: Vec<u32> = (0..N as u32).map(|i| i.wrapping_mul(13) % 997).collect();
    let flags: Vec<u32> = (0..N).map(|i| u32::from(i % 61 == 0)).collect();
    let v = env.from_u32(&data).unwrap();
    plus_scan(env, &v).unwrap();
    let scanned = env.to_u32(&v);
    let w = env.from_u32(&data).unwrap();
    let f = env.from_u32(&flags).unwrap();
    seg_plus_scan(env, &w, &f).unwrap();
    Golden {
        scanned,
        seg_scanned: env.to_u32(&w),
        counters: env.machine_mut().counters.clone(),
    }
}

fn check_engine(engine: ExecEngine, trap: impl Fn(&mut ScanEnv) -> ScanError) {
    let mut env = ScanEnv::new(EnvConfig::paper_default());
    env.set_exec_engine(engine);
    let reference = golden(&mut env);

    env.reset();
    env.set_exec_engine(engine);
    let err = trap(&mut env);
    assert!(
        matches!(err, ScanError::Sim(_)),
        "expected a simulator trap, got {err}"
    );

    env.reset();
    env.set_exec_engine(engine);
    let recovered = golden(&mut env);
    assert_eq!(
        recovered, reference,
        "{engine:?}: reset after `{err}` did not restore golden behaviour"
    );
}

// The first allocation of a reset environment lands at `HEAP_BASE`, so a
// guard over it fires on the kernel's first device-side access.
fn guard_trap(env: &mut ScanEnv) -> ScanError {
    env.machine_mut().mem.add_guard(HEAP_BASE..HEAP_BASE + 64);
    let data: Vec<u32> = (0..N as u32).collect();
    // Host staging (`from_u32`) is guard-exempt; the kernel launch is not.
    let v = env.from_u32(&data).unwrap();
    let err = plus_scan(env, &v).unwrap_err();
    match &err {
        ScanError::Sim(SimError::GuardHit { addr }) => {
            assert!(
                (HEAP_BASE..HEAP_BASE + 64).contains(addr),
                "guard hit outside the armed range: {addr:#x}"
            );
        }
        other => panic!("expected a guard hit, got {other}"),
    }
    err
}

fn fuel_trap(env: &mut ScanEnv) -> ScanError {
    const BUDGET: u64 = 50;
    env.set_fuel_budget(Some(BUDGET));
    let data: Vec<u32> = (0..N as u32).collect();
    let v = env.from_u32(&data).unwrap();
    let err = plus_scan(env, &v).unwrap_err();
    match &err {
        ScanError::Sim(SimError::FuelExhausted { fuel }) => {
            // The watchdog reports the *budget*, wherever the line was
            // crossed — the trap text is position-independent.
            assert_eq!(*fuel, BUDGET);
        }
        other => panic!("expected fuel exhaustion, got {other}"),
    }
    err
}

#[test]
fn reset_after_guard_hit_restores_golden_counts() {
    for engine in [ExecEngine::Plan, ExecEngine::Legacy, ExecEngine::Fused] {
        check_engine(engine, guard_trap);
    }
}

#[test]
fn reset_after_fuel_exhaustion_restores_golden_counts() {
    for engine in [ExecEngine::Plan, ExecEngine::Legacy, ExecEngine::Fused] {
        check_engine(engine, fuel_trap);
    }
}

#[test]
fn reset_after_both_traps_in_sequence_restores_golden_counts() {
    // Stacked damage: guard hit, then (without an intervening golden run)
    // fuel exhaustion, then reset — still byte-identical.
    let mut env = ScanEnv::new(EnvConfig::paper_default());
    let reference = golden(&mut env);
    env.reset();
    guard_trap(&mut env);
    env.reset();
    fuel_trap(&mut env);
    env.reset();
    assert_eq!(golden(&mut env), reference);
}

#[test]
fn watchdog_budget_spans_multiple_launches() {
    // A budget larger than one launch but smaller than the job: the trap
    // fires on a *later* launch and still reports the armed budget.
    let mut env = ScanEnv::new(EnvConfig::paper_default());
    let data: Vec<u32> = (0..N as u32).collect();
    let v = env.from_u32(&data).unwrap();
    plus_scan(&mut env, &v).unwrap();
    let one_launch = env.retired();
    assert!(one_launch > 0);

    env.reset();
    let budget = one_launch + one_launch / 2;
    env.set_fuel_budget(Some(budget));
    let v = env.from_u32(&data).unwrap();
    plus_scan(&mut env, &v).unwrap();
    let second = plus_scan(&mut env, &v);
    match second {
        Err(ScanError::Sim(SimError::FuelExhausted { fuel })) => assert_eq!(fuel, budget),
        other => panic!("expected the second launch to exhaust the budget, got {other:?}"),
    }
}
