//! Environment checkpoints: a serializable, digest-stamped capture of
//! everything a [`crate::Session`] needs to be reconstructed
//! bit-for-bit in another process.
//!
//! An [`EnvSnapshot`] wraps the machine-level [`MachineSnapshot`] (vector
//! regfile, scalar registers, `vtype`/`vl`, counters, dirty memory pages,
//! guards) with the host-side environment state the machine cannot see:
//! the [`EnvConfig`], the bump-allocator position, the selected
//! [`ExecEngine`], and the poison flag. Compiled plans are **not**
//! serialized — they are pure functions of the kernel source and the
//! architectural configuration, so a resumed environment recompiles them
//! on demand; the snapshot carries the sorted plan-cache key list purely
//! as an informational inventory (a resumed run can log which kernels the
//! interrupted process had built, and tests assert cache warm-up).
//!
//! What is deliberately *not* captured: tracers, fault hooks, and the fuel
//! budget. All three are per-experiment attachments with host-side state
//! (boxed closures, open sinks) that cannot meaningfully survive a process
//! boundary; [`crate::Session::restore`] detaches them, exactly like
//! [`crate::Session::reset`] does.
//!
//! The wire format rides on `rvv-ckpt`'s framed codec: a
//! `"rvv-env-snapshot"` frame (version-checked, FNV-1a digest over the
//! payload) whose payload nests the machine snapshot's own sealed frame —
//! corruption anywhere, in either layer, is detected before a single byte
//! is applied.

use crate::error::{ScanError, ScanResult};
use crate::session::{EnvConfig, ExecEngine};
use rvv_asm::SpillProfile;
use rvv_ckpt::{open, seal, ByteReader, ByteWriter, CodecError};
use rvv_isa::Lmul;
use rvv_sim::MachineSnapshot;

/// Frame kind tag for serialized environment snapshots.
const FRAME_KIND: &str = "rvv-env-snapshot";
/// Bump on any incompatible change to the payload layout below.
const FRAME_VERSION: u16 = 1;

/// A complete, restorable capture of a [`crate::Session`].
///
/// Produced by [`crate::Session::snapshot`], applied by
/// [`crate::Session::restore`], and serialized with
/// [`EnvSnapshot::to_bytes`] / [`EnvSnapshot::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvSnapshot {
    /// The environment configuration the snapshot was taken under.
    /// [`crate::Session::restore`] refuses a mismatching target.
    pub cfg: EnvConfig,
    /// Bump-allocator position (next free device byte).
    pub heap: u64,
    /// The selected run loop.
    pub engine: ExecEngine,
    /// Whether the environment was poisoned (a poisoned snapshot restores
    /// to a poisoned environment — poison must survive a checkpoint, or a
    /// resume could silently reuse state a panic left inconsistent).
    pub poisoned: bool,
    /// Sorted plan-cache key inventory at snapshot time (informational;
    /// plans recompile on demand and are never serialized).
    pub plan_keys: Vec<String>,
    /// The full architectural machine state.
    pub machine: MachineSnapshot,
}

impl EnvSnapshot {
    /// Serialize to a digest-stamped, version-tagged frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.cfg.vlen);
        let lmul_index = Lmul::ALL_WITH_FRACTIONAL
            .iter()
            .position(|&l| l == self.cfg.lmul)
            .expect("every Lmul is in ALL_WITH_FRACTIONAL");
        w.put_u8(lmul_index as u8);
        w.put_bool(self.cfg.spill_profile.conservative_frame);
        w.put_u64(self.cfg.mem_bytes as u64);
        w.put_u64(self.heap);
        w.put_u8(match self.engine {
            ExecEngine::Plan => 0,
            ExecEngine::Legacy => 1,
            ExecEngine::Fused => 2,
        });
        w.put_bool(self.poisoned);
        w.put_u32(self.plan_keys.len() as u32);
        for k in &self.plan_keys {
            w.put_str(k);
        }
        // The machine snapshot keeps its own sealed frame (kind, version,
        // digest) nested inside ours: both layers are independently
        // verified on decode.
        w.put_bytes(&self.machine.to_bytes());
        seal(FRAME_KIND, FRAME_VERSION, &w.into_bytes())
    }

    /// Decode and verify a frame produced by [`EnvSnapshot::to_bytes`].
    ///
    /// Any corruption — bad magic, wrong kind or version, digest mismatch
    /// in either the outer or the nested machine frame, truncated or
    /// trailing bytes, out-of-range field values — is an error; a
    /// malformed snapshot is never partially decoded.
    pub fn from_bytes(bytes: &[u8]) -> ScanResult<EnvSnapshot> {
        Self::decode(bytes).map_err(|e| ScanError::Snapshot(e.to_string()))
    }

    fn decode(bytes: &[u8]) -> Result<EnvSnapshot, CodecError> {
        let payload = open(FRAME_KIND, FRAME_VERSION, bytes)?;
        let mut r = ByteReader::new(payload);
        let vlen = r.get_u32()?;
        let lmul_index = r.get_u8()?;
        let lmul =
            *Lmul::ALL_WITH_FRACTIONAL
                .get(lmul_index as usize)
                .ok_or(CodecError::BadValue {
                    what: "lmul index",
                    value: u64::from(lmul_index),
                })?;
        let conservative = r.get_bool()?;
        let spill_profile = if conservative {
            SpillProfile::llvm14()
        } else {
            SpillProfile::ideal()
        };
        let mem_bytes = r.get_u64()? as usize;
        let heap = r.get_u64()?;
        let engine = match r.get_u8()? {
            0 => ExecEngine::Plan,
            1 => ExecEngine::Legacy,
            2 => ExecEngine::Fused,
            v => {
                return Err(CodecError::BadValue {
                    what: "exec engine",
                    value: u64::from(v),
                })
            }
        };
        let poisoned = r.get_bool()?;
        let n_keys = r.get_u32()?;
        let mut plan_keys = Vec::with_capacity(n_keys as usize);
        for _ in 0..n_keys {
            plan_keys.push(r.get_str()?.to_string());
        }
        let machine = MachineSnapshot::from_bytes(r.get_bytes()?)?;
        r.finish()?;
        Ok(EnvSnapshot {
            cfg: EnvConfig {
                vlen,
                lmul,
                spill_profile,
                mem_bytes,
            },
            heap,
            engine,
            poisoned,
            plan_keys,
            machine,
        })
    }
}
