//! The public primitives of the scan vector model, as host-callable
//! functions over device vectors.
//!
//! Each function checks shapes, fetches (or builds) the cached kernel for
//! the environment's configuration, launches it, and returns the **dynamic
//! instruction count** the launch retired — the paper's metric — plus any
//! scalar result. Data stays in simulated device memory; read it back with
//! [`ScanEnv::to_u32`]/[`ScanEnv::to_elems`].
//!
//! The three primitive classes of Blelloch's model map as:
//!
//! * **elementwise** — [`elem_vx`], [`elem_vv`], [`p_add`] and friends,
//!   [`select`], [`get_flags`];
//! * **permutation** — [`permute`], [`pack`];
//! * **scan** — [`scan`], [`seg_scan`], [`reduce`], [`enumerate`].
//!
//! [`split`] composes enumerate/add/select/permute exactly as the paper's
//! Listing 7. The [`baseline`] module mirrors the API with the sequential
//! scalar implementations the paper compares against.

use crate::error::{ScanError, ScanResult};
use crate::kernels;
pub use crate::kernels::ScanKind;
use crate::ops::ScanOp;
use crate::session::{ScanEnv, SvVector};
use rvv_isa::VAluOp;

fn check_same(what: &'static str, a: &SvVector, b: &SvVector) -> ScanResult<()> {
    if a.len() != b.len() {
        return Err(ScanError::LengthMismatch {
            what,
            a: a.len(),
            b: b.len(),
        });
    }
    if a.sew() != b.sew() {
        return Err(ScanError::SewMismatch { what });
    }
    Ok(())
}

// ---------------------------------------------------------- elementwise --

/// In-place `v[i] ⊕= x` for any vector ALU op (the paper's `p-add` family).
/// Returns retired instructions.
pub fn elem_vx(env: &mut ScanEnv, op: VAluOp, v: &SvVector, x: u64) -> ScanResult<u64> {
    let p = env.kernel(&format!("elem_vx_{op:?}"), v.sew(), |cfg, sew| {
        kernels::build_elem_vx(cfg, sew, op)
    })?;
    let (r, _) = env.run(&p, &[v.len() as u64, v.addr(), x])?;
    Ok(r.retired)
}

/// `dst[i] = a[i] ⊕ b[i]`.
pub fn elem_vv(
    env: &mut ScanEnv,
    op: VAluOp,
    a: &SvVector,
    b: &SvVector,
    dst: &SvVector,
) -> ScanResult<u64> {
    check_same("elem_vv", a, b)?;
    check_same("elem_vv", a, dst)?;
    let p = env.kernel(&format!("elem_vv_{op:?}"), a.sew(), |cfg, sew| {
        kernels::build_elem_vv(cfg, sew, op)
    })?;
    let (r, _) = env.run(&p, &[a.len() as u64, a.addr(), b.addr(), dst.addr()])?;
    Ok(r.retired)
}

/// The paper's `p-add`: `v[i] += x`.
pub fn p_add(env: &mut ScanEnv, v: &SvVector, x: u64) -> ScanResult<u64> {
    elem_vx(env, VAluOp::Add, v, x)
}

/// `v[i] -= x`.
pub fn p_sub(env: &mut ScanEnv, v: &SvVector, x: u64) -> ScanResult<u64> {
    elem_vx(env, VAluOp::Sub, v, x)
}

/// `v[i] *= x`.
pub fn p_mul(env: &mut ScanEnv, v: &SvVector, x: u64) -> ScanResult<u64> {
    elem_vx(env, VAluOp::Mul, v, x)
}

/// `v[i] &= x`.
pub fn p_and(env: &mut ScanEnv, v: &SvVector, x: u64) -> ScanResult<u64> {
    elem_vx(env, VAluOp::And, v, x)
}

/// `v[i] |= x`.
pub fn p_or(env: &mut ScanEnv, v: &SvVector, x: u64) -> ScanResult<u64> {
    elem_vx(env, VAluOp::Or, v, x)
}

/// `v[i] ^= x`.
pub fn p_xor(env: &mut ScanEnv, v: &SvVector, x: u64) -> ScanResult<u64> {
    elem_vx(env, VAluOp::Xor, v, x)
}

/// `v[i] = max(v[i], x)` (unsigned).
pub fn p_max(env: &mut ScanEnv, v: &SvVector, x: u64) -> ScanResult<u64> {
    elem_vx(env, VAluOp::Maxu, v, x)
}

/// `v[i] = min(v[i], x)` (unsigned).
pub fn p_min(env: &mut ScanEnv, v: &SvVector, x: u64) -> ScanResult<u64> {
    elem_vx(env, VAluOp::Minu, v, x)
}

/// `flags[i] = (src[i] >> bit) & 1`.
pub fn get_flags(env: &mut ScanEnv, src: &SvVector, bit: u32, flags: &SvVector) -> ScanResult<u64> {
    check_same("get_flags", src, flags)?;
    let p = env.kernel("get_flags", src.sew(), kernels::build_get_flags)?;
    let (r, _) = env.run(
        &p,
        &[src.len() as u64, src.addr(), flags.addr(), bit as u64],
    )?;
    Ok(r.retired)
}

/// `dst[i] = flags[i] != 0 ? a[i] : b[i]` — the paper's `p-select`.
/// `dst` may alias `a` or `b`.
pub fn select(
    env: &mut ScanEnv,
    flags: &SvVector,
    a: &SvVector,
    b: &SvVector,
    dst: &SvVector,
) -> ScanResult<u64> {
    check_same("select", flags, a)?;
    check_same("select", flags, b)?;
    check_same("select", flags, dst)?;
    let p = env.kernel("select", a.sew(), kernels::build_select)?;
    let (r, _) = env.run(
        &p,
        &[a.len() as u64, flags.addr(), a.addr(), b.addr(), dst.addr()],
    )?;
    Ok(r.retired)
}

// ----------------------------------------------------------- permutation --

/// Out-of-place permutation / scatter `dst[index[i]] = src[i]`
/// (paper §4.2). `dst` must not alias `src` (the scan vector model's
/// permute is out-of-place by definition). `dst` may be a different length
/// than `src` (a scatter); every index must be in range for `dst` — the
/// caller's contract, like the paper's C signature.
pub fn permute(
    env: &mut ScanEnv,
    src: &SvVector,
    index: &SvVector,
    dst: &SvVector,
) -> ScanResult<u64> {
    check_same("permute", src, index)?;
    if src.sew() != dst.sew() {
        return Err(ScanError::SewMismatch { what: "permute" });
    }
    let p = env.kernel("permute", src.sew(), kernels::build_permute)?;
    let (r, _) = env.run(
        &p,
        &[src.len() as u64, src.addr(), dst.addr(), index.addr()],
    )?;
    Ok(r.retired)
}

/// Stream compaction: copy flagged elements of `src` to the front of `dst`,
/// preserving order. Returns `(kept_count, retired)`.
///
/// `dst` may be shorter than `src`, but must have room for every flagged
/// element — the kernel writes exactly `kept_count` elements.
pub fn pack(
    env: &mut ScanEnv,
    src: &SvVector,
    flags: &SvVector,
    dst: &SvVector,
) -> ScanResult<(u64, u64)> {
    check_same("pack", src, flags)?;
    if src.sew() != dst.sew() {
        return Err(ScanError::SewMismatch { what: "pack" });
    }
    let p = env.kernel("pack", src.sew(), kernels::build_pack)?;
    let (r, count) = env.run(
        &p,
        &[src.len() as u64, src.addr(), flags.addr(), dst.addr()],
    )?;
    Ok((count, r.retired))
}

// ------------------------------------------------------------------ scan --

/// In-place scan with operator `op`. Returns retired instructions.
pub fn scan(env: &mut ScanEnv, op: ScanOp, v: &SvVector, kind: ScanKind) -> ScanResult<u64> {
    env.phase("scan", |env| {
        let p = env.kernel(
            &format!("scan_{}_{}", op.name(), kind.name()),
            v.sew(),
            |cfg, sew| kernels::build_scan(cfg, sew, op, kind),
        )?;
        let (r, _) = env.run(&p, &[v.len() as u64, v.addr()])?;
        Ok(r.retired)
    })
}

/// The paper's unsegmented `plus_scan` (inclusive, in place).
pub fn plus_scan(env: &mut ScanEnv, v: &SvVector) -> ScanResult<u64> {
    scan(env, ScanOp::Plus, v, ScanKind::Inclusive)
}

/// In-place segmented inclusive scan with head-flags (paper §5).
pub fn seg_scan(env: &mut ScanEnv, op: ScanOp, v: &SvVector, flags: &SvVector) -> ScanResult<u64> {
    check_same("seg_scan", v, flags)?;
    env.phase("seg_scan", |env| {
        let p = env.kernel(&format!("seg_scan_{}", op.name()), v.sew(), |cfg, sew| {
            kernels::build_seg_scan(cfg, sew, op)
        })?;
        let (r, _) = env.run(&p, &[v.len() as u64, v.addr(), flags.addr()])?;
        Ok(r.retired)
    })
}

/// The paper's `seg_plus_scan`.
pub fn seg_plus_scan(env: &mut ScanEnv, v: &SvVector, flags: &SvVector) -> ScanResult<u64> {
    seg_scan(env, ScanOp::Plus, v, flags)
}

/// Reduction `⊕` over `v`. Returns `(value, retired)`.
pub fn reduce(env: &mut ScanEnv, op: ScanOp, v: &SvVector) -> ScanResult<(u64, u64)> {
    env.phase("reduce", |env| {
        let p = env.kernel(&format!("reduce_{}", op.name()), v.sew(), |cfg, sew| {
            kernels::build_reduce(cfg, sew, op)
        })?;
        let (r, val) = env.run(&p, &[v.len() as u64, v.addr()])?;
        Ok((v.sew().truncate(val), r.retired))
    })
}

/// The paper's `enumerate` (Listing 8): `dst[i]` counts earlier positions
/// whose flag equals `set_bit`. Returns `(total_count, retired)`.
pub fn enumerate(
    env: &mut ScanEnv,
    flags: &SvVector,
    set_bit: bool,
    dst: &SvVector,
) -> ScanResult<(u64, u64)> {
    check_same("enumerate", flags, dst)?;
    env.phase("enumerate", |env| {
        let p = env.kernel("enumerate", flags.sew(), kernels::build_enumerate)?;
        let (r, count) = env.run(
            &p,
            &[flags.len() as u64, flags.addr(), dst.addr(), set_bit as u64],
        )?;
        Ok((count, r.retired))
    })
}

/// Ablation variant of [`enumerate`] that uses a generic exclusive scan
/// instead of `viota` (paper §4.4 argues `viota` is the right
/// specialization; `scanvec-bench`'s `ablation_enumerate` quantifies it).
pub fn enumerate_via_scan(
    env: &mut ScanEnv,
    flags: &SvVector,
    set_bit: bool,
    dst: &SvVector,
) -> ScanResult<(u64, u64)> {
    check_same("enumerate", flags, dst)?;
    let p = env.kernel(
        "enumerate_via_scan",
        flags.sew(),
        kernels::build_enumerate_via_scan,
    )?;
    let (r, count) = env.run(
        &p,
        &[flags.len() as u64, flags.addr(), dst.addr(), set_bit as u64],
    )?;
    Ok((count, r.retired))
}

// ------------------------------------------------------------ data moves --

/// `dst[i] = src[i]`.
pub fn copy(env: &mut ScanEnv, src: &SvVector, dst: &SvVector) -> ScanResult<u64> {
    check_same("copy", src, dst)?;
    let p = env.kernel("copy", src.sew(), kernels::build_copy)?;
    let (r, _) = env.run(&p, &[src.len() as u64, src.addr(), dst.addr()])?;
    Ok(r.retired)
}

/// `dst[i] = src[n-1-i]` (Blelloch's `reverse`).
pub fn reverse(env: &mut ScanEnv, src: &SvVector, dst: &SvVector) -> ScanResult<u64> {
    check_same("reverse", src, dst)?;
    let p = env.kernel("reverse", src.sew(), kernels::build_reverse)?;
    let (r, _) = env.run(&p, &[src.len() as u64, src.addr(), dst.addr()])?;
    Ok(r.retired)
}

/// Gather: `dst[i] = table[index[i]]` — the inverse permutation direction.
/// `index` and `dst` must have the table's element width; indices must be
/// in range (out-of-range indices trap on the simulated machine).
pub fn gather(
    env: &mut ScanEnv,
    table: &SvVector,
    index: &SvVector,
    dst: &SvVector,
) -> ScanResult<u64> {
    check_same("gather", index, dst)?;
    if table.sew() != dst.sew() {
        return Err(ScanError::SewMismatch { what: "gather" });
    }
    let p = env.kernel("gather", table.sew(), kernels::build_gather)?;
    let (r, _) = env.run(
        &p,
        &[index.len() as u64, table.addr(), dst.addr(), index.addr()],
    )?;
    Ok(r.retired)
}

/// `dst[i] = i` (the model's `index`/`iota` primitive).
pub fn iota(env: &mut ScanEnv, dst: &SvVector) -> ScanResult<u64> {
    let p = env.kernel("iota", dst.sew(), kernels::build_iota)?;
    let (r, _) = env.run(&p, &[dst.len() as u64, dst.addr()])?;
    Ok(r.retired)
}

/// Elementwise compare to 0/1 flags: `dst[i] = (a[i] ⋈ b[i]) ? 1 : 0`.
pub fn cmp_flags(
    env: &mut ScanEnv,
    cond: rvv_isa::VCmp,
    a: &SvVector,
    b: &SvVector,
    dst: &SvVector,
) -> ScanResult<u64> {
    check_same("cmp_flags", a, b)?;
    check_same("cmp_flags", a, dst)?;
    let p = env.kernel(&format!("cmp_flags_{cond:?}"), a.sew(), |cfg, sew| {
        kernels::build_cmp_flags(cfg, sew, cond)
    })?;
    let (r, _) = env.run(&p, &[a.len() as u64, a.addr(), b.addr(), dst.addr()])?;
    Ok(r.retired)
}

/// Deinterleave: `even[i] = v[2i]`, `odd[i] = v[2i+1]` (Blelloch's
/// `even-elts`/`odd-elts`). `even.len()` must be `⌈n/2⌉` and `odd.len()`
/// `⌊n/2⌋`.
pub fn deinterleave(
    env: &mut ScanEnv,
    v: &SvVector,
    even: &SvVector,
    odd: &SvVector,
) -> ScanResult<u64> {
    let n = v.len();
    if even.sew() != v.sew() || odd.sew() != v.sew() {
        return Err(ScanError::SewMismatch {
            what: "deinterleave",
        });
    }
    if even.len() != n.div_ceil(2) || odd.len() != n / 2 {
        return Err(ScanError::LengthMismatch {
            what: "deinterleave",
            a: even.len() + odd.len(),
            b: n,
        });
    }
    let p = env.kernel("deinterleave", v.sew(), kernels::build_deinterleave)?;
    let esz = v.sew().bytes() as u64;
    let (r1, _) = env.run(&p, &[even.len() as u64, v.addr(), even.addr()])?;
    let (r2, _) = env.run(&p, &[odd.len() as u64, v.addr() + esz, odd.addr()])?;
    Ok(r1.retired + r2.retired)
}

/// Interleave: `dst[2i] = a[i]`, `dst[2i+1] = b[i]` (Blelloch's
/// `interleave`). `a` and `b` must have equal length; `dst` twice that.
pub fn interleave(
    env: &mut ScanEnv,
    a: &SvVector,
    b: &SvVector,
    dst: &SvVector,
) -> ScanResult<u64> {
    check_same("interleave", a, b)?;
    if dst.sew() != a.sew() {
        return Err(ScanError::SewMismatch { what: "interleave" });
    }
    if dst.len() != 2 * a.len() {
        return Err(ScanError::LengthMismatch {
            what: "interleave",
            a: dst.len(),
            b: 2 * a.len(),
        });
    }
    let p = env.kernel("interleave_lane", a.sew(), kernels::build_interleave_lane)?;
    let esz = a.sew().bytes() as u64;
    let (r1, _) = env.run(&p, &[a.len() as u64, a.addr(), dst.addr()])?;
    let (r2, _) = env.run(&p, &[b.len() as u64, b.addr(), dst.addr() + esz])?;
    Ok(r1.retired + r2.retired)
}

/// VLS-style `v[i] ⊕= x` — fixed vector width plus scalar remainder loop.
/// Exists only for the `ablation_vla_vls` experiment (paper §3.1); use
/// [`elem_vx`] for real work.
pub fn elem_vx_vls(env: &mut ScanEnv, op: VAluOp, v: &SvVector, x: u64) -> ScanResult<u64> {
    let p = env.kernel(&format!("elem_vx_vls_{op:?}"), v.sew(), |cfg, sew| {
        kernels::build_elem_vx_vls(cfg, sew, op)
    })?;
    let (r, _) = env.run(&p, &[v.len() as u64, v.addr(), x])?;
    Ok(r.retired)
}

// ----------------------------------------------------------------- split --

/// The index computation at the heart of Blelloch's `split` (paper
/// Listing 7): `index[i]` is where element `i` lands in a stable partition
/// by `flags` (flag-0 elements first, flag-1 after). Composed from
/// `enumerate` ×2, `p_add`, and `select`, exactly like the paper.
pub fn split_index(env: &mut ScanEnv, flags: &SvVector, index: &SvVector) -> ScanResult<u64> {
    check_same("split_index", flags, index)?;
    env.phase("split_index", |env| {
        let n = flags.len();
        let mark = env.heap_mark();
        let i_down = env.alloc(flags.sew(), n)?;
        let mut retired = 0;
        let (count0, r) = enumerate(env, flags, false, index)?;
        retired += r;
        let (_, r) = enumerate(env, flags, true, &i_down)?;
        retired += r;
        retired += p_add(env, &i_down, count0)?;
        // index[i] = flags[i] ? i_down[i] : index[i]
        retired += select(env, flags, &i_down, index, index)?;
        env.release_to(mark);
        Ok(retired)
    })
}

/// Blelloch's `split` (paper Listing 7): stable partition of `src` by
/// `flags` into `dst` — flag-0 elements first, flag-1 elements after, both
/// in original order ([`split_index`] + [`permute`]). Returns retired
/// instructions summed over the component launches.
pub fn split(
    env: &mut ScanEnv,
    src: &SvVector,
    flags: &SvVector,
    dst: &SvVector,
) -> ScanResult<u64> {
    check_same("split", src, flags)?;
    check_same("split", src, dst)?;
    env.phase("split", |env| {
        let mark = env.heap_mark();
        let index = env.alloc(src.sew(), src.len())?;
        let mut retired = split_index(env, flags, &index)?;
        retired += permute(env, src, &index, dst)?;
        env.release_to(mark);
        Ok(retired)
    })
}

/// `split` applied to a (key, value) pair: one index computation, two
/// permutes — the building block of the key-value radix sort.
pub fn split_pairs(
    env: &mut ScanEnv,
    keys: &SvVector,
    vals: &SvVector,
    flags: &SvVector,
    dst_keys: &SvVector,
    dst_vals: &SvVector,
) -> ScanResult<u64> {
    check_same("split_pairs", keys, flags)?;
    check_same("split_pairs", keys, dst_keys)?;
    check_same("split_pairs", vals, dst_vals)?;
    if keys.len() != vals.len() {
        return Err(ScanError::LengthMismatch {
            what: "split_pairs",
            a: keys.len(),
            b: vals.len(),
        });
    }
    env.phase("split_pairs", |env| {
        let mark = env.heap_mark();
        let index = env.alloc(keys.sew(), keys.len())?;
        let mut retired = split_index(env, flags, &index)?;
        retired += permute(env, keys, &index, dst_keys)?;
        // The value permute reuses the same index vector; widths may differ
        // between keys and values only if the index still fits, so we require
        // matching widths for simplicity (checked above via dst_vals).
        retired += permute(env, vals, &index, dst_vals)?;
        env.release_to(mark);
        Ok(retired)
    })
}

// -------------------------------------------------------------- baseline --

/// Sequential scalar baselines, mirroring the primitive API (Tables 2–4's
/// comparison column). All run on the same machine and counter.
pub mod baseline {
    use super::*;

    /// Scalar `v[i] ⊕= x`.
    pub fn elem_vx(env: &mut ScanEnv, op: ScanOp, v: &SvVector, x: u64) -> ScanResult<u64> {
        let p = env.kernel(
            &format!("elem_baseline_{}", op.name()),
            v.sew(),
            |cfg, sew| kernels::build_elem_baseline(cfg, sew, op),
        )?;
        let (r, _) = env.run(&p, &[v.len() as u64, v.addr(), x])?;
        Ok(r.retired)
    }

    /// Scalar `p_add` baseline.
    pub fn p_add(env: &mut ScanEnv, v: &SvVector, x: u64) -> ScanResult<u64> {
        elem_vx(env, ScanOp::Plus, v, x)
    }

    /// Scalar inclusive scan baseline.
    pub fn scan(env: &mut ScanEnv, op: ScanOp, v: &SvVector) -> ScanResult<u64> {
        let p = env.kernel(
            &format!("scan_baseline_{}", op.name()),
            v.sew(),
            |cfg, sew| kernels::build_scan_baseline(cfg, sew, op),
        )?;
        let (r, _) = env.run(&p, &[v.len() as u64, v.addr()])?;
        Ok(r.retired)
    }

    /// Scalar `plus_scan` baseline.
    pub fn plus_scan(env: &mut ScanEnv, v: &SvVector) -> ScanResult<u64> {
        scan(env, ScanOp::Plus, v)
    }

    /// Scalar segmented scan baseline.
    pub fn seg_scan(
        env: &mut ScanEnv,
        op: ScanOp,
        v: &SvVector,
        flags: &SvVector,
    ) -> ScanResult<u64> {
        super::check_same("seg_scan_baseline", v, flags)?;
        let p = env.kernel(
            &format!("seg_scan_baseline_{}", op.name()),
            v.sew(),
            |cfg, sew| kernels::build_seg_scan_baseline(cfg, sew, op),
        )?;
        let (r, _) = env.run(&p, &[v.len() as u64, v.addr(), flags.addr()])?;
        Ok(r.retired)
    }

    /// Scalar `seg_plus_scan` baseline.
    pub fn seg_plus_scan(env: &mut ScanEnv, v: &SvVector, flags: &SvVector) -> ScanResult<u64> {
        seg_scan(env, ScanOp::Plus, v, flags)
    }

    /// Scalar `enumerate` baseline. Returns `(count, retired)`.
    pub fn enumerate(
        env: &mut ScanEnv,
        flags: &SvVector,
        set_bit: bool,
        dst: &SvVector,
    ) -> ScanResult<(u64, u64)> {
        super::check_same("enumerate_baseline", flags, dst)?;
        let p = env.kernel(
            "enumerate_baseline",
            flags.sew(),
            kernels::build_enumerate_baseline,
        )?;
        let (r, count) = env.run(
            &p,
            &[flags.len() as u64, flags.addr(), dst.addr(), set_bit as u64],
        )?;
        Ok((count, r.retired))
    }

    /// Scalar select baseline.
    pub fn select(
        env: &mut ScanEnv,
        flags: &SvVector,
        a: &SvVector,
        b: &SvVector,
        dst: &SvVector,
    ) -> ScanResult<u64> {
        super::check_same("select_baseline", flags, a)?;
        super::check_same("select_baseline", flags, b)?;
        let p = env.kernel("select_baseline", a.sew(), kernels::build_select_baseline)?;
        let (r, _) = env.run(
            &p,
            &[a.len() as u64, flags.addr(), a.addr(), b.addr(), dst.addr()],
        )?;
        Ok(r.retired)
    }

    /// Scalar permute baseline.
    pub fn permute(
        env: &mut ScanEnv,
        src: &SvVector,
        index: &SvVector,
        dst: &SvVector,
    ) -> ScanResult<u64> {
        super::check_same("permute_baseline", src, index)?;
        let p = env.kernel(
            "permute_baseline",
            src.sew(),
            kernels::build_permute_baseline,
        )?;
        let (r, _) = env.run(
            &p,
            &[src.len() as u64, src.addr(), dst.addr(), index.addr()],
        )?;
        Ok(r.retired)
    }
}
