//! Segment descriptors for segmented operations.
//!
//! Blelloch (and the paper's §5) name three equivalent representations of a
//! segmentation of an `n`-element vector:
//!
//! * **head-flags** — `n` words, 1 at each segment start (the paper's
//!   choice, because it maps directly onto RVV mask instructions);
//! * **lengths** — one length per segment, summing to `n`;
//! * **head-pointers** — the start index of each segment, strictly
//!   increasing, starting at 0.
//!
//! [`Segments`] stores the canonical head-flags form and converts to/from
//! the other two (with validation), so algorithms can accept whichever shape
//! their input data arrives in.
//!
//! A note on the first element: a well-formed segmentation of a non-empty
//! vector begins a segment at index 0, i.e. `head_flags[0] == 1`. The
//! *kernels* tolerate `head_flags[0] == 0` (the leading run is treated as a
//! continuation of a zero-length "segment 0", matching the paper's code,
//! whose first strip adds a carry of the operator identity); the
//! *descriptor* type enforces the canonical form.

use crate::error::{ScanError, ScanResult};

/// A validated segmentation of an `n`-element vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segments {
    flags: Vec<u32>,
}

impl Segments {
    /// Build from head-flags. Requires every flag to be 0/1, and
    /// `flags[0] == 1` when non-empty.
    pub fn from_head_flags(flags: Vec<u32>) -> ScanResult<Segments> {
        if flags.iter().any(|&f| f > 1) {
            return Err(ScanError::BadSegmentDescriptor("head flags must be 0 or 1"));
        }
        if let Some(&first) = flags.first() {
            if first != 1 {
                return Err(ScanError::BadSegmentDescriptor(
                    "a segmentation must start a segment at index 0",
                ));
            }
        }
        Ok(Segments { flags })
    }

    /// Build from per-segment lengths. Zero-length segments are rejected
    /// (they have no representation in head-flags).
    pub fn from_lengths(lengths: &[u32]) -> ScanResult<Segments> {
        if lengths.contains(&0) {
            return Err(ScanError::BadSegmentDescriptor(
                "zero-length segments are not representable as head flags",
            ));
        }
        let n: u64 = lengths.iter().map(|&l| l as u64).sum();
        let mut flags = vec![0u32; n as usize];
        let mut at = 0usize;
        for &l in lengths {
            flags[at] = 1;
            at += l as usize;
        }
        Ok(Segments { flags })
    }

    /// Build from head-pointers over a vector of length `n`.
    pub fn from_head_pointers(ptrs: &[u32], n: usize) -> ScanResult<Segments> {
        if n > 0 {
            if ptrs.first() != Some(&0) {
                return Err(ScanError::BadSegmentDescriptor(
                    "head pointers must start at index 0",
                ));
            }
        } else if !ptrs.is_empty() {
            return Err(ScanError::BadSegmentDescriptor(
                "empty vector cannot have segments",
            ));
        }
        let mut flags = vec![0u32; n];
        let mut prev: Option<u32> = None;
        for &p in ptrs {
            if (p as usize) >= n {
                return Err(ScanError::BadSegmentDescriptor("head pointer out of range"));
            }
            if let Some(q) = prev {
                if p <= q {
                    return Err(ScanError::BadSegmentDescriptor(
                        "head pointers must be strictly increasing",
                    ));
                }
            }
            flags[p as usize] = 1;
            prev = Some(p);
        }
        Ok(Segments { flags })
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Is the underlying vector empty?
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.flags.iter().filter(|&&f| f == 1).count()
    }

    /// The head-flags form (borrowed).
    pub fn head_flags(&self) -> &[u32] {
        &self.flags
    }

    /// Convert to per-segment lengths.
    pub fn to_lengths(&self) -> Vec<u32> {
        let mut lengths = Vec::new();
        let mut cur = 0u32;
        for (i, &f) in self.flags.iter().enumerate() {
            if f == 1 && i != 0 {
                lengths.push(cur);
                cur = 0;
            }
            cur += 1;
        }
        if !self.flags.is_empty() {
            lengths.push(cur);
        }
        lengths
    }

    /// Convert to head-pointers.
    pub fn to_head_pointers(&self) -> Vec<u32> {
        self.flags
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| (f == 1).then_some(i as u32))
            .collect()
    }

    /// Iterate segment index ranges.
    pub fn ranges(&self) -> Vec<std::ops::Range<usize>> {
        let ptrs = self.to_head_pointers();
        let mut out = Vec::with_capacity(ptrs.len());
        for (k, &p) in ptrs.iter().enumerate() {
            let end = ptrs
                .get(k + 1)
                .map(|&q| q as usize)
                .unwrap_or(self.flags.len());
            out.push(p as usize..end);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_roundtrip() {
        let s = Segments::from_lengths(&[3, 1, 4]).unwrap();
        assert_eq!(s.head_flags(), &[1, 0, 0, 1, 1, 0, 0, 0]);
        assert_eq!(s.to_lengths(), vec![3, 1, 4]);
        assert_eq!(s.segment_count(), 3);
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn head_pointers_roundtrip() {
        let s = Segments::from_head_pointers(&[0, 2, 3], 6).unwrap();
        assert_eq!(s.head_flags(), &[1, 0, 1, 1, 0, 0]);
        assert_eq!(s.to_head_pointers(), vec![0, 2, 3]);
        let back = Segments::from_head_pointers(&s.to_head_pointers(), s.len()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn ranges_cover_exactly() {
        let s = Segments::from_lengths(&[2, 5, 1]).unwrap();
        let r = s.ranges();
        assert_eq!(r, vec![0..2, 2..7, 7..8]);
    }

    #[test]
    fn validation_rejects_bad_forms() {
        assert!(Segments::from_head_flags(vec![0, 1, 1]).is_err()); // no head at 0
        assert!(Segments::from_head_flags(vec![1, 2]).is_err()); // non-boolean
        assert!(Segments::from_lengths(&[2, 0, 1]).is_err()); // empty segment
        assert!(Segments::from_head_pointers(&[1, 2], 4).is_err()); // no 0
        assert!(Segments::from_head_pointers(&[0, 2, 2], 4).is_err()); // not increasing
        assert!(Segments::from_head_pointers(&[0, 9], 4).is_err()); // out of range
        assert!(Segments::from_head_flags(vec![]).is_ok()); // empty is fine
        assert_eq!(
            Segments::from_head_flags(vec![]).unwrap().to_lengths(),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn single_segment() {
        let s = Segments::from_lengths(&[5]).unwrap();
        assert_eq!(s.head_flags(), &[1, 0, 0, 0, 0]);
        assert_eq!(s.segment_count(), 1);
        assert_eq!(s.ranges(), vec![0..5]);
    }
}
