//! Typed device vectors: a thin, type-safe layer over [`SvVector`].
//!
//! The raw environment API works in element widths ([`Sew`]) and `u64`
//! staging values — faithful to the hardware, but easy to misuse from host
//! code. [`DeviceVec<T>`] carries the element type in the Rust type system:
//! uploads/downloads are slices of `T`, and the width can never disagree
//! with the data.
//!
//! ```
//! use scanvec::ScanEnv;
//! use scanvec::typed::DeviceVec;
//! use scanvec::{primitives, ScanKind, ScanOp};
//!
//! let mut env = ScanEnv::paper_default();
//! let v: DeviceVec<u16> = DeviceVec::upload(&mut env, &[1u16, 2, 3, 4]).unwrap();
//! primitives::scan(&mut env, ScanOp::Plus, v.raw(), ScanKind::Inclusive).unwrap();
//! assert_eq!(v.download(&env), vec![1u16, 3, 6, 10]);
//! ```

use crate::error::ScanResult;
use crate::session::{ScanEnv, SvVector};
use rvv_isa::Sew;
use std::marker::PhantomData;

/// An element type storable in a device vector.
///
/// Sealed to the four RVV integer element widths.
pub trait SvElement: Copy + private::Sealed {
    /// The element width this type maps to.
    const SEW: Sew;
    /// Zero-extend to the staging representation.
    fn to_u64(self) -> u64;
    /// Truncate from the staging representation.
    fn from_u64(v: u64) -> Self;
}

mod private {
    /// Seals [`super::SvElement`].
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

macro_rules! impl_elem {
    ($t:ty, $sew:expr) => {
        impl SvElement for $t {
            const SEW: Sew = $sew;
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    };
}

impl_elem!(u8, Sew::E8);
impl_elem!(u16, Sew::E16);
impl_elem!(u32, Sew::E32);
impl_elem!(u64, Sew::E64);

/// A device vector whose element type is tracked statically.
#[derive(Debug, Clone)]
pub struct DeviceVec<T: SvElement> {
    raw: SvVector,
    _elem: PhantomData<T>,
}

impl<T: SvElement> DeviceVec<T> {
    /// Allocate a zeroed vector of `len` elements.
    pub fn zeroed(env: &mut ScanEnv, len: usize) -> ScanResult<DeviceVec<T>> {
        Ok(DeviceVec {
            raw: env.alloc(T::SEW, len)?,
            _elem: PhantomData,
        })
    }

    /// Allocate and fill from host data.
    pub fn upload(env: &mut ScanEnv, data: &[T]) -> ScanResult<DeviceVec<T>> {
        let staged: Vec<u64> = data.iter().map(|&x| x.to_u64()).collect();
        Ok(DeviceVec {
            raw: env.from_elems(T::SEW, &staged)?,
            _elem: PhantomData,
        })
    }

    /// Read the whole vector back to the host.
    pub fn download(&self, env: &ScanEnv) -> Vec<T> {
        env.to_elems(&self.raw)
            .into_iter()
            .map(T::from_u64)
            .collect()
    }

    /// Wrap an untyped vector; `None` if the element width disagrees.
    pub fn from_raw(raw: SvVector) -> Option<DeviceVec<T>> {
        (raw.sew() == T::SEW).then_some(DeviceVec {
            raw,
            _elem: PhantomData,
        })
    }

    /// The untyped view, accepted by every primitive.
    pub fn raw(&self) -> &SvVector {
        &self.raw
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Typed single-element read (host-side staging, uncounted).
    pub fn get(&self, env: &ScanEnv, i: usize) -> T {
        T::from_u64(env.load_elem(&self.raw, i))
    }

    /// Typed single-element write (host-side staging, uncounted).
    pub fn set(&self, env: &mut ScanEnv, i: usize, value: T) -> ScanResult<()> {
        env.store_elem(&self.raw, i, value.to_u64())
    }

    /// Typed sub-view of elements `[start, start+len)`.
    pub fn slice(&self, env: &ScanEnv, start: usize, len: usize) -> ScanResult<DeviceVec<T>> {
        Ok(DeviceVec {
            raw: env.slice(&self.raw, start, len)?,
            _elem: PhantomData,
        })
    }
}

impl<T: SvElement> AsRef<SvVector> for DeviceVec<T> {
    fn as_ref(&self) -> &SvVector {
        &self.raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives;
    use crate::{ScanKind, ScanOp};

    fn env() -> ScanEnv {
        ScanEnv::paper_default()
    }

    #[test]
    fn upload_download_roundtrips_every_width() {
        let mut e = env();
        let a = DeviceVec::upload(&mut e, &[1u8, 255, 7]).unwrap();
        assert_eq!(a.download(&e), vec![1u8, 255, 7]);
        let b = DeviceVec::upload(&mut e, &[1u16, 65535, 7]).unwrap();
        assert_eq!(b.download(&e), vec![1u16, 65535, 7]);
        let c = DeviceVec::upload(&mut e, &[1u32, u32::MAX, 7]).unwrap();
        assert_eq!(c.download(&e), vec![1u32, u32::MAX, 7]);
        let d = DeviceVec::upload(&mut e, &[1u64, u64::MAX, 7]).unwrap();
        assert_eq!(d.download(&e), vec![1u64, u64::MAX, 7]);
    }

    #[test]
    fn typed_vectors_drive_primitives_at_every_width() {
        let mut e = env();
        // u16 scan with wraparound at the element width.
        let v = DeviceVec::upload(&mut e, &[60_000u16, 10_000, 5]).unwrap();
        primitives::scan(&mut e, ScanOp::Plus, v.raw(), ScanKind::Inclusive).unwrap();
        assert_eq!(v.download(&e), vec![60_000u16, 4_464, 4_469]);
        // u8 p_add wraps mod 256.
        let w = DeviceVec::upload(&mut e, &[250u8, 1, 2]).unwrap();
        primitives::p_add(&mut e, w.raw(), 10).unwrap();
        assert_eq!(w.download(&e), vec![4u8, 11, 12]);
    }

    #[test]
    fn from_raw_checks_width() {
        let mut e = env();
        let raw = e.from_u32(&[1, 2, 3]).unwrap();
        assert!(DeviceVec::<u32>::from_raw(raw.clone()).is_some());
        assert!(DeviceVec::<u16>::from_raw(raw).is_none());
    }

    #[test]
    fn element_access_and_slicing() {
        let mut e = env();
        let v = DeviceVec::upload(&mut e, &[10u32, 20, 30, 40]).unwrap();
        assert_eq!(v.get(&e, 2), 30);
        v.set(&mut e, 2, 99).unwrap();
        assert_eq!(v.get(&e, 2), 99);
        let s = v.slice(&e, 1, 2).unwrap();
        assert_eq!(s.download(&e), vec![20u32, 99]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
