//! Error type for the scan vector model library.

use rvv_sim::SimError;
use std::fmt;

/// Errors surfaced by the `scanvec` public API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanError {
    /// Two vectors that must have equal length do not.
    LengthMismatch {
        /// What was being combined.
        what: &'static str,
        /// First length.
        a: usize,
        /// Second length.
        b: usize,
    },
    /// Two vectors that must share an element width do not.
    SewMismatch {
        /// What was being combined.
        what: &'static str,
    },
    /// The environment's bump allocator is out of device memory.
    OutOfDeviceMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes remaining.
        available: u64,
    },
    /// A kernel failed to assemble — a library bug, but surfaced as an
    /// error so property tests can exercise builder limits.
    Assembly(String),
    /// The simulator trapped while running a kernel.
    Sim(SimError),
    /// A segment descriptor is malformed (see [`crate::segment`]).
    BadSegmentDescriptor(&'static str),
    /// An environment snapshot could not be decoded or applied
    /// (corrupt/truncated bytes, wrong version, or a configuration
    /// mismatch between the snapshot and the target environment).
    Snapshot(String),
    /// An [`crate::EnvConfig`] failed validation (see
    /// [`crate::Engine::validate`]): VLEN outside the architectural
    /// range, or a device memory size too small for the reserved stack.
    Config(String),
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::LengthMismatch { what, a, b } => {
                write!(f, "length mismatch in {what}: {a} vs {b}")
            }
            ScanError::SewMismatch { what } => write!(f, "element width mismatch in {what}"),
            ScanError::OutOfDeviceMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "device memory exhausted: requested {requested}, available {available}"
                )
            }
            ScanError::Assembly(e) => write!(f, "kernel assembly failed: {e}"),
            ScanError::Sim(e) => write!(f, "simulator trap: {e}"),
            ScanError::BadSegmentDescriptor(m) => write!(f, "bad segment descriptor: {m}"),
            ScanError::Snapshot(m) => write!(f, "snapshot error: {m}"),
            ScanError::Config(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for ScanError {}

impl From<SimError> for ScanError {
    fn from(e: SimError) -> Self {
        ScanError::Sim(e)
    }
}

impl From<rvv_asm::AsmError> for ScanError {
    fn from(e: rvv_asm::AsmError) -> Self {
        ScanError::Assembly(e.to_string())
    }
}

/// Result alias for the `scanvec` API.
pub type ScanResult<T> = Result<T, ScanError>;
