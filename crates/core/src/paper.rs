//! Where each piece of the paper lives in this codebase — a reviewer's
//! cross-reference. This module contains no code, only the map.
//!
//! # Listings
//!
//! | Paper | What it shows | Here |
//! |---|---|---|
//! | Listing 1/2 | strip-mined `vector_add` (C intrinsics / assembly) | [`crate::kernels::build_elem_vv`] emits the same loop; `dump_kernels` prints the assembly |
//! | Listing 3 | masked `vadd` signature, mask policies | [`rvv_isa::Instr::VOpVV`] with `vm = false`; policy modelling in `rvv-sim`'s executor docs |
//! | Listing 4 | `p_add` elementwise primitive | [`crate::kernels::build_elem_vx`], API [`crate::primitives::p_add`] |
//! | Listing 5 | `permute` via `VSUXEI` indexed store | [`crate::kernels::build_permute`], API [`crate::primitives::permute`] |
//! | Listing 6 | unsegmented plus-scan (strip mining + in-register ladder) | [`crate::kernels::build_scan`], API [`crate::primitives::plus_scan`] |
//! | Listing 7 | `split` from enumerate/p_add/p_select/permute | [`crate::primitives::split`] (same five-call composition) |
//! | Listing 8 | `enumerate` via `viota` + `vcpop` | [`crate::kernels::build_enumerate`], ablated against a generic scan in `ablation_enumerate` |
//! | Listing 9 | split radix sort driver | `scanvec_algos::split_radix_sort` |
//! | Listing 10 | segmented plus-scan (`vmsne`/`vmsbf` carry mask, flag ladder) | [`crate::kernels::build_seg_scan`], API [`crate::primitives::seg_plus_scan`] |
//!
//! # Figures
//!
//! | Paper | What it shows | Here |
//! |---|---|---|
//! | Figure 1 | in-register scan steps | unit tests in `kernels::scan`; the ladder is the `vfill`/`vslideup`/combine loop |
//! | Figure 2 | split radix sort worked example | `radix_sort::tests::sorts_the_papers_figure_2_example` |
//! | Figure 3 | `split` worked example | `native::tests::split_matches_figure_3` |
//! | Figure 4 | in-register *segmented* scan steps | unit tests in `kernels::segscan`; the flag ladder is `vslideup`+`vor` |
//! | Figure 5 | speedup over VLEN | `scanvec-bench --bin figure5` |
//!
//! # Sections
//!
//! | Paper | Topic | Here |
//! |---|---|---|
//! | §2.1 | RVV background | [`rvv_isa`] + [`rvv_sim`] (the substrate we had to build) |
//! | §3.1 | VLA vs VLS strip mining | [`crate::kernels::build_elem_vx_vls`] + `ablation_vla_vls` |
//! | §3.2 | vector masking | executor's mask handling; `rvv-sim` `vmask` tests |
//! | §3.3 | LMUL and the intrinsic type system | [`rvv_isa::Lmul`] (incl. fractional), group alignment in the allocator |
//! | §4 | the three primitive classes | [`crate::primitives`] |
//! | §5 | segment descriptors, segmented scan | [`crate::segment::Segments`] + [`crate::kernels::build_seg_scan`]; descriptor ablation in `ablation_segdesc` |
//! | §6.2 | Tables 1–4 | `scanvec-bench --bin table1..table4` |
//! | §6.3 | Tables 5–6, LMUL anomaly | `rvv_asm::KernelBuilder` spill machinery; `--bin table5`, `table6`, `ablation_spill` |
//! | §6.4 | Table 7, Figure 5, scalability | `--bin table7`, `figure5` |
//!
//! Full measured-vs-paper numbers live in the repository's `EXPERIMENTS.md`.
