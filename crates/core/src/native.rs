//! Pure-Rust reference implementations of every primitive — the **oracle**.
//!
//! These functions define the intended semantics of the simulated kernels:
//! property tests assert `simulated == native` across random inputs, VLENs,
//! and LMULs. They are also a perfectly usable host-side scan library in
//! their own right (the Criterion benches measure them for wall-clock
//! numbers, complementing the instruction-count experiments).
//!
//! All functions operate on `u64` element values truncated to a [`Sew`],
//! mirroring exactly what the vector unit does; `u32` conveniences are
//! provided for the common e32 case.

use crate::ops::ScanOp;
use rvv_isa::Sew;

/// Inclusive scan: `out[i] = x[0] ⊕ … ⊕ x[i]`.
pub fn scan_inclusive(op: ScanOp, sew: Sew, xs: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = op.identity(sew);
    for &x in xs {
        acc = op.apply(sew, acc, sew.truncate(x));
        out.push(acc);
    }
    out
}

/// Exclusive scan: `out[0] = I⊕`, `out[i] = x[0] ⊕ … ⊕ x[i-1]`.
pub fn scan_exclusive(op: ScanOp, sew: Sew, xs: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = op.identity(sew);
    for &x in xs {
        out.push(acc);
        acc = op.apply(sew, acc, sew.truncate(x));
    }
    out
}

/// Segmented inclusive scan: independent inclusive scan per segment.
/// `head_flags[i] != 0` starts a new segment at `i`.
pub fn seg_scan_inclusive(op: ScanOp, sew: Sew, xs: &[u64], head_flags: &[u32]) -> Vec<u64> {
    assert_eq!(xs.len(), head_flags.len(), "flags must match data length");
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = op.identity(sew);
    for (&x, &f) in xs.iter().zip(head_flags) {
        if f != 0 {
            acc = op.identity(sew);
        }
        acc = op.apply(sew, acc, sew.truncate(x));
        out.push(acc);
    }
    out
}

/// Segmented exclusive scan: each segment starts from the identity.
pub fn seg_scan_exclusive(op: ScanOp, sew: Sew, xs: &[u64], head_flags: &[u32]) -> Vec<u64> {
    assert_eq!(xs.len(), head_flags.len(), "flags must match data length");
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = op.identity(sew);
    for (&x, &f) in xs.iter().zip(head_flags) {
        if f != 0 {
            acc = op.identity(sew);
        }
        out.push(acc);
        acc = op.apply(sew, acc, sew.truncate(x));
    }
    out
}

/// Reduction: `x[0] ⊕ … ⊕ x[n-1]` (identity for the empty vector).
pub fn reduce(op: ScanOp, sew: Sew, xs: &[u64]) -> u64 {
    xs.iter().fold(op.identity(sew), |acc, &x| {
        op.apply(sew, acc, sew.truncate(x))
    })
}

/// Elementwise `out[i] = a[i] ⊕ b[i]`.
pub fn elementwise(op: ScanOp, sew: Sew, a: &[u64], b: &[u64]) -> Vec<u64> {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| op.apply(sew, sew.truncate(x), sew.truncate(y)))
        .collect()
}

/// `enumerate`: `out[i]` = number of positions `j < i` with
/// `flags[j] == set_bit`; returns the total count too (the paper's
/// `enumerate` returns it for `split`).
pub fn enumerate(flags: &[u32], set_bit: bool) -> (Vec<u64>, u64) {
    let want = set_bit as u32;
    let mut out = Vec::with_capacity(flags.len());
    let mut count = 0u64;
    for &f in flags {
        out.push(count);
        if f == want {
            count += 1;
        }
    }
    (out, count)
}

/// Out-of-place permutation: `out[index[i]] = src[i]`. Panics if an index is
/// out of range; duplicate indices make the result depend on order (last
/// write wins), matching `vsuxei`'s unordered-but-sequential simulation.
pub fn permute(src: &[u64], index: &[u64]) -> Vec<u64> {
    assert_eq!(src.len(), index.len());
    let mut out = vec![0u64; src.len()];
    for (&x, &i) in src.iter().zip(index) {
        out[i as usize] = x;
    }
    out
}

/// Elementwise select: `out[i] = flags[i] != 0 ? a[i] : b[i]`.
pub fn select(flags: &[u32], a: &[u64], b: &[u64]) -> Vec<u64> {
    assert_eq!(flags.len(), a.len());
    assert_eq!(flags.len(), b.len());
    flags
        .iter()
        .zip(a.iter().zip(b))
        .map(|(&f, (&x, &y))| if f != 0 { x } else { y })
        .collect()
}

/// Blelloch's `split`: stable partition by flag — elements with flag 0
/// first (in order), then elements with flag 1 (in order). This matches the
/// paper's Figure 3.
pub fn split(src: &[u64], flags: &[u32]) -> Vec<u64> {
    assert_eq!(src.len(), flags.len());
    let mut out = Vec::with_capacity(src.len());
    out.extend(
        src.iter()
            .zip(flags)
            .filter(|(_, &f)| f == 0)
            .map(|(&x, _)| x),
    );
    out.extend(
        src.iter()
            .zip(flags)
            .filter(|(_, &f)| f != 0)
            .map(|(&x, _)| x),
    );
    out
}

/// `pack` (stream compaction): keep elements whose flag is set, preserving
/// order.
pub fn pack(src: &[u64], flags: &[u32]) -> Vec<u64> {
    assert_eq!(src.len(), flags.len());
    src.iter()
        .zip(flags)
        .filter(|(_, &f)| f != 0)
        .map(|(&x, _)| x)
        .collect()
}

/// Bit `bit` of each element, as 0/1 flags (radix sort's `get_flags`).
pub fn get_flags(src: &[u64], bit: u32) -> Vec<u32> {
    src.iter().map(|&x| ((x >> bit) & 1) as u32).collect()
}

/// `u32` convenience wrappers for the common e32 case.
pub mod u32v {
    use super::*;

    fn up(xs: &[u32]) -> Vec<u64> {
        xs.iter().map(|&x| x as u64).collect()
    }

    fn down(xs: Vec<u64>) -> Vec<u32> {
        xs.into_iter().map(|x| x as u32).collect()
    }

    /// Inclusive plus-scan on `u32`.
    pub fn scan_inclusive(op: ScanOp, xs: &[u32]) -> Vec<u32> {
        down(super::scan_inclusive(op, Sew::E32, &up(xs)))
    }

    /// Exclusive scan on `u32`.
    pub fn scan_exclusive(op: ScanOp, xs: &[u32]) -> Vec<u32> {
        down(super::scan_exclusive(op, Sew::E32, &up(xs)))
    }

    /// Segmented inclusive scan on `u32`.
    pub fn seg_scan_inclusive(op: ScanOp, xs: &[u32], head_flags: &[u32]) -> Vec<u32> {
        down(super::seg_scan_inclusive(op, Sew::E32, &up(xs), head_flags))
    }

    /// Stable split by flags on `u32`.
    pub fn split(src: &[u32], flags: &[u32]) -> Vec<u32> {
        down(super::split(&up(src), flags))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_match_definition() {
        let xs = [3u64, 1, 7, 0, 4, 1, 6, 3];
        assert_eq!(
            scan_inclusive(ScanOp::Plus, Sew::E32, &xs),
            vec![3, 4, 11, 11, 15, 16, 22, 25]
        );
        assert_eq!(
            scan_exclusive(ScanOp::Plus, Sew::E32, &xs),
            vec![0, 3, 4, 11, 11, 15, 16, 22]
        );
        assert_eq!(
            scan_inclusive(ScanOp::Max, Sew::E32, &xs),
            vec![3, 3, 7, 7, 7, 7, 7, 7]
        );
        assert_eq!(
            scan_inclusive(ScanOp::Min, Sew::E32, &xs),
            vec![3, 1, 1, 0, 0, 0, 0, 0]
        );
    }

    #[test]
    fn exclusive_is_shifted_inclusive() {
        let xs: Vec<u64> = (0..100).map(|i| (i * 37 + 11) % 251).collect();
        for &op in &ScanOp::ALL {
            let inc = scan_inclusive(op, Sew::E32, &xs);
            let exc = scan_exclusive(op, Sew::E32, &xs);
            assert_eq!(exc[0], op.identity(Sew::E32));
            assert_eq!(&exc[1..], &inc[..inc.len() - 1]);
        }
    }

    #[test]
    fn segmented_equals_per_segment_scan() {
        let xs = [5u64, 1, 2, 4, 8, 16, 3, 3];
        let flags = [1u32, 0, 1, 0, 0, 1, 0, 1];
        let got = seg_scan_inclusive(ScanOp::Plus, Sew::E32, &xs, &flags);
        assert_eq!(got, vec![5, 6, 2, 6, 14, 16, 19, 3]);
        let exc = seg_scan_exclusive(ScanOp::Plus, Sew::E32, &xs, &flags);
        assert_eq!(exc, vec![0, 5, 0, 2, 6, 0, 16, 0]);
    }

    #[test]
    fn enumerate_matches_paper_semantics() {
        // Listing 8: enumerate is an exclusive plus-scan of flag matches.
        let flags = [1u32, 0, 1, 1, 0];
        let (ones, n1) = enumerate(&flags, true);
        assert_eq!(ones, vec![0, 1, 1, 2, 3]);
        assert_eq!(n1, 3);
        let (zeros, n0) = enumerate(&flags, false);
        assert_eq!(zeros, vec![0, 0, 1, 1, 1]);
        assert_eq!(n0, 2);
    }

    #[test]
    fn split_matches_figure_3() {
        // Figure 3: src = [5,7,3,1,4,2], flags = [1,1,0,0,1,0]
        // -> zeros (3,1,2) first, then ones (5,7,4).
        let src = [5u64, 7, 3, 1, 4, 2];
        let flags = [1u32, 1, 0, 0, 1, 0];
        assert_eq!(split(&src, &flags), vec![3, 1, 2, 5, 7, 4]);
    }

    #[test]
    fn split_via_scan_primitives_identity() {
        // The split = permute(enumerate…) construction of Listing 7,
        // checked against the direct definition.
        let src: Vec<u64> = vec![9, 8, 7, 6, 5, 4, 3, 2];
        let flags: Vec<u32> = vec![0, 1, 0, 1, 1, 0, 0, 1];
        let (i_up, count0) = enumerate(&flags, false); // indices for flag==0
        let (mut i_down, _) = enumerate(&flags, true);
        for d in &mut i_down {
            *d += count0;
        }
        let index: Vec<u64> = flags
            .iter()
            .enumerate()
            .map(|(i, &f)| if f == 0 { i_up[i] } else { i_down[i] })
            .collect();
        assert_eq!(permute(&src, &index), split(&src, &flags));
    }

    #[test]
    fn pack_and_get_flags() {
        let src = [10u64, 11, 12, 13];
        assert_eq!(pack(&src, &[1, 0, 0, 1]), vec![10, 13]);
        assert_eq!(get_flags(&[0b101, 0b010, 0b111], 1), vec![0, 1, 1]);
        assert_eq!(get_flags(&[0b101, 0b010, 0b111], 0), vec![1, 0, 1]);
    }

    #[test]
    fn reduce_agrees_with_scan_last() {
        let xs: Vec<u64> = (0..50).map(|i| i * i + 1).collect();
        for &op in &ScanOp::ALL {
            let r = reduce(op, Sew::E32, &xs);
            let inc = scan_inclusive(op, Sew::E32, &xs);
            assert_eq!(r, *inc.last().unwrap());
        }
    }
}
