//! The long-lived execution context: shared compilation artifacts and
//! policy defaults, split off from per-run state.
//!
//! [`Engine`] is the process-wide half of the engine/session split
//! (compare wasmtime's `Engine`/`Store`): it owns the [`PlanCache`] every
//! session compiles into, the default [`ExecEngine`] run-loop tier, an
//! optional [`CostModel`] applied to every run, and the default fuel
//! budget (the deterministic watchdog policy). It is immutable after
//! [`EngineBuilder::build`], `Send + Sync`, and cheap to clone — clones
//! share the same plan registry — so one `Arc<Engine>` can back a whole
//! worker pool, a chaos harness, and a bench binary at once.
//!
//! [`Session`]s are created from an engine with [`Engine::session`] and
//! own only per-run state: the simulated machine, the heap cursor, any
//! attached tracer or fault hook, the armed fuel budget, and the poison
//! flag. Sessions sharing an engine never recompile a kernel another one
//! already built for the same `(name, VLEN, SEW, LMUL, spill profile)`.

use crate::error::{ScanError, ScanResult};
use crate::plan_cache::PlanCache;
use crate::session::{EnvConfig, ExecEngine, Session, HEAP_BASE, STACK_BYTES};
use rvv_cost::CostModel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The immutable, shareable execution context (see the module docs).
///
/// Build one with [`Engine::builder`] (or [`Engine::new`] for the
/// defaults: a fresh plan registry, the [`ExecEngine::Plan`] tier, no
/// cost model, no fuel budget), wrap it in an [`Arc`], and create
/// [`Session`]s from it on any thread. Cloning an engine is cheap and
/// preserves sharing: the clone compiles into the same [`PlanCache`].
#[derive(Debug, Clone)]
pub struct Engine {
    plans: Arc<PlanCache>,
    default_exec: ExecEngine,
    cost: Option<CostModel>,
    default_fuel_budget: Option<u64>,
    health: Arc<EngineHealth>,
}

/// Engine-lifetime health counters, shared by every clone of an
/// [`Engine`] and bumped by the sessions created from it. Monitoring
/// surfaces (the serve layer's `/stats`, ops dashboards) read these;
/// nothing in the execution path ever branches on them, so they cannot
/// perturb results.
#[derive(Debug, Default)]
pub struct EngineHealth {
    sessions_created: AtomicU64,
    sessions_poisoned: AtomicU64,
}

impl EngineHealth {
    /// Sessions ever created from this engine (or any clone of it).
    pub fn sessions_created(&self) -> u64 {
        self.sessions_created.load(Ordering::Relaxed)
    }

    /// Sessions ever [`Session::poison`]ed — each poisoning means a job
    /// body panicked inside it and the session was discarded.
    pub fn sessions_poisoned(&self) -> u64 {
        self.sessions_poisoned.load(Ordering::Relaxed)
    }

    pub(crate) fn note_session_created(&self) {
        self.sessions_created.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_session_poisoned(&self) {
        self.sessions_poisoned.fetch_add(1, Ordering::Relaxed);
    }
}

impl Engine {
    /// An engine with the default policy: fresh plan registry,
    /// [`ExecEngine::Plan`] run loop, no cost model, no fuel budget.
    pub fn new() -> Engine {
        Engine::builder().build()
    }

    /// Start configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            plans: None,
            default_exec: ExecEngine::default(),
            cost: None,
            default_fuel_budget: None,
        }
    }

    /// The plan registry every session of this engine compiles into.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plans
    }

    /// The run-loop tier new (and [`Session::reset`]) sessions select.
    pub fn default_exec_engine(&self) -> ExecEngine {
        self.default_exec
    }

    /// The cost model applied to every run under this engine, if any.
    /// Consumers that attach their own estimator sinks (e.g. a per-job
    /// `costed` builder in the batch layer) take precedence over this
    /// default.
    pub fn cost_model(&self) -> Option<&CostModel> {
        self.cost.as_ref()
    }

    /// The deterministic watchdog budget armed on every new (and reset)
    /// session, if any (see [`Session::set_fuel_budget`]).
    pub fn default_fuel_budget(&self) -> Option<u64> {
        self.default_fuel_budget
    }

    /// Validate a configuration against the limits sessions are built
    /// under: VLEN must be a power of two in `64..=65536` (the simulated
    /// machine's architectural range) and `mem_bytes` must leave heap room
    /// beyond the reserved device stack. Surfaced as
    /// [`ScanError::Config`] instead of the machine's assertion so service
    /// layers can reject bad tenant configurations gracefully.
    pub fn validate(&self, cfg: &EnvConfig) -> ScanResult<()> {
        if !cfg.vlen.is_power_of_two() || !(64..=65536).contains(&cfg.vlen) {
            return Err(ScanError::Config(format!(
                "vlen must be a power of two in 64..=65536, got {}",
                cfg.vlen
            )));
        }
        let floor = STACK_BYTES + HEAP_BASE;
        if cfg.mem_bytes as u64 <= floor {
            return Err(ScanError::Config(format!(
                "mem_bytes must exceed the reserved stack + heap base ({floor} bytes), got {}",
                cfg.mem_bytes
            )));
        }
        Ok(())
    }

    /// Create a [`Session`] of this engine: a fresh simulated machine and
    /// heap under `cfg`, compiling into the shared plan registry, with the
    /// engine's default run-loop tier selected and default fuel budget
    /// (if any) armed. Fails with [`ScanError::Config`] when `cfg` is
    /// invalid ([`Engine::validate`]).
    pub fn session(&self, cfg: EnvConfig) -> ScanResult<Session> {
        self.validate(&cfg)?;
        self.health.note_session_created();
        Ok(Session::from_engine(self.clone(), cfg))
    }

    /// The health counters shared by every clone of this engine (see
    /// [`EngineHealth`]).
    pub fn health(&self) -> &Arc<EngineHealth> {
        &self.health
    }
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

/// Builder for [`Engine`] (see [`Engine::builder`]).
#[derive(Debug)]
pub struct EngineBuilder {
    plans: Option<Arc<PlanCache>>,
    default_exec: ExecEngine,
    cost: Option<CostModel>,
    default_fuel_budget: Option<u64>,
}

impl EngineBuilder {
    /// Compile into an existing registry instead of a fresh one — share
    /// one across engines and a configuration is compiled once
    /// process-wide.
    pub fn plan_cache(mut self, plans: Arc<PlanCache>) -> EngineBuilder {
        self.plans = Some(plans);
        self
    }

    /// The run-loop tier sessions start on (default: [`ExecEngine::Plan`]).
    pub fn default_exec_engine(mut self, exec: ExecEngine) -> EngineBuilder {
        self.default_exec = exec;
        self
    }

    /// Estimate cycles for every run under `model`. The estimate rides the
    /// retire-event stream, so it is deterministic at any thread count and
    /// identical across run-loop tiers.
    pub fn cost_model(mut self, model: CostModel) -> EngineBuilder {
        self.cost = Some(model);
        self
    }

    /// Arm the deterministic instruction-budget watchdog on every session
    /// (see [`Session::set_fuel_budget`]). Per-job watchdogs still take
    /// precedence in the batch layer.
    pub fn default_fuel_budget(mut self, fuel: u64) -> EngineBuilder {
        self.default_fuel_budget = Some(fuel);
        self
    }

    /// Finish: the engine is immutable from here on.
    pub fn build(self) -> Engine {
        Engine {
            plans: self.plans.unwrap_or_else(PlanCache::shared),
            default_exec: self.default_exec,
            cost: self.cost,
            default_fuel_budget: self.default_fuel_budget,
            health: Arc::new(EngineHealth::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::p_add;

    #[test]
    fn engine_is_send_sync_and_clone_shares_the_registry() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        let engine = Engine::new();
        let clone = engine.clone();
        assert!(Arc::ptr_eq(engine.plan_cache(), clone.plan_cache()));
    }

    #[test]
    fn sessions_share_one_compile_per_config() {
        let engine = Arc::new(Engine::new());
        let cfg = EnvConfig::paper_default();
        let data: Vec<u32> = (0..100).collect();
        for _ in 0..3 {
            let mut s = engine.session(cfg).unwrap();
            let v = s.from_u32(&data).unwrap();
            p_add(&mut s, &v, 1).unwrap();
        }
        assert_eq!(
            engine.plan_cache().compiles(),
            engine.plan_cache().len() as u64,
            "every cached kernel compiled exactly once across sessions"
        );
    }

    #[test]
    fn invalid_configs_are_rejected_not_asserted() {
        let engine = Engine::new();
        for vlen in [0, 63, 100, 1 << 17] {
            let r = engine.session(EnvConfig::with_vlen(vlen));
            assert!(matches!(r, Err(ScanError::Config(_))), "vlen {vlen}: {r:?}");
        }
        let r = engine.session(EnvConfig {
            mem_bytes: 4096,
            ..EnvConfig::paper_default()
        });
        assert!(matches!(r, Err(ScanError::Config(_))), "{r:?}");
    }

    #[test]
    fn engine_defaults_flow_into_sessions() {
        let engine = Engine::builder()
            .default_exec_engine(ExecEngine::Legacy)
            .default_fuel_budget(1234)
            .build();
        let mut s = engine.session(EnvConfig::paper_default()).unwrap();
        assert_eq!(s.exec_engine(), ExecEngine::Legacy);
        assert_eq!(s.fuel_budget(), Some(1234));
        // A run-time override is undone by reset, which restores the
        // engine's defaults — not the global ones.
        s.set_exec_engine(ExecEngine::Plan);
        s.set_fuel_budget(None);
        s.reset();
        assert_eq!(s.exec_engine(), ExecEngine::Legacy);
        assert_eq!(s.fuel_budget(), Some(1234));
    }
}
