//! The binary operators of the scan vector model.
//!
//! Blelloch's model parameterizes its scan instructions by an associative
//! operator `⊕` with a left identity. The paper implements `+` (plus-scan);
//! we support the full classic set — every one maps to an RVV instruction
//! for the element step and has a well-defined identity used as the
//! `vslideup` fill value.

use rvv_isa::{Sew, VAluOp, VRedOp};
use std::fmt;

/// An associative scan operator with identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanOp {
    /// Addition mod 2^SEW (the paper's plus-scan).
    Plus,
    /// Unsigned maximum.
    Max,
    /// Unsigned minimum.
    Min,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
}

impl ScanOp {
    /// Every supported operator.
    pub const ALL: [ScanOp; 6] = [
        ScanOp::Plus,
        ScanOp::Max,
        ScanOp::Min,
        ScanOp::And,
        ScanOp::Or,
        ScanOp::Xor,
    ];

    /// The operator's identity at a given element width (e.g. `Min`'s
    /// identity is the all-ones maximum value).
    pub const fn identity(self, sew: Sew) -> u64 {
        match self {
            ScanOp::Plus | ScanOp::Or | ScanOp::Xor | ScanOp::Max => 0,
            ScanOp::Min | ScanOp::And => sew.max_value(),
        }
    }

    /// Apply the operator to two elements (already truncated to SEW);
    /// result is truncated to SEW.
    pub const fn apply(self, sew: Sew, a: u64, b: u64) -> u64 {
        let r = match self {
            ScanOp::Plus => a.wrapping_add(b),
            ScanOp::Max => {
                if a > b {
                    a
                } else {
                    b
                }
            }
            ScanOp::Min => {
                if a < b {
                    a
                } else {
                    b
                }
            }
            ScanOp::And => a & b,
            ScanOp::Or => a | b,
            ScanOp::Xor => a ^ b,
        };
        sew.truncate(r)
    }

    /// The vector ALU instruction implementing one combine step.
    pub const fn valu(self) -> VAluOp {
        match self {
            ScanOp::Plus => VAluOp::Add,
            ScanOp::Max => VAluOp::Maxu,
            ScanOp::Min => VAluOp::Minu,
            ScanOp::And => VAluOp::And,
            ScanOp::Or => VAluOp::Or,
            ScanOp::Xor => VAluOp::Xor,
        }
    }

    /// The reduction instruction computing `⊕` over a strip (used by the
    /// reduction primitive).
    pub const fn vred(self) -> VRedOp {
        match self {
            ScanOp::Plus => VRedOp::Sum,
            ScanOp::Max => VRedOp::Maxu,
            ScanOp::Min => VRedOp::Minu,
            ScanOp::And => VRedOp::And,
            ScanOp::Or => VRedOp::Or,
            ScanOp::Xor => VRedOp::Xor,
        }
    }

    /// Short name used in kernel cache keys and bench output.
    pub const fn name(self) -> &'static str {
        match self {
            ScanOp::Plus => "plus",
            ScanOp::Max => "max",
            ScanOp::Min => "min",
            ScanOp::And => "and",
            ScanOp::Or => "or",
            ScanOp::Xor => "xor",
        }
    }
}

impl fmt::Display for ScanOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_are_identities() {
        for &op in &ScanOp::ALL {
            for &sew in &Sew::ALL {
                let id = op.identity(sew);
                for x in [0u64, 1, 7, sew.max_value(), sew.max_value() / 2] {
                    assert_eq!(
                        op.apply(sew, id, x),
                        x,
                        "{op} identity failed at {sew} on {x}"
                    );
                    assert_eq!(op.apply(sew, x, id), x);
                }
            }
        }
    }

    #[test]
    fn associativity_spot_checks() {
        for &op in &ScanOp::ALL {
            for (a, b, c) in [(1u64, 2, 3), (0xff, 0x100, 0xffff_ffff), (5, 5, 5)] {
                let s = Sew::E32;
                let (a, b, c) = (s.truncate(a), s.truncate(b), s.truncate(c));
                assert_eq!(
                    op.apply(s, op.apply(s, a, b), c),
                    op.apply(s, a, op.apply(s, b, c)),
                    "{op} not associative on ({a},{b},{c})"
                );
            }
        }
    }

    #[test]
    fn plus_wraps_at_sew() {
        assert_eq!(ScanOp::Plus.apply(Sew::E8, 200, 100), 44);
        assert_eq!(ScanOp::Plus.apply(Sew::E32, u32::MAX as u64, 2), 1);
    }
}
